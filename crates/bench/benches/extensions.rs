//! Benchmarks of the extension machinery: the memory-capped scheduler, the
//! exact Pareto solver, and the text renderers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use treesched_core::{
    mem_bounded_schedule, pareto_frontier, Admission, Platform, Request, SchedulerRegistry,
};
use treesched_gen::{random_deep, spider, WeightRange};
use treesched_seq::best_postorder;

fn bench_membound(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem_bounded_schedule");
    g.sample_size(20);
    for &n in &[10_000usize, 50_000] {
        let tree = random_deep(n, 4, WeightRange::MIXED, 21);
        let seq = best_postorder(&tree);
        g.throughput(Throughput::Elements(n as u64));
        for (name, cap_factor) in [("tight", 1.0), ("loose", 8.0)] {
            g.bench_with_input(
                BenchmarkId::new(format!("seq_order_{name}"), n),
                &tree,
                |b, t| {
                    b.iter(|| {
                        mem_bounded_schedule(
                            t,
                            8,
                            &seq.order,
                            seq.peak * cap_factor,
                            Admission::SequentialOrder,
                        )
                    });
                },
            );
        }
        // the greedy policy's skip-scan is O(ready) per event once memory
        // saturates; bench it only at the smaller size to keep the suite
        // fast (see the membound module docs)
        if n <= 10_000 {
            g.bench_with_input(BenchmarkId::new("greedy_loose", n), &tree, |b, t| {
                b.iter(|| {
                    mem_bounded_schedule(t, 8, &seq.order, seq.peak * 8.0, Admission::Greedy)
                });
            });
        }
    }
    g.finish();
}

fn bench_pareto(c: &mut Criterion) {
    let mut g = c.benchmark_group("pareto_frontier");
    g.sample_size(10);
    // spider trees: wide enough for real wave choices, small enough for the
    // exponential solver
    for &(legs, len) in &[(3usize, 4usize), (4, 4)] {
        let tree = spider(legs, len);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("spider{legs}x{len}")),
            &tree,
            |b, t| {
                b.iter(|| pareto_frontier(t, 2));
            },
        );
    }
    g.finish();
}

fn bench_rendering(c: &mut Criterion) {
    let mut g = c.benchmark_group("viz_rendering");
    g.sample_size(30);
    let tree = random_deep(20_000, 4, WeightRange::MIXED, 5);
    let schedule = SchedulerRegistry::standard()
        .get("deepest")
        .unwrap()
        .schedule_once(&Request::new(&tree, Platform::new(8)))
        .unwrap()
        .schedule;
    g.bench_function("gantt_20k", |b| {
        b.iter(|| treesched_viz::gantt(&tree, &schedule, treesched_viz::GanttOptions::default()));
    });
    g.bench_function("memory_profile_20k", |b| {
        b.iter(|| {
            treesched_viz::memory_profile_plot(
                &tree,
                &schedule,
                treesched_viz::ProfileOptions::default(),
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench_membound, bench_pareto, bench_rendering);
criterion_main!(benches);
