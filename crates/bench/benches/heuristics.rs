//! Runtime of the campaign schedulers versus tree size — validates the
//! complexity claims of paper §5 (`O(n log n)` for the list schedulers and
//! `ParSubtrees` with the optimal-postorder sub-algorithm,
//! `O(n(log n + p))` for `SplitSubtrees`).
//!
//! Schedulers run through the registry's `Scratch`-reusing path — the same
//! allocation-free path the corpus campaign uses — so these numbers track
//! what the experiment harness actually pays per schedule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use treesched_core::{Platform, Request, SchedulerRegistry, Scratch};
use treesched_gen::{random_deep, WeightRange};
use treesched_model::TaskTree;
use treesched_sparse::{assembly, generate, ordering};

fn corpus_tree(nx: usize) -> TaskTree {
    let pattern = generate::grid2d(nx, nx, generate::Stencil::Star);
    let ord = ordering::nested_dissection_2d(nx, nx);
    assembly::assembly_tree_ordered(&pattern, &ord, 4).expect("connected grid")
}

fn bench_heuristics(c: &mut Criterion) {
    let registry = SchedulerRegistry::standard();
    let mut scratch = Scratch::new();
    let mut g = c.benchmark_group("heuristic_runtime");
    g.sample_size(20);
    for &n in &[1_000usize, 10_000, 100_000] {
        let tree = random_deep(n, 4, WeightRange::MIXED, 42);
        g.throughput(Throughput::Elements(n as u64));
        for entry in registry.campaign() {
            g.bench_with_input(BenchmarkId::new(entry.name(), n), &tree, |b, t| {
                let req = Request::new(t, Platform::new(8));
                b.iter(|| entry.scheduler().schedule(&req, &mut scratch).unwrap());
            });
        }
    }
    g.finish();
}

fn bench_heuristics_assembly(c: &mut Criterion) {
    let registry = SchedulerRegistry::standard();
    let mut scratch = Scratch::new();
    let mut g = c.benchmark_group("heuristic_runtime_assembly");
    g.sample_size(20);
    for &nx in &[30usize, 60, 120] {
        let tree = corpus_tree(nx);
        g.throughput(Throughput::Elements(tree.len() as u64));
        for entry in registry.campaign() {
            g.bench_with_input(
                BenchmarkId::new(entry.name(), format!("grid{nx}x{nx}")),
                &tree,
                |b, t| {
                    let req = Request::new(t, Platform::new(8));
                    b.iter(|| entry.scheduler().schedule(&req, &mut scratch).unwrap());
                },
            );
        }
    }
    g.finish();
}

fn bench_processor_scaling(c: &mut Criterion) {
    // SplitSubtrees is O(n(log n + p)): runtime should grow mildly with p
    let mut g = c.benchmark_group("split_subtrees_vs_p");
    g.sample_size(30);
    let tree = random_deep(50_000, 4, WeightRange::MIXED, 7);
    for &p in &[2usize, 8, 32, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &tree, |b, t| {
            b.iter(|| treesched_core::split_subtrees(t, p));
        });
    }
    g.finish();
}

fn bench_schedule_evaluation(c: &mut Criterion) {
    // the event-sweep memory evaluation is O(n log n)
    let registry = SchedulerRegistry::standard();
    let mut g = c.benchmark_group("schedule_evaluation");
    g.sample_size(20);
    for &n in &[10_000usize, 100_000] {
        let tree = random_deep(n, 4, WeightRange::MIXED, 11);
        let req = Request::new(&tree, Platform::new(8));
        let schedule = registry
            .get("deepest")
            .unwrap()
            .schedule_once(&req)
            .unwrap()
            .schedule;
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("peak_memory", n), &(), |b, _| {
            b.iter(|| schedule.peak_memory(&tree));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_heuristics,
    bench_heuristics_assembly,
    bench_processor_scaling,
    bench_schedule_evaluation
);
criterion_main!(benches);
