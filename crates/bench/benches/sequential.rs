//! Runtime of the sequential traversal algorithms — the paper's §6.1
//! rationale for preferring the optimal postorder (`O(n log n)`) over Liu's
//! exact algorithm (`O(n²)` worst case, near-linear on realistic trees).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use treesched_gen::{random_attachment, random_deep, WeightRange};
use treesched_seq::{best_postorder, liu_exact, naive_postorder};

fn bench_traversals(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequential_traversals");
    g.sample_size(20);
    for &n in &[1_000usize, 10_000, 100_000] {
        let tree = random_deep(n, 4, WeightRange::MIXED, 13);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("naive_postorder", n), &tree, |b, t| {
            b.iter(|| naive_postorder(t));
        });
        g.bench_with_input(BenchmarkId::new("best_postorder", n), &tree, |b, t| {
            b.iter(|| best_postorder(t));
        });
        // Liu's exact algorithm is O(n²) worst case; cap its bench size so
        // the suite stays fast (the 20k shape comparison below covers its
        // realistic behaviour)
        if n <= 10_000 {
            g.bench_with_input(BenchmarkId::new("liu_exact", n), &tree, |b, t| {
                b.iter(|| liu_exact(t));
            });
        }
    }
    g.finish();
}

fn bench_tree_shapes(c: &mut Criterion) {
    // Liu exact on bushy vs deep trees: the hill-valley profile collapses
    // on bushy trees and stays long on adversarial deep ones
    let mut g = c.benchmark_group("liu_exact_shapes");
    g.sample_size(20);
    let n = 20_000;
    let bushy = random_attachment(n, WeightRange::MIXED, 3);
    let deep = random_deep(n, 2, WeightRange::MIXED, 3);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("bushy", |b| b.iter(|| liu_exact(&bushy)));
    g.bench_function("deep", |b| b.iter(|| liu_exact(&deep)));
    g.finish();
}

criterion_group!(benches, bench_traversals, bench_tree_shapes);
criterion_main!(benches);
