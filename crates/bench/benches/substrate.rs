//! Runtime of the sparse substrate: orderings, elimination trees, column
//! counts and assembly-tree construction (the corpus pipeline of §6.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use treesched_sparse::{assembly, etree, generate, ordering};

fn bench_orderings(c: &mut Criterion) {
    let mut g = c.benchmark_group("orderings");
    g.sample_size(10);
    for &nx in &[20usize, 40, 80] {
        let p = generate::grid2d(nx, nx, generate::Stencil::Star);
        g.throughput(Throughput::Elements((nx * nx) as u64));
        g.bench_with_input(BenchmarkId::new("min_degree", nx * nx), &p, |b, p| {
            b.iter(|| ordering::min_degree(p));
        });
        g.bench_with_input(BenchmarkId::new("rcm", nx * nx), &p, |b, p| {
            b.iter(|| ordering::reverse_cuthill_mckee(p));
        });
        g.bench_with_input(
            BenchmarkId::new("nested_dissection", nx * nx),
            &nx,
            |b, &nx| {
                b.iter(|| ordering::nested_dissection_2d(nx, nx));
            },
        );
    }
    g.finish();
}

fn bench_symbolic(c: &mut Criterion) {
    let mut g = c.benchmark_group("symbolic");
    g.sample_size(20);
    for &nx in &[40usize, 80] {
        let base = generate::grid2d(nx, nx, generate::Stencil::Star);
        let ord = ordering::nested_dissection_2d(nx, nx);
        let p = base.permute(&ord.order);
        g.throughput(Throughput::Elements((nx * nx) as u64));
        g.bench_with_input(BenchmarkId::new("elimination_tree", nx * nx), &p, |b, p| {
            b.iter(|| etree::elimination_tree(p));
        });
        let et = etree::elimination_tree(&p);
        g.bench_with_input(BenchmarkId::new("column_counts", nx * nx), &p, |b, p| {
            b.iter(|| etree::column_counts(p, &et));
        });
        let cc = etree::column_counts(&p, &et);
        g.bench_with_input(BenchmarkId::new("assembly_tree", nx * nx), &(), |b, _| {
            b.iter(|| assembly::assembly_tree_from_etree(&et, &cc, 4).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_orderings, bench_symbolic);
criterion_main!(benches);
