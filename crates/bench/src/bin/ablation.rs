//! Ablation studies beyond the paper's figures:
//!
//! 1. **Figure 3 sweep** — `ParSubtrees` vs optimal makespan on the fork
//!    tree, showing the ratio approaching `p` (paper §5.1);
//! 2. **sequential sub-algorithm** — `ParSubtrees` memory when the subtree
//!    traversal is the naive postorder, the optimal postorder (paper's
//!    choice), or Liu's exact algorithm;
//! 3. **memory-capped scheduling** — the cap/makespan trade-off of the
//!    `MemBoundedSeq` extension (paper §7 future work);
//! 4. **priority components** — what the paper's tie-breaks buy over the
//!    textbook list-scheduling baselines.
//!
//! Every study is a declarative [`CampaignSpec`] executed through one
//! shared engine-backed [`CampaignRunner`] — this binary contains no
//! scheduling loop of its own. `--json` streams the scenario records of
//! all studies as one JSONL stream through the shared `JsonRecord`
//! builder.

use treesched_bench::{
    campaign::{Campaign, CampaignRunner, CampaignSpec, PlatformPoint},
    cli, default_workers, stats,
};
use treesched_core::SeqAlgo;
use treesched_gen::{assembly_corpus, fork_tree, CorpusEntry};

/// The fork sweep's `(p, k)` grid.
const FIG3_PS: [u32; 4] = [2, 4, 8, 16];
const FIG3_KS: [usize; 3] = [4, 16, 64];

/// The cap sweep's factors; the last one is effectively uncapped.
const CAP_FACTORS: [f64; 6] = [1.0, 1.5, 2.0, 4.0, 8.0, 1e6];

/// One fork-sweep spec per processor count: `fork(p, k)` is only
/// meaningful on `p` processors, so the grid cannot be one cross-product.
fn fig3_specs() -> Vec<CampaignSpec> {
    FIG3_PS
        .iter()
        .map(|&p| {
            let mut spec = CampaignSpec::new("ablation-fig3")
                .with_procs(&[p])
                .with_schedulers(vec!["subtrees".into()]);
            for &k in &FIG3_KS {
                spec = spec.with_tree(format!("fork-k{k}"), fork_tree(p as usize, k));
            }
            spec
        })
        .collect()
}

fn seq_spec(corpus: &[CorpusEntry]) -> CampaignSpec {
    let mut spec = CampaignSpec::new("ablation-seq")
        .with_procs(&[4])
        .with_schedulers(vec!["subtrees".into()])
        .with_seqs(vec![
            SeqAlgo::NaivePostorder,
            SeqAlgo::BestPostorder,
            SeqAlgo::LiuExact,
        ]);
    spec.trees = corpus.iter().step_by(4).take(6).cloned().collect();
    spec
}

fn cap_spec(corpus: &[CorpusEntry]) -> CampaignSpec {
    let mut spec = CampaignSpec::new("ablation-cap")
        .with_tree(corpus[8].name.clone(), corpus[8].tree.clone())
        .with_schedulers(vec!["membound".into()]);
    for factor in CAP_FACTORS {
        spec = spec.with_platform(PlatformPoint::flat(8).with_cap_factor(factor));
    }
    spec
}

/// The compared priority schemes, by registry name.
const SCHEMES: [&str; 5] = ["inner", "deepest", "cp", "fifo", "random"];

fn priority_specs(corpus: &[CorpusEntry]) -> Vec<CampaignSpec> {
    let schemes: Vec<String> = SCHEMES.iter().map(|s| s.to_string()).collect();
    let mut assembly = CampaignSpec::new("ablation-priorities-assembly")
        .with_procs(&[8])
        .with_schedulers(schemes.clone());
    assembly.trees = corpus.to_vec();
    // the wide/irregular shapes where leaf ordering decides how many
    // subtrees are opened concurrently
    let irregular = CampaignSpec::new("ablation-priorities-irregular")
        .with_procs(&[8])
        .with_schedulers(schemes)
        .with_tree("caterpillar", treesched_gen::caterpillar(40, 6))
        .with_tree("longchain", treesched_gen::long_chain_tree(24, 8))
        .with_tree("gadget", treesched_gen::inner_first_gadget(8, 12))
        .with_tree("spider", treesched_gen::spider(24, 12))
        .with_tree(
            "bushy-random",
            treesched_gen::random_attachment(2000, treesched_gen::WeightRange::PEBBLE, 5),
        );
    vec![assembly, irregular]
}

fn main() {
    let opts = cli::parse_or_exit("ablation");
    let corpus = assembly_corpus(opts.scale);
    let mut runner = CampaignRunner::new(default_workers());
    let run = |runner: &mut CampaignRunner, spec: &CampaignSpec| -> Campaign {
        match runner.run(spec) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    };

    let fig3: Vec<Campaign> = fig3_specs().iter().map(|s| run(&mut runner, s)).collect();
    let seq_study = seq_spec(&corpus);
    let seq = run(&mut runner, &seq_study);
    let cap = run(&mut runner, &cap_spec(&corpus));
    let priorities: Vec<Campaign> = priority_specs(&corpus)
        .iter()
        .map(|s| run(&mut runner, s))
        .collect();

    for c in fig3.iter().chain([&seq, &cap]).chain(priorities.iter()) {
        if let Some((r, e)) = c.errors().next() {
            eprintln!("error: {} @ {} on {}: {e}", r.scheduler, r.point, r.tree);
            std::process::exit(1);
        }
    }

    if opts.json {
        for c in fig3.iter().chain([&seq, &cap]).chain(priorities.iter()) {
            print!("{}", c.to_jsonl());
        }
        return;
    }

    // --- study 1: Figure 3 fork sweep -----------------------------------
    println!("Ablation 1 — Figure 3 fork: ParSubtrees makespan ratio vs p");
    println!(
        "  {:>4} {:>6} {:>12} {:>10} {:>8}",
        "p", "k", "ParSubtrees", "optimal", "ratio"
    );
    for (c, &p) in fig3.iter().zip(&FIG3_PS) {
        for &k in &FIG3_KS {
            let r = c
                .records
                .iter()
                .find(|r| r.tree == format!("fork-k{k}"))
                .expect("grid covers every k");
            let ms = r.outcome.as_ref().expect("forks schedule").makespan;
            let opt = (k + 1) as f64;
            println!(
                "  {:>4} {:>6} {:>12.0} {:>10.0} {:>8.3}",
                p,
                k,
                ms,
                opt,
                ms / opt
            );
        }
    }
    println!("  (ratio tends to p as k grows; paper §5.1)\n");

    // --- study 2: sequential sub-algorithm ------------------------------
    println!("Ablation 2 — ParSubtrees memory under different sequential sub-algorithms");
    println!(
        "  {:<24} {:>5} {:>14} {:>14} {:>14}",
        "tree", "p", "naive-po", "best-po", "liu-exact"
    );
    for entry in &seq_study.trees {
        let mem = |algo: SeqAlgo| {
            seq.records
                .iter()
                .find(|r| r.tree == entry.name && r.seq == algo)
                .and_then(|r| r.outcome.as_ref().ok())
                .expect("grid covers every seq")
                .peak_memory
        };
        println!(
            "  {:<24} {:>5} {:>14.3e} {:>14.3e} {:>14.3e}",
            entry.name,
            4,
            mem(SeqAlgo::NaivePostorder),
            mem(SeqAlgo::BestPostorder),
            mem(SeqAlgo::LiuExact)
        );
    }
    println!();

    // --- study 3: memory-capped scheduling ------------------------------
    println!("Ablation 3 — memory-capped list scheduling (sequential-activation policy)");
    let first = cap.records.first().expect("cap sweep is non-empty");
    let mseq = first
        .outcome
        .as_ref()
        .expect("capped runs schedule")
        .mem_ref;
    println!(
        "  tree {} ({} nodes), p = 8, M_seq = {mseq:.3e}",
        first.tree, first.nodes
    );
    println!(
        "  {:>10} {:>14} {:>14} {:>12}",
        "cap/M_seq", "peak", "makespan", "violations"
    );
    for (r, &factor) in cap.records.iter().zip(&CAP_FACTORS) {
        let out = r.outcome.as_ref().expect("capped runs schedule");
        println!(
            "  {:>10} {:>14.3e} {:>14.3e} {:>12}",
            if factor >= 1e6 {
                "~inf".to_string()
            } else {
                format!("{factor:.1}")
            },
            out.peak_memory,
            out.makespan,
            out.cap_violations.unwrap_or(0)
        );
    }
    println!("  (tighter caps trade makespan for memory; 0 violations at cap >= M_seq)\n");

    // --- study 4: priority components -----------------------------------
    println!("Ablation 4 — what the paper-specific priorities buy over textbook list scheduling");
    println!("  (geometric-mean memory relative to the sequential reference, p = 8)");
    for (c, family) in priorities.iter().zip(["assembly corpus", "wide/irregular"]) {
        println!("  {family}:");
        let mut order: Vec<&str> = Vec::new();
        for r in &c.records {
            if !order.contains(&r.scheduler.as_str()) {
                order.push(&r.scheduler);
            }
        }
        for name in order {
            let ratios: Vec<f64> = c
                .records
                .iter()
                .filter(|r| r.scheduler == name)
                .filter_map(|r| r.outcome.as_ref().ok())
                .map(|out| out.peak_memory / out.mem_ref)
                .collect();
            println!("    {:<26} {:>8.3}", name, stats::geomean(&ratios));
        }
    }
    println!("  (on bounded-degree assembly trees the tie-breaks barely matter;");
    println!("   on wide/irregular trees the postorder leaf ordering of the");
    println!("   paper's ParInnerFirst separates clearly from naive priorities)");
}
