//! Ablation studies beyond the paper's figures:
//!
//! 1. **Figure 3 sweep** — `ParSubtrees` vs optimal makespan on the fork
//!    tree, showing the ratio approaching `p` (paper §5.1);
//! 2. **sequential sub-algorithm** — `ParSubtrees` memory when the subtree
//!    traversal is the naive postorder, the optimal postorder (paper's
//!    choice), or Liu's exact algorithm;
//! 3. **memory-capped scheduling** — the cap/makespan trade-off of the
//!    `MemBoundedSeq` extension (paper §7 future work);
//! 4. **priority components** — what the paper's tie-breaks buy over the
//!    textbook list-scheduling baselines.
//!
//! Every scheduler is resolved by name through the registry; this binary
//! contains no per-heuristic dispatch.

use treesched_core::{
    memory_reference, Outcome, Platform, Request, SchedulerRegistry, Scratch, SeqAlgo,
};
use treesched_gen::{assembly_corpus, fork_tree, Scale};
use treesched_model::TaskTree;

/// Schedules `tree` by registry `name`, exiting cleanly on typed errors.
fn run(
    registry: &SchedulerRegistry,
    scratch: &mut Scratch,
    name: &str,
    req: &Request<'_>,
) -> Outcome {
    let result = registry.get(name).and_then(|s| s.schedule(req, scratch));
    match result {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let registry = SchedulerRegistry::standard();
    let mut scratch = Scratch::new();
    fig3_sweep(&registry, &mut scratch);
    seq_algo_ablation(&registry, &mut scratch);
    memory_cap_ablation(&registry, &mut scratch);
    priority_component_ablation(&registry, &mut scratch);
}

fn fig3_sweep(registry: &SchedulerRegistry, scratch: &mut Scratch) {
    println!("Ablation 1 — Figure 3 fork: ParSubtrees makespan ratio vs p");
    println!(
        "  {:>4} {:>6} {:>12} {:>10} {:>8}",
        "p", "k", "ParSubtrees", "optimal", "ratio"
    );
    for p in [2u32, 4, 8, 16] {
        for k in [4usize, 16, 64] {
            let t = fork_tree(p as usize, k);
            let req = Request::new(&t, Platform::new(p));
            let ms = run(registry, scratch, "subtrees", &req).eval.makespan;
            let opt = (k + 1) as f64;
            println!(
                "  {:>4} {:>6} {:>12.0} {:>10.0} {:>8.3}",
                p,
                k,
                ms,
                opt,
                ms / opt
            );
        }
    }
    println!("  (ratio tends to p as k grows; paper §5.1)\n");
}

fn seq_algo_ablation(registry: &SchedulerRegistry, scratch: &mut Scratch) {
    println!("Ablation 2 — ParSubtrees memory under different sequential sub-algorithms");
    let corpus = assembly_corpus(Scale::Small);
    println!(
        "  {:<24} {:>5} {:>14} {:>14} {:>14}",
        "tree", "p", "naive-po", "best-po", "liu-exact"
    );
    let p = 4u32;
    for e in corpus.iter().step_by(4).take(6) {
        let mem = |scratch: &mut Scratch, algo: SeqAlgo| {
            let req = Request::new(&e.tree, Platform::new(p)).with_seq(algo);
            run(registry, scratch, "subtrees", &req).eval.peak_memory
        };
        println!(
            "  {:<24} {:>5} {:>14.3e} {:>14.3e} {:>14.3e}",
            e.name,
            p,
            mem(scratch, SeqAlgo::NaivePostorder),
            mem(scratch, SeqAlgo::BestPostorder),
            mem(scratch, SeqAlgo::LiuExact)
        );
    }
    println!();
}

fn memory_cap_ablation(registry: &SchedulerRegistry, scratch: &mut Scratch) {
    println!("Ablation 3 — memory-capped list scheduling (sequential-activation policy)");
    let corpus = assembly_corpus(Scale::Small);
    let e = &corpus[8]; // a mid-size entry
    let t = &e.tree;
    let mseq = memory_reference(t);
    let p = 8;
    println!(
        "  tree {} ({} nodes), p = {p}, M_seq = {:.3e}",
        e.name,
        t.len(),
        mseq
    );
    println!(
        "  {:>10} {:>14} {:>14} {:>12}",
        "cap/M_seq", "peak", "makespan", "violations"
    );
    for factor in [1.0, 1.5, 2.0, 4.0, 8.0, f64::INFINITY] {
        let cap = if factor.is_infinite() {
            f64::INFINITY
        } else {
            mseq * factor
        };
        let req = Request::new(t, Platform::new(p).with_memory_cap(cap));
        let out = run(registry, scratch, "membound", &req);
        println!(
            "  {:>10} {:>14.3e} {:>14.3e} {:>12}",
            if factor.is_infinite() {
                "inf".to_string()
            } else {
                format!("{factor:.1}")
            },
            out.eval.peak_memory,
            out.eval.makespan,
            out.diagnostics.cap_violations.unwrap_or(0)
        );
    }
    println!("  (tighter caps trade makespan for memory; 0 violations at cap >= M_seq)\n");
}

fn priority_component_ablation(registry: &SchedulerRegistry, scratch: &mut Scratch) {
    println!("Ablation 4 — what the paper-specific priorities buy over textbook list scheduling");
    println!("  (geometric-mean memory relative to the sequential reference, p = 8)");
    let p = 8u32;
    // the compared priority schemes, by registry name
    let schemes = [
        ("ParInnerFirst", "inner"),
        ("ParDeepestFirst", "deepest"),
        ("cp-list (no tie-breaks)", "cp"),
        ("fifo-list", "fifo"),
        ("random-list", "random"),
    ];
    // two families: realistic assembly trees, and the wide/irregular shapes
    // where leaf ordering decides how many subtrees are opened concurrently
    let assembly: Vec<(String, TaskTree)> = assembly_corpus(Scale::Small)
        .into_iter()
        .map(|e| (e.name, e.tree))
        .collect();
    let wide: Vec<(String, TaskTree)> = vec![
        ("caterpillar".into(), treesched_gen::caterpillar(40, 6)),
        ("longchain".into(), treesched_gen::long_chain_tree(24, 8)),
        ("gadget".into(), treesched_gen::inner_first_gadget(8, 12)),
        ("spider".into(), treesched_gen::spider(24, 12)),
        (
            "bushy-random".into(),
            treesched_gen::random_attachment(2000, treesched_gen::WeightRange::PEBBLE, 5),
        ),
    ];
    for (family, trees) in [("assembly corpus", &assembly), ("wide/irregular", &wide)] {
        let mut ratios: Vec<(&str, Vec<f64>)> = schemes
            .iter()
            .map(|&(label, _)| (label, Vec::new()))
            .collect();
        for (_, t) in trees {
            let mref = memory_reference(t);
            let req = Request::new(t, Platform::new(p));
            for (k, &(_, name)) in schemes.iter().enumerate() {
                let out = run(registry, scratch, name, &req);
                ratios[k].1.push(out.eval.peak_memory / mref);
            }
        }
        println!("  {family}:");
        for (label, rs) in &ratios {
            let g = treesched_bench::stats::geomean(rs);
            println!("    {:<26} {:>8.3}", label, g);
        }
    }
    println!("  (on bounded-degree assembly trees the tie-breaks barely matter;");
    println!("   on wide/irregular trees the postorder leaf ordering of the");
    println!("   paper's ParInnerFirst separates clearly from naive priorities)");
}
