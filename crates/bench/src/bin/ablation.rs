//! Ablation studies beyond the paper's figures:
//!
//! 1. **Figure 3 sweep** — `ParSubtrees` vs optimal makespan on the fork
//!    tree, showing the ratio approaching `p` (paper §5.1);
//! 2. **sequential sub-algorithm** — `ParSubtrees` memory when the subtree
//!    traversal is the naive postorder, the optimal postorder (paper's
//!    choice), or Liu's exact algorithm;
//! 3. **memory-capped scheduling** — the cap/makespan trade-off of the
//!    `mem_bounded_schedule` extension (paper §7 future work).

use treesched_core::{
    cp_list_schedule, evaluate, fifo_list_schedule, mem_bounded_schedule, memory_reference,
    par_deepest_first, par_inner_first, par_subtrees, random_list_schedule, Admission, SeqAlgo,
};
use treesched_gen::{assembly_corpus, fork_tree, Scale};
use treesched_seq::best_postorder;

fn main() {
    fig3_sweep();
    seq_algo_ablation();
    memory_cap_ablation();
    priority_component_ablation();
}

fn fig3_sweep() {
    println!("Ablation 1 — Figure 3 fork: ParSubtrees makespan ratio vs p");
    println!(
        "  {:>4} {:>6} {:>12} {:>10} {:>8}",
        "p", "k", "ParSubtrees", "optimal", "ratio"
    );
    for p in [2u32, 4, 8, 16] {
        for k in [4usize, 16, 64] {
            let t = fork_tree(p as usize, k);
            let ms = evaluate(&t, &par_subtrees(&t, p, SeqAlgo::default())).makespan;
            let opt = (k + 1) as f64;
            println!(
                "  {:>4} {:>6} {:>12.0} {:>10.0} {:>8.3}",
                p,
                k,
                ms,
                opt,
                ms / opt
            );
        }
    }
    println!("  (ratio tends to p as k grows; paper §5.1)\n");
}

fn seq_algo_ablation() {
    println!("Ablation 2 — ParSubtrees memory under different sequential sub-algorithms");
    let corpus = assembly_corpus(Scale::Small);
    println!(
        "  {:<24} {:>5} {:>14} {:>14} {:>14}",
        "tree", "p", "naive-po", "best-po", "liu-exact"
    );
    let p = 4u32;
    for e in corpus.iter().step_by(4).take(6) {
        let mem = |algo: SeqAlgo| evaluate(&e.tree, &par_subtrees(&e.tree, p, algo)).peak_memory;
        println!(
            "  {:<24} {:>5} {:>14.3e} {:>14.3e} {:>14.3e}",
            e.name,
            p,
            mem(SeqAlgo::NaivePostorder),
            mem(SeqAlgo::BestPostorder),
            mem(SeqAlgo::LiuExact)
        );
    }
    println!();
}

fn memory_cap_ablation() {
    println!("Ablation 3 — memory-capped list scheduling (sequential-activation policy)");
    let corpus = assembly_corpus(Scale::Small);
    let e = &corpus[8]; // a mid-size entry
    let t = &e.tree;
    let order = best_postorder(t).order;
    let mseq = memory_reference(t);
    let p = 8;
    println!(
        "  tree {} ({} nodes), p = {p}, M_seq = {:.3e}",
        e.name,
        t.len(),
        mseq
    );
    println!(
        "  {:>10} {:>14} {:>14} {:>12}",
        "cap/M_seq", "peak", "makespan", "violations"
    );
    for factor in [1.0, 1.5, 2.0, 4.0, 8.0, f64::INFINITY] {
        let cap = if factor.is_infinite() {
            f64::INFINITY
        } else {
            mseq * factor
        };
        let run = mem_bounded_schedule(t, p, &order, cap, Admission::SequentialOrder);
        println!(
            "  {:>10} {:>14.3e} {:>14.3e} {:>12}",
            if factor.is_infinite() {
                "inf".to_string()
            } else {
                format!("{factor:.1}")
            },
            run.peak_memory,
            run.schedule.makespan(),
            run.violations
        );
    }
    println!("  (tighter caps trade makespan for memory; 0 violations at cap >= M_seq)\n");
}

fn priority_component_ablation() {
    println!("Ablation 4 — what the paper-specific priorities buy over textbook list scheduling");
    println!("  (geometric-mean memory relative to the sequential reference, p = 8)");
    let p = 8u32;
    // two families: realistic assembly trees, and the wide/irregular shapes
    // where leaf ordering decides how many subtrees are opened concurrently
    let assembly: Vec<(String, treesched_model::TaskTree)> = assembly_corpus(Scale::Small)
        .into_iter()
        .map(|e| (e.name, e.tree))
        .collect();
    let wide: Vec<(String, treesched_model::TaskTree)> = vec![
        ("caterpillar".into(), treesched_gen::caterpillar(40, 6)),
        ("longchain".into(), treesched_gen::long_chain_tree(24, 8)),
        ("gadget".into(), treesched_gen::inner_first_gadget(8, 12)),
        ("spider".into(), treesched_gen::spider(24, 12)),
        (
            "bushy-random".into(),
            treesched_gen::random_attachment(2000, treesched_gen::WeightRange::PEBBLE, 5),
        ),
    ];
    for (family, trees) in [("assembly corpus", &assembly), ("wide/irregular", &wide)] {
        let mut ratios: Vec<(&str, Vec<f64>)> = vec![
            ("ParInnerFirst", Vec::new()),
            ("ParDeepestFirst", Vec::new()),
            ("cp-list (no tie-breaks)", Vec::new()),
            ("fifo-list", Vec::new()),
            ("random-list", Vec::new()),
        ];
        for (_, t) in trees {
            let mref = memory_reference(t);
            let schedules = [
                par_inner_first(t, p),
                par_deepest_first(t, p),
                cp_list_schedule(t, p),
                fifo_list_schedule(t, p),
                random_list_schedule(t, p, 42),
            ];
            for (k, s) in schedules.iter().enumerate() {
                ratios[k].1.push(evaluate(t, s).peak_memory / mref);
            }
        }
        println!("  {family}:");
        for (name, rs) in &ratios {
            let g = treesched_bench::stats::geomean(rs);
            println!("    {:<26} {:>8.3}", name, g);
        }
    }
    println!("  (on bounded-degree assembly trees the tie-breaks barely matter;");
    println!("   on wide/irregular trees the postorder leaf ordering of the");
    println!("   paper's ParInnerFirst separates clearly from naive priorities)");
}
