//! Describes the experiment corpus the way the paper's §6.2 describes its
//! dataset: per-tree node counts, depths, maximum degrees and parallelism,
//! plus the aggregate ranges and the campaign the corpus feeds.
//!
//! The tree set is resolved exactly like every campaign resolves it (the
//! same spec the table/figure binaries build from these flags); `--json`
//! streams one JSONL record per tree plus one aggregate summary record,
//! through the shared `JsonRecord` builder.

use treesched_bench::{campaign::presets, cli};
use treesched_model::TreeStats;
use treesched_serve::JsonRecord;

fn main() {
    let opts = cli::parse_or_exit("corpus");
    let spec = presets::grid_or_exit("corpus", &opts);
    let trees = spec.resolve_trees();
    let stats: Vec<(String, usize, TreeStats)> = trees
        .iter()
        .map(|e| (e.name.clone(), e.tree.len(), e.stats()))
        .collect();

    // canonical names, like the records of every campaign run — unknown
    // selections fail here the way the runner would fail them
    let registry = treesched_core::SchedulerRegistry::standard();
    let campaign_names: Vec<String> = spec
        .scheduler_names(&registry)
        .iter()
        .map(|n| registry.resolve(n).map(|e| e.name().to_string()))
        .collect::<Result<_, _>>()
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });

    if opts.json {
        for (name, _, s) in &stats {
            print!(
                "{}",
                JsonRecord::new()
                    .str("campaign", &spec.name)
                    .str("tree", name)
                    .int("nodes", s.nodes as u64)
                    .int("leaves", s.leaves as u64)
                    .int("height", s.height as u64)
                    .int("max_degree", s.max_degree as u64)
                    .num("parallelism", s.parallelism())
                    .num("total_work", s.total_work)
                    .num("critical_path", s.critical_path)
                    .line()
            );
        }
        let range = |f: &dyn Fn(&TreeStats) -> f64| {
            let lo = stats
                .iter()
                .map(|(_, _, s)| f(s))
                .fold(f64::INFINITY, f64::min);
            let hi = stats.iter().map(|(_, _, s)| f(s)).fold(0.0f64, f64::max);
            (lo, hi)
        };
        let (n_lo, n_hi) = range(&|s: &TreeStats| s.nodes as f64);
        let (d_lo, d_hi) = range(&|s: &TreeStats| s.height as f64);
        let (g_lo, g_hi) = range(&|s: &TreeStats| s.max_degree as f64);
        let scheds: Vec<String> = campaign_names
            .iter()
            .map(|n| format!("\"{}\"", treesched_serve::jsonl::escape(n)))
            .collect();
        print!(
            "{}",
            JsonRecord::new()
                .str("campaign", &spec.name)
                .int("trees", stats.len() as u64)
                .num("nodes_min", n_lo)
                .num("nodes_max", n_hi)
                .num("height_min", d_lo)
                .num("height_max", d_hi)
                .num("max_degree_min", g_lo)
                .num("max_degree_max", g_hi)
                .int("points", spec.platforms.len() as u64)
                .raw("schedulers", &format!("[{}]", scheds.join(",")))
                .line()
        );
        return;
    }

    println!(
        "{:<26} {:>8} {:>7} {:>8} {:>8} {:>7} {:>11} {:>11}",
        "tree", "nodes", "leaves", "height", "maxdeg", "par", "total W", "CP"
    );
    for (name, _, s) in &stats {
        println!(
            "{:<26} {:>8} {:>7} {:>8} {:>8} {:>7.2} {:>11.3e} {:>11.3e}",
            name,
            s.nodes,
            s.leaves,
            s.height,
            s.max_degree,
            s.parallelism(),
            s.total_work,
            s.critical_path
        );
    }

    let range = |f: &dyn Fn(&TreeStats) -> f64| {
        let lo = stats
            .iter()
            .map(|(_, _, s)| f(s))
            .fold(f64::INFINITY, f64::min);
        let hi = stats.iter().map(|(_, _, s)| f(s)).fold(0.0f64, f64::max);
        (lo, hi)
    };
    let (n_lo, n_hi) = range(&|s: &TreeStats| s.nodes as f64);
    let (d_lo, d_hi) = range(&|s: &TreeStats| s.height as f64);
    let (g_lo, g_hi) = range(&|s: &TreeStats| s.max_degree as f64);
    println!(
        "\n{} trees: {:.0}..{:.0} nodes, depth {:.0}..{:.0}, max degree {:.0}..{:.0}",
        stats.len(),
        n_lo,
        n_hi,
        d_lo,
        d_hi,
        g_lo,
        g_hi
    );
    println!(
        "(paper §6.2: 608 trees, 2,000..1,000,000 nodes, depth 12..70,000, degree 2..175,000)"
    );

    // the campaign this corpus feeds, straight from the scheduler registry
    println!(
        "\ncampaign schedulers ({} x {} trees x {} platform points): {}",
        campaign_names.len(),
        stats.len(),
        spec.platforms.len(),
        campaign_names.join(", ")
    );
}
