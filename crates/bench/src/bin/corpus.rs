//! Describes the experiment corpus the way the paper's §6.2 describes its
//! dataset: per-tree node counts, depths, maximum degrees and parallelism,
//! plus the aggregate ranges.

use treesched_bench::cli;
use treesched_gen::assembly_corpus;
use treesched_model::TreeStats;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("usage: corpus [options]\n{}", cli::USAGE);
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    };

    let corpus = assembly_corpus(opts.scale);
    println!(
        "{:<26} {:>8} {:>7} {:>8} {:>8} {:>7} {:>11} {:>11}",
        "tree", "nodes", "leaves", "height", "maxdeg", "par", "total W", "CP"
    );
    let mut stats: Vec<(String, TreeStats)> = Vec::new();
    for e in &corpus {
        let s = e.stats();
        println!(
            "{:<26} {:>8} {:>7} {:>8} {:>8} {:>7.2} {:>11.3e} {:>11.3e}",
            e.name,
            s.nodes,
            s.leaves,
            s.height,
            s.max_degree,
            s.parallelism(),
            s.total_work,
            s.critical_path
        );
        stats.push((e.name.clone(), s));
    }

    let range = |f: &dyn Fn(&TreeStats) -> f64| {
        let lo = stats
            .iter()
            .map(|(_, s)| f(s))
            .fold(f64::INFINITY, f64::min);
        let hi = stats.iter().map(|(_, s)| f(s)).fold(0.0f64, f64::max);
        (lo, hi)
    };
    let (n_lo, n_hi) = range(&|s: &TreeStats| s.nodes as f64);
    let (d_lo, d_hi) = range(&|s: &TreeStats| s.height as f64);
    let (g_lo, g_hi) = range(&|s: &TreeStats| s.max_degree as f64);
    println!(
        "\n{} trees: {:.0}..{:.0} nodes, depth {:.0}..{:.0}, max degree {:.0}..{:.0}",
        corpus.len(),
        n_lo,
        n_hi,
        d_lo,
        d_hi,
        g_lo,
        g_hi
    );
    println!(
        "(paper §6.2: 608 trees, 2,000..1,000,000 nodes, depth 12..70,000, degree 2..175,000)"
    );

    // the campaign this corpus feeds, straight from the scheduler registry
    let registry = treesched_core::SchedulerRegistry::standard();
    let campaign: Vec<&str> = registry.campaign().map(|e| e.name()).collect();
    println!(
        "\ncampaign schedulers ({} x {} trees x {} processor counts): {}",
        campaign.len(),
        corpus.len(),
        treesched_bench::PAPER_PROCS.len(),
        campaign.join(", ")
    );
}
