//! Reproduces **Figure 6** of the paper: every scenario's makespan relative
//! to the lower bound `max(W/p, CP)` against its memory relative to the
//! best sequential postorder, summarized per scheduler by the mean and the
//! 10th–90th percentile "cross".

use treesched_bench::{cli, harness};
use treesched_core::SchedulerRegistry;
use treesched_gen::assembly_corpus;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("usage: fig6 [options]\n{}", cli::USAGE);
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    };

    let registry = SchedulerRegistry::standard();
    let names = opts.scheduler_names(&registry);
    eprintln!("building corpus ({:?})...", opts.scale);
    let corpus = assembly_corpus(opts.scale);
    let rows =
        match harness::run_corpus_with(&corpus, &opts.procs, &registry, &names, opts.cap_factor) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
    let series = harness::fig6(&rows);

    print!(
        "{}",
        harness::render_crosses(
            &format!(
                "Figure 6 — comparison to lower bounds ({} scenarios)",
                rows.len() / names.len().max(1)
            ),
            "makespan / lower bound",
            "memory / sequential reference",
            &series,
        )
    );
    // the paper's qualitative checks: ParSubtrees best in memory,
    // ParDeepestFirst best in makespan
    let mem_order: Vec<&str> = {
        let mut v: Vec<_> = series
            .iter()
            .map(|(name, _, c)| (name.as_str(), c.y_mean))
            .collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1));
        v.into_iter().map(|(n, _)| n).collect()
    };
    println!(
        "\nmemory-mean ordering (best first): {}",
        mem_order.join(" < ")
    );
    let ms_order: Vec<&str> = {
        let mut v: Vec<_> = series
            .iter()
            .map(|(name, _, c)| (name.as_str(), c.x_mean))
            .collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1));
        v.into_iter().map(|(n, _)| n).collect()
    };
    println!(
        "makespan-mean ordering (best first): {}",
        ms_order.join(" < ")
    );

    if let Some(path) = opts.csv {
        std::fs::write(&path, harness::to_csv(&rows)).expect("write CSV");
        eprintln!("raw rows written to {path}");
    }
}
