//! Reproduces **Figure 6** of the paper: every scenario's makespan relative
//! to the lower bound `max(W/p, CP)` against its memory relative to the
//! best sequential postorder, summarized per scheduler by the mean and the
//! 10th–90th percentile "cross".
//!
//! A thin front-end over the Campaign API; `--json` streams one JSONL
//! record per scenario plus one cross-summary record per scheduler series.

use treesched_bench::{campaign::presets, cli, harness};

fn main() {
    let opts = cli::parse_or_exit("fig6");
    let spec = presets::grid_or_exit("fig6", &opts);
    let campaign = presets::run_or_exit(&spec);
    let rows = campaign.rows();
    let series = harness::fig6(&rows);

    if opts.json {
        print!("{}", campaign.to_jsonl());
        for s in &series {
            print!("{}", harness::cross_json(&campaign.name, s));
        }
        presets::maybe_csv(&opts, &rows);
        return;
    }

    let names = harness::scheduler_names(&rows);
    print!(
        "{}",
        harness::render_crosses(
            &format!(
                "Figure 6 — comparison to lower bounds ({} scenarios)",
                rows.len() / names.len().max(1)
            ),
            "makespan / lower bound",
            "memory / sequential reference",
            &series,
        )
    );
    // the paper's qualitative checks: ParSubtrees best in memory,
    // ParDeepestFirst best in makespan
    let ordering = |key: fn(&treesched_bench::stats::Cross) -> f64| -> Vec<&str> {
        let mut v: Vec<_> = series
            .iter()
            .map(|(name, _, c)| (name.as_str(), key(c)))
            .collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1));
        v.into_iter().map(|(n, _)| n).collect()
    };
    println!(
        "\nmemory-mean ordering (best first): {}",
        ordering(|c| c.y_mean).join(" < ")
    );
    println!(
        "makespan-mean ordering (best first): {}",
        ordering(|c| c.x_mean).join(" < ")
    );

    presets::maybe_csv(&opts, &rows);
}
