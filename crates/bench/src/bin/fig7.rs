//! Reproduces **Figure 7** of the paper: per-scenario makespan and memory of
//! every scheduler normalized by `ParSubtrees`.

use treesched_bench::{cli, harness};
use treesched_core::SchedulerRegistry;
use treesched_gen::assembly_corpus;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("usage: fig7 [options]\n{}", cli::USAGE);
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    };

    const BASELINE: &str = "ParSubtrees";
    let registry = SchedulerRegistry::standard();
    let mut names = opts.scheduler_names(&registry);
    // every series is normalized by the baseline: a selection without it
    // would silently produce empty all-zero series
    let has_baseline = names
        .iter()
        .any(|n| registry.resolve(n).map(|e| e.name()) == Ok(BASELINE));
    if !has_baseline {
        eprintln!("note: adding normalization baseline {BASELINE} to the scheduler selection");
        names.push(BASELINE.to_string());
    }
    eprintln!("building corpus ({:?})...", opts.scale);
    let corpus = assembly_corpus(opts.scale);
    let rows =
        match harness::run_corpus_with(&corpus, &opts.procs, &registry, &names, opts.cap_factor) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
    let series = harness::fig_normalized(&rows, "ParSubtrees");

    print!(
        "{}",
        harness::render_crosses(
            &format!(
                "Figure 7 — comparison to ParSubtrees ({} scenarios)",
                rows.len() / names.len().max(1)
            ),
            "makespan / ParSubtrees makespan",
            "memory / ParSubtrees memory",
            &series,
        )
    );

    if let Some(path) = opts.csv {
        std::fs::write(&path, harness::to_csv(&rows)).expect("write CSV");
        eprintln!("raw rows written to {path}");
    }
}
