//! Reproduces **Figure 7** of the paper: per-scenario makespan and memory of
//! every heuristic normalized by `ParSubtrees`.

use treesched_bench::{cli, harness};
use treesched_core::Heuristic;
use treesched_gen::assembly_corpus;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("usage: fig7 [options]\n{}", cli::USAGE);
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    };

    eprintln!("building corpus ({:?})...", opts.scale);
    let corpus = assembly_corpus(opts.scale);
    let rows = harness::run_corpus(&corpus, &opts.procs);
    let series = harness::fig_normalized(&rows, Heuristic::ParSubtrees);

    print!(
        "{}",
        harness::render_crosses(
            &format!(
                "Figure 7 — comparison to ParSubtrees ({} scenarios)",
                rows.len() / 4
            ),
            "makespan / ParSubtrees makespan",
            "memory / ParSubtrees memory",
            &series,
        )
    );

    if let Some(path) = opts.csv {
        std::fs::write(&path, harness::to_csv(&rows)).expect("write CSV");
        eprintln!("raw rows written to {path}");
    }
}
