//! Reproduces **Figure 8** of the paper: per-scenario makespan and memory of
//! every scheduler normalized by `ParInnerFirst`.
//!
//! A thin front-end over the Campaign API; `--json` streams one JSONL
//! record per scenario plus one cross-summary record per scheduler series.

use treesched_bench::{campaign::presets, cli, harness};
use treesched_core::SchedulerRegistry;

const BASELINE: &str = "ParInnerFirst";

fn main() {
    let opts = cli::parse_or_exit("fig8");
    let mut spec = presets::grid_or_exit("fig8", &opts);
    // every series is normalized by the baseline: a selection without it
    // would silently produce empty all-zero series
    if spec.ensure_scheduler(&SchedulerRegistry::standard(), BASELINE) {
        eprintln!("note: adding normalization baseline {BASELINE} to the scheduler selection");
    }
    let campaign = presets::run_or_exit(&spec);
    let rows = campaign.rows();
    let series = harness::fig_normalized(&rows, BASELINE);

    if opts.json {
        print!("{}", campaign.to_jsonl());
        for s in &series {
            print!("{}", harness::cross_json(&campaign.name, s));
        }
        presets::maybe_csv(&opts, &rows);
        return;
    }

    let names = harness::scheduler_names(&rows);
    print!(
        "{}",
        harness::render_crosses(
            &format!(
                "Figure 8 — comparison to {BASELINE} ({} scenarios)",
                rows.len() / names.len().max(1)
            ),
            "makespan / ParInnerFirst makespan",
            "memory / ParInnerFirst memory",
            &series,
        )
    );

    presets::maybe_csv(&opts, &rows);
}
