//! Reproduces **Figure 8** of the paper: per-scenario makespan and memory of
//! every heuristic normalized by `ParInnerFirst`.

use treesched_bench::{cli, harness};
use treesched_core::Heuristic;
use treesched_gen::assembly_corpus;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("usage: fig8 [options]\n{}", cli::USAGE);
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    };

    eprintln!("building corpus ({:?})...", opts.scale);
    let corpus = assembly_corpus(opts.scale);
    let rows = harness::run_corpus(&corpus, &opts.procs);
    let series = harness::fig_normalized(&rows, Heuristic::ParInnerFirst);

    print!(
        "{}",
        harness::render_crosses(
            &format!(
                "Figure 8 — comparison to ParInnerFirst ({} scenarios)",
                rows.len() / 4
            ),
            "makespan / ParInnerFirst makespan",
            "memory / ParInnerFirst memory",
            &series,
        )
    );

    if let Some(path) = opts.csv {
        std::fs::write(&path, harness::to_csv(&rows)).expect("write CSV");
        eprintln!("raw rows written to {path}");
    }
}
