//! Sustained-load latency benchmark of the streaming serve daemon.
//!
//! An **open-loop** Poisson arrival process drives the
//! [`treesched_transport::Daemon`]: request arrival times are drawn up
//! front from exponential inter-arrival gaps (deterministic per `--seed`)
//! and submissions happen at those instants regardless of completions —
//! the load a daemon actually faces, where clients do not politely wait
//! for the previous answer. A closed loop would hide queueing delay;
//! this one measures it.
//!
//! Reported per run: achieved request rate and the p50/p95/p99/max
//! response latency (submit-to-response, milliseconds), plus error and
//! overload counts. Latencies accumulate in the shared
//! [`treesched_obs::Histogram`] (microsecond samples, log2 buckets) —
//! the same type the serve daemon snapshots — and the JSON record goes
//! through the shared [`JsonRecord`] builder like every other `--json`
//! surface. **Timing numbers are advisory** — CI gates on error
//! records, never on latency — so the benchmark exits 1 only on
//! lost/duplicated responses or scheduling errors.

use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use treesched_core::SchedulerRegistry;
use treesched_model::{io as tree_io, TaskTree};
use treesched_obs::Histogram;
use treesched_serve::JsonRecord;
use treesched_transport::{unframe, Daemon, DaemonConfig};

use rand::{RngCore, SeedableRng};

const USAGE: &str = "load_bench — open-loop sustained-load latency of the serve daemon

usage: load_bench [--rate RPS] [--requests N] [--workers N]
                  [--inflight N] [--seed S] [--json]

  --rate RPS     mean Poisson arrival rate (default 400)
  --requests N   total requests to submit (default 400)
  --workers N    daemon worker threads (default 2)
  --inflight N   client in-flight budget (default 4096; excess lines
                 come back as typed `Overloaded` records)
  --seed S       arrival-process seed (default 42)
  --json         one JSON record on stdout instead of text";

struct Options {
    rate: f64,
    requests: usize,
    workers: usize,
    inflight: usize,
    seed: u64,
    json: bool,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        rate: 400.0,
        requests: 400,
        workers: 2,
        inflight: 4096,
        seed: 42,
        json: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut need = |what: &str| {
            it.next()
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{a} needs {what}"))
        };
        match a.as_str() {
            "--rate" => {
                opts.rate = need("RPS")?.parse().map_err(|_| "bad --rate".to_string())?;
                if !opts.rate.is_finite() || opts.rate <= 0.0 {
                    return Err("--rate must be positive".into());
                }
            }
            "--requests" => {
                opts.requests = need("N")?
                    .parse()
                    .map_err(|_| "bad --requests".to_string())?;
            }
            "--workers" => {
                opts.workers = need("N")?
                    .parse()
                    .map_err(|_| "bad --workers".to_string())?;
            }
            "--inflight" => {
                opts.inflight = need("N")?
                    .parse()
                    .map_err(|_| "bad --inflight".to_string())?;
            }
            "--seed" => {
                opts.seed = need("S")?.parse().map_err(|_| "bad --seed".to_string())?;
            }
            "--json" => opts.json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Writes the benchmark's fixture trees and returns their paths.
fn fixture_trees() -> Vec<String> {
    let dir = std::env::temp_dir().join(format!("treesched-load-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    [
        ("fork.tree", TaskTree::fork(8, 1.0, 1.0, 0.0)),
        ("chain.tree", TaskTree::chain(24, 2.0, 1.0, 0.5)),
        ("complete.tree", TaskTree::complete(2, 5, 1.0, 2.0, 0.5)),
    ]
    .into_iter()
    .map(|(name, tree)| {
        let path = dir.join(name);
        std::fs::write(&path, tree_io::to_text(&tree)).expect("fixture write");
        path.to_string_lossy().into_owned()
    })
    .collect()
}

/// One exponential inter-arrival gap in seconds: `-ln(U)/rate` with `U`
/// uniform on `(0, 1]` from the top 53 bits of the generator.
fn exp_gap(rng: &mut impl RngCore, rate: f64) -> f64 {
    let u = ((rng.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    -u.ln() / rate
}

fn main() {
    let opts = match parse_options() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let trees = fixture_trees();
    let schedulers = ["deepest", "subtrees", "inner"];
    let lines: Vec<String> = (0..opts.requests)
        .map(|k| {
            format!(
                "{{\"id\":\"q{k}\",\"tree\":\"{}\",\"processors\":{},\"scheduler\":\"{}\"}}",
                trees[k % trees.len()],
                2 + (k % 3) as u32,
                schedulers[(k / trees.len()) % schedulers.len()],
            )
        })
        .collect();

    // arrival schedule, drawn up front so submission-time work is a sleep
    // plus a channel send
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
    let mut at = 0.0f64;
    let arrivals: Vec<Duration> = (0..opts.requests)
        .map(|_| {
            at += exp_gap(&mut rng, opts.rate);
            Duration::from_secs_f64(at)
        })
        .collect();

    let daemon = Daemon::new(
        SchedulerRegistry::standard(),
        DaemonConfig {
            workers: opts.workers,
            inflight_cap: opts.inflight,
            default_platform: None,
        },
    );
    let (mut submitter, responses) = daemon.client().split();

    eprintln!(
        "open-loop load: {} requests at ~{:.0} req/s, {} workers, in-flight cap {}...",
        opts.requests, opts.rate, opts.workers, opts.inflight
    );

    // submit times indexed by submission index; written before each
    // submit so the receiver can never observe a response first
    let sent: Arc<Vec<std::sync::OnceLock<Instant>>> = Arc::new(
        (0..opts.requests)
            .map(|_| std::sync::OnceLock::new())
            .collect(),
    );
    let receiver_sent = Arc::clone(&sent);
    let expect = opts.requests;
    let receiver = std::thread::spawn(move || {
        let latency_us = Histogram::new();
        let mut seen = vec![false; expect];
        let mut errors = 0u64;
        let mut overloaded = 0u64;
        let mut duplicates = 0u64;
        for _ in 0..expect {
            let Ok(line) = responses.recv() else { break };
            let done = Instant::now();
            let (n, record) = match unframe(&line) {
                Ok(x) => x,
                Err(e) => {
                    eprintln!("error: {e}");
                    errors += 1;
                    continue;
                }
            };
            let n = n as usize;
            if n >= expect || seen[n] {
                duplicates += 1;
                continue;
            }
            seen[n] = true;
            if record.contains("\"error\":\"client queue overloaded") {
                overloaded += 1;
            } else if record.contains("\"error\":") {
                errors += 1;
                eprint!("error record: {record}");
            }
            let submit = receiver_sent[n].get().expect("stamped before submit");
            latency_us.record(done.duration_since(*submit).as_micros() as u64);
        }
        let missing = seen.iter().filter(|&&s| !s).count() as u64;
        (
            latency_us.snapshot(),
            errors,
            overloaded,
            duplicates,
            missing,
        )
    });

    let clock = Instant::now();
    for (k, line) in lines.iter().enumerate() {
        if let Some(wait) = arrivals[k].checked_sub(clock.elapsed()) {
            std::thread::sleep(wait);
        }
        // open loop: never block on the budget — a saturated daemon sheds
        // typed Overloaded records instead of distorting arrivals
        sent[k].set(Instant::now()).expect("one submit per index");
        submitter.submit_or_overload(k + 1, line);
    }
    let submitted = submitter.submitted();
    let (latency, errors, overloaded, duplicates, missing) =
        receiver.join().expect("receiver thread");
    let elapsed = clock.elapsed().as_secs_f64();
    drop(submitter);

    let achieved_rps = submitted as f64 / elapsed.max(1e-9);
    // quantiles from the merged log2 buckets: each is the inclusive upper
    // bound of its rank's bucket, capped by the exact tracked max
    let to_ms = |us: u64| us as f64 / 1e3;
    let (p50, p95, p99) = (
        to_ms(latency.p50()),
        to_ms(latency.p95()),
        to_ms(latency.p99()),
    );
    let max_ms = to_ms(latency.max);

    if opts.json {
        print!(
            "{}",
            JsonRecord::new()
                .str("benchmark", "load")
                .int("requests", submitted)
                .num("rate", opts.rate)
                .int("workers", opts.workers as u64)
                .int("inflight_cap", opts.inflight as u64)
                .int("seed", opts.seed)
                .num("elapsed_secs", elapsed)
                .num("achieved_rps", achieved_rps)
                .num("p50_ms", p50)
                .num("p95_ms", p95)
                .num("p99_ms", p99)
                .num("max_ms", max_ms)
                .int("overloaded", overloaded)
                .int("errors", errors)
                .int("duplicates", duplicates)
                .int("missing", missing)
                .line()
        );
    } else {
        println!("Sustained load — {submitted} requests over {elapsed:.2}s");
        println!(
            "  offered rate   ~{:.0} req/s (Poisson, seed {})",
            opts.rate, opts.seed
        );
        println!("  achieved rate   {achieved_rps:.0} req/s");
        println!("  latency p50     {p50:.3} ms");
        println!("  latency p95     {p95:.3} ms");
        println!("  latency p99     {p99:.3} ms");
        println!("  latency max     {max_ms:.3} ms");
        println!("  overloaded      {overloaded}");
        println!("  errors          {errors}");
    }
    let _ = std::io::stdout().flush();

    // conservation gate: every submission answered exactly once, no
    // scheduling errors — timing never fails the run
    if errors > 0 || duplicates > 0 || missing > 0 {
        eprintln!(
            "error: response conservation violated \
             (errors {errors}, duplicates {duplicates}, missing {missing})"
        );
        std::process::exit(1);
    }
}
