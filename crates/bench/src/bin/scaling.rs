//! Strong-scaling sweep (companion to the paper's evaluation): fix each
//! corpus tree and sweep the processor count, reporting speedup, processor
//! utilization, and memory amplification per scheduler. Quantifies the
//! tension of Theorem 2 end to end: speedup rises with `p` while memory
//! amplification grows.

use treesched_bench::{cli, stats};
use treesched_core::{Platform, Request, SchedulerRegistry, Scratch};
use treesched_gen::assembly_corpus;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("usage: scaling [options]\n{}", cli::USAGE);
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    };

    let registry = SchedulerRegistry::standard();
    let names = opts.scheduler_names(&registry);
    eprintln!("building corpus ({:?})...", opts.scale);
    let corpus = assembly_corpus(opts.scale);
    println!(
        "Strong scaling over {} trees — geometric means per (scheduler, p)",
        corpus.len()
    );
    println!(
        "{:<18} {:>4} {:>10} {:>12} {:>14}",
        "scheduler", "p", "speedup", "utilization", "mem/seq"
    );
    let mut scratch = Scratch::new();
    for name in &names {
        let scheduler = match registry.get(name) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        for &p in &opts.procs {
            let mut speedups = Vec::with_capacity(corpus.len());
            let mut utils = Vec::with_capacity(corpus.len());
            let mut mems = Vec::with_capacity(corpus.len());
            for e in &corpus {
                let mut platform = Platform::new(p);
                if let Some(factor) = opts.cap_factor {
                    platform = platform
                        .with_memory_cap(factor * treesched_core::memory_reference(&e.tree));
                }
                let req = Request::new(&e.tree, platform);
                let out = match scheduler.schedule(&req, &mut scratch) {
                    Ok(out) => out,
                    Err(err) => {
                        eprintln!("error: {err}");
                        std::process::exit(1);
                    }
                };
                let mem_ref = out
                    .diagnostics
                    .seq_peak
                    .unwrap_or_else(|| treesched_core::memory_reference(&e.tree));
                speedups.push(out.schedule.speedup());
                utils.push(out.schedule.utilization());
                mems.push(out.eval.peak_memory / mem_ref);
            }
            println!(
                "{:<18} {:>4} {:>10.3} {:>12.3} {:>14.3}",
                scheduler.name(),
                p,
                stats::geomean(&speedups),
                stats::geomean(&utils),
                stats::geomean(&mems)
            );
        }
        println!();
    }
    println!("Speedup saturates at each tree's inherent parallelism (W/CP);");
    println!("memory amplification keeps growing with p — the Theorem 2 tension.");
}
