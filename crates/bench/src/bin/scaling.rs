//! Strong-scaling sweep (companion to the paper's evaluation): fix each
//! corpus tree and sweep the processor count, reporting speedup, processor
//! utilization, and memory amplification per heuristic. Quantifies the
//! tension of Theorem 2 end to end: speedup rises with `p` while memory
//! amplification grows.

use treesched_bench::{cli, stats};
use treesched_core::{evaluate, memory_reference, Heuristic};
use treesched_gen::assembly_corpus;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("usage: scaling [options]\n{}", cli::USAGE);
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    };

    eprintln!("building corpus ({:?})...", opts.scale);
    let corpus = assembly_corpus(opts.scale);
    println!(
        "Strong scaling over {} trees — geometric means per (heuristic, p)",
        corpus.len()
    );
    println!(
        "{:<18} {:>4} {:>10} {:>12} {:>14}",
        "heuristic", "p", "speedup", "utilization", "mem/seq"
    );
    for h in Heuristic::ALL {
        for &p in &opts.procs {
            let mut speedups = Vec::with_capacity(corpus.len());
            let mut utils = Vec::with_capacity(corpus.len());
            let mut mems = Vec::with_capacity(corpus.len());
            for e in &corpus {
                let s = h.schedule(&e.tree, p);
                let ev = evaluate(&e.tree, &s);
                speedups.push(s.speedup());
                utils.push(s.utilization());
                mems.push(ev.peak_memory / memory_reference(&e.tree));
            }
            println!(
                "{:<18} {:>4} {:>10.3} {:>12.3} {:>14.3}",
                h.name(),
                p,
                stats::geomean(&speedups),
                stats::geomean(&utils),
                stats::geomean(&mems)
            );
        }
        println!();
    }
    println!("Speedup saturates at each tree's inherent parallelism (W/CP);");
    println!("memory amplification keeps growing with p — the Theorem 2 tension.");
}
