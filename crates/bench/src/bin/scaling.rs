//! Strong-scaling sweep (companion to the paper's evaluation): fix each
//! corpus tree and sweep the platform grid, reporting speedup, processor
//! utilization, and memory amplification per scheduler. Quantifies the
//! tension of Theorem 2 end to end: speedup rises with `p` while memory
//! amplification grows.
//!
//! A thin front-end over the Campaign API with the `speedup`/`utilization`
//! metric selection; `--json` streams one JSONL record per scenario plus
//! one geomean summary record per `(scheduler, point)`.

use treesched_bench::{campaign::presets, cli, stats};
use treesched_core::Metric;
use treesched_serve::JsonRecord;

fn main() {
    let opts = cli::parse_or_exit("scaling");
    let mut spec = presets::grid_or_exit("scaling", &opts);
    spec.metrics = vec![Metric::Speedup, Metric::Utilization];
    let campaign = presets::run_or_exit(&spec);

    // geometric means per (scheduler, platform point), in record order
    struct Cell {
        scheduler: String,
        point: String,
        speedups: Vec<f64>,
        utils: Vec<f64>,
        mems: Vec<f64>,
    }
    let mut cells: Vec<Cell> = Vec::new();
    for r in &campaign.records {
        let Ok(out) = &r.outcome else { continue };
        let metric = |m: Metric| {
            out.metrics
                .iter()
                .find(|(k, _)| *k == m)
                .and_then(|(_, v)| *v)
                .expect("spec selects the metric")
        };
        let cell = match cells
            .iter_mut()
            .find(|c| c.scheduler == r.scheduler && c.point == r.point)
        {
            Some(cell) => cell,
            None => {
                cells.push(Cell {
                    scheduler: r.scheduler.clone(),
                    point: r.point.clone(),
                    speedups: Vec::new(),
                    utils: Vec::new(),
                    mems: Vec::new(),
                });
                cells.last_mut().expect("just pushed")
            }
        };
        cell.speedups.push(metric(Metric::Speedup));
        cell.utils.push(metric(Metric::Utilization));
        cell.mems.push(out.peak_memory / out.mem_ref);
    }
    // records are point-major within each tree; report scheduler-major
    // (selection order), sweeping the platform grid within each scheduler
    let rank = |c: &Cell| {
        let sched = campaign
            .records
            .iter()
            .position(|r| r.scheduler == c.scheduler)
            .expect("cell came from a record");
        let point = spec
            .platforms
            .iter()
            .position(|pt| pt.label == c.point)
            .expect("cell came from a grid point");
        (sched, point)
    };
    cells.sort_by_key(rank);

    if opts.json {
        print!("{}", campaign.to_jsonl());
        for c in &cells {
            print!(
                "{}",
                JsonRecord::new()
                    .str("campaign", &campaign.name)
                    .str("scheduler", &c.scheduler)
                    .str("point", &c.point)
                    .int("trees", c.speedups.len() as u64)
                    .num("speedup_geomean", stats::geomean(&c.speedups))
                    .num("utilization_geomean", stats::geomean(&c.utils))
                    .num("mem_ratio_geomean", stats::geomean(&c.mems))
                    .line()
            );
        }
        return;
    }

    println!(
        "Strong scaling over {} trees — geometric means per (scheduler, point)",
        campaign.tree_count()
    );
    println!(
        "{:<18} {:>12} {:>10} {:>12} {:>14}",
        "scheduler", "point", "speedup", "utilization", "mem/seq"
    );
    let mut last_scheduler = String::new();
    for c in &cells {
        if !last_scheduler.is_empty() && last_scheduler != c.scheduler {
            println!();
        }
        last_scheduler.clone_from(&c.scheduler);
        println!(
            "{:<18} {:>12} {:>10.3} {:>12.3} {:>14.3}",
            c.scheduler,
            c.point,
            stats::geomean(&c.speedups),
            stats::geomean(&c.utils),
            stats::geomean(&c.mems)
        );
    }
    println!("\nSpeedup saturates at each tree's inherent parallelism (W/CP);");
    println!("memory amplification keeps growing with p — the Theorem 2 tension.");
}
