//! Reproduces the sequential-memory statistic of paper §6.1 (quoting their
//! IPDPS'11 measurement): the optimal **postorder** traversal is optimal
//! over all traversals in ~95.8% of instances, within ~1% on average —
//! the justification for using it as the memory reference throughout the
//! evaluation. We measure the same gap on our corpus with Liu's exact
//! algorithm as ground truth.

use treesched_bench::{cli, stats};
use treesched_gen::assembly_corpus;
use treesched_seq::{best_postorder_peak, liu_exact};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("usage: seqgap [options]\n{}", cli::USAGE);
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    };

    eprintln!("building corpus ({:?})...", opts.scale);
    let corpus = assembly_corpus(opts.scale);
    let mut optimal = 0usize;
    let mut gaps = Vec::with_capacity(corpus.len());
    let mut worst: (f64, &str) = (0.0, "");
    for e in &corpus {
        let po = best_postorder_peak(&e.tree);
        let exact = liu_exact(&e.tree).peak;
        assert!(po >= exact - 1e-9, "{}: postorder below optimum", e.name);
        let gap = po / exact - 1.0;
        if gap <= 1e-12 {
            optimal += 1;
        }
        if gap > worst.0 {
            worst = (gap, &e.name);
        }
        gaps.push(100.0 * gap);
    }
    // summary through the shared stats helpers, like every other binary
    let optimal_pct = 100.0 * optimal as f64 / corpus.len() as f64;
    let avg = stats::mean(&gaps);
    let median = stats::percentile(&gaps, 50.0);
    let p90 = stats::percentile(&gaps, 90.0);
    let worst_pct = stats::percentile(&gaps, 100.0);

    if opts.json {
        println!(
            concat!(
                "{{\"benchmark\":\"seqgap\",\"trees\":{},\"optimal\":{},",
                "\"optimal_pct\":{},\"avg_gap_pct\":{},\"median_gap_pct\":{},",
                "\"p90_gap_pct\":{},\"worst_gap_pct\":{},\"worst_tree\":\"{}\"}}"
            ),
            corpus.len(),
            optimal,
            optimal_pct,
            avg,
            median,
            p90,
            worst_pct,
            worst.1,
        );
        return;
    }

    println!(
        "Sequential traversal gap — best postorder vs Liu's exact optimum ({} trees)",
        corpus.len()
    );
    println!(
        "  postorder optimal: {}/{} trees ({optimal_pct:.1}%)",
        optimal,
        corpus.len(),
    );
    println!("  average gap:       {avg:.3}%");
    println!("  median gap:        {median:.3}%");
    println!("  p90 gap:           {p90:.3}%");
    println!("  worst gap:         {worst_pct:.3}% ({})", worst.1);
    println!("\nPaper §6.1 (on their corpus): optimal in 95.8% of cases, ~1% average gap.");
}
