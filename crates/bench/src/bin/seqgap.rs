//! Reproduces the sequential-memory statistic of paper §6.1 (quoting their
//! IPDPS'11 measurement): the optimal **postorder** traversal is optimal
//! over all traversals in ~95.8% of instances, within ~1% on average —
//! the justification for using it as the memory reference throughout the
//! evaluation. We measure the same gap on our corpus with Liu's exact
//! algorithm as ground truth.

use treesched_bench::{cli, stats};
use treesched_gen::assembly_corpus;
use treesched_seq::{best_postorder_peak, liu_exact};
use treesched_serve::JsonRecord;

fn main() {
    let opts = cli::parse_or_exit("seqgap");

    eprintln!("building corpus ({:?})...", opts.scale);
    let corpus = assembly_corpus(opts.scale);
    let mut optimal = 0usize;
    let mut gaps = Vec::with_capacity(corpus.len());
    let mut worst: (f64, &str) = (0.0, "");
    for e in &corpus {
        let po = best_postorder_peak(&e.tree);
        let exact = liu_exact(&e.tree).peak;
        assert!(po >= exact - 1e-9, "{}: postorder below optimum", e.name);
        let gap = po / exact - 1.0;
        if gap <= 1e-12 {
            optimal += 1;
        }
        if gap > worst.0 {
            worst = (gap, &e.name);
        }
        gaps.push(100.0 * gap);
    }
    // summary through the shared stats helpers, like every other binary
    let optimal_pct = 100.0 * optimal as f64 / corpus.len() as f64;
    let avg = stats::mean(&gaps);
    let median = stats::percentile(&gaps, 50.0);
    let p90 = stats::percentile(&gaps, 90.0);
    let worst_pct = stats::percentile(&gaps, 100.0);

    if opts.json {
        // the shared record builder, like every other --json surface
        print!(
            "{}",
            JsonRecord::new()
                .str("benchmark", "seqgap")
                .int("trees", corpus.len() as u64)
                .int("optimal", optimal as u64)
                .num("optimal_pct", optimal_pct)
                .num("avg_gap_pct", avg)
                .num("median_gap_pct", median)
                .num("p90_gap_pct", p90)
                .num("worst_gap_pct", worst_pct)
                .str("worst_tree", worst.1)
                .line()
        );
        return;
    }

    println!(
        "Sequential traversal gap — best postorder vs Liu's exact optimum ({} trees)",
        corpus.len()
    );
    println!(
        "  postorder optimal: {}/{} trees ({optimal_pct:.1}%)",
        optimal,
        corpus.len(),
    );
    println!("  average gap:       {avg:.3}%");
    println!("  median gap:        {median:.3}%");
    println!("  p90 gap:           {p90:.3}%");
    println!("  worst gap:         {worst_pct:.3}% ({})", worst.1);
    println!("\nPaper §6.1 (on their corpus): optimal in 95.8% of cases, ~1% average gap.");
}
