//! Reproduces the sequential-memory statistic of paper §6.1 (quoting their
//! IPDPS'11 measurement): the optimal **postorder** traversal is optimal
//! over all traversals in ~95.8% of instances, within ~1% on average —
//! the justification for using it as the memory reference throughout the
//! evaluation. We measure the same gap on our corpus with Liu's exact
//! algorithm as ground truth.

use treesched_bench::cli;
use treesched_gen::assembly_corpus;
use treesched_seq::{best_postorder_peak, liu_exact};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("usage: seqgap [options]\n{}", cli::USAGE);
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    };

    eprintln!("building corpus ({:?})...", opts.scale);
    let corpus = assembly_corpus(opts.scale);
    let mut optimal = 0usize;
    let mut gaps = Vec::with_capacity(corpus.len());
    let mut worst: (f64, &str) = (0.0, "");
    for e in &corpus {
        let po = best_postorder_peak(&e.tree);
        let exact = liu_exact(&e.tree).peak;
        assert!(po >= exact - 1e-9, "{}: postorder below optimum", e.name);
        let gap = po / exact - 1.0;
        if gap <= 1e-12 {
            optimal += 1;
        }
        if gap > worst.0 {
            worst = (gap, &e.name);
        }
        gaps.push(gap);
    }
    let avg_gap = 100.0 * gaps.iter().sum::<f64>() / gaps.len() as f64;
    println!(
        "Sequential traversal gap — best postorder vs Liu's exact optimum ({} trees)",
        corpus.len()
    );
    println!(
        "  postorder optimal: {}/{} trees ({:.1}%)",
        optimal,
        corpus.len(),
        100.0 * optimal as f64 / corpus.len() as f64
    );
    println!("  average gap:       {avg_gap:.3}%");
    println!("  worst gap:         {:.3}% ({})", 100.0 * worst.0, worst.1);
    println!("\nPaper §6.1 (on their corpus): optimal in 95.8% of cases, ~1% average gap.");
}
