//! Throughput benchmark of the batched serving engine
//! (`treesched_serve::ServeEngine`) against the per-request path.
//!
//! The request stream is every `(tree, p, scheduler)` scenario of the
//! corpus — the same traffic shape as the experiment campaign, but served
//! through the engine instead of the harness. Three things are measured:
//!
//! * **per-request baseline** — every request scheduled with a throwaway
//!   scratch (`schedule_once`), the way one-shot consumers behave;
//! * **engine sweep** — the same stream through `ServeEngine` at each
//!   `--workers` count, with same-tree batching and warm per-worker
//!   scratches;
//! * **validity** — every engine result must succeed and agree exactly
//!   with the baseline result. The binary exits 1 on any error or
//!   mismatch and never fails on timing, so CI can gate on it without
//!   flaking on shared runners.

use std::sync::Arc;
use std::time::Instant;
use treesched_bench::cli;
use treesched_core::{Platform, SchedulerRegistry, Scratch};
use treesched_gen::assembly_corpus;
use treesched_model::TaskTree;
use treesched_serve::{JsonRecord, ServeEngine, ServeRequest, ServeStats};

struct Sweep {
    workers: usize,
    secs: f64,
    rps: f64,
    stats: ServeStats,
}

fn main() {
    let opts = cli::parse_or_exit("serve_bench");

    let registry = SchedulerRegistry::standard();
    let names = opts.scheduler_names(&registry);
    eprintln!("building corpus ({:?})...", opts.scale);
    let corpus = assembly_corpus(opts.scale);
    let trees: Vec<(String, Arc<TaskTree>)> = corpus
        .into_iter()
        .map(|e| (e.name, Arc::new(e.tree)))
        .collect();

    // the request stream: three rounds of the full campaign, p-major so
    // consecutive requests switch trees — the worst case for any
    // per-request cache and exactly the case same-tree batching fixes
    const ROUNDS: usize = 3;
    let mut requests: Vec<ServeRequest> = Vec::new();
    for round in 0..ROUNDS {
        for &p in &opts.procs {
            for name in &names {
                for (tag, tree) in &trees {
                    requests.push(
                        ServeRequest::new(Arc::clone(tree), name.clone(), Platform::new(p))
                            .with_id(format!("{round}/{tag}/p{p}/{name}")),
                    );
                }
            }
        }
    }
    let total = requests.len();
    eprintln!(
        "serving {total} requests ({} trees x {:?} processors x {} schedulers)...",
        trees.len(),
        opts.procs,
        names.len()
    );

    // best-of-REPS wall clock per configuration: these runs are tens of
    // milliseconds, where machine jitter dwarfs the effect being measured
    const REPS: usize = 3;

    // --- per-request baseline: throwaway scratch, single thread ----------
    // builds the same response payload as the engine (schedule + bounds),
    // just without batching, warm caches, or workers
    let mut baseline: Vec<(f64, f64, f64)> = Vec::with_capacity(total);
    let mut base_secs = f64::INFINITY;
    for rep in 0..REPS {
        let start = Instant::now();
        let mut rows = Vec::with_capacity(total);
        for req in &requests {
            let scheduler = match registry.get(&req.scheduler) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            };
            match scheduler.schedule(&req.problem.as_request(), &mut Scratch::new()) {
                Ok(out) => {
                    let ms_lb = treesched_core::makespan_lower_bound(
                        &req.problem.tree,
                        req.problem.platform.processors(),
                    );
                    rows.push((out.eval.makespan, out.eval.peak_memory, ms_lb));
                }
                Err(e) => {
                    eprintln!("error: {} failed: {e}", req.id.as_deref().unwrap_or("?"));
                    std::process::exit(1);
                }
            }
        }
        base_secs = base_secs.min(start.elapsed().as_secs_f64());
        if rep == 0 {
            baseline = rows;
        }
    }
    let base_rps = total as f64 / base_secs.max(1e-9);

    // --- engine sweep ----------------------------------------------------
    let mut sweeps: Vec<Sweep> = Vec::new();
    for &workers in &opts.workers {
        let mut secs = f64::INFINITY;
        let mut stats = None;
        for rep in 0..REPS {
            // a fresh engine per rep: every timed run starts cold, like
            // the baseline
            let mut engine = ServeEngine::new(SchedulerRegistry::standard(), workers);
            let stream = requests.clone(); // built outside the timed region
            let start = Instant::now();
            let results = engine.run(stream);
            secs = secs.min(start.elapsed().as_secs_f64());
            if rep > 0 {
                continue; // results and stats are identical across reps
            }
            stats = Some(engine.stats());
            for (k, r) in results.iter().enumerate() {
                let out = match &r.outcome {
                    Ok(out) => out,
                    Err(e) => {
                        eprintln!("error: {} failed: {e}", r.id.as_deref().unwrap_or("?"));
                        std::process::exit(1);
                    }
                };
                let got = (
                    out.outcome.eval.makespan,
                    out.outcome.eval.peak_memory,
                    out.ms_lb,
                );
                if got != baseline[k] {
                    eprintln!(
                        "error: {}: engine result {:?} != per-request result {:?}",
                        r.id.as_deref().unwrap_or("?"),
                        got,
                        baseline[k]
                    );
                    std::process::exit(1);
                }
            }
        }
        sweeps.push(Sweep {
            workers,
            secs,
            rps: total as f64 / secs.max(1e-9),
            stats: stats.expect("first rep records stats"),
        });
    }

    if opts.json {
        // the shared record builder, like every other --json surface
        let sweep_json: Vec<String> = sweeps
            .iter()
            .map(|s| {
                JsonRecord::new()
                    .int("workers", s.workers as u64)
                    .num("secs", s.secs)
                    .num("rps", s.rps)
                    .num("speedup", s.rps / base_rps.max(1e-9))
                    .int("batches", s.stats.batches)
                    .int("traversal_computes", s.stats.traversal_computes)
                    .int("traversal_reuses", s.stats.traversal_reuses)
                    .render()
            })
            .collect();
        let procs: Vec<String> = opts.procs.iter().map(|p| p.to_string()).collect();
        let baseline = JsonRecord::new()
            .num("secs", base_secs)
            .num("rps", base_rps)
            // a throwaway scratch computes one traversal per request
            .int("traversal_computes", total as u64)
            .render();
        print!(
            "{}",
            JsonRecord::new()
                .str("benchmark", "serve")
                .int("requests", total as u64)
                .int("trees", trees.len() as u64)
                .raw("processors", &format!("[{}]", procs.join(",")))
                .int("schedulers", names.len() as u64)
                .raw("baseline", &baseline)
                .raw("sweep", &format!("[{}]", sweep_json.join(",")))
                .line()
        );
        return;
    }

    println!(
        "Serving throughput — {total} requests, {} trees",
        trees.len()
    );
    println!(
        "  per-request (fresh scratch): {base_secs:>8.3}s  {base_rps:>9.0} req/s  \
         {total} traversals computed"
    );
    for s in &sweeps {
        println!(
            "  engine, {} worker(s):        {:>8.3}s  {:>9.0} req/s  \
             ({:.2}x)  {} batches, {} traversals computed, {} reused",
            s.workers,
            s.secs,
            s.rps,
            s.rps / base_rps.max(1e-9),
            s.stats.batches,
            s.stats.traversal_computes,
            s.stats.traversal_reuses,
        );
    }
    let best = sweeps
        .iter()
        .max_by(|a, b| a.rps.total_cmp(&b.rps))
        .expect("at least one worker count");
    println!(
        "\nbatching avoided {} of {} reference traversals; best sweep point: \
         {} workers at {:.0} req/s ({:.2}x the per-request path)",
        best.stats.traversal_reuses,
        total,
        best.workers,
        best.rps,
        best.rps / base_rps.max(1e-9),
    );
}
