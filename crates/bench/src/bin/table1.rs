//! Reproduces **Table 1** of the paper: proportions of scenarios where each
//! scheduler reaches (or comes within 5% of) the best memory/makespan, and
//! average deviations from the sequential memory and the best makespan.
//!
//! A thin front-end over the Campaign API: the flags build a
//! [`treesched_bench::CampaignSpec`] (corpus × registry schedulers ×
//! platform grid), the engine-backed runner executes it, and this binary
//! only aggregates. `--json` streams one JSONL record per scenario plus
//! one summary record per table line, all through the shared `JsonRecord`
//! builder.

use treesched_bench::{campaign::presets, cli, harness};

fn main() {
    let opts = cli::parse_or_exit("table1");
    let spec = presets::grid_or_exit("table1", &opts);
    let campaign = presets::run_or_exit(&spec);
    let rows = campaign.rows();
    let table = harness::table1(&rows);

    if opts.json {
        print!("{}", campaign.to_jsonl());
        for row in &table {
            print!("{}", harness::table1_json(&campaign.name, row));
        }
        presets::maybe_csv(&opts, &rows);
        return;
    }

    let names = harness::scheduler_names(&rows);
    println!(
        "Table 1 — {} scenarios ({} trees, points {:?})",
        rows.len() / names.len().max(1),
        campaign.tree_count(),
        spec.platforms
            .iter()
            .map(|pt| pt.label.as_str())
            .collect::<Vec<_>>()
    );
    println!("{}", harness::render_table1(&table));
    println!("Paper reference (608 UF trees):");
    println!("  ParSubtrees        81.1%  85.2%  133.0%  |  0.2%  14.2%  34.7%");
    println!("  ParSubtreesOptim   49.9%  65.6%  144.8%  |  1.1%  19.1%  28.5%");
    println!("  ParInnerFirst      19.1%  26.2%  276.5%  | 37.2%  82.4%   2.6%");
    println!("  ParDeepestFirst     3.0%   9.6%  325.8%  | 95.7%  99.9%   0.0%");

    presets::maybe_csv(&opts, &rows);
}
