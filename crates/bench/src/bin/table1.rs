//! Reproduces **Table 1** of the paper: proportions of scenarios where each
//! scheduler reaches (or comes within 5% of) the best memory/makespan, and
//! average deviations from the sequential memory and the best makespan.
//!
//! Schedulers are resolved through the registry (`--schedulers` compares a
//! different set than the paper's four campaign heuristics). `--json`
//! emits one machine-readable summary record through the shared record
//! builder in `treesched_serve::jsonl`, like every other `--json` surface.

use treesched_bench::{cli, harness};
use treesched_core::SchedulerRegistry;
use treesched_gen::assembly_corpus;
use treesched_serve::JsonRecord;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("usage: table1 [options]\n{}", cli::USAGE);
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    };

    let registry = SchedulerRegistry::standard();
    let names = opts.scheduler_names(&registry);
    eprintln!("building corpus ({:?})...", opts.scale);
    let corpus = assembly_corpus(opts.scale);
    eprintln!(
        "running {} trees x {:?} processors x {} schedulers...",
        corpus.len(),
        opts.procs,
        names.len()
    );
    let rows =
        match harness::run_corpus_with(&corpus, &opts.procs, &registry, &names, opts.cap_factor) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };

    if opts.json {
        let table: Vec<String> = harness::table1(&rows)
            .iter()
            .map(|r| {
                JsonRecord::new()
                    .str("scheduler", &r.scheduler)
                    .num("best_mem_pct", r.best_mem_pct)
                    .num("within5_mem_pct", r.within5_mem_pct)
                    .num("avg_dev_mem_pct", r.avg_dev_mem_pct)
                    .num("best_ms_pct", r.best_ms_pct)
                    .num("within5_ms_pct", r.within5_ms_pct)
                    .num("avg_dev_ms_pct", r.avg_dev_ms_pct)
                    .render()
            })
            .collect();
        let procs: Vec<String> = opts.procs.iter().map(|p| p.to_string()).collect();
        print!(
            "{}",
            JsonRecord::new()
                .str("benchmark", "table1")
                .int("trees", corpus.len() as u64)
                .raw("processors", &format!("[{}]", procs.join(",")))
                .int("schedulers", names.len() as u64)
                .int("scenarios", (rows.len() / names.len().max(1)) as u64)
                .raw("rows", &format!("[{}]", table.join(",")))
                .line()
        );
        if let Some(path) = opts.csv {
            std::fs::write(&path, harness::to_csv(&rows)).expect("write CSV");
            eprintln!("raw rows written to {path}");
        }
        return;
    }

    println!(
        "Table 1 — {} scenarios ({} trees, p in {:?})",
        rows.len() / names.len().max(1),
        corpus.len(),
        opts.procs
    );
    println!("{}", harness::render_table1(&harness::table1(&rows)));
    println!("Paper reference (608 UF trees):");
    println!("  ParSubtrees        81.1%  85.2%  133.0%  |  0.2%  14.2%  34.7%");
    println!("  ParSubtreesOptim   49.9%  65.6%  144.8%  |  1.1%  19.1%  28.5%");
    println!("  ParInnerFirst      19.1%  26.2%  276.5%  | 37.2%  82.4%   2.6%");
    println!("  ParDeepestFirst     3.0%   9.6%  325.8%  | 95.7%  99.9%   0.0%");

    if let Some(path) = opts.csv {
        std::fs::write(&path, harness::to_csv(&rows)).expect("write CSV");
        eprintln!("raw rows written to {path}");
    }
}
