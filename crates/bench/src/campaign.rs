//! The Campaign API: declarative experiment specs executed over the
//! batched serving engine.
//!
//! A [`CampaignSpec`] names a cross-product of scenarios — a tree set
//! (assembly corpus and/or explicit trees) × a scheduler selection
//! (resolved through the [`SchedulerRegistry`], defaulting to its
//! `campaign` set) × a grid of [`PlatformPoint`]s (flat processor counts,
//! heterogeneous `--speeds`/`--domains` shapes, per-tree memory-cap
//! factors) × sequential sub-algorithms × an optional seed, plus an extra
//! [`Metric`] selection. The [`CampaignRunner`] executes the whole product
//! through [`treesched_serve::ServeEngine`], so campaign traffic
//! parallelizes across workers and reuses warm per-worker
//! [`treesched_core::Scratch`] caches exactly like serving traffic — and,
//! because the engine orders results by submission index, the output is
//! byte-identical for any worker count.
//!
//! Every scenario becomes one [`CampaignRecord`]: either measurements
//! (rendered as a one-line JSON record through the shared
//! [`treesched_serve::JsonRecord`] builder, field-compatible with
//! `schedule --json` and the serving responses) or a typed
//! [`SchedError`] — errors are data in the stream, never panics. The
//! experiment binaries (`table1`, `fig6`–`fig8`, `scaling`, `ablation`,
//! `corpus`) are thin front-ends that build a spec, run it, and aggregate
//! the records; `treesched campaign` exposes the same engine-backed runner
//! on the command line, from flags or a JSON spec file.

use crate::harness::Row;
use std::sync::Arc;
use treesched_core::{
    memory_reference, Metric, Platform, PlatformSpec, SchedError, SchedulerRegistry, SeqAlgo,
};
use treesched_gen::{assembly_corpus, CorpusEntry, Scale};
use treesched_model::TaskTree;
use treesched_serve::{
    platform_json, JsonRecord, ScheduleRecord, ServeEngine, ServeRequest, ServeStats,
};

// ---------------------------------------------------------------------------
// Spec
// ---------------------------------------------------------------------------

/// One platform of a campaign grid: a declarative shape plus an optional
/// per-tree memory-cap factor, under a stable label that tags every record
/// produced at this point.
#[derive(Clone, Debug, PartialEq)]
pub struct PlatformPoint {
    /// Label tagging the point's records (`point` field), e.g. `p4` or
    /// `2x2.0,2x1.0;1e9@0,1e9@1`.
    pub label: String,
    /// The platform shape (classes + domains with absolute capacities).
    pub spec: PlatformSpec,
    /// Per-tree memory cap as a multiple of the tree's sequential
    /// reference peak: a point without domains gains one shared cap of
    /// `factor × M_seq(tree)`; a point with domains has each domain's
    /// capacity replaced by `factor × M_seq(tree)` (absolute capacities
    /// are meaningless across a corpus of differently sized trees).
    pub cap_factor: Option<f64>,
}

impl PlatformPoint {
    /// The paper's flat machine point: `p` unit-speed processors, label
    /// `p{p}`.
    pub fn flat(p: u32) -> PlatformPoint {
        PlatformPoint {
            label: format!("p{p}"),
            spec: PlatformSpec::flat(p),
            cap_factor: None,
        }
    }

    /// A point from a parsed [`PlatformSpec`], labeled with its flag
    /// spelling (`SPEEDS[;DOMAINS[;COMM]]`).
    pub fn from_spec(spec: PlatformSpec) -> PlatformPoint {
        let (speeds, domains, comm) = spec.flag_strings();
        let mut label = speeds;
        for part in [domains, comm].into_iter().flatten() {
            label = format!("{label};{part}");
        }
        PlatformPoint {
            label,
            spec,
            cap_factor: None,
        }
    }

    /// Returns the point with a per-tree memory-cap factor; the label
    /// gains a `/cap{factor}` suffix.
    pub fn with_cap_factor(mut self, factor: f64) -> PlatformPoint {
        self.label = format!("{}/cap{factor}", self.label);
        self.cap_factor = Some(factor);
        self
    }

    /// The concrete platform this point means for a tree whose sequential
    /// reference peak is `mem_ref` (see [`PlatformPoint::cap_factor`]).
    pub fn resolve(&self, mem_ref: f64) -> Platform {
        let platform = self.spec.to_platform();
        match self.cap_factor {
            None => platform,
            Some(factor) if platform.domains().is_empty() => {
                platform.with_memory_cap(factor * mem_ref)
            }
            Some(factor) => {
                // rebuild with each domain's capacity rescaled; the comm
                // matrix indexes the same domains, so it carries over
                let mut scaled = Platform::heterogeneous(platform.classes().to_vec());
                for d in platform.domains() {
                    scaled = scaled.with_domain(factor * mem_ref, &d.classes);
                }
                scaled.with_comm(platform.comm().to_vec())
            }
        }
    }
}

/// A declarative experiment campaign: the full cross-product of scenarios
/// to run, plus an extra metric selection. See the [module docs](self) for
/// the execution model and [`presets`] for the specs behind the paper's
/// tables and figures.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Campaign name, echoed as the `campaign` field of every record.
    pub name: String,
    /// Assembly corpus to include in the tree set, if any.
    pub corpus: Option<Scale>,
    /// Explicit trees to include (before the corpus, in order).
    pub trees: Vec<CorpusEntry>,
    /// Scheduler registry names or aliases; `None` means the registry's
    /// `campaign` set. Unknown names fail the whole run, typed.
    pub schedulers: Option<Vec<String>>,
    /// The platform grid.
    pub platforms: Vec<PlatformPoint>,
    /// Sequential sub-algorithm grid (never empty; default
    /// `[SeqAlgo::default()]`).
    pub seqs: Vec<SeqAlgo>,
    /// Seed for randomized schedulers.
    pub seed: Option<u64>,
    /// Extra metrics appended to each record (beyond the always-present
    /// schedule fields; `makespan`, `peak_memory` and `cap_violations`
    /// are already in the base record and are skipped here).
    pub metrics: Vec<Metric>,
    /// Worker-count hint for front-ends building a runner from the spec
    /// (`None` = pick automatically). The output never depends on it.
    pub workers: Option<usize>,
    /// Timing repetitions per scenario when [`Metric::TimeUs`] is selected
    /// (median-of-reps on a warm scratch); ignored otherwise. Never 0.
    pub time_reps: u32,
}

impl CampaignSpec {
    /// An empty campaign named `name`: no trees, the registry's campaign
    /// scheduler set, no platform points, the default sequential
    /// sub-algorithm.
    pub fn new(name: impl Into<String>) -> CampaignSpec {
        CampaignSpec {
            name: name.into(),
            corpus: None,
            trees: Vec::new(),
            schedulers: None,
            platforms: Vec::new(),
            seqs: vec![SeqAlgo::default()],
            seed: None,
            metrics: Vec::new(),
            workers: None,
            time_reps: 1,
        }
    }

    /// Includes the assembly corpus at `scale` in the tree set.
    pub fn with_corpus(mut self, scale: Scale) -> CampaignSpec {
        self.corpus = Some(scale);
        self
    }

    /// Adds one explicit named tree.
    pub fn with_tree(mut self, name: impl Into<String>, tree: TaskTree) -> CampaignSpec {
        self.trees.push(CorpusEntry {
            name: name.into(),
            tree,
        });
        self
    }

    /// Sets the scheduler selection (registry names or aliases).
    pub fn with_schedulers(mut self, names: Vec<String>) -> CampaignSpec {
        self.schedulers = Some(names);
        self
    }

    /// Adds a flat platform point per processor count.
    pub fn with_procs(mut self, ps: &[u32]) -> CampaignSpec {
        self.platforms
            .extend(ps.iter().map(|&p| PlatformPoint::flat(p)));
        self
    }

    /// Adds one platform point.
    pub fn with_platform(mut self, point: PlatformPoint) -> CampaignSpec {
        self.platforms.push(point);
        self
    }

    /// Sets the sequential sub-algorithm grid.
    pub fn with_seqs(mut self, seqs: Vec<SeqAlgo>) -> CampaignSpec {
        self.seqs = seqs;
        self
    }

    /// Sets the seed for randomized schedulers.
    pub fn with_seed(mut self, seed: u64) -> CampaignSpec {
        self.seed = Some(seed);
        self
    }

    /// Sets the extra metric selection.
    pub fn with_metrics(mut self, metrics: Vec<Metric>) -> CampaignSpec {
        self.metrics = metrics;
        self
    }

    /// Sets the timing repetitions per scenario (clamped to at least 1);
    /// only consulted when [`Metric::TimeUs`] is part of the selection.
    pub fn with_time_reps(mut self, reps: u32) -> CampaignSpec {
        self.time_reps = reps.max(1);
        self
    }

    /// Ensures `name` (canonically) is part of the scheduler selection —
    /// the figure binaries use this to force their normalization baseline
    /// in. Returns whether the selection had to be extended. An explicit
    /// selection with an unknown name is left alone (the runner will
    /// surface the typed error).
    pub fn ensure_scheduler(&mut self, registry: &SchedulerRegistry, name: &str) -> bool {
        let Some(names) = &mut self.schedulers else {
            // the default campaign set: membership is the registry's call
            return false;
        };
        let canonical = registry.resolve(name).map(|e| e.name());
        let present = names
            .iter()
            .any(|n| registry.resolve(n).map(|e| e.name()) == canonical);
        if !present {
            names.push(name.to_string());
        }
        !present
    }

    /// The scheduler names the campaign will run: the explicit selection,
    /// or the registry's campaign set.
    pub fn scheduler_names(&self, registry: &SchedulerRegistry) -> Vec<String> {
        match &self.schedulers {
            Some(names) => names.clone(),
            None => registry.campaign().map(|e| e.name().to_string()).collect(),
        }
    }

    /// Materializes the tree set: explicit trees first, then the corpus.
    pub fn resolve_trees(&self) -> Vec<CorpusEntry> {
        let mut trees = self.trees.clone();
        if let Some(scale) = self.corpus {
            trees.extend(assembly_corpus(scale));
        }
        trees
    }

    /// Number of scenarios the spec describes (records a run will produce).
    pub fn scenarios(&self, registry: &SchedulerRegistry) -> usize {
        self.resolve_trees().len()
            * self.platforms.len()
            * self.seqs.len()
            * self.scheduler_names(registry).len()
    }
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// The measurements of one successful scenario.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// Achieved makespan.
    pub makespan: f64,
    /// Achieved platform-global peak memory.
    pub peak_memory: f64,
    /// Makespan lower bound of the scenario (speed-aware).
    pub ms_lb: f64,
    /// Sequential memory reference of the tree.
    pub mem_ref: f64,
    /// Forced cap admissions (memory-capped schedulers only).
    pub cap_violations: Option<usize>,
    /// Peak memory per platform domain (empty for flat platforms).
    pub domain_peaks: Vec<f64>,
    /// The spec's extra metric selection, in selection order; `None` when
    /// the outcome does not carry the metric.
    pub metrics: Vec<(Metric, Option<f64>)>,
}

/// One scenario of a campaign run: its coordinates plus either the
/// measurements or the typed error the scheduler returned.
#[derive(Clone, Debug)]
pub struct CampaignRecord {
    /// Tree name (corpus entry name or explicit tree name).
    pub tree: String,
    /// Number of tasks of the tree.
    pub nodes: usize,
    /// Label of the platform point ([`PlatformPoint::label`]).
    pub point: String,
    /// The concrete platform of the scenario (per-tree cap applied).
    pub platform: Platform,
    /// Canonical scheduler name.
    pub scheduler: String,
    /// Sequential sub-algorithm of the scenario.
    pub seq: SeqAlgo,
    /// Seed of the scenario, if the spec set one.
    pub seed: Option<u64>,
    /// Measurements, or the typed scheduling error.
    pub outcome: Result<CampaignOutcome, SchedError>,
}

impl CampaignRecord {
    /// Renders the record as its one-line JSON form: the scenario
    /// coordinates (`campaign`, `tree`, `point`, `seq`, `seed`) followed —
    /// for successes — by the exact field set of `schedule --json` (via
    /// the shared [`ScheduleRecord`] builder) and the extra metrics, or —
    /// for failures — by `scheduler`/`processors`/`platform` and the typed
    /// `error` message.
    pub fn to_json(&self, campaign: &str) -> String {
        let rec = JsonRecord::new()
            .str("campaign", campaign)
            .str("tree", &self.tree)
            .str("point", &self.point)
            .str("seq", self.seq.name())
            .opt_int("seed", self.seed);
        match &self.outcome {
            Ok(out) => {
                let mut rec = ScheduleRecord {
                    scheduler: &self.scheduler,
                    platform: &self.platform,
                    tasks: self.nodes,
                    makespan: out.makespan,
                    makespan_lower_bound: out.ms_lb,
                    peak_memory: out.peak_memory,
                    memory_reference: out.mem_ref,
                    cap_violations: out.cap_violations,
                    domain_peaks: &out.domain_peaks,
                }
                .embed(rec);
                for (metric, value) in &out.metrics {
                    rec = rec.opt_num(metric.name(), *value);
                }
                rec.line()
            }
            Err(e) => {
                let mut rec = rec
                    .str("scheduler", &self.scheduler)
                    .int("processors", u64::from(self.platform.processors()));
                if !self.platform.is_flat() {
                    rec = rec.raw("platform", &platform_json(&self.platform));
                }
                rec.str("error", &e.to_string()).line()
            }
        }
    }
}

/// The result of one campaign run: every scenario record, in the spec's
/// deterministic cross-product order (worker-count independent).
#[derive(Clone, Debug)]
pub struct Campaign {
    /// Campaign name (from the spec).
    pub name: String,
    /// One record per scenario.
    pub records: Vec<CampaignRecord>,
    /// Engine counters accumulated over this run.
    pub stats: ServeStats,
}

impl Campaign {
    /// The whole run as JSONL, one record per line.
    pub fn to_jsonl(&self) -> String {
        self.records.iter().map(|r| r.to_json(&self.name)).collect()
    }

    /// The error records of the run.
    pub fn errors(&self) -> impl Iterator<Item = (&CampaignRecord, &SchedError)> {
        self.records
            .iter()
            .filter_map(|r| r.outcome.as_ref().err().map(|e| (r, e)))
    }

    /// Successful records as harness [`Row`]s for the table/figure
    /// aggregations; error records are skipped.
    pub fn rows(&self) -> Vec<Row> {
        self.records
            .iter()
            .filter_map(|r| {
                let out = r.outcome.as_ref().ok()?;
                Some(Row {
                    tree: r.tree.clone(),
                    nodes: r.nodes,
                    p: r.platform.processors(),
                    point: r.point.clone(),
                    seq: r.seq.name().to_string(),
                    scheduler: r.scheduler.clone(),
                    makespan: out.makespan,
                    memory: out.peak_memory,
                    ms_lb: out.ms_lb,
                    mem_ref: out.mem_ref,
                })
            })
            .collect()
    }

    /// Number of distinct trees the run covered.
    pub fn tree_count(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.records
            .iter()
            .filter(|r| seen.insert(r.tree.as_str()))
            .count()
    }

    /// As [`Campaign::rows`], but failing on the first error record — the
    /// contract of the old all-or-nothing harness loop.
    pub fn strict_rows(&self) -> Result<Vec<Row>, SchedError> {
        if let Some((_, e)) = self.errors().next() {
            return Err(e.clone());
        }
        Ok(self.rows())
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// A sensible engine worker count for campaign runs on this machine. The
/// output never depends on it.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

/// Executes [`CampaignSpec`]s over a [`ServeEngine`]. The runner is
/// long-lived: consecutive runs (the ablation studies, a figure series)
/// share the engine's warm per-worker caches.
pub struct CampaignRunner {
    registry: Arc<SchedulerRegistry>,
    engine: ServeEngine,
}

impl CampaignRunner {
    /// A runner over the standard registry with `workers` engine workers.
    pub fn new(workers: usize) -> CampaignRunner {
        CampaignRunner::over(Arc::new(SchedulerRegistry::standard()), workers)
    }

    /// A runner over a shared registry — custom schedulers registered with
    /// `campaign = true` join every default-selection campaign.
    pub fn over(registry: Arc<SchedulerRegistry>, workers: usize) -> CampaignRunner {
        let engine = ServeEngine::with_registry(Arc::clone(&registry), workers);
        CampaignRunner { registry, engine }
    }

    /// The registry the runner resolves schedulers from.
    pub fn registry(&self) -> &SchedulerRegistry {
        &self.registry
    }

    /// Runs the spec's full cross-product and returns one record per
    /// scenario, in cross-product order (trees × platform points ×
    /// sequential algorithms × schedulers). Unknown scheduler names fail
    /// the whole run; every per-scenario failure (unsupported platform,
    /// missing cap, invalid platform) is an error *record*.
    pub fn run(&mut self, spec: &CampaignSpec) -> Result<Campaign, SchedError> {
        let names: Vec<&'static str> = spec
            .scheduler_names(&self.registry)
            .iter()
            .map(|n| self.registry.resolve(n).map(|e| e.name()))
            .collect::<Result<_, _>>()?;
        let extra: Vec<Metric> = spec
            .metrics
            .iter()
            .copied()
            .filter(|m| {
                // already in the base record: selecting them again would
                // duplicate JSON keys
                !matches!(
                    m,
                    Metric::Makespan | Metric::PeakMemory | Metric::CapViolations
                )
            })
            .collect();
        let timed = extra.contains(&Metric::TimeUs);
        let trees = spec.resolve_trees();
        let before = self.engine.stats();
        struct Coord {
            tree: String,
            nodes: usize,
            point: String,
            platform: Platform,
            seq: SeqAlgo,
        }
        let mut coords: Vec<Coord> = Vec::new();
        for entry in trees {
            let nodes = entry.tree.len();
            let tree = Arc::new(entry.tree);
            // only points with a cap factor need the reference peak ahead
            // of serving (the engine reports it per result anyway)
            let mem_ref = spec
                .platforms
                .iter()
                .any(|pt| pt.cap_factor.is_some())
                .then(|| memory_reference(&tree));
            for point in &spec.platforms {
                let platform = point.resolve(mem_ref.unwrap_or(0.0));
                for &seq in &spec.seqs {
                    for name in &names {
                        let mut request =
                            ServeRequest::new(Arc::clone(&tree), *name, platform.clone())
                                .with_seq(seq);
                        if let Some(seed) = spec.seed {
                            request = request.with_seed(seed);
                        }
                        if timed {
                            request = request.with_time_reps(spec.time_reps);
                        }
                        self.engine.submit(request);
                        coords.push(Coord {
                            tree: entry.name.clone(),
                            nodes,
                            point: point.label.clone(),
                            platform: platform.clone(),
                            seq,
                        });
                    }
                }
            }
        }
        let results = self.engine.drain();
        let records = results
            .into_iter()
            .zip(coords)
            .map(|(result, coord)| {
                // timing is measured by the serving layer, not the outcome
                let time_us = result.time_us;
                let outcome = result.outcome.map(|out| CampaignOutcome {
                    makespan: out.outcome.eval.makespan,
                    peak_memory: out.outcome.eval.peak_memory,
                    ms_lb: out.ms_lb,
                    mem_ref: out.mem_ref,
                    cap_violations: out.outcome.diagnostics.cap_violations,
                    domain_peaks: out.outcome.domain_peaks.clone(),
                    metrics: extra
                        .iter()
                        .map(|&m| match m {
                            Metric::TimeUs => (m, Some(time_us as f64)),
                            m => (m, out.outcome.metric(m)),
                        })
                        .collect(),
                });
                CampaignRecord {
                    tree: coord.tree,
                    nodes: coord.nodes,
                    point: coord.point,
                    platform: coord.platform,
                    scheduler: result.scheduler,
                    seq: coord.seq,
                    seed: spec.seed,
                    outcome,
                }
            })
            .collect();
        let after = self.engine.stats();
        Ok(Campaign {
            name: spec.name.clone(),
            records,
            stats: ServeStats {
                requests: after.requests - before.requests,
                batches: after.batches - before.batches,
                traversal_computes: after.traversal_computes - before.traversal_computes,
                traversal_reuses: after.traversal_reuses - before.traversal_reuses,
                subtree_views: after.subtree_views - before.subtree_views,
                subtree_clones: after.subtree_clones - before.subtree_clones,
                worker_lost: after.worker_lost - before.worker_lost,
                reroutes: after.reroutes - before.reroutes,
            },
        })
    }
}

// ---------------------------------------------------------------------------
// JSON spec files
// ---------------------------------------------------------------------------

/// A typed failure parsing a campaign spec file.
///
/// `Display` keeps the pre-typed wording, so `campaign --spec` error
/// output is unchanged; the variants exist so tooling can react to the
/// *kind* of failure — above all [`SpecError::UnknownKey`], the typo
/// guard that keeps a misspelled `trees_file` from shipping a campaign
/// with silently missing workloads.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// Malformed JSON, or a field with an invalid type or value.
    Invalid(String),
    /// An unknown top-level spec key.
    UnknownKey(String),
    /// A workload file named by the spec could not be read.
    Io {
        /// The offending path.
        path: String,
        /// The underlying I/O error text.
        cause: String,
    },
    /// A workload file named by the spec failed to parse.
    Parse {
        /// The offending path.
        path: String,
        /// The parse failure, rendered.
        cause: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Invalid(msg) => f.write_str(msg),
            SpecError::UnknownKey(key) => write!(f, "unknown spec key `{key}`"),
            SpecError::Io { path, cause } => write!(f, "cannot read {path}: {cause}"),
            SpecError::Parse { path, cause } => write!(f, "cannot parse {path}: {cause}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<String> for SpecError {
    fn from(msg: String) -> Self {
        SpecError::Invalid(msg)
    }
}

impl From<&str> for SpecError {
    fn from(msg: &str) -> Self {
        SpecError::Invalid(msg.to_string())
    }
}

/// Parses a campaign spec from its JSON file form (`treesched campaign
/// --spec FILE`). All fields optional except `platforms`:
///
/// ```json
/// {"name": "mixed", "corpus": "small", "trees": ["fork.tree"],
///  "schedulers": ["deepest", "inner", "cp"],
///  "platforms": [{"processors": 4},
///                {"processors": 8, "cap_factor": 1.5},
///                {"speeds": "2x2.0,2x1.0", "domains": "1e9@0,1e9@1",
///                 "comm": "0-1:2"}],
///  "seq": ["best", "liu"], "seed": 7,
///  "metrics": ["speedup", "utilization"], "workers": 4,
///  "time_reps": 5}
/// ```
///
/// `trees` entries are paths to `treesched tree v1` files, loaded here;
/// `trees_file` entries go through the `treesched_trees` toolbox instead
/// (format detection: v1, attributed Newick, or MatrixMarket patterns via
/// the elimination/assembly-tree pipeline) and may be bare path strings
/// or `{"path": ..., "ordering": "natural|amd|rcm", "amalg": N,
/// "name": ...}` objects. Platform entries use either the flat
/// `processors` field or the `--speeds`/`--domains`/`--comm` flag syntax,
/// plus an optional `cap_factor`.
pub fn spec_from_json(text: &str) -> Result<CampaignSpec, SpecError> {
    use treesched_serve::jsonl::{parse_object, Value};

    fn str_of(v: &Value, what: &str) -> Result<String, String> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(format!("`{what}` must be a string, got {other:?}")),
        }
    }
    fn num_of<T: std::str::FromStr>(v: &Value, what: &str) -> Result<T, String> {
        match v {
            Value::Num(raw) => raw
                .parse()
                .map_err(|_| format!("`{what}` must be a number of the right kind, got `{raw}`")),
            other => Err(format!("`{what}` must be a number, got {other:?}")),
        }
    }
    fn list_of(v: &Value, what: &str) -> Result<Vec<String>, String> {
        match v {
            Value::Arr(items) => items.iter().map(|i| str_of(i, what)).collect(),
            other => Err(format!(
                "`{what}` must be an array of strings, got {other:?}"
            )),
        }
    }

    let pairs = parse_object(text.trim())?;
    let mut spec = CampaignSpec::new("campaign");
    for (key, value) in &pairs {
        match key.as_str() {
            "name" => spec.name = str_of(value, "name")?,
            "corpus" => {
                spec.corpus = Some(match str_of(value, "corpus")?.as_str() {
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    "large" => Scale::Large,
                    other => return Err(format!("unknown corpus scale `{other}`").into()),
                });
            }
            "trees" => {
                for path in list_of(value, "trees")? {
                    let text = std::fs::read_to_string(&path).map_err(|e| SpecError::Io {
                        path: path.clone(),
                        cause: e.to_string(),
                    })?;
                    let tree =
                        treesched_model::io::from_text(&text).map_err(|e| SpecError::Parse {
                            path: path.clone(),
                            cause: e.to_string(),
                        })?;
                    spec.trees.push(CorpusEntry { name: path, tree });
                }
            }
            "trees_file" => {
                let Value::Arr(items) = value else {
                    return Err(format!("`trees_file` must be an array, got {value:?}").into());
                };
                for item in items {
                    spec.trees.push(trees_file_entry(item)?);
                }
            }
            "schedulers" => spec.schedulers = Some(list_of(value, "schedulers")?),
            "platforms" => {
                let Value::Arr(items) = value else {
                    return Err(format!("`platforms` must be an array, got {value:?}").into());
                };
                for item in items {
                    spec.platforms.push(platform_point_from_value(item)?);
                }
            }
            "seq" => {
                let names = match value {
                    Value::Str(s) => vec![s.clone()],
                    other => list_of(other, "seq")?,
                };
                spec.seqs = names
                    .iter()
                    .map(|n| {
                        SeqAlgo::by_name(n).ok_or_else(|| format!("unknown `seq` algorithm `{n}`"))
                    })
                    .collect::<Result<_, _>>()?;
                if spec.seqs.is_empty() {
                    return Err("`seq` needs at least one algorithm".into());
                }
            }
            "seed" => spec.seed = Some(num_of(value, "seed")?),
            "metrics" => {
                spec.metrics = list_of(value, "metrics")?
                    .iter()
                    .map(|n| Metric::by_name(n).ok_or_else(|| format!("unknown metric `{n}`")))
                    .collect::<Result<_, _>>()?;
            }
            "workers" => {
                let workers: usize = num_of(value, "workers")?;
                if workers == 0 {
                    return Err("`workers` needs at least 1".into());
                }
                spec.workers = Some(workers);
            }
            "time_reps" => {
                let reps: u32 = num_of(value, "time_reps")?;
                if reps == 0 {
                    return Err("`time_reps` needs at least 1".into());
                }
                spec.time_reps = reps;
            }
            other => return Err(SpecError::UnknownKey(other.to_string())),
        }
    }
    if spec.platforms.is_empty() {
        return Err("spec needs a non-empty `platforms` array".into());
    }
    Ok(spec)
}

/// Loads one `trees_file` spec entry through the `treesched_trees`
/// toolbox: a bare path string, or an object with `path` plus optional
/// `ordering` / `amalg` (MatrixMarket ingest knobs) and `name` (the label
/// scenario records carry; defaults to the path).
fn trees_file_entry(value: &treesched_serve::jsonl::Value) -> Result<CorpusEntry, SpecError> {
    use treesched_serve::jsonl::Value;
    use treesched_trees::{IngestOptions, OrderingKind};

    let mut path: Option<String> = None;
    let mut name: Option<String> = None;
    let mut opts = IngestOptions::default();
    match value {
        Value::Str(s) => path = Some(s.clone()),
        Value::Obj(fields) => {
            for (key, v) in fields {
                match (key.as_str(), v) {
                    ("path", Value::Str(s)) => path = Some(s.clone()),
                    ("name", Value::Str(s)) => name = Some(s.clone()),
                    ("ordering", Value::Str(s)) => {
                        opts.ordering = OrderingKind::parse(s).ok_or_else(|| {
                            SpecError::Invalid(format!(
                                "unknown `trees_file` ordering `{s}` (natural, amd, rcm)"
                            ))
                        })?;
                    }
                    ("amalg", Value::Num(raw)) => {
                        opts.amalg = raw.parse().map_err(|_| {
                            format!("`trees_file` amalg must be a positive integer, got `{raw}`")
                        })?;
                        if opts.amalg == 0 {
                            return Err("`trees_file` amalg must be at least 1".into());
                        }
                    }
                    (other, _) => {
                        return Err(SpecError::Invalid(format!(
                            "unknown `trees_file` field `{other}` (path, ordering, amalg, name)"
                        )));
                    }
                }
            }
        }
        other => {
            return Err(SpecError::Invalid(format!(
                "each `trees_file` entry must be a path string or object, got {other:?}"
            )));
        }
    }
    let path =
        path.ok_or_else(|| SpecError::Invalid("`trees_file` entry needs a `path`".into()))?;
    let (tree, _) = treesched_trees::load(&path, opts).map_err(|e| match e {
        treesched_trees::LoadError::Io { path, cause } => SpecError::Io { path, cause },
        treesched_trees::LoadError::Parse { path, cause } => SpecError::Parse { path, cause },
    })?;
    Ok(CorpusEntry {
        name: name.unwrap_or(path),
        tree,
    })
}

fn platform_point_from_value(
    value: &treesched_serve::jsonl::Value,
) -> Result<PlatformPoint, String> {
    use treesched_serve::jsonl::Value;
    let Value::Obj(fields) = value else {
        return Err(format!(
            "each platform point must be an object, got {value:?}"
        ));
    };
    let mut processors: Option<u32> = None;
    let mut speeds: Option<String> = None;
    let mut domains: Option<String> = None;
    let mut comm: Option<String> = None;
    let mut cap_factor: Option<f64> = None;
    for (key, v) in fields {
        match (key.as_str(), v) {
            ("processors", Value::Num(raw)) => {
                processors = Some(raw.parse().map_err(|_| {
                    format!("`processors` must be a non-negative integer, got `{raw}`")
                })?);
            }
            ("speeds", Value::Str(s)) => speeds = Some(s.clone()),
            ("domains", Value::Str(s)) => domains = Some(s.clone()),
            ("comm", Value::Str(s)) => comm = Some(s.clone()),
            ("cap_factor", Value::Num(raw)) => {
                let f: f64 = raw
                    .parse()
                    .map_err(|_| format!("`cap_factor` must be a number, got `{raw}`"))?;
                if !f.is_finite() || f <= 0.0 {
                    return Err(format!(
                        "`cap_factor` must be positive and finite, got `{raw}`"
                    ));
                }
                cap_factor = Some(f);
            }
            (k @ ("speeds" | "domains" | "comm"), v) => {
                return Err(format!("`{k}` must be a string, got {v:?}"))
            }
            (k @ ("processors" | "cap_factor"), v) => {
                return Err(format!("`{k}` must be a number, got {v:?}"))
            }
            (k, _) => return Err(format!("unknown platform point key `{k}`")),
        }
    }
    let mut point = match (processors, speeds) {
        (Some(_), Some(_)) => {
            return Err("a platform point spells `processors` or `speeds`, not both".into())
        }
        (Some(p), None) => {
            if domains.is_some() {
                return Err("`domains` needs `speeds` (flat points have one shared memory)".into());
            }
            if comm.is_some() {
                return Err("`comm` needs `speeds` and `domains` to index".into());
            }
            PlatformPoint::flat(p)
        }
        (None, Some(speeds)) => PlatformPoint::from_spec(
            PlatformSpec::parse_flags(&speeds, domains.as_deref(), comm.as_deref())
                .map_err(|e| e.to_string())?,
        ),
        (None, None) => return Err("a platform point needs `processors` or `speeds`".into()),
    };
    if let Some(factor) = cap_factor {
        point = point.with_cap_factor(factor);
    }
    Ok(point)
}

// ---------------------------------------------------------------------------
// Campaign comparison (`campaign --compare`)
// ---------------------------------------------------------------------------

/// The verdict of [`compare_campaigns`].
#[derive(Clone, Debug, PartialEq)]
pub enum CampaignComparison {
    /// Every stable field matches and the new summed `time_us` is within
    /// tolerance of the old (or neither run carries timing).
    Ok {
        /// Summed `time_us` of the old run; 0 when the metric is absent.
        old_us: f64,
        /// Summed `time_us` of the new run.
        new_us: f64,
    },
    /// Every stable field matches, but the new run is slower than the old
    /// beyond the tolerance — the perf-regression verdict.
    TimingRegression {
        /// Summed `time_us` of the old run.
        old_us: f64,
        /// Summed `time_us` of the new run.
        new_us: f64,
        /// The allowed slowdown, in percent of the old total.
        tolerance_pct: f64,
    },
    /// The runs disagree on a non-timing field, so they are different
    /// experiments and their timings are not comparable (a stale
    /// baseline, changed schedules, or a changed spec).
    StableMismatch {
        /// 1-based JSONL line of the first disagreement.
        line: usize,
        /// What disagreed, for the error message.
        detail: String,
    },
}

/// Compares two campaign JSONL dumps as a performance-regression gate.
///
/// Every field except `time_us` must match exactly — schedules are
/// deterministic, so any drift means the runs answer different questions
/// and timing is not comparable ([`CampaignComparison::StableMismatch`]).
/// On matching stable fields, the summed `time_us` of `new` may exceed
/// the summed `time_us` of `old` by at most `tolerance_pct` percent.
/// Runs without the `time_us` metric compare stable-fields-only.
pub fn compare_campaigns(
    old: &str,
    new: &str,
    tolerance_pct: f64,
) -> Result<CampaignComparison, String> {
    use treesched_serve::jsonl::{parse_object, Value};

    // one record, split into (stable fields, summed timing)
    fn split(which: &str, line: usize, text: &str) -> Result<(Vec<(String, Value)>, f64), String> {
        let pairs = parse_object(text).map_err(|e| format!("{which} line {line}: {e}"))?;
        let mut time = 0.0;
        let mut stable = Vec::with_capacity(pairs.len());
        for (key, value) in pairs {
            match (key.as_str(), &value) {
                ("time_us", Value::Num(raw)) => time += raw.parse::<f64>().unwrap_or(0.0),
                ("time_us", _) => {}
                _ => stable.push((key, value)),
            }
        }
        Ok((stable, time))
    }

    let old_lines: Vec<&str> = old.lines().filter(|l| !l.trim().is_empty()).collect();
    let new_lines: Vec<&str> = new.lines().filter(|l| !l.trim().is_empty()).collect();
    if old_lines.len() != new_lines.len() {
        return Ok(CampaignComparison::StableMismatch {
            line: old_lines.len().min(new_lines.len()) + 1,
            detail: format!(
                "record counts differ: {} vs {}",
                old_lines.len(),
                new_lines.len()
            ),
        });
    }
    let (mut old_us, mut new_us) = (0.0, 0.0);
    for (k, (a, b)) in old_lines.iter().zip(&new_lines).enumerate() {
        let line = k + 1;
        let (stable_a, time_a) = split("old", line, a)?;
        let (stable_b, time_b) = split("new", line, b)?;
        old_us += time_a;
        new_us += time_b;
        if stable_a != stable_b {
            let detail = stable_a
                .iter()
                .zip(&stable_b)
                .find(|(x, y)| x != y)
                .map(|((ka, va), (kb, vb))| {
                    if ka == kb {
                        format!("`{ka}` is {va:?} vs {vb:?}")
                    } else {
                        format!("key `{ka}` vs key `{kb}`")
                    }
                })
                .unwrap_or_else(|| {
                    format!(
                        "field counts differ: {} vs {}",
                        stable_a.len(),
                        stable_b.len()
                    )
                });
            return Ok(CampaignComparison::StableMismatch { line, detail });
        }
    }
    if old_us > 0.0 && new_us > old_us * (1.0 + tolerance_pct / 100.0) {
        return Ok(CampaignComparison::TimingRegression {
            old_us,
            new_us,
            tolerance_pct,
        });
    }
    Ok(CampaignComparison::Ok { old_us, new_us })
}

// ---------------------------------------------------------------------------
// Presets
// ---------------------------------------------------------------------------

/// The campaign specs behind the experiment binaries.
pub mod presets {
    use super::*;
    use crate::cli::Options;

    /// The shared grid of the table/figure binaries, from the binary
    /// flags: corpus at `--scale`, flat points for `--procs` (each with
    /// `--cap-factor` when given), one extra heterogeneous point for
    /// `--speeds`/`--domains`, the `--schedulers` selection, `--seq` and
    /// `--seed`.
    pub fn grid(name: &str, opts: &Options) -> Result<CampaignSpec, String> {
        let mut spec = CampaignSpec::new(name).with_corpus(opts.scale);
        for &p in &opts.procs {
            let mut point = PlatformPoint::flat(p);
            if let Some(factor) = opts.cap_factor {
                point = point.with_cap_factor(factor);
            }
            spec.platforms.push(point);
        }
        if let Some(speeds) = &opts.speeds {
            let parsed =
                PlatformSpec::parse_flags(speeds, opts.domains.as_deref(), opts.comm.as_deref())
                    .map_err(|e| e.to_string())?;
            let mut point = PlatformPoint::from_spec(parsed);
            if let Some(factor) = opts.cap_factor {
                point = point.with_cap_factor(factor);
            }
            spec.platforms.push(point);
        } else if opts.domains.is_some() {
            return Err("--domains needs --speeds".into());
        } else if opts.comm.is_some() {
            return Err("--comm needs --speeds and --domains".into());
        }
        spec.schedulers = opts.schedulers.clone();
        spec.seqs = opts.seqs.clone();
        spec.seed = opts.seed;
        Ok(spec)
    }

    /// As [`grid`], exiting with a usage error (code 2) on bad flags — the
    /// shared `main` preamble of the table/figure binaries.
    pub fn grid_or_exit(name: &str, opts: &Options) -> CampaignSpec {
        match grid(name, opts) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// Runs `spec` on a fresh runner (`spec.workers` or the machine
    /// default). Unknown scheduler names exit 1; error *records* are
    /// summarized on stderr (first few spelled out) and only an all-error
    /// campaign exits 1 — partial heterogeneous refusals are data.
    pub fn run_or_exit(spec: &CampaignSpec) -> Campaign {
        let workers = spec.workers.unwrap_or_else(default_workers);
        let campaign = match CampaignRunner::new(workers).run(spec) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        let errors = campaign.errors().count();
        if errors > 0 {
            eprintln!(
                "note: {errors} of {} scenarios returned typed errors:",
                campaign.records.len()
            );
            for (r, e) in campaign.errors().take(3) {
                eprintln!("  {} @ {} on {}: {e}", r.scheduler, r.point, r.tree);
            }
            if errors == campaign.records.len() {
                eprintln!("error: every scenario failed");
                std::process::exit(1);
            }
        }
        campaign
    }

    /// Dumps the raw scenario rows as CSV when `--csv` was given. An
    /// unwritable path is reported with its I/O cause and exits 1 — after
    /// the table/figure output, so the computed results are not lost.
    pub fn maybe_csv(opts: &Options, rows: &[Row]) {
        if let Err(e) = try_csv(opts, rows) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }

    /// As [`maybe_csv`], surfacing the I/O failure instead of exiting.
    pub fn try_csv(opts: &Options, rows: &[Row]) -> Result<(), String> {
        if let Some(path) = &opts.csv {
            std::fs::write(path, crate::harness::to_csv(rows))
                .map_err(|e| format!("cannot write CSV to {path}: {e}"))?;
            eprintln!("raw rows written to {path}");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesched_core::ProcClass;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::new("tiny")
            .with_tree("fork", TaskTree::fork(8, 1.0, 1.0, 0.0))
            .with_tree("chain", TaskTree::chain(12, 2.0, 1.0, 0.5))
            .with_procs(&[2, 4])
    }

    #[test]
    fn runner_produces_every_scenario_in_cross_product_order() {
        let mut runner = CampaignRunner::new(2);
        let spec = tiny_spec();
        assert_eq!(spec.scenarios(runner.registry()), 2 * 2 * 4);
        let campaign = runner.run(&spec).unwrap();
        assert_eq!(campaign.records.len(), 16);
        // tree-major, then platform point, then scheduler
        assert_eq!(campaign.records[0].tree, "fork");
        assert_eq!(campaign.records[0].point, "p2");
        assert_eq!(campaign.records[0].scheduler, "ParSubtrees");
        assert_eq!(campaign.records[4].point, "p4");
        assert_eq!(campaign.records[8].tree, "chain");
        for r in &campaign.records {
            let out = r.outcome.as_ref().expect("flat campaign set is total");
            assert!(
                out.makespan >= out.ms_lb - 1e-9,
                "{} {}",
                r.tree,
                r.scheduler
            );
            assert!(out.peak_memory > 0.0);
        }
        // rows match for the aggregations
        let rows = campaign.rows();
        assert_eq!(rows.len(), 16);
        assert_eq!(rows[0].p, 2);
        assert_eq!(campaign.strict_rows().unwrap().len(), 16);
    }

    #[test]
    fn output_is_byte_identical_across_worker_counts() {
        let spec = tiny_spec();
        let reference = CampaignRunner::new(1).run(&spec).unwrap().to_jsonl();
        for workers in [2usize, 4] {
            let got = CampaignRunner::new(workers).run(&spec).unwrap().to_jsonl();
            assert_eq!(got, reference, "workers = {workers}");
        }
    }

    #[test]
    fn selection_resolves_aliases_and_rejects_unknown_names() {
        let mut runner = CampaignRunner::new(1);
        let spec = tiny_spec().with_schedulers(vec!["deepest".into(), "fifo".into()]);
        let campaign = runner.run(&spec).unwrap();
        assert_eq!(campaign.records.len(), 8);
        assert_eq!(campaign.records[0].scheduler, "ParDeepestFirst");
        assert_eq!(campaign.records[1].scheduler, "FifoList");
        let bad = tiny_spec().with_schedulers(vec!["nosuch".into()]);
        assert!(matches!(
            runner.run(&bad),
            Err(SchedError::UnknownScheduler { .. })
        ));
    }

    #[test]
    fn cap_factor_scales_with_each_tree_and_errors_stay_records() {
        let mut runner = CampaignRunner::new(2);
        // without a cap the capped scheduler errors — as a record
        let spec = tiny_spec().with_schedulers(vec!["membound".into()]);
        let campaign = runner.run(&spec).unwrap();
        assert_eq!(campaign.errors().count(), 4);
        assert!(matches!(
            campaign.records[0].outcome,
            Err(SchedError::MissingMemoryCap { .. })
        ));
        assert!(matches!(
            campaign.strict_rows(),
            Err(SchedError::MissingMemoryCap { .. })
        ));
        // with a factor, each tree is capped at factor x its own M_seq
        let spec = CampaignSpec::new("capped")
            .with_tree("fork", TaskTree::fork(8, 1.0, 1.0, 0.0))
            .with_tree("complete", TaskTree::complete(2, 4, 1.0, 2.0, 0.5))
            .with_platform(PlatformPoint::flat(4).with_cap_factor(1.0))
            .with_schedulers(vec!["membound".into()]);
        let campaign = runner.run(&spec).unwrap();
        for r in &campaign.records {
            let out = r.outcome.as_ref().unwrap();
            assert_eq!(
                r.platform.memory_cap(),
                Some(out.mem_ref),
                "{}: cap is 1.0 x this tree's reference",
                r.tree
            );
            assert!(out.peak_memory <= out.mem_ref * 1.0 + 1e-9, "{}", r.tree);
        }
        assert_eq!(campaign.records[0].point, "p4/cap1");
    }

    #[test]
    fn heterogeneous_points_serve_every_campaign_scheduler() {
        let mut runner = CampaignRunner::new(2);
        let spec = CampaignSpec::new("het")
            .with_tree("complete", TaskTree::complete(2, 5, 1.0, 2.0, 0.5))
            .with_platform(PlatformPoint::from_spec(
                PlatformSpec::parse_flags("2x2.0,2x1.0", Some("1e9@0,1e9@1"), None).unwrap(),
            ));
        let campaign = runner.run(&spec).unwrap();
        assert_eq!(campaign.records.len(), 4);
        for r in &campaign.records {
            assert_eq!(r.point, "2x2,2x1;1000000000@0,1000000000@1");
            let out = r.outcome.as_ref().expect("mixed speeds are served");
            assert_eq!(out.domain_peaks.len(), 2, "{}", r.scheduler);
        }
        assert!(!campaign.to_jsonl().contains("\"error\""));
    }

    #[test]
    fn comm_points_serve_list_schedulers_and_surface_typed_refusals() {
        let mut runner = CampaignRunner::new(2);
        let spec = CampaignSpec::new("comm")
            .with_tree("complete", TaskTree::complete(2, 5, 1.0, 2.0, 0.5))
            .with_platform(PlatformPoint::from_spec(
                PlatformSpec::parse_flags("2x2.0,2x1.0", Some("1e9@0,1e9@1"), Some("0-1:2"))
                    .unwrap(),
            ));
        let campaign = runner.run(&spec).unwrap();
        assert_eq!(campaign.records.len(), 4);
        let mut served = 0;
        let mut refused = 0;
        for r in &campaign.records {
            assert_eq!(r.point, "2x2,2x1;1000000000@0,1000000000@1;0-1:2");
            match &r.outcome {
                Ok(out) => {
                    served += 1;
                    assert_eq!(out.domain_peaks.len(), 2, "{}", r.scheduler);
                }
                Err(SchedError::UnsupportedPlatform { .. }) => refused += 1,
                Err(e) => panic!("{}: unexpected error {e}", r.scheduler),
            }
        }
        // the list heuristics serve comm, the subtree pair refuses typed
        assert_eq!((served, refused), (2, 2));
        // error records carry the platform object (with its comm matrix)
        // and the typed message
        let jsonl = campaign.to_jsonl();
        let error_line = jsonl
            .lines()
            .find(|l| l.contains("\"error\""))
            .expect("subtree schedulers refuse comm costs");
        assert!(
            error_line.contains("\"platform\":{\"classes\""),
            "{error_line}"
        );
        assert!(error_line.contains("\"comm\":[0,2,2,0]"), "{error_line}");
        assert!(error_line.contains("does not support"), "{error_line}");
    }

    #[test]
    fn records_render_the_shared_schedule_json_schema() {
        let mut runner = CampaignRunner::new(1);
        let spec = tiny_spec()
            .with_schedulers(vec!["deepest".into()])
            .with_metrics(vec![Metric::Speedup, Metric::Utilization, Metric::Makespan]);
        let campaign = runner.run(&spec).unwrap();
        let jsonl = campaign.to_jsonl();
        for line in jsonl.lines() {
            let pairs = treesched_serve::jsonl::parse_object(line).expect("valid JSON");
            let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(
                keys,
                [
                    "campaign",
                    "tree",
                    "point",
                    "seq",
                    "seed",
                    "scheduler",
                    "processors",
                    "tasks",
                    "makespan",
                    "makespan_lower_bound",
                    "peak_memory",
                    "memory_reference",
                    "cap",
                    "cap_violations",
                    "speedup",
                    "utilization",
                ],
                "duplicate base metrics must be skipped: {line}"
            );
            assert!(line.starts_with("{\"campaign\":\"tiny\","), "{line}");
        }
    }

    #[test]
    fn warm_campaign_passes_schedule_subtrees_without_cloning() {
        let mut runner = CampaignRunner::new(1);
        let spec = tiny_spec(); // default set includes the subtree heuristics
        runner.run(&spec).unwrap();
        let warm = runner.run(&spec).unwrap();
        assert!(warm.stats.subtree_views > 0, "{:?}", warm.stats);
        assert_eq!(
            warm.stats.subtree_clones, 0,
            "the warm hot path must not clone subtrees: {:?}",
            warm.stats
        );
        // LiuExact rides the view path too — zero clones on warm campaigns
        // for all three seq algos
        for seq in [
            SeqAlgo::LiuExact,
            SeqAlgo::BestPostorder,
            SeqAlgo::NaivePostorder,
        ] {
            let spec = tiny_spec().with_seqs(vec![seq]);
            runner.run(&spec).unwrap();
            let warm = runner.run(&spec).unwrap();
            assert!(warm.stats.subtree_views > 0, "{seq:?}: {:?}", warm.stats);
            assert_eq!(
                warm.stats.subtree_clones, 0,
                "{seq:?} must not clone subtrees: {:?}",
                warm.stats
            );
        }
    }

    #[test]
    fn time_us_is_selected_explicitly_and_absent_by_default() {
        let mut runner = CampaignRunner::new(1);
        let spec = tiny_spec()
            .with_schedulers(vec!["deepest".into()])
            .with_metrics(vec![Metric::TimeUs, Metric::Speedup])
            .with_time_reps(3);
        let campaign = runner.run(&spec).unwrap();
        for r in &campaign.records {
            let out = r.outcome.as_ref().unwrap();
            assert_eq!(out.metrics[0].0, Metric::TimeUs);
            assert!(out.metrics[0].1.is_some(), "timing comes from serving");
            assert!(out.metrics[1].1.is_some());
        }
        let jsonl = campaign.to_jsonl();
        for line in jsonl.lines() {
            assert!(line.contains("\"time_us\":"), "{line}");
        }
        // not selected -> not in the records (default goldens stay stable)
        let plain = runner
            .run(&tiny_spec().with_schedulers(vec!["deepest".into()]))
            .unwrap();
        assert!(!plain.to_jsonl().contains("time_us"));
    }

    #[test]
    fn compare_separates_timing_regressions_from_stable_drift() {
        // fabricated dumps keep the verdicts deterministic
        let old = "{\"campaign\":\"c\",\"makespan\":3,\"time_us\":100}\n\
                   {\"campaign\":\"c\",\"makespan\":5,\"time_us\":100}\n";
        let same_but_slower = "{\"campaign\":\"c\",\"makespan\":3,\"time_us\":150}\n\
                   {\"campaign\":\"c\",\"makespan\":5,\"time_us\":130}\n";
        match compare_campaigns(old, same_but_slower, 20.0).unwrap() {
            CampaignComparison::TimingRegression {
                old_us,
                new_us,
                tolerance_pct,
            } => {
                assert_eq!((old_us, new_us, tolerance_pct), (200.0, 280.0, 20.0));
            }
            other => panic!("expected a timing regression, got {other:?}"),
        }
        assert_eq!(
            compare_campaigns(old, same_but_slower, 40.1).unwrap(),
            CampaignComparison::Ok {
                old_us: 200.0,
                new_us: 280.0
            }
        );
        // a changed schedule is a mismatch, never a timing verdict
        let drifted = "{\"campaign\":\"c\",\"makespan\":3,\"time_us\":1}\n\
                   {\"campaign\":\"c\",\"makespan\":6,\"time_us\":1}\n";
        match compare_campaigns(old, drifted, 1e9).unwrap() {
            CampaignComparison::StableMismatch { line, detail } => {
                assert_eq!(line, 2);
                assert!(detail.contains("makespan"), "{detail}");
            }
            other => panic!("expected a mismatch, got {other:?}"),
        }
        // record counts are stable fields too
        match compare_campaigns(old, "{\"campaign\":\"c\"}\n", 1e9).unwrap() {
            CampaignComparison::StableMismatch { line: 2, .. } => {}
            other => panic!("expected a count mismatch, got {other:?}"),
        }
        // timing-free baselines compare stable-only
        let bare = "{\"campaign\":\"c\",\"makespan\":3}\n\
                   {\"campaign\":\"c\",\"makespan\":5}\n";
        assert_eq!(
            compare_campaigns(bare, bare, 0.0).unwrap(),
            CampaignComparison::Ok {
                old_us: 0.0,
                new_us: 0.0
            }
        );
        // and real runs with identical specs always pass the stable gate
        let mut runner = CampaignRunner::new(2);
        let spec = tiny_spec().with_metrics(vec![Metric::TimeUs]);
        let a = runner.run(&spec).unwrap().to_jsonl();
        let b = runner.run(&spec).unwrap().to_jsonl();
        match compare_campaigns(&a, &b, 1e9).unwrap() {
            CampaignComparison::Ok { old_us, .. } => assert!(old_us >= 0.0),
            other => panic!("identical specs must compare stable: {other:?}"),
        }
    }

    #[test]
    fn seq_and_seed_grids_fan_out() {
        let mut runner = CampaignRunner::new(2);
        let spec = CampaignSpec::new("seqs")
            .with_tree("complete", TaskTree::complete(2, 4, 1.0, 2.0, 0.5))
            .with_procs(&[4])
            .with_schedulers(vec!["subtrees".into(), "random".into()])
            .with_seqs(vec![SeqAlgo::NaivePostorder, SeqAlgo::BestPostorder])
            .with_seed(9);
        let campaign = runner.run(&spec).unwrap();
        assert_eq!(campaign.records.len(), 4);
        assert_eq!(campaign.records[0].seq, SeqAlgo::NaivePostorder);
        assert_eq!(campaign.records[2].seq, SeqAlgo::BestPostorder);
        assert!(campaign.records.iter().all(|r| r.seed == Some(9)));
        assert!(campaign.to_jsonl().contains("\"seq\":\"naive\""));
        assert!(campaign.to_jsonl().contains("\"seed\":9"));
    }

    #[test]
    fn custom_registry_schedulers_join_the_default_selection() {
        struct Constant;
        impl treesched_core::Scheduler for Constant {
            fn name(&self) -> &'static str {
                "TestCampaigner"
            }
            fn schedule(
                &self,
                req: &treesched_core::Request<'_>,
                scratch: &mut treesched_core::Scratch,
            ) -> Result<treesched_core::Outcome, SchedError> {
                SchedulerRegistry::standard()
                    .get("fifo")
                    .unwrap()
                    .schedule(req, scratch)
            }
        }
        let mut registry = SchedulerRegistry::standard();
        registry.register(Box::new(Constant), &[], true).unwrap();
        let mut runner = CampaignRunner::over(Arc::new(registry), 2);
        let spec = CampaignSpec::new("custom")
            .with_tree("fork", TaskTree::fork(6, 1.0, 1.0, 0.0))
            .with_procs(&[2]);
        let campaign = runner.run(&spec).unwrap();
        assert!(
            campaign
                .records
                .iter()
                .any(|r| r.scheduler == "TestCampaigner"),
            "campaign-flagged registration joins the default selection"
        );
    }

    #[test]
    fn ensure_scheduler_adds_missing_baselines_only() {
        let registry = SchedulerRegistry::standard();
        let mut spec = tiny_spec(); // default selection: registry decides
        assert!(!spec.ensure_scheduler(&registry, "ParSubtrees"));
        let mut spec = tiny_spec().with_schedulers(vec!["deepest".into()]);
        assert!(spec.ensure_scheduler(&registry, "ParSubtrees"));
        assert_eq!(
            spec.schedulers.as_ref().unwrap(),
            &vec!["deepest".to_string(), "ParSubtrees".to_string()]
        );
        // an alias of a present scheduler is recognized as present
        let mut spec = tiny_spec().with_schedulers(vec!["subtrees".into()]);
        assert!(!spec.ensure_scheduler(&registry, "ParSubtrees"));
    }

    #[test]
    fn spec_files_parse_and_reject_bad_fields() {
        let dir = std::env::temp_dir().join("treesched-campaign-spec");
        std::fs::create_dir_all(&dir).unwrap();
        let tree_path = dir.join("spec-fork.tree");
        std::fs::write(
            &tree_path,
            treesched_model::io::to_text(&TaskTree::fork(4, 1.0, 1.0, 0.0)),
        )
        .unwrap();
        let text = format!(
            concat!(
                "{{\"name\":\"mixed\",\"trees\":[\"{}\"],",
                "\"schedulers\":[\"deepest\",\"cp\"],",
                "\"platforms\":[{{\"processors\":4}},",
                "{{\"processors\":8,\"cap_factor\":1.5}},",
                "{{\"speeds\":\"2x2.0,2x1.0\",\"domains\":\"1e9@0,1e9@1\"}}],",
                "\"seq\":[\"best\",\"liu\"],\"seed\":7,",
                "\"metrics\":[\"speedup\"],\"workers\":2}}"
            ),
            tree_path.display()
        );
        let spec = spec_from_json(&text).unwrap();
        assert_eq!(spec.name, "mixed");
        assert_eq!(spec.trees.len(), 1);
        assert_eq!(spec.platforms.len(), 3);
        assert_eq!(spec.platforms[0].label, "p4");
        assert_eq!(spec.platforms[1].label, "p8/cap1.5");
        assert_eq!(spec.platforms[1].cap_factor, Some(1.5));
        assert_eq!(
            spec.platforms[2].spec.classes,
            vec![ProcClass::new(2, 2.0), ProcClass::new(2, 1.0)]
        );
        assert_eq!(spec.seqs, vec![SeqAlgo::BestPostorder, SeqAlgo::LiuExact]);
        assert_eq!(spec.seed, Some(7));
        assert_eq!(spec.metrics, vec![Metric::Speedup]);
        assert_eq!(spec.workers, Some(2));
        // the parsed spec actually runs
        let campaign = CampaignRunner::new(2).run(&spec).unwrap();
        assert_eq!(campaign.records.len(), 3 * 2 * 2); // 1 tree x 3 points x 2 seqs x 2 scheds

        for (bad, needle) in [
            ("{}", "platforms"),
            ("{\"platforms\":[]}", "platforms"),
            ("{\"platforms\":[{}]}", "needs `processors` or `speeds`"),
            (
                "{\"platforms\":[{\"processors\":2,\"speeds\":\"2x1\"}]}",
                "not both",
            ),
            (
                "{\"platforms\":[{\"processors\":2,\"domains\":\"5\"}]}",
                "needs `speeds`",
            ),
            (
                "{\"platforms\":[{\"processors\":2,\"cap_factor\":0}]}",
                "positive",
            ),
            ("{\"platforms\":[{\"speeds\":\"junk\"}]}", "--speeds"),
            ("{\"platforms\":[{\"bogus\":1}]}", "bogus"),
            (
                "{\"corpus\":\"giant\",\"platforms\":[{\"processors\":2}]}",
                "scale",
            ),
            (
                "{\"seq\":[\"fast\"],\"platforms\":[{\"processors\":2}]}",
                "seq",
            ),
            (
                "{\"metrics\":[\"magic\"],\"platforms\":[{\"processors\":2}]}",
                "metric",
            ),
            (
                "{\"workers\":0,\"platforms\":[{\"processors\":2}]}",
                "workers",
            ),
            (
                "{\"trees\":[\"/nonexistent/x.tree\"],\"platforms\":[{\"processors\":2}]}",
                "cannot read",
            ),
            ("{\"bogus\":1,\"platforms\":[{\"processors\":2}]}", "bogus"),
            ("not json", "expected"),
        ] {
            let err = spec_from_json(bad).unwrap_err().to_string();
            assert!(err.contains(needle), "{bad}: {err}");
        }
    }

    #[test]
    fn spec_errors_are_typed() {
        // misspelled top-level keys are the UnknownKey variant, not prose
        let err = spec_from_json("{\"scheduler\":[\"cp\"],\"platforms\":[{\"processors\":2}]}")
            .unwrap_err();
        assert!(
            matches!(&err, SpecError::UnknownKey(k) if k == "scheduler"),
            "{err:?}"
        );
        assert_eq!(err.to_string(), "unknown spec key `scheduler`");
        let err = spec_from_json(
            "{\"trees\":[\"/nonexistent/x.tree\"],\"platforms\":[{\"processors\":2}]}",
        )
        .unwrap_err();
        assert!(
            matches!(&err, SpecError::Io { path, .. } if path == "/nonexistent/x.tree"),
            "{err:?}"
        );
    }

    #[test]
    fn trees_file_entries_load_through_the_toolbox() {
        let fixture = |name: &str| {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../trees/tests/data")
                .join(name)
                .to_string_lossy()
                .into_owned()
        };
        let text = format!(
            concat!(
                "{{\"trees_file\":[\"{}\",",
                "{{\"path\":\"{}\",\"ordering\":\"natural\",\"name\":\"band8\"}}],",
                "\"platforms\":[{{\"processors\":2}}]}}"
            ),
            fixture("fork.nwk"),
            fixture("band8.mtx")
        );
        let spec = spec_from_json(&text).unwrap();
        assert_eq!(spec.trees.len(), 2);
        assert_eq!(spec.trees[0].tree.len(), 6); // attributed Newick fixture
        assert_eq!(spec.trees[1].name, "band8");
        assert_eq!(spec.trees[1].tree.len(), 8); // natural-order elimination tree

        // and the loaded corpus actually runs as a campaign
        let spec = CampaignSpec {
            schedulers: Some(vec!["deepest".into()]),
            ..spec
        };
        let campaign = CampaignRunner::new(1).run(&spec).unwrap();
        assert_eq!(campaign.records.len(), 2);
        assert!(campaign
            .records
            .iter()
            .all(|r| r.outcome.as_ref().unwrap().makespan > 0.0));

        // typed failures for the new key
        let err = spec_from_json(
            "{\"trees_file\":[{\"path\":\"x\",\"ordering\":\"best\"}],\
             \"platforms\":[{\"processors\":2}]}",
        )
        .unwrap_err();
        assert_eq!(
            err.to_string(),
            "unknown `trees_file` ordering `best` (natural, amd, rcm)"
        );
        let err = spec_from_json(
            "{\"trees_file\":[{\"ordering\":\"amd\"}],\"platforms\":[{\"processors\":2}]}",
        )
        .unwrap_err();
        assert_eq!(err.to_string(), "`trees_file` entry needs a `path`");
        let bad = fixture("band8.mtx");
        let err = spec_from_json(&format!(
            "{{\"trees_file\":[{{\"path\":\"{bad}\",\"amalg\":0}}],\
             \"platforms\":[{{\"processors\":2}}]}}"
        ))
        .unwrap_err();
        assert_eq!(err.to_string(), "`trees_file` amalg must be at least 1");
    }

    #[test]
    fn corpus_and_explicit_trees_combine() {
        let spec = CampaignSpec::new("both")
            .with_tree("fork", TaskTree::fork(4, 1.0, 1.0, 0.0))
            .with_corpus(Scale::Small);
        let trees = spec.resolve_trees();
        assert!(trees.len() > 1);
        assert_eq!(trees[0].name, "fork");
    }
}
