//! Minimal argument parsing shared by the experiment binaries (no external
//! dependency needed for `--scale`, `--procs`, `--csv`).

use treesched_core::SeqAlgo;
use treesched_gen::Scale;

/// Options common to every experiment binary.
#[derive(Clone, Debug)]
pub struct Options {
    /// Corpus scale (`--scale small|medium|large`, default medium).
    pub scale: Scale,
    /// Processor counts (`--procs 2,4,8`, default the paper's 2..32).
    pub procs: Vec<u32>,
    /// Scheduler selection (`--schedulers deepest,fifo`): registry names or
    /// aliases. `None` means the registry's campaign set.
    pub schedulers: Option<Vec<String>>,
    /// Platform memory cap as a multiple of each tree's sequential
    /// reference peak (`--cap-factor 1.5`); required for the memory-capped
    /// schedulers, ignored by the rest.
    pub cap_factor: Option<f64>,
    /// Optional CSV dump path (`--csv out.csv`).
    pub csv: Option<String>,
    /// Machine-readable campaign JSONL on stdout instead of the text
    /// report (`--json`): one record per scenario plus summary records,
    /// all through the shared `JsonRecord` builder.
    pub json: bool,
    /// Worker-count sweep for the serving benchmark (`--workers 1,2,4`).
    pub workers: Vec<usize>,
    /// Extra heterogeneous platform point: processor classes as
    /// `COUNTxSPEED,..` (`--speeds 2x2.0,2x1.0`).
    pub speeds: Option<String>,
    /// Memory domains of the heterogeneous point as `CAP@CLASSES,..`
    /// (`--domains 1e9@0,1e9@1`); needs `--speeds`.
    pub domains: Option<String>,
    /// Cross-domain transfer costs of the heterogeneous point as
    /// `SRC-DST:COST,..` (`--comm 0-1:2`); needs `--domains`.
    pub comm: Option<String>,
    /// Sequential sub-algorithm grid (`--seq best,liu`; default the
    /// paper's best postorder).
    pub seqs: Vec<SeqAlgo>,
    /// Seed for randomized schedulers (`--seed N`).
    pub seed: Option<u64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: Scale::Medium,
            procs: crate::harness::PAPER_PROCS.to_vec(),
            schedulers: None,
            cap_factor: None,
            csv: None,
            json: false,
            workers: vec![1, 2, 4],
            speeds: None,
            domains: None,
            comm: None,
            seqs: vec![SeqAlgo::default()],
            seed: None,
        }
    }
}

impl Options {
    /// The scheduler names to run: the explicit `--schedulers` selection,
    /// or the registry's campaign set.
    pub fn scheduler_names(&self, registry: &treesched_core::SchedulerRegistry) -> Vec<String> {
        match &self.schedulers {
            Some(names) => names.clone(),
            None => registry.campaign().map(|e| e.name().to_string()).collect(),
        }
    }
}

/// Parses `args` (without the program name). Returns an error message
/// suitable for printing alongside [`USAGE`].
pub fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                opts.scale = match v.as_str() {
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    "large" => Scale::Large,
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--procs" => {
                let v = it.next().ok_or("--procs needs a value")?;
                let parsed: Result<Vec<u32>, _> =
                    v.split(',').map(|s| s.trim().parse::<u32>()).collect();
                opts.procs = parsed.map_err(|e| format!("bad --procs: {e}"))?;
                if opts.procs.is_empty() || opts.procs.contains(&0) {
                    return Err("--procs needs positive processor counts".into());
                }
            }
            "--schedulers" => {
                let v = it.next().ok_or("--schedulers needs a value")?;
                let names: Vec<String> = v
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if names.is_empty() {
                    return Err("--schedulers needs at least one name".into());
                }
                opts.schedulers = Some(names);
            }
            "--cap-factor" => {
                let v = it.next().ok_or("--cap-factor needs a value")?;
                let f: f64 = v.parse().map_err(|_| format!("bad --cap-factor `{v}`"))?;
                if !f.is_finite() || f <= 0.0 {
                    return Err("--cap-factor must be a positive finite number".into());
                }
                opts.cap_factor = Some(f);
            }
            "--csv" => {
                opts.csv = Some(it.next().ok_or("--csv needs a path")?.clone());
            }
            "--json" => opts.json = true,
            "--speeds" => {
                opts.speeds = Some(
                    it.next()
                        .ok_or("--speeds needs COUNTxSPEED entries")?
                        .clone(),
                );
            }
            "--domains" => {
                opts.domains = Some(
                    it.next()
                        .ok_or("--domains needs CAP@CLASSES entries")?
                        .clone(),
                );
            }
            "--comm" => {
                opts.comm = Some(
                    it.next()
                        .ok_or("--comm needs SRC-DST:COST entries")?
                        .clone(),
                );
            }
            "--seq" => {
                let v = it.next().ok_or("--seq needs best|naive|liu names")?;
                let parsed: Option<Vec<SeqAlgo>> = v
                    .split(',')
                    .map(|s| treesched_core::SeqAlgo::by_name(s.trim()))
                    .collect();
                opts.seqs = parsed.ok_or_else(|| format!("bad --seq `{v}`"))?;
                if opts.seqs.is_empty() {
                    return Err("--seq needs at least one algorithm".into());
                }
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = Some(v.parse().map_err(|_| format!("bad --seed `{v}`"))?);
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                let parsed: Result<Vec<usize>, _> =
                    v.split(',').map(|s| s.trim().parse::<usize>()).collect();
                opts.workers = parsed.map_err(|e| format!("bad --workers: {e}"))?;
                if opts.workers.is_empty() || opts.workers.contains(&0) {
                    return Err("--workers needs positive worker counts".into());
                }
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Usage string for the experiment binaries.
pub const USAGE: &str = "options:
  --scale small|medium|large   corpus size (default: medium)
  --procs P1,P2,...            processor counts (default: 2,4,8,16,32)
  --schedulers N1,N2,...       registry names/aliases (default: campaign set;
                               memory-capped ones also need --cap-factor)
  --cap-factor F               memory cap = F x each tree's sequential peak
  --speeds C1xS1,...           extra heterogeneous platform point
  --domains CAP@CLASSES,...    memory domains of that point (needs --speeds)
  --comm SRC-DST:COST,...      cross-domain transfer costs (needs --domains)
  --seq A1,A2,...              sequential sub-algorithm grid (default: best)
  --seed N                     seed for randomized schedulers
  --csv PATH                   dump raw scenario rows as CSV
  --json                       campaign JSONL records on stdout
  --workers W1,W2,...          worker sweep for serve_bench (default: 1,2,4)";

/// Parses the process arguments or exits with the binary's usage text —
/// the shared `main` preamble of every experiment binary.
pub fn parse_or_exit(binary: &str) -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("usage: {binary} [options]\n{USAGE}");
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.scale, Scale::Medium);
        assert_eq!(o.procs, vec![2, 4, 8, 16, 32]);
        assert!(o.csv.is_none());
    }

    #[test]
    fn full_parse() {
        let o = parse(&s(&[
            "--scale",
            "small",
            "--procs",
            "2,8",
            "--schedulers",
            "deepest, fifo",
            "--csv",
            "x.csv",
        ]))
        .unwrap();
        assert_eq!(o.scale, Scale::Small);
        assert_eq!(o.procs, vec![2, 8]);
        assert_eq!(
            o.schedulers,
            Some(vec!["deepest".to_string(), "fifo".to_string()])
        );
        assert_eq!(o.csv.as_deref(), Some("x.csv"));
    }

    #[test]
    fn scheduler_names_default_to_campaign() {
        let registry = treesched_core::SchedulerRegistry::standard();
        let o = parse(&[]).unwrap();
        assert_eq!(
            o.scheduler_names(&registry),
            vec![
                "ParSubtrees".to_string(),
                "ParSubtreesOptim".to_string(),
                "ParInnerFirst".to_string(),
                "ParDeepestFirst".to_string(),
            ]
        );
        let o = parse(&s(&["--schedulers", "cp"])).unwrap();
        assert_eq!(o.scheduler_names(&registry), vec!["cp".to_string()]);
    }

    #[test]
    fn cap_factor_parses_and_validates() {
        assert_eq!(
            parse(&s(&["--cap-factor", "1.5"])).unwrap().cap_factor,
            Some(1.5)
        );
        assert!(parse(&s(&["--cap-factor", "0"])).is_err());
        assert!(parse(&s(&["--cap-factor", "inf"])).is_err());
        assert!(parse(&s(&["--cap-factor", "x"])).is_err());
    }

    #[test]
    fn json_and_workers_flags() {
        let o = parse(&[]).unwrap();
        assert!(!o.json);
        assert_eq!(o.workers, vec![1, 2, 4]);
        let o = parse(&s(&["--json", "--workers", "2, 8"])).unwrap();
        assert!(o.json);
        assert_eq!(o.workers, vec![2, 8]);
    }

    #[test]
    fn campaign_grid_flags() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.seqs, vec![SeqAlgo::default()]);
        assert_eq!(o.seed, None);
        assert_eq!(o.speeds, None);
        let o = parse(&s(&[
            "--speeds",
            "2x2.0,2x1.0",
            "--domains",
            "1e9@0,1e9@1",
            "--seq",
            "naive,liu",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert_eq!(o.speeds.as_deref(), Some("2x2.0,2x1.0"));
        assert_eq!(o.domains.as_deref(), Some("1e9@0,1e9@1"));
        assert_eq!(o.seqs, vec![SeqAlgo::NaivePostorder, SeqAlgo::LiuExact]);
        assert_eq!(o.seed, Some(7));
        assert!(parse(&s(&["--seq", "fast"])).is_err());
        assert!(parse(&s(&["--seed", "x"])).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&s(&["--scale", "giant"])).is_err());
        assert!(parse(&s(&["--procs", "0"])).is_err());
        assert!(parse(&s(&["--procs", "a,b"])).is_err());
        assert!(parse(&s(&["--schedulers", " , "])).is_err());
        assert!(parse(&s(&["--workers", "0"])).is_err());
        assert!(parse(&s(&["--workers", "x"])).is_err());
        assert!(parse(&s(&["--bogus"])).is_err());
        assert!(parse(&s(&["--help"])).is_err());
    }
}
