//! Minimal argument parsing shared by the experiment binaries (no external
//! dependency needed for `--scale`, `--procs`, `--csv`).

use treesched_gen::Scale;

/// Options common to every experiment binary.
#[derive(Clone, Debug)]
pub struct Options {
    /// Corpus scale (`--scale small|medium|large`, default medium).
    pub scale: Scale,
    /// Processor counts (`--procs 2,4,8`, default the paper's 2..32).
    pub procs: Vec<u32>,
    /// Optional CSV dump path (`--csv out.csv`).
    pub csv: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: Scale::Medium,
            procs: crate::harness::PAPER_PROCS.to_vec(),
            csv: None,
        }
    }
}

/// Parses `args` (without the program name). Returns an error message
/// suitable for printing alongside [`USAGE`].
pub fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                opts.scale = match v.as_str() {
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    "large" => Scale::Large,
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--procs" => {
                let v = it.next().ok_or("--procs needs a value")?;
                let parsed: Result<Vec<u32>, _> =
                    v.split(',').map(|s| s.trim().parse::<u32>()).collect();
                opts.procs = parsed.map_err(|e| format!("bad --procs: {e}"))?;
                if opts.procs.is_empty() || opts.procs.contains(&0) {
                    return Err("--procs needs positive processor counts".into());
                }
            }
            "--csv" => {
                opts.csv = Some(it.next().ok_or("--csv needs a path")?.clone());
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Usage string for the experiment binaries.
pub const USAGE: &str = "options:
  --scale small|medium|large   corpus size (default: medium)
  --procs P1,P2,...            processor counts (default: 2,4,8,16,32)
  --csv PATH                   dump raw scenario rows as CSV";

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.scale, Scale::Medium);
        assert_eq!(o.procs, vec![2, 4, 8, 16, 32]);
        assert!(o.csv.is_none());
    }

    #[test]
    fn full_parse() {
        let o = parse(&s(&[
            "--scale", "small", "--procs", "2,8", "--csv", "x.csv",
        ]))
        .unwrap();
        assert_eq!(o.scale, Scale::Small);
        assert_eq!(o.procs, vec![2, 8]);
        assert_eq!(o.csv.as_deref(), Some("x.csv"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&s(&["--scale", "giant"])).is_err());
        assert!(parse(&s(&["--procs", "0"])).is_err());
        assert!(parse(&s(&["--procs", "a,b"])).is_err());
        assert!(parse(&s(&["--bogus"])).is_err());
        assert!(parse(&s(&["--help"])).is_err());
    }
}
