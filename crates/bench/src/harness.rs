//! Experiment driver: runs schedulers from the
//! [`treesched_core::SchedulerRegistry`] over the corpus for every
//! processor count and aggregates the paper's Table 1 and Figures 6–8.
//!
//! The campaign set is whatever the registry marks as campaign members
//! (the paper's four heuristics in [`SchedulerRegistry::standard`]) — a
//! newly registered campaign scheduler automatically joins every table and
//! figure. Rows carry the scheduler's canonical registry name.

use crate::stats::{cross, mean, Cross};
use std::fmt::Write as _;
use treesched_core::{
    makespan_lower_bound, Platform, Request, SchedError, Scheduler, SchedulerRegistry, Scratch,
    SeqAlgo,
};
use treesched_gen::CorpusEntry;

/// The processor counts of the paper's campaign (§6.2).
pub const PAPER_PROCS: [u32; 5] = [2, 4, 8, 16, 32];

/// One measured scenario: a scheduler on a tree with `p` processors.
#[derive(Clone, Debug)]
pub struct Row {
    /// Corpus entry name.
    pub tree: String,
    /// Number of tasks of the tree.
    pub nodes: usize,
    /// Processor count.
    pub p: u32,
    /// Canonical registry name of the scheduler measured.
    pub scheduler: String,
    /// Achieved makespan.
    pub makespan: f64,
    /// Achieved peak memory.
    pub memory: f64,
    /// Makespan lower bound `max(W/p, CP)`.
    pub ms_lb: f64,
    /// Sequential memory reference (optimal postorder peak).
    pub mem_ref: f64,
}

/// Runs the registry's campaign schedulers on every `(tree, p)` scenario,
/// in parallel across corpus entries.
pub fn run_corpus(corpus: &[CorpusEntry], ps: &[u32]) -> Result<Vec<Row>, SchedError> {
    let registry = SchedulerRegistry::standard();
    let names: Vec<String> = registry.campaign().map(|e| e.name().to_string()).collect();
    run_corpus_with(corpus, ps, &registry, &names, None)
}

/// As [`run_corpus`], but over an explicit registry and scheduler-name
/// selection (canonical names or aliases). Rows always record canonical
/// names, in the order the names were given.
///
/// `cap_factor` sets each request's platform memory cap to
/// `factor × M_seq(tree)` (the sequential reference peak) — required for
/// memory-capped schedulers to participate; uncapped schedulers ignore it.
pub fn run_corpus_with(
    corpus: &[CorpusEntry],
    ps: &[u32],
    registry: &SchedulerRegistry,
    names: &[String],
    cap_factor: Option<f64>,
) -> Result<Vec<Row>, SchedError> {
    let scheds: Vec<&dyn Scheduler> = names
        .iter()
        .map(|n| registry.get(n))
        .collect::<Result<_, _>>()?;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(corpus.len().max(1));
    let chunk = corpus.len().div_ceil(threads.max(1));
    let mut all: Vec<Row> = std::thread::scope(|scope| {
        let handles: Vec<_> = corpus
            .chunks(chunk.max(1))
            .map(|entries| {
                let scheds = &scheds;
                scope.spawn(move || run_entries(entries, ps, scheds, cap_factor))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Result<Vec<_>, SchedError>>()
            .map(|vecs| vecs.into_iter().flatten().collect())
    })?;
    // deterministic output order regardless of thread interleaving; the
    // stable sort keeps the scheduler selection order within each group
    all.sort_by(|a, b| a.tree.cmp(&b.tree).then(a.p.cmp(&b.p)));
    Ok(all)
}

fn run_entries(
    entries: &[CorpusEntry],
    ps: &[u32],
    scheds: &[&dyn Scheduler],
    cap_factor: Option<f64>,
) -> Result<Vec<Row>, SchedError> {
    let mut rows = Vec::with_capacity(entries.len() * ps.len() * scheds.len());
    let mut scratch = Scratch::new();
    for e in entries {
        let tree = &e.tree;
        // cached inside the scratch: every scheduler and p reuses it
        let (_, mem_ref) = scratch.traversal(tree, SeqAlgo::default());
        for &p in ps {
            let ms_lb = makespan_lower_bound(tree, p);
            let mut platform = Platform::new(p);
            if let Some(factor) = cap_factor {
                platform = platform.with_memory_cap(factor * mem_ref);
            }
            let req = Request::new(tree, platform);
            for s in scheds {
                let out = s.schedule(&req, &mut scratch)?;
                rows.push(Row {
                    tree: e.name.clone(),
                    nodes: tree.len(),
                    p,
                    scheduler: s.name().to_string(),
                    makespan: out.eval.makespan,
                    memory: out.eval.peak_memory,
                    ms_lb,
                    mem_ref,
                });
            }
        }
    }
    Ok(rows)
}

/// Distinct scheduler names in first-appearance order — the selection
/// order of the `run_corpus*` call that produced `rows`.
pub fn scheduler_names(rows: &[Row]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for r in rows {
        if !names.contains(&r.scheduler) {
            names.push(r.scheduler.clone());
        }
    }
    names
}

/// One line of the paper's Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Canonical scheduler name.
    pub scheduler: String,
    /// % of scenarios where the scheduler achieves the best memory of the
    /// compared set (ties count).
    pub best_mem_pct: f64,
    /// % of scenarios within 5% of the best memory.
    pub within5_mem_pct: f64,
    /// Average deviation from the sequential memory reference, in %
    /// (`(mem / mem_ref − 1) · 100`).
    pub avg_dev_mem_pct: f64,
    /// % of scenarios achieving the best makespan of the compared set.
    pub best_ms_pct: f64,
    /// % of scenarios within 5% of the best makespan.
    pub within5_ms_pct: f64,
    /// Average deviation from the best makespan, in %.
    pub avg_dev_ms_pct: f64,
}

/// Scenario key: rows are grouped by `(tree, p)` before computing
/// best-of-set statistics.
fn scenario_groups(rows: &[Row]) -> Vec<&[Row]> {
    // rows are sorted by (tree, p): each group is one consecutive run
    let mut groups = Vec::new();
    let mut start = 0;
    while start < rows.len() {
        let mut end = start + 1;
        while end < rows.len() && rows[end].tree == rows[start].tree && rows[end].p == rows[start].p
        {
            end += 1;
        }
        groups.push(&rows[start..end]);
        start = end;
    }
    groups
}

const REL_EPS: f64 = 1e-9;

/// Aggregates [`Row`]s into the paper's Table 1, one line per scheduler
/// present in `rows`.
pub fn table1(rows: &[Row]) -> Vec<Table1Row> {
    let groups = scenario_groups(rows);
    let names = scheduler_names(rows);
    let mut out = Vec::with_capacity(names.len());
    for name in names {
        let mut best_mem = 0usize;
        let mut within5_mem = 0usize;
        let mut dev_mem = Vec::new();
        let mut best_ms = 0usize;
        let mut within5_ms = 0usize;
        let mut dev_ms = Vec::new();
        let mut n = 0usize;
        for g in &groups {
            let Some(row) = g.iter().find(|r| r.scheduler == name) else {
                continue;
            };
            let gbest_mem = g.iter().map(|r| r.memory).fold(f64::INFINITY, f64::min);
            let gbest_ms = g.iter().map(|r| r.makespan).fold(f64::INFINITY, f64::min);
            n += 1;
            if row.memory <= gbest_mem * (1.0 + REL_EPS) {
                best_mem += 1;
            }
            if row.memory <= gbest_mem * 1.05 {
                within5_mem += 1;
            }
            dev_mem.push((row.memory / row.mem_ref - 1.0) * 100.0);
            if row.makespan <= gbest_ms * (1.0 + REL_EPS) {
                best_ms += 1;
            }
            if row.makespan <= gbest_ms * 1.05 {
                within5_ms += 1;
            }
            dev_ms.push((row.makespan / gbest_ms - 1.0) * 100.0);
        }
        let pct = |c: usize| 100.0 * c as f64 / n.max(1) as f64;
        out.push(Table1Row {
            scheduler: name,
            best_mem_pct: pct(best_mem),
            within5_mem_pct: pct(within5_mem),
            avg_dev_mem_pct: mean(&dev_mem),
            best_ms_pct: pct(best_ms),
            within5_ms_pct: pct(within5_ms),
            avg_dev_ms_pct: mean(&dev_ms),
        });
    }
    out
}

/// Renders Table 1 in the paper's layout.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<18} | {:>11} {:>12} {:>14} | {:>13} {:>14} {:>13}",
        "Scheduler",
        "Best memory",
        "Within 5% of",
        "Avg. dev. from",
        "Best makespan",
        "Within 5% of",
        "Avg. dev. from"
    );
    let _ = writeln!(
        s,
        "{:<18} | {:>11} {:>12} {:>14} | {:>13} {:>14} {:>13}",
        "", "", "best memory", "seq. memory", "", "best makespan", "best makespan"
    );
    let _ = writeln!(s, "{}", "-".repeat(112));
    for r in rows {
        let _ = writeln!(
            s,
            "{:<18} | {:>10.1}% {:>11.1}% {:>13.1}% | {:>12.1}% {:>13.1}% {:>12.1}%",
            r.scheduler,
            r.best_mem_pct,
            r.within5_mem_pct,
            r.avg_dev_mem_pct,
            r.best_ms_pct,
            r.within5_ms_pct,
            r.avg_dev_ms_pct
        );
    }
    s
}

/// One figure series: a scheduler name, its scatter points, and their
/// summary cross.
pub type FigSeries = (String, Vec<(f64, f64)>, Cross);

/// Figure 6 series: per scheduler, the scatter points
/// `(makespan / ms_lb, memory / mem_ref)` and their summary cross.
pub fn fig6(rows: &[Row]) -> Vec<FigSeries> {
    scheduler_names(rows)
        .into_iter()
        .map(|name| {
            let pts: Vec<(f64, f64)> = rows
                .iter()
                .filter(|r| r.scheduler == name)
                .map(|r| (r.makespan / r.ms_lb, r.memory / r.mem_ref))
                .collect();
            let c = cross(&pts);
            (name, pts, c)
        })
        .collect()
}

/// Figures 7/8: scatter points normalized by a baseline scheduler within
/// each `(tree, p)` scenario; the baseline itself is omitted (it would be
/// the constant point `(1, 1)`).
pub fn fig_normalized(rows: &[Row], baseline: &str) -> Vec<FigSeries> {
    let groups = scenario_groups(rows);
    let mut out = Vec::new();
    for name in scheduler_names(rows) {
        if name == baseline {
            continue;
        }
        let mut pts = Vec::new();
        for g in &groups {
            let (Some(b), Some(r)) = (
                g.iter().find(|r| r.scheduler == baseline),
                g.iter().find(|r| r.scheduler == name),
            ) else {
                continue;
            };
            if b.makespan > 0.0 && b.memory > 0.0 {
                pts.push((r.makespan / b.makespan, r.memory / b.memory));
            }
        }
        let c = cross(&pts);
        out.push((name, pts, c));
    }
    out
}

/// Renders a figure's crosses as the text series the paper's plots encode.
pub fn render_crosses(title: &str, xlabel: &str, ylabel: &str, series: &[FigSeries]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(s, "  x = {xlabel}; y = {ylabel}");
    let _ = writeln!(
        s,
        "  {:<18} {:>7} {:>17} {:>9} {:>19} {:>7}",
        "scheduler", "x-mean", "x-[p10,p90]", "y-mean", "y-[p10,p90]", "points"
    );
    for (name, pts, c) in series {
        let _ = writeln!(
            s,
            "  {:<18} {:>7.3} [{:>6.3},{:>7.3}] {:>9.3} [{:>7.3},{:>8.3}] {:>7}",
            name,
            c.x_mean,
            c.x_p10,
            c.x_p90,
            c.y_mean,
            c.y_p10,
            c.y_p90,
            pts.len()
        );
    }
    s
}

/// CSV dump of the raw scenario rows (for external plotting).
pub fn to_csv(rows: &[Row]) -> String {
    let mut s = String::from("tree,nodes,p,scheduler,makespan,memory,ms_lb,mem_ref\n");
    for r in rows {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{}",
            r.tree, r.nodes, r.p, r.scheduler, r.makespan, r.memory, r.ms_lb, r.mem_ref
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesched_gen::{assembly_corpus, Scale};

    fn tiny_rows() -> Vec<Row> {
        let corpus = assembly_corpus(Scale::Small);
        run_corpus(&corpus[..4], &[2, 4]).expect("campaign schedulers are total")
    }

    #[test]
    fn run_corpus_produces_every_scenario() {
        let rows = tiny_rows();
        assert_eq!(rows.len(), 4 * 2 * 4); // 4 trees × 2 p × 4 campaign schedulers
        for r in &rows {
            assert!(r.makespan >= r.ms_lb - 1e-9, "{} {}", r.tree, r.scheduler);
            assert!(r.memory > 0.0);
            assert!(r.mem_ref > 0.0);
        }
    }

    #[test]
    fn rows_record_campaign_names_in_registry_order() {
        let rows = tiny_rows();
        let registry = SchedulerRegistry::standard();
        let campaign: Vec<String> = registry.campaign().map(|e| e.name().to_string()).collect();
        assert_eq!(scheduler_names(&rows), campaign);
        // the name→scheduler→name round trip shared with the CLI suite
        for r in &rows {
            assert_eq!(registry.get(&r.scheduler).unwrap().name(), r.scheduler);
        }
    }

    #[test]
    fn rows_are_deterministic() {
        let a = tiny_rows();
        let b = tiny_rows();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tree, y.tree);
            assert_eq!(x.scheduler, y.scheduler);
            assert_eq!(x.makespan, y.makespan);
            assert_eq!(x.memory, y.memory);
        }
    }

    #[test]
    fn run_corpus_with_selects_schedulers_by_alias() {
        let corpus = assembly_corpus(Scale::Small);
        let registry = SchedulerRegistry::standard();
        let names = vec!["deepest".to_string(), "fifo".to_string()];
        let rows = run_corpus_with(&corpus[..2], &[2], &registry, &names, None).unwrap();
        assert_eq!(rows.len(), 4); // 2 trees x 1 p x 2 schedulers
        assert_eq!(
            scheduler_names(&rows),
            vec!["ParDeepestFirst".to_string(), "FifoList".to_string()]
        );
        // unknown names surface as typed errors
        let bad = vec!["nosuch".to_string()];
        assert!(matches!(
            run_corpus_with(&corpus[..2], &[2], &registry, &bad, None),
            Err(treesched_core::SchedError::UnknownScheduler { .. })
        ));
    }

    #[test]
    fn cap_factor_lets_capped_schedulers_join_the_campaign() {
        let corpus = assembly_corpus(Scale::Small);
        let registry = SchedulerRegistry::standard();
        let names = vec!["membound".to_string(), "subtrees".to_string()];
        // without a cap the capped scheduler is a typed error…
        assert!(matches!(
            run_corpus_with(&corpus[..2], &[2], &registry, &names, None),
            Err(treesched_core::SchedError::MissingMemoryCap { .. })
        ));
        // …with a cap factor it runs, capped at factor × M_seq
        let rows = run_corpus_with(&corpus[..2], &[2, 4], &registry, &names, Some(1.0)).unwrap();
        assert_eq!(rows.len(), 2 * 2 * 2);
        for r in rows.iter().filter(|r| r.scheduler == "MemBoundedSeq") {
            assert!(
                r.memory <= r.mem_ref * 1.0 + 1e-9,
                "{}: capped run exceeded the cap",
                r.tree
            );
        }
    }

    #[test]
    fn table1_percentages_consistent() {
        let rows = tiny_rows();
        let t1 = table1(&rows);
        assert_eq!(t1.len(), 4);
        // at least one scheduler achieves the best in every scenario, so the
        // best-% columns sum to at least 100
        let mem_sum: f64 = t1.iter().map(|r| r.best_mem_pct).sum();
        let ms_sum: f64 = t1.iter().map(|r| r.best_ms_pct).sum();
        assert!(mem_sum >= 100.0 - 1e-9);
        assert!(ms_sum >= 100.0 - 1e-9);
        for r in &t1 {
            assert!(r.within5_mem_pct >= r.best_mem_pct - 1e-9);
            assert!(r.within5_ms_pct >= r.best_ms_pct - 1e-9);
            assert!(r.avg_dev_mem_pct >= -1e-9, "{}", r.scheduler);
            assert!(r.avg_dev_ms_pct >= -1e-9);
        }
        let rendered = render_table1(&t1);
        assert!(rendered.contains("ParSubtrees"));
        assert!(rendered.contains("ParDeepestFirst"));
    }

    #[test]
    fn fig6_ratios_at_least_one() {
        let rows = tiny_rows();
        for (name, pts, c) in fig6(&rows) {
            assert!(!pts.is_empty(), "{name}");
            for (x, y) in &pts {
                assert!(*x >= 1.0 - 1e-9, "{name}: makespan below LB");
                assert!(*y >= 0.99, "{name}: memory below sequential reference");
            }
            assert!(c.x_mean >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn normalized_baseline_excluded() {
        let rows = tiny_rows();
        let f7 = fig_normalized(&rows, "ParSubtrees");
        assert_eq!(f7.len(), 3);
        assert!(f7.iter().all(|(name, _, _)| name != "ParSubtrees"));
        let rendered = render_crosses("fig7", "ms", "mem", &f7);
        assert!(rendered.contains("ParInnerFirst"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rows = tiny_rows();
        let csv = to_csv(&rows);
        assert!(csv.starts_with("tree,nodes,p,"));
        assert_eq!(csv.lines().count(), rows.len() + 1);
    }
}
