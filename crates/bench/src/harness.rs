//! Aggregations of the paper's Table 1 and Figures 6–8 over campaign
//! rows, plus their text renderings.
//!
//! Scenario *execution* lives in [`crate::campaign`]: the experiment
//! binaries build a [`crate::CampaignSpec`] and run it through the
//! engine-backed [`crate::CampaignRunner`]; this module turns the
//! resulting [`Row`]s into the paper's tables and scatter crosses. The
//! campaign set is whatever the registry marks as campaign members (the
//! paper's four heuristics in
//! [`treesched_core::SchedulerRegistry::standard`]) — a newly registered
//! campaign scheduler automatically joins every table and figure. Rows
//! carry the scheduler's canonical registry name.

use crate::campaign::{CampaignRunner, CampaignSpec};
use crate::stats::{cross, mean, Cross};
use std::fmt::Write as _;
use treesched_core::SchedError;
use treesched_gen::CorpusEntry;

/// The processor counts of the paper's campaign (§6.2).
pub const PAPER_PROCS: [u32; 5] = [2, 4, 8, 16, 32];

/// One measured scenario: a scheduler on a tree at one platform point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Corpus entry name.
    pub tree: String,
    /// Number of tasks of the tree.
    pub nodes: usize,
    /// Processor count of the point (total across classes).
    pub p: u32,
    /// Platform point label (`p4`, `2x2,2x1;…`, `p8/cap1.5`) — with `p`,
    /// part of the scenario key, so a heterogeneous point never merges
    /// with a flat point of the same processor count.
    pub point: String,
    /// Sequential sub-algorithm name of the scenario (`best|naive|liu`).
    pub seq: String,
    /// Canonical registry name of the scheduler measured.
    pub scheduler: String,
    /// Achieved makespan.
    pub makespan: f64,
    /// Achieved peak memory.
    pub memory: f64,
    /// Makespan lower bound `max(W/p, CP)`.
    pub ms_lb: f64,
    /// Sequential memory reference (optimal postorder peak).
    pub mem_ref: f64,
}

/// Runs the registry's campaign schedulers on every `(tree, p)` scenario
/// through the engine-backed [`CampaignRunner`], failing on the first
/// error record. Rows come back in corpus order, one consecutive group per
/// `(tree, p)` scenario.
pub fn run_corpus(corpus: &[CorpusEntry], ps: &[u32]) -> Result<Vec<Row>, SchedError> {
    let mut spec = CampaignSpec::new("corpus").with_procs(ps);
    spec.trees = corpus.to_vec();
    CampaignRunner::new(crate::campaign::default_workers())
        .run(&spec)?
        .strict_rows()
}

/// Distinct scheduler names in first-appearance order — the selection
/// order of the `run_corpus*` call that produced `rows`.
pub fn scheduler_names(rows: &[Row]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for r in rows {
        if !names.contains(&r.scheduler) {
            names.push(r.scheduler.clone());
        }
    }
    names
}

/// One line of the paper's Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Canonical scheduler name.
    pub scheduler: String,
    /// % of scenarios where the scheduler achieves the best memory of the
    /// compared set (ties count).
    pub best_mem_pct: f64,
    /// % of scenarios within 5% of the best memory.
    pub within5_mem_pct: f64,
    /// Average deviation from the sequential memory reference, in %
    /// (`(mem / mem_ref − 1) · 100`).
    pub avg_dev_mem_pct: f64,
    /// % of scenarios achieving the best makespan of the compared set.
    pub best_ms_pct: f64,
    /// % of scenarios within 5% of the best makespan.
    pub within5_ms_pct: f64,
    /// Average deviation from the best makespan, in %.
    pub avg_dev_ms_pct: f64,
}

/// Scenario key: rows are grouped by `(tree, point, seq)` before computing
/// best-of-set statistics, so heterogeneous platform points and `--seq`
/// grid entries form their own scenarios instead of merging with the flat
/// point of the same processor count.
fn scenario_groups(rows: &[Row]) -> Vec<&[Row]> {
    // rows come in cross-product order: each group is one consecutive run
    let mut groups = Vec::new();
    let mut start = 0;
    while start < rows.len() {
        let mut end = start + 1;
        while end < rows.len()
            && rows[end].tree == rows[start].tree
            && rows[end].point == rows[start].point
            && rows[end].seq == rows[start].seq
        {
            end += 1;
        }
        groups.push(&rows[start..end]);
        start = end;
    }
    groups
}

const REL_EPS: f64 = 1e-9;

/// Aggregates [`Row`]s into the paper's Table 1, one line per scheduler
/// present in `rows`.
pub fn table1(rows: &[Row]) -> Vec<Table1Row> {
    let groups = scenario_groups(rows);
    let names = scheduler_names(rows);
    let mut out = Vec::with_capacity(names.len());
    for name in names {
        let mut best_mem = 0usize;
        let mut within5_mem = 0usize;
        let mut dev_mem = Vec::new();
        let mut best_ms = 0usize;
        let mut within5_ms = 0usize;
        let mut dev_ms = Vec::new();
        let mut n = 0usize;
        for g in &groups {
            let Some(row) = g.iter().find(|r| r.scheduler == name) else {
                continue;
            };
            let gbest_mem = g.iter().map(|r| r.memory).fold(f64::INFINITY, f64::min);
            let gbest_ms = g.iter().map(|r| r.makespan).fold(f64::INFINITY, f64::min);
            n += 1;
            if row.memory <= gbest_mem * (1.0 + REL_EPS) {
                best_mem += 1;
            }
            if row.memory <= gbest_mem * 1.05 {
                within5_mem += 1;
            }
            dev_mem.push((row.memory / row.mem_ref - 1.0) * 100.0);
            if row.makespan <= gbest_ms * (1.0 + REL_EPS) {
                best_ms += 1;
            }
            if row.makespan <= gbest_ms * 1.05 {
                within5_ms += 1;
            }
            dev_ms.push((row.makespan / gbest_ms - 1.0) * 100.0);
        }
        let pct = |c: usize| 100.0 * c as f64 / n.max(1) as f64;
        out.push(Table1Row {
            scheduler: name,
            best_mem_pct: pct(best_mem),
            within5_mem_pct: pct(within5_mem),
            avg_dev_mem_pct: mean(&dev_mem),
            best_ms_pct: pct(best_ms),
            within5_ms_pct: pct(within5_ms),
            avg_dev_ms_pct: mean(&dev_ms),
        });
    }
    out
}

/// Renders Table 1 in the paper's layout.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<18} | {:>11} {:>12} {:>14} | {:>13} {:>14} {:>13}",
        "Scheduler",
        "Best memory",
        "Within 5% of",
        "Avg. dev. from",
        "Best makespan",
        "Within 5% of",
        "Avg. dev. from"
    );
    let _ = writeln!(
        s,
        "{:<18} | {:>11} {:>12} {:>14} | {:>13} {:>14} {:>13}",
        "", "", "best memory", "seq. memory", "", "best makespan", "best makespan"
    );
    let _ = writeln!(s, "{}", "-".repeat(112));
    for r in rows {
        let _ = writeln!(
            s,
            "{:<18} | {:>10.1}% {:>11.1}% {:>13.1}% | {:>12.1}% {:>13.1}% {:>12.1}%",
            r.scheduler,
            r.best_mem_pct,
            r.within5_mem_pct,
            r.avg_dev_mem_pct,
            r.best_ms_pct,
            r.within5_ms_pct,
            r.avg_dev_ms_pct
        );
    }
    s
}

/// One figure series: a scheduler name, its scatter points, and their
/// summary cross.
pub type FigSeries = (String, Vec<(f64, f64)>, Cross);

/// Figure 6 series: per scheduler, the scatter points
/// `(makespan / ms_lb, memory / mem_ref)` and their summary cross.
pub fn fig6(rows: &[Row]) -> Vec<FigSeries> {
    scheduler_names(rows)
        .into_iter()
        .map(|name| {
            let pts: Vec<(f64, f64)> = rows
                .iter()
                .filter(|r| r.scheduler == name)
                .map(|r| (r.makespan / r.ms_lb, r.memory / r.mem_ref))
                .collect();
            let c = cross(&pts);
            (name, pts, c)
        })
        .collect()
}

/// Figures 7/8: scatter points normalized by a baseline scheduler within
/// each `(tree, p)` scenario; the baseline itself is omitted (it would be
/// the constant point `(1, 1)`).
pub fn fig_normalized(rows: &[Row], baseline: &str) -> Vec<FigSeries> {
    let groups = scenario_groups(rows);
    let mut out = Vec::new();
    for name in scheduler_names(rows) {
        if name == baseline {
            continue;
        }
        let mut pts = Vec::new();
        for g in &groups {
            let (Some(b), Some(r)) = (
                g.iter().find(|r| r.scheduler == baseline),
                g.iter().find(|r| r.scheduler == name),
            ) else {
                continue;
            };
            if b.makespan > 0.0 && b.memory > 0.0 {
                pts.push((r.makespan / b.makespan, r.memory / b.memory));
            }
        }
        let c = cross(&pts);
        out.push((name, pts, c));
    }
    out
}

/// Renders a figure's crosses as the text series the paper's plots encode.
pub fn render_crosses(title: &str, xlabel: &str, ylabel: &str, series: &[FigSeries]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(s, "  x = {xlabel}; y = {ylabel}");
    let _ = writeln!(
        s,
        "  {:<18} {:>7} {:>17} {:>9} {:>19} {:>7}",
        "scheduler", "x-mean", "x-[p10,p90]", "y-mean", "y-[p10,p90]", "points"
    );
    for (name, pts, c) in series {
        let _ = writeln!(
            s,
            "  {:<18} {:>7.3} [{:>6.3},{:>7.3}] {:>9.3} [{:>7.3},{:>8.3}] {:>7}",
            name,
            c.x_mean,
            c.x_p10,
            c.x_p90,
            c.y_mean,
            c.y_p10,
            c.y_p90,
            pts.len()
        );
    }
    s
}

/// One summary record per Table 1 line, through the shared builder —
/// appended after the scenario records in `table1 --json`.
pub fn table1_json(campaign: &str, row: &Table1Row) -> String {
    treesched_serve::JsonRecord::new()
        .str("campaign", campaign)
        .str("scheduler", &row.scheduler)
        .num("best_mem_pct", row.best_mem_pct)
        .num("within5_mem_pct", row.within5_mem_pct)
        .num("avg_dev_mem_pct", row.avg_dev_mem_pct)
        .num("best_ms_pct", row.best_ms_pct)
        .num("within5_ms_pct", row.within5_ms_pct)
        .num("avg_dev_ms_pct", row.avg_dev_ms_pct)
        .line()
}

/// One summary record per figure series (the scatter cross), through the
/// shared builder — appended after the scenario records in the figure
/// binaries' `--json` streams.
pub fn cross_json(campaign: &str, series: &FigSeries) -> String {
    let (name, pts, c) = series;
    treesched_serve::JsonRecord::new()
        .str("campaign", campaign)
        .str("series", name)
        .int("points", pts.len() as u64)
        .num("x_mean", c.x_mean)
        .num("x_p10", c.x_p10)
        .num("x_p90", c.x_p90)
        .num("y_mean", c.y_mean)
        .num("y_p10", c.y_p10)
        .num("y_p90", c.y_p90)
        .line()
}

/// CSV dump of the raw scenario rows (for external plotting).
pub fn to_csv(rows: &[Row]) -> String {
    let mut s = String::from("tree,nodes,p,point,seq,scheduler,makespan,memory,ms_lb,mem_ref\n");
    for r in rows {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{},{},{}",
            r.tree,
            r.nodes,
            r.p,
            r.point,
            r.seq,
            r.scheduler,
            r.makespan,
            r.memory,
            r.ms_lb,
            r.mem_ref
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesched_gen::{assembly_corpus, Scale};

    fn tiny_rows() -> Vec<Row> {
        let corpus = assembly_corpus(Scale::Small);
        run_corpus(&corpus[..4], &[2, 4]).expect("campaign schedulers are total")
    }

    #[test]
    fn run_corpus_produces_every_scenario() {
        let rows = tiny_rows();
        assert_eq!(rows.len(), 4 * 2 * 4); // 4 trees × 2 p × 4 campaign schedulers
        for r in &rows {
            assert!(r.makespan >= r.ms_lb - 1e-9, "{} {}", r.tree, r.scheduler);
            assert!(r.memory > 0.0);
            assert!(r.mem_ref > 0.0);
        }
    }

    #[test]
    fn rows_record_campaign_names_in_registry_order() {
        let rows = tiny_rows();
        let registry = treesched_core::SchedulerRegistry::standard();
        let campaign: Vec<String> = registry.campaign().map(|e| e.name().to_string()).collect();
        assert_eq!(scheduler_names(&rows), campaign);
        // the name→scheduler→name round trip shared with the CLI suite
        for r in &rows {
            assert_eq!(registry.get(&r.scheduler).unwrap().name(), r.scheduler);
        }
    }

    #[test]
    fn rows_are_deterministic() {
        let a = tiny_rows();
        let b = tiny_rows();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tree, y.tree);
            assert_eq!(x.scheduler, y.scheduler);
            assert_eq!(x.makespan, y.makespan);
            assert_eq!(x.memory, y.memory);
        }
    }

    #[test]
    fn table1_percentages_consistent() {
        let rows = tiny_rows();
        let t1 = table1(&rows);
        assert_eq!(t1.len(), 4);
        // at least one scheduler achieves the best in every scenario, so the
        // best-% columns sum to at least 100
        let mem_sum: f64 = t1.iter().map(|r| r.best_mem_pct).sum();
        let ms_sum: f64 = t1.iter().map(|r| r.best_ms_pct).sum();
        assert!(mem_sum >= 100.0 - 1e-9);
        assert!(ms_sum >= 100.0 - 1e-9);
        for r in &t1 {
            assert!(r.within5_mem_pct >= r.best_mem_pct - 1e-9);
            assert!(r.within5_ms_pct >= r.best_ms_pct - 1e-9);
            assert!(r.avg_dev_mem_pct >= -1e-9, "{}", r.scheduler);
            assert!(r.avg_dev_ms_pct >= -1e-9);
        }
        let rendered = render_table1(&t1);
        assert!(rendered.contains("ParSubtrees"));
        assert!(rendered.contains("ParDeepestFirst"));
    }

    #[test]
    fn fig6_ratios_at_least_one() {
        let rows = tiny_rows();
        for (name, pts, c) in fig6(&rows) {
            assert!(!pts.is_empty(), "{name}");
            for (x, y) in &pts {
                assert!(*x >= 1.0 - 1e-9, "{name}: makespan below LB");
                assert!(*y >= 0.99, "{name}: memory below sequential reference");
            }
            assert!(c.x_mean >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn normalized_baseline_excluded() {
        let rows = tiny_rows();
        let f7 = fig_normalized(&rows, "ParSubtrees");
        assert_eq!(f7.len(), 3);
        assert!(f7.iter().all(|(name, _, _)| name != "ParSubtrees"));
        let rendered = render_crosses("fig7", "ms", "mem", &f7);
        assert!(rendered.contains("ParInnerFirst"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rows = tiny_rows();
        let csv = to_csv(&rows);
        assert!(csv.starts_with("tree,nodes,p,point,seq,"));
        assert_eq!(csv.lines().count(), rows.len() + 1);
    }

    /// The scenario key is `(tree, point, seq)`, not `(tree, p)`: a
    /// heterogeneous point with the same total processor count (or a
    /// second `--seq` grid entry) must form its own best-of-set group
    /// instead of merging with the flat point and corrupting the
    /// percentages.
    #[test]
    fn scenario_groups_split_points_and_seqs_of_equal_p() {
        let row = |point: &str, seq: &str, scheduler: &str, makespan: f64| Row {
            tree: "t".into(),
            nodes: 10,
            p: 4,
            point: point.into(),
            seq: seq.into(),
            scheduler: scheduler.into(),
            makespan,
            memory: 10.0,
            ms_lb: 1.0,
            mem_ref: 10.0,
        };
        // the hetero point is strictly faster (more total speed); under
        // (tree, p) grouping A's flat row would never be "best"
        let rows = vec![
            row("p4", "best", "A", 10.0),
            row("p4", "best", "B", 12.0),
            row("2x2,2x1", "best", "A", 5.0),
            row("2x2,2x1", "best", "B", 6.0),
            row("p4", "liu", "A", 9.0),
            row("p4", "liu", "B", 11.0),
        ];
        let t1 = table1(&rows);
        let a = t1.iter().find(|r| r.scheduler == "A").unwrap();
        let b = t1.iter().find(|r| r.scheduler == "B").unwrap();
        assert_eq!(a.best_ms_pct, 100.0, "A wins each of its 3 scenarios");
        assert_eq!(b.best_ms_pct, 0.0);
        // fig7-style normalization pairs rows within each scenario too
        let f = fig_normalized(&rows, "A");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].1.len(), 3, "one pair per (point, seq) scenario");
        assert!(f[0].1.iter().all(|(ms, _)| *ms > 1.0));
    }
}
