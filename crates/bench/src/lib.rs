//! Experiment harness reproducing the paper's evaluation (§6).
//!
//! Binaries (one per table/figure — see DESIGN.md §4):
//!
//! * `table1` — the heuristic comparison of Table 1;
//! * `fig6` — ratios to the lower bounds (Figure 6);
//! * `fig7` — ratios to `ParSubtrees` (Figure 7);
//! * `fig8` — ratios to `ParInnerFirst` (Figure 8);
//! * `ablation` — design-choice ablations beyond the paper: sequential
//!   sub-algorithm choice, the Figure 3 makespan-ratio sweep, and the
//!   memory-capped scheduler's cap/makespan trade-off.
//!
//! Criterion micro-benchmarks live in `benches/` and validate the
//! complexity claims of §5 (heuristic and traversal runtimes).
//!
//! All binaries resolve schedulers by name through
//! [`treesched_core::SchedulerRegistry`] (`--schedulers` selects them);
//! the default sweep is the registry's campaign set, so a newly registered
//! campaign scheduler joins every table and figure automatically.

pub mod cli;
pub mod harness;
pub mod stats;

pub use harness::{
    fig6, fig_normalized, render_crosses, render_table1, run_corpus, run_corpus_with,
    scheduler_names, table1, Row, Table1Row, PAPER_PROCS,
};
