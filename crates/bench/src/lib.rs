//! Experiment harness reproducing the paper's evaluation (§6), built
//! around the Campaign API.
//!
//! The [`campaign`] module is the experiment layer's core: a declarative
//! [`CampaignSpec`] (tree set × scheduler selection × platform grid ×
//! sequential algorithms × metrics) executed over the batched serving
//! engine by [`CampaignRunner`], streaming one JSON record per scenario.
//! [`harness`] aggregates the resulting rows into the paper's Table 1 and
//! the Figure 6–8 scatter crosses.
//!
//! Binaries (one per table/figure — see DESIGN.md §4), all thin
//! spec-building front-ends with `--json` JSONL output:
//!
//! * `table1` — the heuristic comparison of Table 1;
//! * `fig6` — ratios to the lower bounds (Figure 6);
//! * `fig7` — ratios to `ParSubtrees` (Figure 7);
//! * `fig8` — ratios to `ParInnerFirst` (Figure 8);
//! * `scaling` — strong-scaling sweep with speedup/utilization metrics;
//! * `ablation` — design-choice ablations beyond the paper: sequential
//!   sub-algorithm choice, the Figure 3 makespan-ratio sweep, and the
//!   memory-capped scheduler's cap/makespan trade-off;
//! * `corpus` — the dataset description of §6.2;
//! * `seqgap` — the sequential postorder/optimal gap of §6.1;
//! * `serve_bench` — serving-engine throughput against the per-request
//!   path.
//!
//! Criterion micro-benchmarks live in `benches/` and validate the
//! complexity claims of §5 (heuristic and traversal runtimes).
//!
//! All binaries resolve schedulers by name through
//! [`treesched_core::SchedulerRegistry`] (`--schedulers` selects them);
//! the default sweep is the registry's campaign set, so a newly registered
//! campaign scheduler joins every table and figure automatically.

pub mod campaign;
pub mod cli;
pub mod harness;
pub mod stats;

pub use campaign::{
    compare_campaigns, default_workers, spec_from_json, Campaign, CampaignComparison,
    CampaignOutcome, CampaignRecord, CampaignRunner, CampaignSpec, PlatformPoint, SpecError,
};
pub use harness::{
    fig6, fig_normalized, render_crosses, render_table1, run_corpus, scheduler_names, table1, Row,
    Table1Row, PAPER_PROCS,
};
