//! Small statistics helpers for the experiment harness.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Percentile by linear interpolation between closest ranks;
/// `q` in `[0, 100]`.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=100.0).contains(&q), "percentile out of range");
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    if v.len() == 1 {
        return v[0];
    }
    let rank = q / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = rank - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Geometric mean; 0 for an empty slice. All entries must be positive.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let s: f64 = xs.iter().map(|&x| x.ln()).sum();
    (s / xs.len() as f64).exp()
}

/// The "cross" of the paper's scatter plots: average plus the 10th–90th
/// percentile span of each axis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cross {
    /// Mean of the x values (makespan ratio).
    pub x_mean: f64,
    /// 10th percentile of x.
    pub x_p10: f64,
    /// 90th percentile of x.
    pub x_p90: f64,
    /// Mean of the y values (memory ratio).
    pub y_mean: f64,
    /// 10th percentile of y.
    pub y_p10: f64,
    /// 90th percentile of y.
    pub y_p90: f64,
}

/// Computes the scatter-cross over paired `(x, y)` points.
pub fn cross(points: &[(f64, f64)]) -> Cross {
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    Cross {
        x_mean: mean(&xs),
        x_p10: percentile(&xs, 10.0),
        x_p90: percentile(&xs, 90.0),
        y_mean: mean(&ys),
        y_p10: percentile(&ys, 10.0),
        y_p90: percentile(&ys, 90.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_geomean() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 25.0), 2.0);
        assert_eq!(percentile(&xs, 10.0), 1.4);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 50.0), 3.0);
    }

    #[test]
    fn cross_of_points() {
        let pts: Vec<(f64, f64)> = (1..=9).map(|i| (i as f64, 10.0 * i as f64)).collect();
        let c = cross(&pts);
        assert_eq!(c.x_mean, 5.0);
        assert_eq!(c.y_mean, 50.0);
        assert!((c.x_p10 - 1.8).abs() < 1e-12);
        assert!((c.x_p90 - 8.2).abs() < 1e-12);
    }
}
