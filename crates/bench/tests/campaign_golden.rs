//! Golden-file and determinism tests for the campaign JSONL schema.
//!
//! Each migrated experiment binary's `--json` stream is pinned
//! byte-for-byte against `tests/data/<binary>.golden.jsonl` on the small
//! corpus: any change to field names, field order, number formatting, or
//! record composition shows up as a diff. Regenerate deliberately with
//! `UPDATE_GOLDEN=1 cargo test -p treesched_bench --test campaign_golden`
//! after an intentional schema change (same workflow as the serve
//! protocol goldens).
//!
//! The worker-count determinism pin lives at the runner level — the
//! binaries pick their worker count automatically precisely because the
//! JSONL is byte-identical at 1, 2, and 4 workers.

use std::process::Command;
use treesched_bench::{CampaignRunner, CampaignSpec, PlatformPoint};
use treesched_core::{Metric, PlatformSpec, SeqAlgo};
use treesched_model::TaskTree;

/// Runs one experiment binary and returns its stdout; the run must exit 0.
fn run_bin(exe: &str, args: &[&str]) -> String {
    let out = Command::new(exe)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("cannot run {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("binaries emit UTF-8")
}

fn check_golden(got: &str, golden_file: &str) {
    let path = format!("{}/tests/data/{golden_file}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(format!("{}/tests/data", env!("CARGO_MANIFEST_DIR"))).unwrap();
        std::fs::write(path, got).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path} (UPDATE_GOLDEN=1 generates): {e}"));
    assert_eq!(
        got, golden,
        "campaign JSONL schema drifted from {golden_file} \
         (UPDATE_GOLDEN=1 regenerates after an intentional change)"
    );
    // every line of every golden stream is one valid JSON object
    for line in got.lines() {
        treesched_serve::jsonl::parse_object(line)
            .unwrap_or_else(|e| panic!("{golden_file}: invalid record {line}: {e}"));
    }
}

/// The flags of the pinned runs: a small deterministic slice of the grid.
const GRID: &[&str] = &[
    "--scale",
    "small",
    "--procs",
    "2",
    "--schedulers",
    "subtrees,deepest",
    "--json",
];

#[test]
fn table1_json_matches_the_golden_schema() {
    check_golden(
        &run_bin(env!("CARGO_BIN_EXE_table1"), GRID),
        "table1.golden.jsonl",
    );
}

#[test]
fn fig6_json_matches_the_golden_schema() {
    check_golden(
        &run_bin(env!("CARGO_BIN_EXE_fig6"), GRID),
        "fig6.golden.jsonl",
    );
}

#[test]
fn fig7_json_matches_the_golden_schema() {
    check_golden(
        &run_bin(env!("CARGO_BIN_EXE_fig7"), GRID),
        "fig7.golden.jsonl",
    );
}

#[test]
fn fig8_json_matches_the_golden_schema() {
    // fig8 force-adds its ParInnerFirst baseline to the selection
    check_golden(
        &run_bin(env!("CARGO_BIN_EXE_fig8"), GRID),
        "fig8.golden.jsonl",
    );
}

#[test]
fn scaling_json_matches_the_golden_schema() {
    check_golden(
        &run_bin(env!("CARGO_BIN_EXE_scaling"), GRID),
        "scaling.golden.jsonl",
    );
}

#[test]
fn ablation_json_matches_the_golden_schema() {
    check_golden(
        &run_bin(
            env!("CARGO_BIN_EXE_ablation"),
            &["--scale", "small", "--json"],
        ),
        "ablation.golden.jsonl",
    );
}

#[test]
fn corpus_json_matches_the_golden_schema() {
    check_golden(
        &run_bin(env!("CARGO_BIN_EXE_corpus"), GRID),
        "corpus.golden.jsonl",
    );
}

#[test]
fn seqgap_json_matches_the_golden_schema() {
    check_golden(
        &run_bin(
            env!("CARGO_BIN_EXE_seqgap"),
            &["--scale", "small", "--json"],
        ),
        "seqgap.golden.jsonl",
    );
}

#[test]
fn serve_bench_json_has_the_shared_record_shape() {
    // timings make this record un-goldenable; pin its structure instead
    let out = run_bin(
        env!("CARGO_BIN_EXE_serve_bench"),
        &[
            "--scale",
            "small",
            "--procs",
            "2",
            "--schedulers",
            "deepest",
            "--workers",
            "1,2",
            "--json",
        ],
    );
    let pairs = treesched_serve::jsonl::parse_object(out.trim_end()).expect("one JSON record");
    let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "benchmark",
            "requests",
            "trees",
            "processors",
            "schedulers",
            "baseline",
            "sweep"
        ]
    );
    let sweep = pairs.iter().find(|(k, _)| k == "sweep").unwrap();
    let treesched_serve::jsonl::Value::Arr(sweep) = &sweep.1 else {
        panic!("sweep must be an array");
    };
    assert_eq!(sweep.len(), 2);
}

/// The grid of the worker-count pin: the table/figure grid plus a
/// heterogeneous point and a cap point, over a couple of explicit trees —
/// everything that can influence record bytes.
fn pinned_spec() -> CampaignSpec {
    CampaignSpec::new("pin")
        .with_tree("fork", TaskTree::fork(8, 1.0, 1.0, 0.0))
        .with_tree("complete", TaskTree::complete(2, 5, 1.0, 2.0, 0.5))
        .with_tree("chain", TaskTree::chain(15, 2.0, 1.0, 0.5))
        .with_procs(&[2, 4])
        .with_platform(PlatformPoint::flat(4).with_cap_factor(1.5))
        .with_platform(PlatformPoint::from_spec(
            PlatformSpec::parse_flags("2x2.0,2x1.0", Some("1e9@0,1e9@1"), None).unwrap(),
        ))
        .with_platform(PlatformPoint::from_spec(
            PlatformSpec::parse_flags("2x2.0,2x1.0", Some("1e9@0,1e9@1"), Some("0-1:2")).unwrap(),
        ))
        .with_schedulers(vec![
            "subtrees".into(),
            "deepest".into(),
            "membound".into(),
            "random".into(),
        ])
        .with_seqs(vec![SeqAlgo::BestPostorder, SeqAlgo::LiuExact])
        .with_seed(42)
        .with_metrics(vec![
            Metric::Speedup,
            Metric::Utilization,
            Metric::MaxDomainPeak,
        ])
}

#[test]
fn campaign_jsonl_is_byte_identical_at_1_2_and_4_workers() {
    let spec = pinned_spec();
    let reference = CampaignRunner::new(1).run(&spec).unwrap().to_jsonl();
    // the pinned grid exercises successes, cap records, hetero records,
    // and typed error records
    assert!(reference.contains("\"error\""), "pin covers error records");
    assert!(reference.contains("\"domain_peaks\""), "pin covers hetero");
    assert!(reference.contains("\"cap\":"), "pin covers caps");
    for workers in [2usize, 4] {
        let got = CampaignRunner::new(workers).run(&spec).unwrap().to_jsonl();
        assert_eq!(got, reference, "workers = {workers}");
    }
}
