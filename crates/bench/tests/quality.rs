//! Quality-regression guard: the paper's headline experimental claims must
//! keep holding on the (deterministic) small corpus. If a refactor of a
//! scheduler silently degrades its trade-off position, these tests fail.
//!
//! Tier-1 runs the `Scale::Small` corpus only. The `Scale::Medium` version
//! (~80 trees, noticeably slower) is `#[ignore]`d; run it with
//! `cargo test -p treesched_bench --test quality -- --ignored`.

use treesched_bench::{fig_normalized, run_corpus, table1, Table1Row};
use treesched_gen::{assembly_corpus, Scale};

fn small_rows() -> Vec<treesched_bench::Row> {
    let corpus = assembly_corpus(Scale::Small);
    run_corpus(&corpus, &[2, 4, 8, 16]).expect("campaign schedulers are total")
}

fn by<'a>(t1: &'a [Table1Row], name: &str) -> &'a Table1Row {
    t1.iter()
        .find(|r| r.scheduler == name)
        .unwrap_or_else(|| panic!("no table row for {name}"))
}

#[test]
fn memory_ranking_matches_paper() {
    let t1 = table1(&small_rows());
    let ps = by(&t1, "ParSubtrees");
    let pso = by(&t1, "ParSubtreesOptim");
    let pif = by(&t1, "ParInnerFirst");
    let pdf = by(&t1, "ParDeepestFirst");
    // Table 1 column 1: ParSubtrees wins memory most often, then Optim,
    // then the list schedulers
    assert!(ps.best_mem_pct >= pso.best_mem_pct);
    assert!(pso.best_mem_pct >= pif.best_mem_pct);
    assert!(pif.best_mem_pct >= pdf.best_mem_pct);
    // average memory deviation follows the same order
    assert!(ps.avg_dev_mem_pct <= pif.avg_dev_mem_pct);
    assert!(pif.avg_dev_mem_pct <= pdf.avg_dev_mem_pct);
}

#[test]
fn makespan_ranking_matches_paper() {
    let t1 = table1(&small_rows());
    let ps = by(&t1, "ParSubtrees");
    let pif = by(&t1, "ParInnerFirst");
    let pdf = by(&t1, "ParDeepestFirst");
    // ParDeepestFirst is (almost) always the makespan winner
    assert!(pdf.best_ms_pct >= 90.0, "{}", pdf.best_ms_pct);
    assert!(pdf.avg_dev_ms_pct <= 1.0);
    // ParInnerFirst close behind, ParSubtrees pays the most
    assert!(pif.avg_dev_ms_pct <= ps.avg_dev_ms_pct);
}

#[test]
fn fig7_claims_hold() {
    // "ParSubtreesOptim gives results close to ParSubtrees, with better
    //  makespans but slightly worse memory"
    let rows = small_rows();
    let f7 = fig_normalized(&rows, "ParSubtrees");
    let (_, _, optim) = f7
        .iter()
        .find(|(name, _, _)| name == "ParSubtreesOptim")
        .unwrap();
    assert!(
        optim.x_mean <= 1.0 + 1e-9,
        "makespan ratio {}",
        optim.x_mean
    );
    assert!(optim.y_mean >= 1.0 - 1e-9, "memory ratio {}", optim.y_mean);
}

#[test]
fn fig8_claims_hold() {
    // "ParDeepestFirst always uses more memory than ParInnerFirst, while
    //  having comparable makespans"
    let rows = small_rows();
    let f8 = fig_normalized(&rows, "ParInnerFirst");
    let (_, pts, c) = f8
        .iter()
        .find(|(name, _, _)| name == "ParDeepestFirst")
        .unwrap();
    assert!(c.y_mean >= 1.0 - 1e-9, "memory ratio {}", c.y_mean);
    assert!(c.x_mean <= 1.05, "makespan ratio {}", c.x_mean);
    // "always": no scenario where DeepestFirst uses meaningfully less
    let below = pts.iter().filter(|(_, y)| *y < 0.999).count();
    assert!(
        below * 10 <= pts.len(),
        "{below}/{} scenarios below parity",
        pts.len()
    );
}

/// Full-scale version of the ranking guards on the medium corpus. Too slow
/// for tier-1; run with
/// `cargo test -p treesched_bench --test quality -- --ignored`.
#[test]
#[ignore = "medium corpus is slow, run with -- --ignored"]
fn rankings_hold_on_medium_corpus() {
    let corpus = assembly_corpus(Scale::Medium);
    let rows = run_corpus(&corpus, &[2, 4, 8, 16]).expect("campaign schedulers are total");
    let t1 = table1(&rows);
    let ps = by(&t1, "ParSubtrees");
    let pif = by(&t1, "ParInnerFirst");
    let pdf = by(&t1, "ParDeepestFirst");
    // the paper's headline orderings must survive at scale
    assert!(ps.best_mem_pct >= pif.best_mem_pct);
    assert!(pif.best_mem_pct >= pdf.best_mem_pct);
    assert!(pdf.best_ms_pct >= 90.0, "{}", pdf.best_ms_pct);
    assert!(pif.avg_dev_ms_pct <= ps.avg_dev_ms_pct);
}
