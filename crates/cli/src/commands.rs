//! Subcommand parsing and execution.
//!
//! Schedulers are resolved exclusively through
//! [`treesched_core::SchedulerRegistry`] — the CLI holds no per-heuristic
//! dispatch of its own. Scheduling failures ([`treesched_core::SchedError`])
//! exit with code 1; usage errors exit with code 2.

use std::fmt::Write as _;
use treesched_core::{
    Platform, PlatformSpec, Request, SchedError, SchedulerRegistry, Scratch, SeqAlgo,
};
use treesched_model::{io as tree_io, TaskTree, TreeStats};
use treesched_serve::ServeEngine;
use treesched_transport::{default_scheduler, Daemon, DaemonConfig, ListenOptions, RequestParser};

/// Top-level usage text.
pub const USAGE: &str = "treesched — memory/makespan-aware tree scheduling (IPDPS 2013)

usage: treesched <command> [args]

commands:
  gen <kind> <params..> [-o FILE]   generate a tree (see `treesched gen`)
  stats FILE..                      shape and weight statistics
  sketch FILE [--max N]             indented tree view
  seq FILE [--algo best|naive|liu]  sequential traversal peak + order head
  schedule FILE -p N [--scheduler S] [--seq A] [--cap X] [--seed N]
           [--speeds L] [--domains D] [--comm C]
           [--ordering K] [--amalg N]
           [--json] [--gantt] [--profile] [--placements]
                                    parallel schedule + evaluation; FILE
                                    may be v1, Newick, or MatrixMarket
                                    (--ordering natural|amd|rcm, --amalg)
  schedulers                        list registered schedulers + aliases
  serve [FILE] [--workers N] [--speeds L] [--domains D] [--comm C]
                                    batched serving: JSONL requests from
                                    FILE (default stdin), one JSON record
                                    per result, in input order
  serve --stdio | --listen PATH [--accept N] [--inflight N] [--overload]
                                    daemon mode: responses stream out in
                                    completion order, framed with their
                                    submission index (`\"n\"`), over stdio
                                    or a Unix socket shared by clients;
                                    SIGTERM drains gracefully (no new
                                    work, in-flight lines answered)
  serve ... --metrics-out FILE      write a final metrics snapshot (the
                                    `{\"op\":\"metrics\"}` record) to FILE
                                    when the serve ends
  connect PATH [--raw]              client for `serve --listen`: stdin to
                                    the daemon, batch-identical output
                                    (or the raw framed stream) on stdout
  metrics PATH                      fetch a live metrics snapshot from a
                                    `serve --listen` daemon at PATH
  pareto FILE -p N [--json] [--speeds L] [--domains D]
                                    exact (makespan, memory) frontier
  campaign [--spec FILE | flags]    declarative experiment campaign over the
                                    serving engine, JSONL records on stdout
                                    (see `treesched campaign --help`)
  tree <subcommand> [args]          workload toolbox: ingest Newick /
                                    MatrixMarket / v1 trees, stat, prune,
                                    subtree, DOT export, serve requests
                                    (see `treesched tree --help`)
  dot FILE                          Graphviz DOT export

Schedulers S: any name or alias from `treesched schedulers`
(`--heuristic` is accepted as a synonym of `--scheduler`).

Heterogeneous platforms: --speeds lists processor classes as COUNTxSPEED
entries (`--speeds 2x2.0,2x1.0` = 2 fast + 2 slow; a bare SPEED means one
processor), replacing -p. --domains lists memory domains as CAP@CLASSES
entries with `+`-joined class indices (`--domains 64@0,32@1`; a bare CAP
covers every class). --comm lists symmetric cross-domain transfer costs
as SRC-DST:COST entries (`--comm 0-1:2`; unlisted pairs cost 0), charged
per unit of a task's output when parent and child run in different
domains — only the list schedulers serve comm-bearing platforms. On
serve, the flags set the default platform for requests that carry
neither `processors` nor a `platform` object.
Tree files use the `treesched tree v1` text format (id parent w f n).";

const GEN_USAGE: &str = "treesched gen — tree generators

  gen fork P K                 fork with P*K unit leaves (paper Fig. 3)
  gen chain N                  pebble chain of N tasks
  gen complete ARITY DEPTH     complete tree, pebble weights
  gen random N SEED            random attachment tree, mixed weights
  gen deep N SEED              depth-biased random tree, mixed weights
  gen caterpillar SPINE LEGS   caterpillar, pebble weights
  gen spider LEGS LEN          spider, pebble weights
  gen inapprox N DELTA         inapproximability tree (paper Fig. 2)
  gen gadget P K               ParInnerFirst gadget (paper Fig. 4)
  gen longchain C LEN          long-chain tree (paper Fig. 5)
  gen assembly KIND SIZE AMALG assembly tree: KIND = grid2d|grid3d|rand|band

append `-o FILE` to write the tree file (default: stdout).";

/// A CLI failure: message plus the exit code the binary should use.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message (already includes usage hints).
    pub message: String,
    /// Suggested process exit code.
    pub code: i32,
}

impl CliError {
    pub(crate) fn new(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    /// Maps a typed scheduling error to its exit code: unknown names are
    /// usage errors (2), everything else is a scheduling failure (1).
    fn sched(e: SchedError) -> CliError {
        let code = match e {
            SchedError::UnknownScheduler { .. } => 2,
            _ => 1,
        };
        CliError {
            message: e.to_string(),
            code,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Executes `args` (without the program name) and returns the text to
/// print on stdout. File writes (`gen -o`) happen inside.
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::new(USAGE));
    };
    match cmd.as_str() {
        "gen" => cmd_gen(rest),
        "stats" => cmd_stats(rest),
        "sketch" => cmd_sketch(rest),
        "seq" => cmd_seq(rest),
        "schedule" => cmd_schedule(rest),
        "schedulers" => cmd_schedulers(rest),
        "serve" => cmd_serve(rest),
        "connect" => cmd_connect(rest),
        "metrics" => cmd_metrics(rest),
        "pareto" => cmd_pareto(rest),
        "campaign" => cmd_campaign(rest),
        "tree" => crate::tree::execute(rest),
        "dot" => cmd_dot(rest),
        "--help" | "-h" | "help" => Ok(USAGE.to_string()),
        other => Err(CliError::new(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}

pub(crate) fn load_tree(path: &str) -> Result<TaskTree, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::new(format!("cannot read {path}: {e}")))?;
    tree_io::from_text(&text).map_err(|e| CliError::new(format!("cannot parse {path}: {e}")))
}

pub(crate) fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, CliError> {
    s.parse()
        .map_err(|_| CliError::new(format!("cannot parse {what} from `{s}`")))
}

/// Builds the platform of a command from its `-p`/`--speeds`/`--domains`/
/// `--comm`/`--cap` flags and validates it (typed platform errors map to
/// exit 1). The flag syntax itself is parsed by the shared
/// [`treesched_core::PlatformSpec::parse_flags`], which campaign specs use
/// for the same spellings; its typed [`treesched_core::PlatformParseError`]
/// renders here as the usage message.
fn build_platform(
    p: Option<u32>,
    speeds: Option<&str>,
    domains: Option<&str>,
    comm: Option<&str>,
    cap: Option<f64>,
) -> Result<Platform, CliError> {
    if cap.is_some() && domains.is_some() {
        return Err(CliError::new(
            "--cap and --domains cannot be combined (--cap is the single shared domain)",
        ));
    }
    let parse = |speeds: &str| {
        PlatformSpec::parse_flags(speeds, domains, comm).map_err(|e| CliError::new(e.to_string()))
    };
    let spec = match speeds {
        Some(s) => {
            let spec = parse(s)?;
            let total = spec.processors();
            if p.is_some_and(|p| p != total) {
                return Err(CliError::new(format!(
                    "-p {} contradicts --speeds ({total} processors)",
                    p.expect("checked")
                )));
            }
            spec
        }
        None => {
            let p = p.ok_or_else(|| CliError::new("need -p N (or --speeds)"))?;
            if domains.is_some() || comm.is_some() {
                // flat processors with explicit domains: same parser, one
                // implicit unit-speed class (a comm matrix without domains
                // is its typed out-of-range error)
                parse(&format!("{p}x1"))?
            } else {
                PlatformSpec::flat(p)
            }
        }
    };
    let mut platform = spec.to_platform();
    if let Some(cap) = cap {
        platform = platform.with_memory_cap(cap);
    }
    platform.validate().map_err(CliError::sched)?;
    Ok(platform)
}

/// One-line human rendering of a non-flat platform for the text output.
fn platform_text(platform: &Platform) -> String {
    let classes: Vec<String> = platform
        .classes()
        .iter()
        .map(|c| format!("{}x{}", c.count, c.speed))
        .collect();
    let mut s = format!("speeds {}", classes.join(" + "));
    if !platform.domains().is_empty() {
        let domains: Vec<String> = platform
            .domains()
            .iter()
            .map(|d| {
                let ids: Vec<String> = d.classes.iter().map(|c| c.to_string()).collect();
                format!("{}@{}", d.capacity, ids.join("+"))
            })
            .collect();
        let _ = write!(s, "; domains {}", domains.join(", "));
    }
    if platform.has_comm() {
        let d = platform.domains().len();
        let mut costs: Vec<String> = Vec::new();
        for src in 0..d {
            for dst in src + 1..d {
                let c = platform.comm_cost(src, dst);
                if c != 0.0 {
                    costs.push(format!("{src}-{dst}:{c}"));
                }
            }
        }
        let _ = write!(s, "; comm {}", costs.join(", "));
    }
    s
}

fn cmd_gen(args: &[String]) -> Result<String, CliError> {
    use treesched_gen as g;
    let mut out_file: Option<String> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "-o" {
            out_file = Some(
                it.next()
                    .ok_or_else(|| CliError::new("-o needs a path"))?
                    .clone(),
            );
        } else {
            positional.push(a);
        }
    }
    let Some((&kind, params)) = positional.split_first() else {
        return Err(CliError::new(GEN_USAGE));
    };
    let need = |k: usize| -> Result<(), CliError> {
        if params.len() == k {
            Ok(())
        } else {
            Err(CliError::new(format!(
                "gen {kind} needs {k} parameter(s)\n\n{GEN_USAGE}"
            )))
        }
    };
    let tree = match kind.as_str() {
        "fork" => {
            need(2)?;
            g::fork_tree(parse_num(params[0], "P")?, parse_num(params[1], "K")?)
        }
        "chain" => {
            need(1)?;
            TaskTree::chain(parse_num(params[0], "N")?, 1.0, 1.0, 0.0)
        }
        "complete" => {
            need(2)?;
            TaskTree::complete(
                parse_num(params[0], "ARITY")?,
                parse_num(params[1], "DEPTH")?,
                1.0,
                1.0,
                0.0,
            )
        }
        "random" => {
            need(2)?;
            g::random_attachment(
                parse_num(params[0], "N")?,
                g::WeightRange::MIXED,
                parse_num(params[1], "SEED")?,
            )
        }
        "deep" => {
            need(2)?;
            g::random_deep(
                parse_num(params[0], "N")?,
                3,
                g::WeightRange::MIXED,
                parse_num(params[1], "SEED")?,
            )
        }
        "caterpillar" => {
            need(2)?;
            g::caterpillar(
                parse_num(params[0], "SPINE")?,
                parse_num(params[1], "LEGS")?,
            )
        }
        "spider" => {
            need(2)?;
            g::spider(parse_num(params[0], "LEGS")?, parse_num(params[1], "LEN")?)
        }
        "inapprox" => {
            need(2)?;
            g::inapprox_tree(parse_num(params[0], "N")?, parse_num(params[1], "DELTA")?)
        }
        "gadget" => {
            need(2)?;
            g::inner_first_gadget(parse_num(params[0], "P")?, parse_num(params[1], "K")?)
        }
        "longchain" => {
            need(2)?;
            g::long_chain_tree(parse_num(params[0], "C")?, parse_num(params[1], "LEN")?)
        }
        "assembly" => {
            need(3)?;
            gen_assembly(
                params[0],
                parse_num(params[1], "SIZE")?,
                parse_num(params[2], "AMALG")?,
            )?
        }
        other => {
            return Err(CliError::new(format!(
                "unknown generator `{other}`\n\n{GEN_USAGE}"
            )))
        }
    };
    let text = tree_io::to_text(&tree);
    match out_file {
        Some(path) => {
            std::fs::write(&path, &text)
                .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
            Ok(format!("wrote {} tasks to {path}\n", tree.len()))
        }
        None => Ok(text),
    }
}

fn gen_assembly(kind: &str, size: usize, amalg: u32) -> Result<TaskTree, CliError> {
    use treesched_sparse::{assembly, generate, ordering};
    let (pattern, ord) = match kind {
        "grid2d" => {
            let p = generate::grid2d(size, size, generate::Stencil::Star);
            let o = ordering::nested_dissection_2d(size, size);
            (p, o)
        }
        "grid3d" => {
            let p = generate::grid3d(size, size, size, generate::Stencil::Star);
            let o = ordering::nested_dissection_3d(size, size, size);
            (p, o)
        }
        "rand" => {
            let p = generate::random_symmetric(size, 3.0, 42);
            let o = ordering::min_degree(&p);
            (p, o)
        }
        "band" => {
            let p = generate::band(size, 8.min(size.saturating_sub(1)).max(1));
            let o = ordering::min_degree(&p);
            (p, o)
        }
        other => return Err(CliError::new(format!("unknown assembly kind `{other}`"))),
    };
    assembly::assembly_tree_ordered(&pattern, &ord, amalg)
        .map_err(|e| CliError::new(format!("cannot build assembly tree: {e}")))
}

fn cmd_stats(args: &[String]) -> Result<String, CliError> {
    if args.is_empty() {
        return Err(CliError::new("stats needs at least one tree file"));
    }
    let mut out = String::new();
    for path in args {
        let tree = load_tree(path)?;
        let s = TreeStats::of(&tree);
        let _ = writeln!(out, "{path}: {s}");
        let _ = writeln!(
            out,
            "  seq memory: best postorder {:.6e}, max single task {:.6e}",
            treesched_seq::best_postorder_peak(&tree),
            s.max_local_need
        );
    }
    Ok(out)
}

fn cmd_sketch(args: &[String]) -> Result<String, CliError> {
    let (path, max) = match args {
        [p] => (p, 40usize),
        [p, flag, n] if flag == "--max" => (p, parse_num(n, "N")?),
        _ => return Err(CliError::new("usage: treesched sketch FILE [--max N]")),
    };
    let tree = load_tree(path)?;
    Ok(treesched_viz::tree_sketch(&tree, max))
}

fn cmd_seq(args: &[String]) -> Result<String, CliError> {
    let (path, algo) = match args {
        [p] => (p, "best"),
        [p, flag, a] if flag == "--algo" => (p, a.as_str()),
        _ => {
            return Err(CliError::new(
                "usage: treesched seq FILE [--algo best|naive|liu]",
            ))
        }
    };
    let tree = load_tree(path)?;
    let result = seq_algo_by_name(algo)?.traversal(&tree);
    let head: Vec<String> = result
        .order
        .iter()
        .take(16)
        .map(|v| v.index().to_string())
        .collect();
    Ok(format!(
        "algorithm: {algo}\npeak memory: {}\norder head: {}{}\n",
        result.peak,
        head.join(" "),
        if result.order.len() > 16 { " ..." } else { "" }
    ))
}

/// Parses a sequential-traversal algorithm name (`--algo` / `--seq`).
fn seq_algo_by_name(name: &str) -> Result<SeqAlgo, CliError> {
    SeqAlgo::by_name(name).ok_or_else(|| CliError::new(format!("unknown algorithm `{name}`")))
}

fn cmd_schedule(args: &[String]) -> Result<String, CliError> {
    let mut path: Option<&String> = None;
    let mut p: Option<u32> = None;
    let mut name: Option<&String> = None;
    let mut seq = SeqAlgo::default();
    let mut seed: Option<u64> = None;
    let mut show_gantt = false;
    let mut show_profile = false;
    let mut show_placements = false;
    let mut json = false;
    let mut cap: Option<f64> = None;
    let mut speeds: Option<&String> = None;
    let mut domains: Option<&String> = None;
    let mut comm: Option<&String> = None;
    let mut ingest = treesched_trees::IngestOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-p" => {
                p = Some(parse_num(
                    it.next().ok_or_else(|| CliError::new("-p needs N"))?,
                    "N",
                )?)
            }
            "--ordering" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::new("--ordering needs natural|amd|rcm"))?;
                ingest.ordering = treesched_trees::OrderingKind::parse(v).ok_or_else(|| {
                    CliError::new(format!(
                        "unknown ordering `{v}` (expected natural, amd or rcm)"
                    ))
                })?;
            }
            "--amalg" => {
                ingest.amalg = parse_num(
                    it.next().ok_or_else(|| CliError::new("--amalg needs N"))?,
                    "--amalg",
                )?;
                if ingest.amalg == 0 {
                    return Err(CliError::new("--amalg must be at least 1"));
                }
            }
            "--scheduler" | "--heuristic" => {
                name = Some(
                    it.next()
                        .ok_or_else(|| CliError::new(format!("{a} needs a name")))?,
                );
            }
            "--seq" => {
                seq = seq_algo_by_name(
                    it.next()
                        .ok_or_else(|| CliError::new("--seq needs best|naive|liu"))?,
                )?;
            }
            "--seed" => {
                seed = Some(parse_num(
                    it.next().ok_or_else(|| CliError::new("--seed needs N"))?,
                    "seed",
                )?);
            }
            "--gantt" => show_gantt = true,
            "--profile" => show_profile = true,
            "--placements" => show_placements = true,
            "--json" => json = true,
            "--cap" => {
                cap = Some(parse_num(
                    it.next()
                        .ok_or_else(|| CliError::new("--cap needs a value"))?,
                    "cap",
                )?);
            }
            "--speeds" => {
                speeds = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("--speeds needs COUNTxSPEED entries"))?,
                );
            }
            "--domains" => {
                domains = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("--domains needs CAP@CLASSES entries"))?,
                );
            }
            "--comm" => {
                comm = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("--comm needs SRC-DST:COST entries"))?,
                );
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(a),
            other => return Err(CliError::new(format!("unexpected argument `{other}`"))),
        }
    }
    let path = path.ok_or_else(|| CliError::new("schedule needs a tree file"))?;
    if p.is_none() && speeds.is_none() {
        return Err(CliError::new("schedule needs -p N (or --speeds)"));
    }
    if json && (show_gantt || show_profile || show_placements) {
        return Err(CliError::new(
            "--json cannot be combined with --gantt/--profile/--placements",
        ));
    }
    if let Some(cap) = cap {
        // non-finite caps would corrupt the text/JSON record; "no cap" is
        // spelled by omitting the flag
        if !cap.is_finite() {
            return Err(CliError::new("--cap must be a finite number"));
        }
    }
    // any toolbox format schedules directly: v1, Newick, or MatrixMarket
    // (routed through the elimination/assembly-tree pipeline with the
    // --ordering/--amalg knobs), detected by extension then content
    let (tree, _format) =
        treesched_trees::load(path, ingest).map_err(|e| CliError::new(e.to_string()))?;

    let platform = build_platform(
        p,
        speeds.map(|s| s.as_str()),
        domains.map(|s| s.as_str()),
        comm.map(|s| s.as_str()),
        cap,
    )?;
    // scheduler selection: explicit name wins, otherwise a default that
    // can actually serve the platform (see `default_scheduler`)
    let registry = SchedulerRegistry::standard();
    let name = name
        .map(|s| s.as_str())
        .unwrap_or_else(|| default_scheduler(&platform));
    let scheduler = registry.get(name).map_err(CliError::sched)?;
    let mut request = Request::new(&tree, platform.clone()).with_seq(seq);
    if let Some(seed) = seed {
        request = request.with_seed(seed);
    }
    let mut scratch = Scratch::new();
    let outcome = scheduler
        .schedule(&request, &mut scratch)
        .map_err(CliError::sched)?;
    if cap.is_some() && outcome.diagnostics.cap_violations.is_none() {
        // the cap was requested but the resolved scheduler never reads it —
        // refuse rather than report an uncapped schedule as capped
        return Err(CliError::new(format!(
            "scheduler `{}` does not enforce --cap; pick a memory-capped \
             scheduler (see `treesched schedulers`)",
            scheduler.name()
        )));
    }

    let ms_lb = treesched_core::makespan_lower_bound_on(&tree, &platform);
    let mem_ref = treesched_core::memory_reference(&tree);

    if json {
        return Ok(schedule_json(
            scheduler.name(),
            &platform,
            &tree,
            &outcome,
            ms_lb,
            mem_ref,
        ));
    }

    let mut out = String::new();
    if let Some(violations) = outcome.diagnostics.cap_violations {
        let cap = platform.memory_cap().expect("cap schedulers require a cap");
        let _ = writeln!(
            out,
            "memory-capped schedule (cap {cap}): {violations} violation(s)"
        );
    }
    let _ = writeln!(
        out,
        "scheduler: {}\nprocessors: {}\nmakespan: {}  (lower bound {})\npeak memory: {}  (sequential reference {})",
        scheduler.name(),
        platform.processors(),
        outcome.eval.makespan,
        ms_lb,
        outcome.eval.peak_memory,
        mem_ref,
    );
    if !platform.is_flat() {
        let _ = writeln!(out, "platform: {}", platform_text(&platform));
    }
    if !outcome.domain_peaks.is_empty() {
        let peaks: Vec<String> = outcome
            .domain_peaks
            .iter()
            .enumerate()
            .map(|(k, peak)| {
                format!(
                    "domain {k}: {peak} / cap {}",
                    platform.domains()[k].capacity
                )
            })
            .collect();
        let _ = writeln!(out, "domain peaks: {}", peaks.join("; "));
    }
    if show_gantt {
        let _ = write!(
            out,
            "\n{}",
            treesched_viz::gantt(
                &tree,
                &outcome.schedule,
                treesched_viz::GanttOptions::default()
            )
        );
    }
    if show_profile {
        let _ = write!(
            out,
            "\n{}",
            treesched_viz::memory_profile_plot(
                &tree,
                &outcome.schedule,
                treesched_viz::ProfileOptions::default()
            )
        );
    }
    if show_placements {
        let _ = writeln!(out, "\ntask,proc,start,finish");
        for i in tree.ids() {
            let pl = outcome.schedule.placement(i);
            let _ = writeln!(out, "{},{},{},{}", i.index(), pl.proc, pl.start, pl.finish);
        }
    }
    Ok(out)
}

/// The stable machine-readable record of `schedule --json`: one JSON
/// object per run, rendered by the shared record builder in
/// [`treesched_serve::jsonl`] (the serving responses reuse the same field
/// conventions, prefixed with the request id).
fn schedule_json(
    name: &str,
    platform: &Platform,
    tree: &TaskTree,
    outcome: &treesched_core::Outcome,
    ms_lb: f64,
    mem_ref: f64,
) -> String {
    treesched_serve::ScheduleRecord {
        scheduler: name,
        platform,
        tasks: tree.len(),
        makespan: outcome.eval.makespan,
        makespan_lower_bound: ms_lb,
        peak_memory: outcome.eval.peak_memory,
        memory_reference: mem_ref,
        cap_violations: outcome.diagnostics.cap_violations,
        domain_peaks: &outcome.domain_peaks,
    }
    .to_json()
}

fn cmd_schedulers(args: &[String]) -> Result<String, CliError> {
    if !args.is_empty() {
        return Err(CliError::new("usage: treesched schedulers"));
    }
    let registry = SchedulerRegistry::standard();
    let mut out = String::from("registered schedulers (* = paper campaign):\n");
    for e in registry.iter() {
        let mark = if e.in_campaign() { "*" } else { " " };
        let _ = writeln!(
            out,
            "{mark} {:<18} {:<28} {}",
            e.name(),
            e.aliases().join(", "),
            e.description()
        );
    }
    out.push_str("\nmemory-capped schedulers need `schedule --cap X`.\n");
    Ok(out)
}

/// The JSONL serving front-end over [`treesched_serve::ServeEngine`].
///
/// Request records reference tree files by path; each distinct path is
/// loaded once and shared across its requests, so same-tree traffic
/// batches inside the engine. Per-request failures (unreadable tree,
/// protocol errors, typed scheduling errors) become `error` records in the
/// output — one line per input request, in input order, always.
/// `--speeds`/`--domains`/`--comm` set the default platform applied to
/// requests that carry neither `processors` nor a `platform` object.
fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let mut path: Option<&String> = None;
    let mut workers: usize = 1;
    let mut speeds: Option<&String> = None;
    let mut domains: Option<&String> = None;
    let mut comm: Option<&String> = None;
    let mut listen: Option<&String> = None;
    let mut stdio = false;
    let mut accept: u64 = 0;
    let mut inflight: usize = 64;
    let mut overload = false;
    let mut metrics_out: Option<&String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--metrics-out" => {
                metrics_out = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("--metrics-out needs a PATH"))?,
                );
            }
            "--workers" => {
                workers = parse_num(
                    it.next()
                        .ok_or_else(|| CliError::new("--workers needs N"))?,
                    "N",
                )?;
                if workers == 0 {
                    return Err(CliError::new("--workers needs at least 1"));
                }
            }
            "--listen" => {
                listen = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("--listen needs a socket PATH"))?,
                );
            }
            "--stdio" => stdio = true,
            "--accept" => {
                accept = parse_num(
                    it.next().ok_or_else(|| CliError::new("--accept needs N"))?,
                    "N",
                )?;
            }
            "--inflight" => {
                inflight = parse_num(
                    it.next()
                        .ok_or_else(|| CliError::new("--inflight needs N"))?,
                    "N",
                )?;
                if inflight == 0 {
                    return Err(CliError::new("--inflight needs at least 1"));
                }
            }
            "--overload" => overload = true,
            "--speeds" => {
                speeds = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("--speeds needs COUNTxSPEED entries"))?,
                );
            }
            "--domains" => {
                domains = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("--domains needs CAP@CLASSES entries"))?,
                );
            }
            "--comm" => {
                comm = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("--comm needs SRC-DST:COST entries"))?,
                );
            }
            other if path.is_none() && (other == "-" || !other.starts_with('-')) => path = Some(a),
            other => return Err(CliError::new(format!("unexpected argument `{other}`"))),
        }
    }
    let default_platform = match (speeds, domains, comm) {
        (None, None, None) => None,
        (None, Some(_), _) => {
            return Err(CliError::new("serve --domains needs --speeds"));
        }
        (None, None, Some(_)) => {
            return Err(CliError::new("serve --comm needs --speeds and --domains"));
        }
        (Some(_), _, _) => Some(build_platform(
            None,
            speeds.map(|s| s.as_str()),
            domains.map(|s| s.as_str()),
            comm.map(|s| s.as_str()),
            None,
        )?),
    };
    if listen.is_some() || stdio {
        if listen.is_some() && stdio {
            return Err(CliError::new("--listen and --stdio are exclusive"));
        }
        if path.is_some() {
            return Err(CliError::new(
                "daemon modes stream their transport; they take no FILE",
            ));
        }
        let daemon = Daemon::new(
            SchedulerRegistry::standard(),
            DaemonConfig {
                workers,
                inflight_cap: inflight,
                default_platform,
            },
        );
        // blocking backpressure by default; --overload sheds excess lines
        // as typed records instead
        let block = !overload;
        // SIGTERM drains gracefully: the stoppable transports stop taking
        // new work, answer every in-flight line, and return so the final
        // snapshot (if requested) flushes and the process exits 0
        let stop = treesched_transport::signal::term_flag();
        let flush_metrics = |daemon: &Daemon| -> Result<(), CliError> {
            if let Some(path) = metrics_out {
                std::fs::write(path, daemon.metrics_json())
                    .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
            }
            Ok(())
        };
        if let Some(socket) = listen {
            let options = ListenOptions {
                accept: (accept > 0).then_some(accept),
                block,
            };
            let served = treesched_transport::listen_unix_stoppable(
                &daemon,
                std::path::Path::new(socket),
                options,
                stop,
            )
            .map_err(|e| CliError::new(format!("cannot serve on {socket}: {e}")))?;
            flush_metrics(&daemon)?;
            return Ok(format!("served {served} connections\n"));
        }
        // --stdio: framed responses stream straight to stdout in
        // completion order; nothing is left to print afterwards (the
        // un-lockable Stdin handle is what the drain's detached reader
        // thread needs)
        let stdin = std::io::BufReader::new(std::io::stdin());
        treesched_transport::serve_stdio_stoppable(&daemon, stdin, std::io::stdout(), block, stop)
            .map_err(|e| CliError::new(format!("stdio serve failed: {e}")))?;
        flush_metrics(&daemon)?;
        return Ok(String::new());
    }
    if accept != 0 || overload || inflight != 64 {
        return Err(CliError::new(
            "--accept/--inflight/--overload need a daemon mode (--listen or --stdio)",
        ));
    }
    let input = match path.map(|s| s.as_str()) {
        Some("-") | None => {
            let mut buf = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)
                .map_err(|e| CliError::new(format!("cannot read stdin: {e}")))?;
            buf
        }
        Some(p) => std::fs::read_to_string(p)
            .map_err(|e| CliError::new(format!("cannot read {p}: {e}")))?,
    };
    let (output, snapshot) = serve_jsonl_with_metrics(&input, workers, default_platform.as_ref());
    if let Some(path) = metrics_out {
        std::fs::write(path, snapshot)
            .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
    }
    Ok(output)
}

/// Runs one JSONL request stream through a fresh engine and renders the
/// response stream. Split from the `serve` subcommand so tests can drive
/// the exact byte-level protocol without touching stdin.
/// `default_platform` applies to requests that spell no platform of their
/// own (neither `processors` nor a `platform` object).
///
/// Each line is resolved by the same [`RequestParser`] the serve daemon
/// uses, so a daemon client that stable-sorts its framed responses gets
/// this function's output byte-for-byte (the transport crate pins that).
pub fn serve_jsonl(input: &str, workers: usize, default_platform: Option<&Platform>) -> String {
    serve_jsonl_with_metrics(input, workers, default_platform).0
}

/// Metric names mirrored from [`treesched_serve::ServeStats`] into the
/// batch snapshot — the same spellings the serve daemon registers, so
/// scrapes of either surface read identically.
const ENGINE_MIRRORS: [&str; 8] = [
    "engine_requests_total",
    "engine_batches_total",
    "traversal_computes_total",
    "traversal_reuses_total",
    "subtree_views_total",
    "subtree_clones_total",
    "worker_lost_total",
    "reroutes_total",
];

/// As [`serve_jsonl`], additionally returning the final metrics snapshot
/// as one `{"op":"metrics",...}` JSONL record (the `--metrics-out` body):
/// stage spans for the parse and drain phases, a log2 histogram of
/// per-request schedule times, and the engine counters under the same
/// names the serve daemon registers. The response stream is byte-for-byte
/// the [`serve_jsonl`] stream — metrics live entirely outside the
/// response identity (a property test pins this).
pub fn serve_jsonl_with_metrics(
    input: &str,
    workers: usize,
    default_platform: Option<&Platform>,
) -> (String, String) {
    let registry = SchedulerRegistry::standard();
    let mut engine = ServeEngine::new(registry, workers);
    let mut parser = RequestParser::new(default_platform.cloned());
    // registration order is snapshot field order: engine mirrors, the
    // schedule-time histogram, then the stage spans
    let metrics = treesched_obs::MetricsRegistry::new();
    let mirrors: Vec<_> = ENGINE_MIRRORS
        .iter()
        .map(|name| metrics.counter(name))
        .collect();
    let schedule_us = metrics.histogram("schedule_time_us");
    let parse_span = metrics.span("span_parse");
    let drain_span = metrics.span("span_drain");
    // one output slot per request line; protocol/file errors fill their
    // slot immediately, scheduled requests fill theirs after the drain
    let mut slots: Vec<Option<String>> = Vec::new();
    let mut submitted: Vec<usize> = Vec::new(); // engine order -> slot
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let slot = slots.len();
        slots.push(None);
        // the parser renders protocol/file errors (with their 1-based
        // line numbers) as finished records
        match parse_span.time(|| parser.build(lineno + 1, line)) {
            Ok(request) => {
                engine.submit(request);
                submitted.push(slot);
            }
            Err(record) => slots[slot] = Some(record),
        }
    }
    for (k, result) in drain_span.time(|| engine.drain()).iter().enumerate() {
        schedule_us.record(result.time_us);
        slots[submitted[k]] = Some(treesched_serve::result_json(result));
    }
    let stats = engine.stats();
    for (mirror, value) in mirrors.iter().zip([
        stats.requests,
        stats.batches,
        stats.traversal_computes,
        stats.traversal_reuses,
        stats.subtree_views,
        stats.subtree_clones,
        stats.worker_lost,
        stats.reroutes,
    ]) {
        mirror.store(value);
    }
    let snapshot = metrics
        .snapshot()
        .append(treesched_serve::JsonRecord::new().str("op", "metrics"))
        .line();
    let output = slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect();
    (output, snapshot)
}

/// Client for the daemon's `{"op":"metrics"}` control request: fetches
/// one live snapshot from a `serve --listen` daemon and prints the bare
/// record (frame stripped), newline-terminated.
fn cmd_metrics(args: &[String]) -> Result<String, CliError> {
    const METRICS_USAGE: &str = "usage: treesched metrics PATH";
    let [path] = args else {
        return Err(CliError::new(METRICS_USAGE));
    };
    let input = std::io::Cursor::new("{\"op\":\"metrics\"}\n");
    let mut out = Vec::new();
    treesched_transport::connect_unix(std::path::Path::new(path), input, &mut out, false)
        .map_err(|e| CliError::new(format!("cannot connect to {path}: {e}")))?;
    String::from_utf8(out).map_err(|_| CliError::new("daemon answered with non-UTF8 bytes"))
}

/// Client for a `serve --listen` daemon: JSONL request lines from stdin
/// to the socket, responses to stdout — reconstructed into the exact
/// batch-mode byte stream by default (stable sort on the frame index),
/// or the raw framed completion-order stream with `--raw`.
fn cmd_connect(args: &[String]) -> Result<String, CliError> {
    const CONNECT_USAGE: &str = "usage: treesched connect PATH [--raw]";
    let mut path: Option<&String> = None;
    let mut raw = false;
    for a in args {
        match a.as_str() {
            "--raw" => raw = true,
            other if path.is_none() && !other.starts_with('-') => path = Some(a),
            other => {
                return Err(CliError::new(format!(
                    "unexpected argument `{other}`\n\n{CONNECT_USAGE}"
                )))
            }
        }
    }
    let path = path.ok_or_else(|| CliError::new(CONNECT_USAGE))?;
    let input = std::io::BufReader::new(std::io::stdin());
    treesched_transport::connect_unix(std::path::Path::new(path), input, std::io::stdout(), raw)
        .map_err(|e| CliError::new(format!("cannot connect to {path}: {e}")))?;
    Ok(String::new())
}

fn cmd_pareto(args: &[String]) -> Result<String, CliError> {
    const PARETO_USAGE: &str =
        "usage: treesched pareto FILE -p N [--json] [--speeds L] [--domains D]";
    let mut path: Option<&String> = None;
    let mut p: Option<u32> = None;
    let mut json = false;
    let mut speeds: Option<&String> = None;
    let mut domains: Option<&String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-p" => {
                p = Some(parse_num(
                    it.next().ok_or_else(|| CliError::new("-p needs N"))?,
                    "N",
                )?)
            }
            "--json" => json = true,
            "--speeds" => {
                speeds = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("--speeds needs COUNTxSPEED entries"))?,
                );
            }
            "--domains" => {
                domains = Some(
                    it.next()
                        .ok_or_else(|| CliError::new("--domains needs CAP@CLASSES entries"))?,
                );
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(a),
            _ => return Err(CliError::new(PARETO_USAGE)),
        }
    }
    let path = path.ok_or_else(|| CliError::new(PARETO_USAGE))?;
    if p.is_none() && speeds.is_none() {
        return Err(CliError::new(PARETO_USAGE));
    }
    let platform = build_platform(
        p,
        speeds.map(|s| s.as_str()),
        domains.map(|s| s.as_str()),
        None,
        None,
    )?;
    // the exact solver enumerates unit-time steps over one shared memory;
    // it accepts any platform spelling of that machine and refuses the rest
    if platform.uniform_speed() != Some(1.0) {
        return Err(CliError::new(
            "the exact frontier requires unit-speed processors (the solver counts unit time steps)",
        ));
    }
    if !platform.has_shared_memory() {
        return Err(CliError::new(
            "the exact frontier requires one shared memory (got multiple domains)",
        ));
    }
    let p = platform.processors();
    let tree = load_tree(path)?;
    if tree.len() > treesched_core::pareto::MAX_PARETO_NODES {
        return Err(CliError::new(format!(
            "tree too large for the exact solver ({} > {} tasks)",
            tree.len(),
            treesched_core::pareto::MAX_PARETO_NODES
        )));
    }
    if tree.ids().any(|i| tree.work(i) != 1.0) {
        return Err(CliError::new(
            "exact frontier requires unit works (pebble trees)",
        ));
    }
    let frontier = treesched_core::pareto_frontier(&tree, p);
    if json {
        // same record conventions as `schedule --json`, via the shared
        // builder — the frontier as (makespan, peak_memory) pairs
        // flattened into parallel arrays
        let makespans: Vec<f64> = frontier.iter().map(|pt| f64::from(pt.makespan)).collect();
        let memories: Vec<f64> = frontier.iter().map(|pt| pt.memory).collect();
        return Ok(treesched_serve::JsonRecord::new()
            .str("command", "pareto")
            .int("processors", u64::from(p))
            .int("tasks", tree.len() as u64)
            .int("points", frontier.len() as u64)
            .num_array("makespans", &makespans)
            .num_array("peak_memories", &memories)
            .line());
    }
    let mut out = format!("exact Pareto frontier, p = {p}:\n");
    let _ = writeln!(out, "  {:>9} {:>12}", "makespan", "peak memory");
    for pt in &frontier {
        let _ = writeln!(out, "  {:>9} {:>12}", pt.makespan, pt.memory);
    }
    Ok(out)
}

const CAMPAIGN_USAGE: &str = "treesched campaign — declarative experiment campaigns

Runs the cross-product of a tree set x schedulers x platform points x
sequential algorithms through the batched serving engine and streams one
JSON record per scenario (typed errors are records too, never aborts).
Output is byte-identical for any --workers count.

  campaign --spec FILE [--workers N]   run a JSON spec file
  campaign --compare OLD.jsonl NEW.jsonl [--tolerance PCT]
                                       compare two campaign dumps as a perf
                                       gate: every field but time_us must be
                                       identical (exit 3 on drift), and the
                                       summed time_us may regress by at most
                                       PCT percent (default 25; exit 1)
  campaign [flags]                     build the spec from flags:
    --name N                  campaign name (default: campaign)
    --scale small|medium|large  include the assembly corpus
    --trees F1,F2,...         include explicit v1 tree files
    --trees-file F1,F2,...    include workload files through the tree
                              toolbox (v1, Newick, or MatrixMarket with
                              the default amd ordering; spec files take
                              {\"path\",\"ordering\",\"amalg\",\"name\"} objects
                              under the `trees_file` key for the knobs)
    --procs P1,P2,...         flat platform points
    --speeds C1xS1,...        one extra heterogeneous point
    --domains CAP@CLASSES,... memory domains of that point
    --comm SRC-DST:COST,...   cross-domain transfer costs of that point
    --cap-factor F            per-tree cap = F x sequential peak (all points)
    --schedulers N1,N2,...    registry names/aliases (default: campaign set)
    --seq A1,A2,...           sequential sub-algorithm grid (default: best)
    --seed N                  seed for randomized schedulers
    --metrics M1,M2,...       extra record fields (speedup, utilization,
                              max_domain_peak, time_us)
    --time-reps N             timing repetitions per scenario when time_us
                              is selected (median; default 1)
    --workers N               engine workers (default: auto; output identical)

The spec file form of the same campaign:
  {\"name\":\"mixed\",\"corpus\":\"small\",\"trees\":[\"fork.tree\"],
   \"schedulers\":[\"deepest\",\"cp\"],
   \"platforms\":[{\"processors\":4},
                {\"speeds\":\"2x2.0,2x1.0\",\"domains\":\"1e9@0,1e9@1\",
                 \"comm\":\"0-1:2\"}],
   \"seq\":[\"best\"],\"seed\":7,\"metrics\":[\"speedup\"],\"workers\":4,
   \"time_reps\":5}";

/// The Campaign API front-end: builds a [`treesched_bench::CampaignSpec`]
/// from a JSON spec file or from flags, runs it over the engine-backed
/// [`treesched_bench::CampaignRunner`], and returns the JSONL stream.
/// Scenario failures are typed error *records* in the stream (exit 0),
/// matching the serve protocol; only spec-level problems (unknown
/// scheduler names, unreadable files, bad flags) fail the command.
fn cmd_campaign(args: &[String]) -> Result<String, CliError> {
    use treesched_bench::{CampaignRunner, CampaignSpec, PlatformPoint};

    let mut spec_file: Option<&String> = None;
    let mut name: Option<&String> = None;
    let mut scale: Option<treesched_gen::Scale> = None;
    let mut trees: Vec<&str> = Vec::new();
    let mut trees_file: Vec<String> = Vec::new();
    let mut procs: Vec<u32> = Vec::new();
    let mut schedulers: Option<Vec<String>> = None;
    let mut cap_factor: Option<f64> = None;
    let mut speeds: Option<&String> = None;
    let mut domains: Option<&String> = None;
    let mut comm: Option<&String> = None;
    let mut seqs: Option<Vec<SeqAlgo>> = None;
    let mut seed: Option<u64> = None;
    let mut metrics: Vec<treesched_core::Metric> = Vec::new();
    let mut workers: Option<usize> = None;
    let mut time_reps: Option<u32> = None;
    let mut compare: Option<(String, String)> = None;
    let mut tolerance: Option<f64> = None;
    let mut grid_flags = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError::new(format!("{a} needs {what}")))
        };
        match a.as_str() {
            "--help" | "-h" => return Ok(CAMPAIGN_USAGE.to_string()),
            "--spec" => spec_file = Some(value("a path")?),
            "--workers" => {
                let w: usize = parse_num(value("N")?, "workers")?;
                if w == 0 {
                    return Err(CliError::new("--workers needs at least 1"));
                }
                workers = Some(w);
            }
            "--name" => {
                name = Some(value("a name")?);
                grid_flags = true;
            }
            "--scale" => {
                scale = Some(match value("small|medium|large")?.as_str() {
                    "small" => treesched_gen::Scale::Small,
                    "medium" => treesched_gen::Scale::Medium,
                    "large" => treesched_gen::Scale::Large,
                    other => return Err(CliError::new(format!("unknown scale `{other}`"))),
                });
                grid_flags = true;
            }
            "--trees" => {
                trees.extend(value("tree files")?.split(',').map(str::trim));
                grid_flags = true;
            }
            "--trees-file" => {
                trees_file.extend(
                    value("workload files")?
                        .split(',')
                        .map(|s| s.trim().to_string()),
                );
                grid_flags = true;
            }
            "--procs" => {
                for p in value("processor counts")?.split(',') {
                    let p: u32 = parse_num(p.trim(), "--procs entry")?;
                    if p == 0 {
                        return Err(CliError::new("--procs needs positive processor counts"));
                    }
                    procs.push(p);
                }
                grid_flags = true;
            }
            "--schedulers" => {
                let names: Vec<String> = value("registry names")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if names.is_empty() {
                    return Err(CliError::new("--schedulers needs at least one name"));
                }
                schedulers = Some(names);
                grid_flags = true;
            }
            "--cap-factor" => {
                let f: f64 = parse_num(value("a factor")?, "--cap-factor")?;
                if !f.is_finite() || f <= 0.0 {
                    return Err(CliError::new(
                        "--cap-factor must be a positive finite number",
                    ));
                }
                cap_factor = Some(f);
                grid_flags = true;
            }
            "--speeds" => {
                speeds = Some(value("COUNTxSPEED entries")?);
                grid_flags = true;
            }
            "--domains" => {
                domains = Some(value("CAP@CLASSES entries")?);
                grid_flags = true;
            }
            "--comm" => {
                comm = Some(value("SRC-DST:COST entries")?);
                grid_flags = true;
            }
            "--seq" => {
                let parsed: Option<Vec<SeqAlgo>> = value("algorithm names")?
                    .split(',')
                    .map(|s| SeqAlgo::by_name(s.trim()))
                    .collect();
                let parsed =
                    parsed.ok_or_else(|| CliError::new("--seq needs best|naive|liu names"))?;
                if parsed.is_empty() {
                    return Err(CliError::new("--seq needs at least one algorithm"));
                }
                seqs = Some(parsed);
                grid_flags = true;
            }
            "--seed" => {
                seed = Some(parse_num(value("N")?, "seed")?);
                grid_flags = true;
            }
            "--metrics" => {
                for m in value("metric names")?.split(',') {
                    let m = m.trim();
                    metrics.push(
                        treesched_core::Metric::by_name(m)
                            .ok_or_else(|| CliError::new(format!("unknown metric `{m}`")))?,
                    );
                }
                grid_flags = true;
            }
            "--time-reps" => {
                let reps: u32 = parse_num(value("N")?, "--time-reps")?;
                if reps == 0 {
                    return Err(CliError::new("--time-reps needs at least 1"));
                }
                time_reps = Some(reps);
                grid_flags = true;
            }
            "--compare" => {
                let old = value("OLD.jsonl and NEW.jsonl")?.clone();
                let new = value("NEW.jsonl")?.clone();
                compare = Some((old, new));
            }
            "--tolerance" => {
                let pct: f64 = parse_num(value("a percentage")?, "--tolerance")?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err(CliError::new(
                        "--tolerance must be a non-negative percentage",
                    ));
                }
                tolerance = Some(pct);
            }
            other => {
                return Err(CliError::new(format!(
                    "unexpected argument `{other}`\n\n{CAMPAIGN_USAGE}"
                )))
            }
        }
    }

    if let Some((old_path, new_path)) = compare {
        if spec_file.is_some() || grid_flags || workers.is_some() {
            return Err(CliError::new(
                "--compare runs no campaign; only --tolerance combines with it",
            ));
        }
        let read = |path: &str| {
            std::fs::read_to_string(path)
                .map_err(|e| CliError::new(format!("cannot read {path}: {e}")))
        };
        let (old, new) = (read(&old_path)?, read(&new_path)?);
        let pct = tolerance.unwrap_or(25.0);
        use treesched_bench::CampaignComparison;
        return match treesched_bench::compare_campaigns(&old, &new, pct).map_err(CliError::new)? {
            CampaignComparison::Ok { old_us, new_us } => Ok(format!(
                "campaign compare: ok — stable fields identical, \
                 time {old_us:.0}us -> {new_us:.0}us (tolerance {pct}%)\n"
            )),
            CampaignComparison::TimingRegression {
                old_us,
                new_us,
                tolerance_pct,
            } => Err(CliError {
                message: format!(
                    "timing regression: {old_us:.0}us -> {new_us:.0}us \
                     (+{:.1}%, tolerance {tolerance_pct}%)",
                    (new_us / old_us - 1.0) * 100.0
                ),
                code: 1,
            }),
            CampaignComparison::StableMismatch { line, detail } => Err(CliError {
                message: format!(
                    "campaigns are not comparable: line {line}: {detail} \
                     (different specs or schedules — refresh the baseline)"
                ),
                code: 3,
            }),
        };
    }
    if tolerance.is_some() {
        return Err(CliError::new("--tolerance needs --compare"));
    }

    let spec = match spec_file {
        Some(path) => {
            if grid_flags {
                return Err(CliError::new(
                    "--spec cannot be combined with spec-building flags (only --workers)",
                ));
            }
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::new(format!("cannot read {path}: {e}")))?;
            treesched_bench::spec_from_json(&text)
                .map_err(|e| CliError::new(format!("bad spec {path}: {e}")))?
        }
        None => {
            let mut spec = CampaignSpec::new(name.map(|s| s.as_str()).unwrap_or("campaign"));
            spec.corpus = scale;
            for path in trees {
                spec.trees.push(treesched_gen::CorpusEntry {
                    name: path.to_string(),
                    tree: load_tree(path)?,
                });
            }
            for path in trees_file {
                let (tree, _) = treesched_trees::load(&path, Default::default())
                    .map_err(|e| CliError::new(e.to_string()))?;
                spec.trees
                    .push(treesched_gen::CorpusEntry { name: path, tree });
            }
            for &p in &procs {
                let mut point = PlatformPoint::flat(p);
                if let Some(factor) = cap_factor {
                    point = point.with_cap_factor(factor);
                }
                spec.platforms.push(point);
            }
            match (speeds, domains) {
                (Some(speeds), domains) => {
                    let parsed = PlatformSpec::parse_flags(
                        speeds,
                        domains.map(|s| s.as_str()),
                        comm.map(|s| s.as_str()),
                    )
                    .map_err(|e| CliError::new(e.to_string()))?;
                    let mut point = PlatformPoint::from_spec(parsed);
                    if let Some(factor) = cap_factor {
                        point = point.with_cap_factor(factor);
                    }
                    spec.platforms.push(point);
                }
                (None, Some(_)) => return Err(CliError::new("--domains needs --speeds")),
                (None, None) => {
                    if comm.is_some() {
                        return Err(CliError::new("--comm needs --speeds and --domains"));
                    }
                }
            }
            if spec.platforms.is_empty() {
                return Err(CliError::new(
                    "campaign needs at least one platform point (--procs or --speeds)",
                ));
            }
            if spec.trees.is_empty() && spec.corpus.is_none() {
                return Err(CliError::new(
                    "campaign needs a tree set (--scale and/or --trees)",
                ));
            }
            spec.schedulers = schedulers;
            if let Some(seqs) = seqs {
                spec.seqs = seqs;
            }
            spec.seed = seed;
            spec.metrics = metrics;
            if let Some(reps) = time_reps {
                spec = spec.with_time_reps(reps);
            }
            spec
        }
    };
    let workers = workers
        .or(spec.workers)
        .unwrap_or_else(treesched_bench::default_workers);
    let campaign = CampaignRunner::new(workers)
        .run(&spec)
        .map_err(CliError::sched)?;
    Ok(campaign.to_jsonl())
}

fn cmd_dot(args: &[String]) -> Result<String, CliError> {
    let [path] = args else {
        return Err(CliError::new("usage: treesched dot FILE"));
    };
    let tree = load_tree(path)?;
    Ok(tree_io::to_dot(&tree, path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        dispatch(&v)
    }

    fn tmpfile(name: &str) -> String {
        let dir = std::env::temp_dir().join("treesched-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run(&["--help"]).unwrap().contains("usage:"));
        let e = run(&["frobnicate"]).unwrap_err();
        assert!(e.message.contains("unknown command"));
        assert!(run(&[]).is_err());
    }

    #[test]
    fn gen_to_stdout_parses_back() {
        let text = run(&["gen", "fork", "2", "3"]).unwrap();
        let tree = tree_io::from_text(&text).unwrap();
        assert_eq!(tree.len(), 7);
    }

    #[test]
    fn gen_all_kinds() {
        for args in [
            vec!["gen", "chain", "5"],
            vec!["gen", "complete", "2", "3"],
            vec!["gen", "random", "30", "1"],
            vec!["gen", "deep", "30", "1"],
            vec!["gen", "caterpillar", "4", "2"],
            vec!["gen", "spider", "3", "3"],
            vec!["gen", "inapprox", "2", "3"],
            vec!["gen", "gadget", "3", "3"],
            vec!["gen", "longchain", "3", "2"],
            vec!["gen", "assembly", "grid2d", "6", "4"],
            vec!["gen", "assembly", "rand", "50", "2"],
        ] {
            let text = run(&args).unwrap_or_else(|e| panic!("{args:?}: {e}"));
            assert!(tree_io::from_text(&text).is_ok(), "{args:?}");
        }
    }

    #[test]
    fn gen_rejects_bad_params() {
        assert!(run(&["gen", "fork", "2"]).is_err());
        assert!(run(&["gen", "fork", "x", "y"]).is_err());
        assert!(run(&["gen", "nosuch", "1"]).is_err());
        assert!(run(&["gen", "assembly", "nosuch", "5", "1"]).is_err());
    }

    #[test]
    fn end_to_end_via_file() {
        let f = tmpfile("e2e.tree");
        let msg = run(&["gen", "spider", "4", "3", "-o", &f]).unwrap();
        assert!(msg.contains("wrote 13 tasks"));

        let stats = run(&["stats", &f]).unwrap();
        assert!(stats.contains("nodes=13"));

        let sketch = run(&["sketch", &f]).unwrap();
        assert!(sketch.contains("└─"));

        // 4 legs meeting at the root: all leg outputs + in-flight pebble
        let seq = run(&["seq", &f, "--algo", "liu"]).unwrap();
        assert!(seq.contains("peak memory: 5"), "{seq}");

        let sched = run(&[
            "schedule",
            &f,
            "-p",
            "2",
            "--heuristic",
            "deepest",
            "--gantt",
        ])
        .unwrap();
        assert!(sched.contains("makespan:"));
        assert!(sched.contains("p0 |"));

        let pl = run(&["schedule", &f, "-p", "2", "--placements"]).unwrap();
        assert!(pl.contains("task,proc,start,finish"));
        assert_eq!(pl.lines().filter(|l| l.contains(',')).count(), 13 + 1);

        let pareto = run(&["pareto", &f, "-p", "2"]).unwrap();
        assert!(pareto.contains("Pareto frontier"));

        let dot = run(&["dot", &f]).unwrap();
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn schedule_with_cap() {
        let f = tmpfile("cap.tree");
        run(&["gen", "complete", "2", "3", "-o", &f]).unwrap();
        let out = run(&["schedule", &f, "-p", "4", "--cap", "5", "--profile"]).unwrap();
        assert!(out.contains("memory-capped"));
        assert!(out.contains("violation(s)"));
        assert!(out.contains("Memory profile"));
        // a greedy capped scheduler honors the flag too
        let out = run(&[
            "schedule",
            &f,
            "-p",
            "4",
            "--cap",
            "5",
            "--scheduler",
            "mem-greedy",
        ])
        .unwrap();
        assert!(out.contains("MemBoundedGreedy"), "{out}");
    }

    #[test]
    fn cap_rejects_noncapped_schedulers_and_nonfinite_values() {
        let f = tmpfile("capmix.tree");
        run(&["gen", "complete", "2", "3", "-o", &f]).unwrap();
        // --cap with a scheduler that ignores it must not silently succeed
        let e = run(&[
            "schedule",
            &f,
            "-p",
            "2",
            "--scheduler",
            "deepest",
            "--cap",
            "5",
        ])
        .unwrap_err();
        assert!(
            e.message.contains("does not enforce --cap"),
            "{}",
            e.message
        );
        // non-finite caps would corrupt the text/JSON record
        for bad in ["inf", "-inf", "nan"] {
            let e = run(&["schedule", &f, "-p", "2", "--cap", bad]).unwrap_err();
            assert!(e.message.contains("finite"), "{bad}: {}", e.message);
        }
    }

    #[test]
    fn schedule_requires_p() {
        let f = tmpfile("nop.tree");
        run(&["gen", "chain", "3", "-o", &f]).unwrap();
        assert!(run(&["schedule", &f]).is_err());
        assert!(run(&["schedule", &f, "-p", "0"]).is_err());
        assert!(run(&["schedule", &f, "-p", "2", "--heuristic", "nosuch"]).is_err());
    }

    #[test]
    fn scheduling_errors_exit_one_usage_errors_exit_two() {
        let f = tmpfile("codes.tree");
        run(&["gen", "chain", "3", "-o", &f]).unwrap();
        // p == 0 is a typed SchedError -> exit 1
        assert_eq!(run(&["schedule", &f, "-p", "0"]).unwrap_err().code, 1);
        assert_eq!(run(&["pareto", &f, "-p", "0"]).unwrap_err().code, 1);
        // capped scheduler without --cap -> exit 1
        let e = run(&["schedule", &f, "-p", "2", "--scheduler", "membound"]).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.message.contains("memory cap"), "{}", e.message);
        // unknown scheduler name stays a usage error -> exit 2
        let e = run(&["schedule", &f, "-p", "2", "--scheduler", "nosuch"]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("known:"), "{}", e.message);
    }

    #[test]
    fn schedule_resolves_registry_aliases() {
        let f = tmpfile("alias.tree");
        run(&["gen", "spider", "4", "3", "-o", &f]).unwrap();
        for (alias, canonical) in [
            ("subtrees", "ParSubtrees"),
            ("optim", "ParSubtreesOptim"),
            ("inner", "ParInnerFirst"),
            ("deepest", "ParDeepestFirst"),
            ("cp", "CpList"),
            ("fifo", "FifoList"),
            ("random", "RandomList"),
        ] {
            let out = run(&["schedule", &f, "-p", "2", "--scheduler", alias]).unwrap();
            assert!(
                out.contains(&format!("scheduler: {canonical}")),
                "{alias}: {out}"
            );
        }
    }

    #[test]
    fn schedulers_lists_the_whole_registry() {
        let out = run(&["schedulers"]).unwrap();
        let registry = SchedulerRegistry::standard();
        for e in registry.iter() {
            assert!(out.contains(e.name()), "missing {}", e.name());
            for a in e.aliases() {
                assert!(out.contains(a), "missing alias {a}");
            }
        }
        assert!(run(&["schedulers", "extra"]).is_err());
    }

    #[test]
    fn schedule_json_emits_stable_record() {
        let f = tmpfile("json.tree");
        run(&["gen", "fork", "2", "3", "-o", &f]).unwrap();
        let out = run(&[
            "schedule",
            &f,
            "-p",
            "2",
            "--scheduler",
            "deepest",
            "--json",
        ])
        .unwrap();
        assert!(
            out.starts_with('{') && out.trim_end().ends_with('}'),
            "{out}"
        );
        for key in [
            "\"scheduler\":\"ParDeepestFirst\"",
            "\"processors\":2",
            "\"tasks\":7",
            "\"makespan\":",
            "\"makespan_lower_bound\":",
            "\"peak_memory\":",
            "\"memory_reference\":",
            "\"cap\":null",
            "\"cap_violations\":null",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
        // capped run fills the cap fields
        let out = run(&["schedule", &f, "-p", "2", "--cap", "100", "--json"]).unwrap();
        assert!(out.contains("\"scheduler\":\"MemBoundedSeq\""), "{out}");
        assert!(out.contains("\"cap\":100"), "{out}");
        assert!(out.contains("\"cap_violations\":0"), "{out}");
        // json is exclusive with the visual flags
        assert!(run(&["schedule", &f, "-p", "2", "--json", "--gantt"]).is_err());
    }

    #[test]
    fn schedule_seq_and_seed_flags() {
        let f = tmpfile("seqflag.tree");
        run(&["gen", "complete", "2", "4", "-o", &f]).unwrap();
        for algo in ["best", "naive", "liu"] {
            let out = run(&["schedule", &f, "-p", "2", "--seq", algo]).unwrap();
            assert!(out.contains("makespan:"), "{algo}");
        }
        assert!(run(&["schedule", &f, "-p", "2", "--seq", "nosuch"]).is_err());
        let a = run(&[
            "schedule",
            &f,
            "-p",
            "2",
            "--scheduler",
            "random",
            "--seed",
            "1",
        ])
        .unwrap();
        let b = run(&[
            "schedule",
            &f,
            "-p",
            "2",
            "--scheduler",
            "random",
            "--seed",
            "1",
        ])
        .unwrap();
        assert_eq!(a, b, "seeded runs are deterministic");
    }

    #[test]
    fn schedule_uniform_speeds_match_the_flat_spelling_exactly() {
        let f = tmpfile("hetflat.tree");
        run(&["gen", "fork", "2", "3", "-o", &f]).unwrap();
        for extra in [&["--json"][..], &[]] {
            let mut flat = vec!["schedule", &f, "-p", "4", "--scheduler", "deepest"];
            flat.extend_from_slice(extra);
            let mut het = vec![
                "schedule",
                &f,
                "--speeds",
                "4x1.0",
                "--scheduler",
                "deepest",
            ];
            het.extend_from_slice(extra);
            assert_eq!(run(&flat).unwrap(), run(&het).unwrap(), "{extra:?}");
        }
    }

    #[test]
    fn schedule_heterogeneous_speeds_and_domains() {
        let f = tmpfile("het.tree");
        run(&["gen", "fork", "2", "3", "-o", &f]).unwrap();
        let out = run(&[
            "schedule",
            &f,
            "--speeds",
            "2x2.0,2x1.0",
            "--domains",
            "64@0,32@1",
            "--scheduler",
            "deepest",
        ])
        .unwrap();
        assert!(out.contains("processors: 4"), "{out}");
        assert!(
            out.contains("platform: speeds 2x2 + 2x1; domains 64@0, 32@1"),
            "{out}"
        );
        assert!(out.contains("domain peaks: domain 0:"), "{out}");
        // fast processors shorten the fork below its unit-speed makespan
        let flat = run(&["schedule", &f, "-p", "4", "--scheduler", "deepest"]).unwrap();
        let ms = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("makespan:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .unwrap()
                .parse::<f64>()
                .unwrap()
        };
        assert!(ms(&out) < ms(&flat), "het {out} vs flat {flat}");

        // the JSON record carries the platform object and per-domain peaks
        let json = run(&[
            "schedule",
            &f,
            "--speeds",
            "2x2.0,2x1.0",
            "--domains",
            "64@0,32@1",
            "--scheduler",
            "deepest",
            "--json",
        ])
        .unwrap();
        assert!(
            json.contains(
                "\"platform\":{\"classes\":[{\"count\":2,\"speed\":2},{\"count\":2,\"speed\":1}]"
            ),
            "{json}"
        );
        assert!(json.contains("\"domain_peaks\":["), "{json}");
    }

    #[test]
    fn schedule_rejects_bad_platform_flags() {
        let f = tmpfile("hetbad.tree");
        run(&["gen", "fork", "2", "2", "-o", &f]).unwrap();
        // -p contradicting --speeds
        let e = run(&["schedule", &f, "-p", "3", "--speeds", "2x2.0,2x1.0"]).unwrap_err();
        assert!(e.message.contains("contradicts"), "{}", e.message);
        // --cap with --domains
        let e = run(&["schedule", &f, "-p", "2", "--cap", "5", "--domains", "5"]).unwrap_err();
        assert!(e.message.contains("cannot be combined"), "{}", e.message);
        // typed platform validation errors exit 1
        let e = run(&["schedule", &f, "--speeds", "2x0"]).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.message.contains("invalid speed"), "{}", e.message);
        let e = run(&["schedule", &f, "--speeds", "2x1.0", "--domains", "5@7"]).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(
            e.message.contains("unknown processor class"),
            "{}",
            e.message
        );
        let e = run(&["schedule", &f, "--speeds", "2x1.0", "--domains", "5@0,6@0"]).unwrap_err();
        assert!(
            e.message.contains("more than one memory domain"),
            "{}",
            e.message
        );
        // unparsable specs are usage errors
        assert!(run(&["schedule", &f, "--speeds", "fast"]).is_err());
        assert!(run(&["schedule", &f, "--speeds", "2x1.0", "--domains", "5@a"]).is_err());
    }

    #[test]
    fn schedule_subtrees_serves_mixed_speeds_and_refuses_comm() {
        let f = tmpfile("hetsub.tree");
        run(&["gen", "fork", "2", "2", "-o", &f]).unwrap();
        // the subtree schedulers place whole subtrees speed-aware now
        let out = run(&[
            "schedule",
            &f,
            "--speeds",
            "1x2.0,1x1.0",
            "--scheduler",
            "subtrees",
        ])
        .unwrap();
        assert!(out.contains("scheduler: ParSubtrees"), "{out}");
        // a scheduler-less mixed-speed run falls back to the speed-aware
        // ParDeepestFirst
        let out = run(&["schedule", &f, "--speeds", "1x2.0,1x1.0"]).unwrap();
        assert!(out.contains("scheduler: ParDeepestFirst"), "{out}");
        // equal non-unit speeds keep the ParSubtrees default: the whole
        // schedule rescales (4 unit-time units on this fork; speed 2 halves it)
        let out = run(&["schedule", &f, "--speeds", "2x2.0"]).unwrap();
        assert!(out.contains("scheduler: ParSubtrees"), "{out}");
        assert!(out.contains("makespan: 2  (lower bound 1.25)"), "{out}");
        // transfer costs are where the subtree schedulers still refuse
        let e = run(&[
            "schedule",
            &f,
            "--speeds",
            "1x1.0,1x1.0",
            "--domains",
            "1e9@0,1e9@1",
            "--comm",
            "0-1:2",
            "--scheduler",
            "subtrees",
        ])
        .unwrap_err();
        assert_eq!(e.code, 1, "{}", e.message);
        assert!(e.message.contains("does not support"), "{}", e.message);
    }

    #[test]
    fn schedule_comm_flag_charges_cross_domain_transfers() {
        let f = tmpfile("commflag.tree");
        run(&["gen", "fork", "2", "1", "-o", &f]).unwrap();
        let base = run(&[
            "schedule",
            &f,
            "--speeds",
            "1x1.0,1x1.0",
            "--domains",
            "1e9@0,1e9@1",
            "--scheduler",
            "deepest",
        ])
        .unwrap();
        let costly = run(&[
            "schedule",
            &f,
            "--speeds",
            "1x1.0,1x1.0",
            "--domains",
            "1e9@0,1e9@1",
            "--comm",
            "0-1:3",
            "--scheduler",
            "deepest",
        ])
        .unwrap();
        assert!(
            costly.contains(
                "platform: speeds 1x1 + 1x1; domains 1000000000@0, 1000000000@1; comm 0-1:3"
            ),
            "{costly}"
        );
        let ms = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("makespan:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .unwrap()
                .parse::<f64>()
                .unwrap()
        };
        // one fork leaf must cross domains and pays output x cost = 1 x 3
        assert_eq!(ms(&costly), ms(&base) + 3.0, "{base} vs {costly}");
        // scheduler-less comm platforms default to the comm-aware list
        // scheduler, and the JSON record round-trips the matrix
        let json = run(&[
            "schedule",
            &f,
            "--speeds",
            "1x1.0,1x1.0",
            "--domains",
            "1e9@0,1e9@1",
            "--comm",
            "0-1:3",
            "--json",
        ])
        .unwrap();
        assert!(json.contains("\"scheduler\":\"ParDeepestFirst\""), "{json}");
        assert!(json.contains("\"comm\":[0,3,3,0]"), "{json}");
        // --comm without domains is the parser's typed out-of-range error
        let e = run(&["schedule", &f, "-p", "2", "--comm", "0-1:3"]).unwrap_err();
        assert!(e.message.contains("only 0 domains"), "{}", e.message);
    }

    #[test]
    fn serve_speeds_flag_sets_the_default_platform() {
        let f = tmpfile("servehet.tree");
        run(&["gen", "fork", "2", "3", "-o", &f]).unwrap();
        let input = format!(
            "{{\"id\":\"default\",\"tree\":\"{f}\",\"scheduler\":\"deepest\"}}\n\
             {{\"id\":\"own\",\"tree\":\"{f}\",\"scheduler\":\"deepest\",\"processors\":2}}\n\
             {{\"id\":\"noname\",\"tree\":\"{f}\"}}\n"
        );
        let req_file = tmpfile("servehet.jsonl");
        std::fs::write(&req_file, &input).unwrap();
        let out = run(&[
            "serve",
            &req_file,
            "--workers",
            "2",
            "--speeds",
            "2x2.0,2x1.0",
        ])
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(
            lines[0].contains("\"platform\":{\"classes\":[{\"count\":2,\"speed\":2}"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].starts_with(
                "{\"id\":\"own\",\"scheduler\":\"ParDeepestFirst\",\"processors\":2,\"tasks\""
            ),
            "{}",
            lines[1]
        );
        // scheduler-less requests on a mixed-speed platform default to the
        // speed-aware ParDeepestFirst, not a refusing ParSubtrees
        assert!(
            lines[2].starts_with("{\"id\":\"noname\",\"scheduler\":\"ParDeepestFirst\""),
            "{}",
            lines[2]
        );
        // without a default platform, the platform-less request errors in place
        let bare = serve_jsonl(&input, 1, None);
        assert!(
            bare.lines()
                .next()
                .unwrap()
                .contains("needs `processors` or a `platform`"),
            "{bare}"
        );
        // --domains alone is a usage error
        assert!(run(&["serve", &req_file, "--domains", "5"]).is_err());
    }

    #[test]
    fn pareto_accepts_unit_speed_platform_spellings_only() {
        let f = tmpfile("parhet.tree");
        run(&["gen", "spider", "4", "3", "-o", &f]).unwrap();
        let flat = run(&["pareto", &f, "-p", "2"]).unwrap();
        assert_eq!(run(&["pareto", &f, "--speeds", "2x1.0"]).unwrap(), flat);
        let e = run(&["pareto", &f, "--speeds", "1x2.0,1x1.0"]).unwrap_err();
        assert!(e.message.contains("unit-speed"), "{}", e.message);
        // a single all-covering domain is still one shared memory: accepted
        let capped = run(&["pareto", &f, "--speeds", "2x1.0", "--domains", "5@0"]).unwrap();
        assert_eq!(capped, flat);
        // genuinely split memory is not
        let e = run(&[
            "pareto",
            &f,
            "--speeds",
            "1x1.0,1x1.0",
            "--domains",
            "5@0,5@1",
        ])
        .unwrap_err();
        assert!(e.message.contains("shared memory"), "{}", e.message);
    }

    #[test]
    fn serve_runs_a_jsonl_stream_in_input_order() {
        let f = tmpfile("serve.tree");
        run(&["gen", "fork", "2", "3", "-o", &f]).unwrap();
        let g = tmpfile("serve2.tree");
        run(&["gen", "chain", "5", "-o", &g]).unwrap();
        let input = format!(
            "{{\"id\":\"a\",\"tree\":\"{f}\",\"scheduler\":\"deepest\",\"processors\":2}}\n\
             {{\"id\":\"b\",\"tree\":\"{g}\",\"processors\":3}}\n\
             \n\
             {{\"id\":\"c\",\"tree\":\"{f}\",\"processors\":4,\"cap\":100}}\n"
        );
        let req_file = tmpfile("serve.jsonl");
        std::fs::write(&req_file, &input).unwrap();
        let out = run(&["serve", &req_file, "--workers", "2"]).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "{out}");
        assert!(lines[0].starts_with("{\"id\":\"a\",\"scheduler\":\"ParDeepestFirst\""));
        assert!(lines[1].starts_with("{\"id\":\"b\",\"scheduler\":\"ParSubtrees\""));
        // bare cap resolves the capped default, like `schedule --cap`
        assert!(lines[2].starts_with("{\"id\":\"c\",\"scheduler\":\"MemBoundedSeq\""));
        assert!(lines[2].contains("\"cap\":100,\"cap_violations\":0"));
        // responses share the schedule --json schema, id-prefixed
        for key in [
            "\"processors\":",
            "\"tasks\":",
            "\"makespan\":",
            "\"makespan_lower_bound\":",
            "\"peak_memory\":",
            "\"memory_reference\":",
        ] {
            assert!(lines[0].contains(key), "missing {key} in {}", lines[0]);
        }
    }

    #[test]
    fn serve_reports_per_request_errors_in_place() {
        let f = tmpfile("serveerr.tree");
        run(&["gen", "fork", "2", "2", "-o", &f]).unwrap();
        let input = format!(
            "not json\n\
             {{\"id\":\"gone\",\"tree\":\"/nonexistent/x.tree\",\"processors\":2}}\n\
             {{\"id\":\"bad\",\"tree\":\"{f}\",\"scheduler\":\"nosuch\",\"processors\":2}}\n\
             {{\"id\":\"zero\",\"tree\":\"{f}\",\"processors\":0}}\n\
             {{\"id\":\"ok\",\"tree\":\"{f}\",\"processors\":2}}\n"
        );
        let out = serve_jsonl(&input, 2, None);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(
            lines[0].starts_with("{\"id\":null,\"error\":\"bad request on line 1:"),
            "{}",
            lines[0]
        );
        assert!(lines[0].ends_with("\"line\":1}"), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"id\":\"gone\",\"error\":\"cannot read"));
        assert!(
            lines[2].contains("\"error\":\"unknown scheduler `nosuch`"),
            "{}",
            lines[2]
        );
        assert!(lines[3].contains("\"error\":\"platform needs at least one processor\""));
        assert!(lines[4].starts_with("{\"id\":\"ok\",\"scheduler\":\"ParSubtrees\""));
    }

    #[test]
    fn serve_output_is_worker_count_independent() {
        let f = tmpfile("servedet.tree");
        run(&["gen", "complete", "2", "4", "-o", &f]).unwrap();
        let g = tmpfile("servedet2.tree");
        run(&["gen", "spider", "4", "3", "-o", &g]).unwrap();
        let mut input = String::new();
        for round in 0..3 {
            for (k, t) in [&f, &g].iter().enumerate() {
                for s in ["deepest", "inner", "subtrees", "random"] {
                    let _ = writeln!(
                        input,
                        "{{\"id\":\"{round}.{k}.{s}\",\"tree\":\"{t}\",\"scheduler\":\"{s}\",\"processors\":{},\"seed\":9}}",
                        2 + k
                    );
                }
            }
        }
        let reference = serve_jsonl(&input, 1, None);
        for workers in [2usize, 4] {
            assert_eq!(
                serve_jsonl(&input, workers, None),
                reference,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn serve_rejects_bad_flags() {
        assert!(run(&["serve", "--workers"]).is_err());
        assert!(run(&["serve", "x.jsonl", "--workers", "0"]).is_err());
        assert!(run(&["serve", "x.jsonl", "--bogus"]).is_err());
        assert!(run(&["serve", "/nonexistent/x.jsonl"]).is_err());
    }

    #[test]
    fn pareto_json_emits_stable_record() {
        let f = tmpfile("paretojson.tree");
        run(&["gen", "spider", "4", "3", "-o", &f]).unwrap();
        let out = run(&["pareto", &f, "-p", "2", "--json"]).unwrap();
        assert!(out.starts_with("{\"command\":\"pareto\",\"processors\":2,\"tasks\":13,"));
        assert!(out.contains("\"points\":"));
        assert!(out.contains("\"makespans\":["));
        assert!(out.contains("\"peak_memories\":["));
        assert!(out.trim_end().ends_with('}'));
        // the text rendering is unchanged
        let text = run(&["pareto", &f, "-p", "2"]).unwrap();
        assert!(text.contains("Pareto frontier"));
        assert!(run(&["pareto", &f, "-p", "2", "--bogus"]).is_err());
    }

    #[test]
    fn pareto_rejects_large_or_weighted() {
        let f = tmpfile("big.tree");
        run(&["gen", "chain", "30", "-o", &f]).unwrap();
        assert!(run(&["pareto", &f, "-p", "2"]).is_err());
        let f2 = tmpfile("weighted.tree");
        run(&["gen", "random", "10", "1", "-o", &f2]).unwrap();
        assert!(run(&["pareto", &f2, "-p", "2"]).is_err());
    }

    #[test]
    fn missing_file_reports_cleanly() {
        let e = run(&["stats", "/nonexistent/x.tree"]).unwrap_err();
        assert!(e.message.contains("cannot read"));
    }

    #[test]
    fn campaign_runs_from_flags_with_errors_as_records() {
        let f = tmpfile("campaign.tree");
        run(&["gen", "fork", "2", "3", "-o", &f]).unwrap();
        let out = run(&[
            "campaign",
            "--trees",
            &f,
            "--procs",
            "2,4",
            "--schedulers",
            "deepest,subtrees",
            "--speeds",
            "1x2.0,1x1.0",
            "--domains",
            "1e9@0,1e9@1",
            "--comm",
            "0-1:2",
            "--metrics",
            "speedup",
            "--workers",
            "2",
        ])
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2 * 3, "{out}");
        assert!(
            lines[0].starts_with(&format!(
                "{{\"campaign\":\"campaign\",\"tree\":\"{f}\",\"point\":\"p2\",\
                 \"seq\":\"best\",\"seed\":null,\"scheduler\":\"ParDeepestFirst\""
            )),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\"speedup\":"), "{}", lines[0]);
        // the comm-bearing point: ParSubtrees refuses as a typed record,
        // the run still exits 0 with the other records intact (deepest
        // serves the same point)
        let comm_err = lines
            .iter()
            .find(|l| l.contains("\"error\""))
            .expect("subtrees refuses transfer costs");
        assert!(comm_err.contains("does not support"), "{comm_err}");
        assert!(
            comm_err.contains("\"point\":\"1x2,1x1;1000000000@0,1000000000@1;0-1:2\""),
            "{comm_err}"
        );
        let comm_ok = lines
            .iter()
            .find(|l| l.contains("\"scheduler\":\"ParDeepestFirst\"") && l.contains(";0-1:2\""))
            .expect("deepest serves the comm point");
        assert!(!comm_ok.contains("\"error\""), "{comm_ok}");
        // --comm without the rest of the heterogeneous point is a usage error
        let e = run(&["campaign", "--trees", &f, "--procs", "2", "--comm", "0-1:2"]).unwrap_err();
        assert!(
            e.message.contains("--comm needs --speeds and --domains"),
            "{}",
            e.message
        );
    }

    #[test]
    fn campaign_runs_from_a_spec_file_worker_count_independently() {
        let f = tmpfile("campspec.tree");
        run(&["gen", "complete", "2", "4", "-o", &f]).unwrap();
        let spec = tmpfile("campspec.json");
        std::fs::write(
            &spec,
            format!(
                "{{\"name\":\"filed\",\"trees\":[\"{f}\"],\
                 \"schedulers\":[\"deepest\",\"cp\"],\
                 \"platforms\":[{{\"processors\":2}},{{\"processors\":4,\"cap_factor\":2.0}}],\
                 \"seed\":3}}"
            ),
        )
        .unwrap();
        let reference = run(&["campaign", "--spec", &spec, "--workers", "1"]).unwrap();
        assert_eq!(reference.lines().count(), 4);
        assert!(
            reference.starts_with("{\"campaign\":\"filed\""),
            "{reference}"
        );
        assert!(reference.contains("\"point\":\"p4/cap2\""), "{reference}");
        assert!(reference.contains("\"seed\":3"), "{reference}");
        for workers in ["2", "4"] {
            assert_eq!(
                run(&["campaign", "--spec", &spec, "--workers", workers]).unwrap(),
                reference,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn campaign_accepts_toolbox_workloads_worker_count_independently() {
        let mtx = concat!(env!("CARGO_MANIFEST_DIR"), "/../trees/tests/data/band8.mtx");
        let nwk = concat!(env!("CARGO_MANIFEST_DIR"), "/../trees/tests/data/fork.nwk");
        // the --trees-file flag ingests non-v1 formats straight into the grid
        let reference = run(&[
            "campaign",
            "--trees-file",
            &format!("{mtx},{nwk}"),
            "--procs",
            "2",
            "--schedulers",
            "deepest",
            "--workers",
            "1",
        ])
        .unwrap();
        assert_eq!(reference.lines().count(), 2);
        assert!(reference.contains("\"tasks\":8"), "{reference}");
        for workers in ["2", "4"] {
            assert_eq!(
                run(&[
                    "campaign",
                    "--trees-file",
                    &format!("{mtx},{nwk}"),
                    "--procs",
                    "2",
                    "--schedulers",
                    "deepest",
                    "--workers",
                    workers,
                ])
                .unwrap(),
                reference,
                "workers={workers}"
            );
        }
        // spec files reach the same loader through the `trees_file` key
        let spec = tmpfile("camptoolbox.json");
        std::fs::write(
            &spec,
            format!(
                "{{\"trees_file\":[{{\"path\":\"{mtx}\",\"ordering\":\"amd\",\
                 \"name\":\"band8\"}},\"{nwk}\"],\
                 \"schedulers\":[\"deepest\"],\
                 \"platforms\":[{{\"processors\":2}}]}}"
            ),
        )
        .unwrap();
        let from_spec = run(&["campaign", "--spec", &spec]).unwrap();
        assert_eq!(from_spec.lines().count(), 2);
        assert!(from_spec.contains("\"tree\":\"band8\""), "{from_spec}");
        // unknown keys surface as the typed wording through the CLI wrapper
        std::fs::write(
            &spec,
            "{\"trees_files\":[],\"platforms\":[{\"processors\":2}]}",
        )
        .unwrap();
        let e = run(&["campaign", "--spec", &spec]).unwrap_err();
        assert!(
            e.message.ends_with("unknown spec key `trees_files`"),
            "{}",
            e.message
        );
    }

    #[test]
    fn campaign_rejects_bad_flags_and_specs() {
        let f = tmpfile("campbad.tree");
        run(&["gen", "chain", "3", "-o", &f]).unwrap();
        // no platform points / no tree set
        let e = run(&["campaign", "--trees", &f]).unwrap_err();
        assert!(e.message.contains("platform point"), "{}", e.message);
        let e = run(&["campaign", "--procs", "2"]).unwrap_err();
        assert!(e.message.contains("tree set"), "{}", e.message);
        // bad values
        assert!(run(&["campaign", "--procs", "0", "--trees", &f]).is_err());
        assert!(run(&[
            "campaign",
            "--trees",
            &f,
            "--procs",
            "2",
            "--metrics",
            "magic"
        ])
        .is_err());
        assert!(run(&["campaign", "--trees", &f, "--domains", "5"]).is_err());
        assert!(run(&["campaign", "--workers", "0"]).is_err());
        assert!(run(&["campaign", "--bogus"]).is_err());
        // unknown scheduler names fail the run (exit 2, like schedule)
        let e = run(&[
            "campaign",
            "--trees",
            &f,
            "--procs",
            "2",
            "--schedulers",
            "nosuch",
        ])
        .unwrap_err();
        assert_eq!(e.code, 2);
        // --spec excludes grid flags; unreadable/bad specs report cleanly
        let spec = tmpfile("campbad.json");
        std::fs::write(&spec, "{\"platforms\":[]}").unwrap();
        let e = run(&["campaign", "--spec", &spec, "--procs", "2"]).unwrap_err();
        assert!(e.message.contains("cannot be combined"), "{}", e.message);
        let e = run(&["campaign", "--spec", &spec]).unwrap_err();
        assert!(e.message.contains("bad spec"), "{}", e.message);
        assert!(run(&["campaign", "--spec", "/nonexistent/spec.json"]).is_err());
        // --help prints usage
        assert!(run(&["campaign", "--help"]).unwrap().contains("campaign"));
    }

    #[test]
    fn campaign_emits_time_us_only_when_selected() {
        let f = tmpfile("camptime.tree");
        run(&["gen", "fork", "2", "3", "-o", &f]).unwrap();
        let base = [
            "campaign",
            "--trees",
            &f,
            "--procs",
            "2",
            "--schedulers",
            "deepest",
        ];
        let plain = run(&base).unwrap();
        assert!(!plain.contains("time_us"), "{plain}");
        let mut timed = base.to_vec();
        timed.extend_from_slice(&["--metrics", "time_us", "--time-reps", "3"]);
        let timed = run(&timed).unwrap();
        assert!(timed.contains("\"time_us\":"), "{timed}");
        assert!(run(&["campaign", "--time-reps", "0"]).is_err());
    }

    #[test]
    fn campaign_compare_gates_timing_and_flags_stable_drift() {
        let old = tmpfile("cmp_old.jsonl");
        let fast = tmpfile("cmp_fast.jsonl");
        let slow = tmpfile("cmp_slow.jsonl");
        let drift = tmpfile("cmp_drift.jsonl");
        std::fs::write(&old, "{\"makespan\":3,\"time_us\":100}\n").unwrap();
        std::fs::write(&fast, "{\"makespan\":3,\"time_us\":110}\n").unwrap();
        std::fs::write(&slow, "{\"makespan\":3,\"time_us\":200}\n").unwrap();
        std::fs::write(&drift, "{\"makespan\":4,\"time_us\":100}\n").unwrap();
        // within the default 25% tolerance
        let out = run(&["campaign", "--compare", &old, &fast]).unwrap();
        assert!(out.contains("ok"), "{out}");
        // beyond tolerance -> exit 1 with the percentages spelled out
        let e = run(&["campaign", "--compare", &old, &slow]).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.message.contains("timing regression"), "{}", e.message);
        // a generous tolerance admits it
        let out = run(&["campaign", "--compare", &old, &slow, "--tolerance", "150"]).unwrap();
        assert!(out.contains("ok"), "{out}");
        // drift in a stable field is exit 3 however large the tolerance
        let e = run(&[
            "campaign",
            "--compare",
            &old,
            &drift,
            "--tolerance",
            "1000000",
        ])
        .unwrap_err();
        assert_eq!(e.code, 3);
        assert!(e.message.contains("makespan"), "{}", e.message);
        // flag validation
        assert!(run(&["campaign", "--compare", &old]).is_err());
        assert!(run(&["campaign", "--compare", &old, &fast, "--procs", "2"]).is_err());
        assert!(run(&["campaign", "--tolerance", "10"]).is_err());
        assert!(run(&["campaign", "--compare", &old, "/nonexistent.jsonl"]).is_err());
    }
}
