//! Command implementations for the `treesched` CLI.
//!
//! Every subcommand is a pure function from parsed arguments to an output
//! string, so the whole surface is unit-testable without spawning
//! processes. The binary (`src/main.rs`) only does I/O. Schedulers are
//! resolved by name through [`treesched_core::SchedulerRegistry`]; typed
//! scheduling failures exit with code 1, usage errors with code 2.
//!
//! ```text
//! treesched gen fork 3 4 -o fork.tree        # generate instances
//! treesched stats fork.tree                  # shape + weight statistics
//! treesched sketch fork.tree                 # indented tree view
//! treesched seq fork.tree --algo liu         # sequential traversals
//! treesched schedulers                       # registry: names + aliases
//! treesched schedule fork.tree -p 4 --scheduler deepest --gantt
//! treesched schedule fork.tree -p 4 --json   # machine-readable record
//! treesched schedule fork.tree -p 4 --cap 12 # memory-capped scheduling
//! treesched serve requests.jsonl --workers 4 # batched serving (JSONL)
//! treesched pareto fork.tree -p 2            # exact trade-off frontier
//! treesched dot fork.tree                    # Graphviz export
//! ```

pub mod commands;
mod tree;

pub use commands::{dispatch, serve_jsonl, serve_jsonl_with_metrics, CliError, USAGE};
