//! `treesched` binary: thin I/O shell over [`treesched_cli::dispatch`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match treesched_cli::dispatch(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.code);
        }
    }
}
