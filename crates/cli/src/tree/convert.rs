//! `tree convert` — re-emit an ingested tree in another format.

use super::{emit, load_input, parse_common, OutFormat};
use crate::commands::CliError;

const USAGE: &str = "usage: treesched tree convert FILE [-o OUT] [--to v1|newick|dot] \
                     [--ordering K] [--amalg N]";

pub(crate) fn execute(args: &[String]) -> Result<String, CliError> {
    let common = parse_common(args, &["--to"], &[], USAGE)?;
    let to = match common.value("--to") {
        Some(v) => OutFormat::parse(v)?,
        None => OutFormat::V1,
    };
    let [path] = common.positional.as_slice() else {
        return Err(CliError::new(USAGE));
    };
    let (tree, _) = load_input(path, common.ingest)?;
    emit(common.out_file.as_deref(), to.render(&tree, path))
}
