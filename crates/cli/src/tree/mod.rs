//! The `tree` subcommand family: the workload toolbox's CLI surface.
//!
//! One module per subcommand (the `pgr nwk` layout): each exposes a pure
//! `execute(&[String]) -> Result<String, CliError>` and shares the
//! ingest/output plumbing here. Inputs are format-detected (`.nwk` /
//! `.mtx` / `.tree`, content-sniffed otherwise) through
//! `treesched_trees`; MatrixMarket inputs take `--ordering` and
//! `--amalg`.

mod convert;
mod prune;
mod reroot;
mod stat;
mod subtree;
mod to_dot;
mod to_requests;

use crate::commands::CliError;
use treesched_model::TaskTree;
use treesched_trees::{Format, IngestOptions, OrderingKind};

pub(crate) const TREE_USAGE: &str = "treesched tree — workload toolbox

usage: treesched tree <subcommand> [args]

subcommands:
  stat FILE..                       per-file shape/weight statistics
  convert FILE [-o OUT] [--to F]    re-emit as F = v1|newick|dot
  prune FILE ID.. [-o OUT] [--to F] drop the subtrees rooted at ID..
  subtree FILE ID [-o OUT] [--to F] extract the subtree rooted at ID
  reroot FILE ID [-o OUT] [--to F]  re-hang the tree with ID as root
                                    (path edges reverse, weights travel
                                    with their edges)
  to-dot FILE [-o OUT] [--bare]     styled Graphviz (work shades nodes,
                                    output scales edge widths; --bare
                                    drops the weight numbers)
  to-requests FILE [-o OUT] --procs LIST [--tree-out PATH]
              [--scheduler S] [--seq A] [--seed N] [--cap X] [--prefix P]
                                    serve-wire JSONL: one request per
                                    processor count in LIST (e.g. 1,2,4)

input formats (by extension, content-sniffed otherwise):
  .tree / .v1        native `treesched tree v1`
  .nwk / .newick     attributed Newick — work/output/exec as
                     [&work=W,output=F,exec=N] node attributes, branch
                     lengths read as output sizes
  .mtx / .mm         MatrixMarket coordinate pattern|real|integer,
                     routed through the sparse elimination/assembly-tree
                     pipeline; options:
                       --ordering natural|amd|rcm   (default amd)
                       --amalg N                    (default 1 = plain
                                                     elimination tree)

`tree to-requests` on a non-v1 input needs --tree-out PATH to write the
converted v1 tree the request lines point at.";

/// Ingest options plus everything the shared flag loop collected.
pub(crate) struct CommonArgs {
    /// Positional arguments, flag-free.
    pub positional: Vec<String>,
    /// `-o FILE` — where the subcommand's output text goes.
    pub out_file: Option<String>,
    /// MatrixMarket ingest options (`--ordering`, `--amalg`).
    pub ingest: IngestOptions,
    /// Subcommand-declared value flags, in order of appearance.
    values: Vec<(&'static str, String)>,
    /// Subcommand-declared boolean flags that were present.
    switches: Vec<&'static str>,
}

impl CommonArgs {
    /// The last value given for a declared value flag.
    pub(crate) fn value(&self, flag: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(f, _)| *f == flag)
            .map(|(_, v)| v.as_str())
    }

    /// Whether a declared switch was present.
    pub(crate) fn switch(&self, flag: &str) -> bool {
        self.switches.contains(&flag)
    }
}

/// Parses one subcommand's argument list: positionals, the shared flags
/// (`-o`, `--ordering`, `--amalg`), the subcommand's declared
/// `value_flags` (each taking one value) and `switch_flags` (boolean).
/// Anything else starting with `-` is an unknown-flag error citing
/// `usage`.
pub(crate) fn parse_common(
    args: &[String],
    value_flags: &[&'static str],
    switch_flags: &[&'static str],
    usage: &str,
) -> Result<CommonArgs, CliError> {
    let mut common = CommonArgs {
        positional: Vec::new(),
        out_file: None,
        ingest: IngestOptions::default(),
        values: Vec::new(),
        switches: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::new(format!("{flag} needs a value")))
        };
        match a.as_str() {
            "-o" => common.out_file = Some(value("-o")?),
            "--ordering" => {
                let v = value("--ordering")?;
                common.ingest.ordering = OrderingKind::parse(&v).ok_or_else(|| {
                    CliError::new(format!(
                        "unknown ordering `{v}` (expected natural, amd or rcm)"
                    ))
                })?;
            }
            "--amalg" => {
                let v = value("--amalg")?;
                common.ingest.amalg = crate::commands::parse_num(&v, "--amalg")?;
                if common.ingest.amalg == 0 {
                    return Err(CliError::new("--amalg must be at least 1"));
                }
            }
            s if value_flags.contains(&s) => {
                let flag = value_flags[value_flags.iter().position(|f| *f == s).expect("found")];
                let v = value(flag)?;
                common.values.push((flag, v));
            }
            s if switch_flags.contains(&s) => {
                let flag = switch_flags[switch_flags.iter().position(|f| *f == s).expect("found")];
                common.switches.push(flag);
            }
            s if s.starts_with('-') && s != "-" => {
                return Err(CliError::new(format!("unknown flag `{s}`\n\n{usage}")));
            }
            _ => common.positional.push(a.clone()),
        }
    }
    Ok(common)
}

/// Loads one input file through the toolbox (format detection + ingest
/// options). I/O and parse failures keep the toolbox's path-attached
/// wording and exit as usage errors, like `load_tree`.
pub(crate) fn load_input(
    path: &str,
    ingest: IngestOptions,
) -> Result<(TaskTree, Format), CliError> {
    treesched_trees::load(path, ingest).map_err(|e| CliError::new(e.to_string()))
}

/// Output format of the emitting subcommands (`--to`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum OutFormat {
    V1,
    Newick,
    Dot,
}

impl OutFormat {
    pub(crate) fn parse(s: &str) -> Result<OutFormat, CliError> {
        match s {
            "v1" | "tree" => Ok(OutFormat::V1),
            "newick" | "nwk" => Ok(OutFormat::Newick),
            "dot" => Ok(OutFormat::Dot),
            other => Err(CliError::new(format!(
                "unknown output format `{other}` (expected v1, newick or dot)"
            ))),
        }
    }

    pub(crate) fn render(self, tree: &TaskTree, name: &str) -> String {
        match self {
            OutFormat::V1 => treesched_model::io::to_text(tree),
            OutFormat::Newick => treesched_trees::to_newick(tree),
            OutFormat::Dot => treesched_viz::styled_dot(
                tree,
                &treesched_viz::DotOptions {
                    name: name.into(),
                    weights_in_labels: true,
                },
            ),
        }
    }
}

/// Returns `text` for stdout, or writes it to `out_file` and returns a
/// one-line confirmation (the `gen -o` convention).
pub(crate) fn emit(out_file: Option<&str>, text: String) -> Result<String, CliError> {
    match out_file {
        None => Ok(text),
        Some(path) => {
            std::fs::write(path, &text)
                .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
            Ok(format!("wrote {path}\n"))
        }
    }
}

/// Dispatches `treesched tree <subcommand>`.
pub(crate) fn execute(args: &[String]) -> Result<String, CliError> {
    let Some((sub, rest)) = args.split_first() else {
        return Err(CliError::new(TREE_USAGE));
    };
    match sub.as_str() {
        "stat" => stat::execute(rest),
        "convert" => convert::execute(rest),
        "prune" => prune::execute(rest),
        "reroot" => reroot::execute(rest),
        "subtree" => subtree::execute(rest),
        "to-dot" => to_dot::execute(rest),
        "to-requests" => to_requests::execute(rest),
        "--help" | "-h" | "help" => Ok(TREE_USAGE.to_string()),
        other => Err(CliError::new(format!(
            "unknown tree subcommand `{other}`\n\n{TREE_USAGE}"
        ))),
    }
}
