//! `tree prune` — drop the subtrees rooted at the given node ids.

use super::{emit, load_input, parse_common, OutFormat};
use crate::commands::{parse_num, CliError};

const USAGE: &str = "usage: treesched tree prune FILE ID.. [-o OUT] [--to v1|newick|dot] \
                     [--ordering K] [--amalg N]";

pub(crate) fn execute(args: &[String]) -> Result<String, CliError> {
    let common = parse_common(args, &["--to"], &[], USAGE)?;
    let to = match common.value("--to") {
        Some(v) => OutFormat::parse(v)?,
        None => OutFormat::V1,
    };
    let Some((path, ids)) = common.positional.split_first() else {
        return Err(CliError::new(USAGE));
    };
    if ids.is_empty() {
        return Err(CliError::new(USAGE));
    }
    let roots: Vec<usize> = ids
        .iter()
        .map(|s| parse_num(s, "node id"))
        .collect::<Result<_, _>>()?;
    let (tree, _) = load_input(path, common.ingest)?;
    let pruned = treesched_trees::prune(&tree, &roots).map_err(|e| CliError::new(e.to_string()))?;
    emit(common.out_file.as_deref(), to.render(&pruned, path))
}
