//! `tree reroot` — re-hang the tree at a new root node.

use super::{emit, load_input, parse_common, OutFormat};
use crate::commands::{parse_num, CliError};

const USAGE: &str = "usage: treesched tree reroot FILE ID [-o OUT] [--to v1|newick|dot] \
                     [--ordering K] [--amalg N]";

pub(crate) fn execute(args: &[String]) -> Result<String, CliError> {
    let common = parse_common(args, &["--to"], &[], USAGE)?;
    let to = match common.value("--to") {
        Some(v) => OutFormat::parse(v)?,
        None => OutFormat::V1,
    };
    let [path, id] = common.positional.as_slice() else {
        return Err(CliError::new(USAGE));
    };
    let root: usize = parse_num(id, "node id")?;
    let (tree, _) = load_input(path, common.ingest)?;
    let hung = treesched_trees::reroot(&tree, root).map_err(|e| CliError::new(e.to_string()))?;
    emit(common.out_file.as_deref(), to.render(&hung, path))
}
