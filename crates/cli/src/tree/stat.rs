//! `tree stat` — per-file statistics over any ingestible format.

use super::{load_input, parse_common};
use crate::commands::CliError;
use std::fmt::Write as _;
use treesched_model::TreeStats;

const USAGE: &str = "usage: treesched tree stat FILE.. [--ordering K] [--amalg N]";

pub(crate) fn execute(args: &[String]) -> Result<String, CliError> {
    let common = parse_common(args, &[], &[], USAGE)?;
    if common.positional.is_empty() {
        return Err(CliError::new(USAGE));
    }
    let mut out = String::new();
    for path in &common.positional {
        let (tree, format) = load_input(path, common.ingest)?;
        let stats = TreeStats::of(&tree);
        let _ = writeln!(out, "{path} [{}]: {stats}", format.name());
    }
    Ok(out)
}
