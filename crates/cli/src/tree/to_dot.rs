//! `tree to-dot` — styled Graphviz export of any ingestible tree.

use super::{emit, load_input, parse_common};
use crate::commands::CliError;
use treesched_viz::{styled_dot, DotOptions};

const USAGE: &str = "usage: treesched tree to-dot FILE [-o OUT] [--bare] \
                     [--ordering K] [--amalg N]";

pub(crate) fn execute(args: &[String]) -> Result<String, CliError> {
    let common = parse_common(args, &[], &["--bare"], USAGE)?;
    let [path] = common.positional.as_slice() else {
        return Err(CliError::new(USAGE));
    };
    let (tree, _) = load_input(path, common.ingest)?;
    let dot = styled_dot(
        &tree,
        &DotOptions {
            name: path.clone(),
            weights_in_labels: !common.switch("--bare"),
        },
    );
    emit(common.out_file.as_deref(), dot)
}
