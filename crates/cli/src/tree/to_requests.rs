//! `tree to-requests` — emit the serve-wire JSONL request stream.
//!
//! Request lines carry a path to a v1 tree file. A v1 input is referenced
//! as-is; any other format must be converted first, so `--tree-out PATH`
//! names where the v1 conversion is written (and what the requests point
//! at).

use super::{emit, load_input, parse_common};
use crate::commands::{parse_num, CliError};
use treesched_core::SeqAlgo;
use treesched_trees::{to_requests, Format, RequestOptions};

const USAGE: &str = "usage: treesched tree to-requests FILE [-o OUT] --procs LIST \
                     [--tree-out PATH] [--scheduler S] [--seq A] [--seed N] [--cap X] \
                     [--prefix P] [--ordering K] [--amalg N]";

pub(crate) fn execute(args: &[String]) -> Result<String, CliError> {
    let common = parse_common(
        args,
        &[
            "--procs",
            "--tree-out",
            "--scheduler",
            "--seq",
            "--seed",
            "--cap",
            "--prefix",
        ],
        &[],
        USAGE,
    )?;
    let [path] = common.positional.as_slice() else {
        return Err(CliError::new(USAGE));
    };
    let mut opts = RequestOptions {
        processors: Vec::new(),
        ..RequestOptions::default()
    };
    let procs = common
        .value("--procs")
        .ok_or_else(|| CliError::new(format!("need --procs LIST (e.g. 1,2,4)\n\n{USAGE}")))?;
    for part in procs.split(',') {
        let p: u32 = parse_num(part, "--procs entry")?;
        if p == 0 {
            return Err(CliError::new("--procs entries must be at least 1"));
        }
        opts.processors.push(p);
    }
    opts.scheduler = common.value("--scheduler").map(String::from);
    if let Some(prefix) = common.value("--prefix") {
        opts.prefix = prefix.to_string();
    }
    if let Some(seq) = common.value("--seq") {
        opts.seq = Some(
            SeqAlgo::by_name(seq)
                .ok_or_else(|| CliError::new(format!("unknown --seq algorithm `{seq}`")))?,
        );
    }
    if let Some(seed) = common.value("--seed") {
        opts.seed = Some(parse_num(seed, "--seed")?);
    }
    if let Some(cap) = common.value("--cap") {
        opts.cap = Some(parse_num(cap, "--cap")?);
    }

    let (tree, format) = load_input(path, common.ingest)?;
    let tree_path = match (format, common.value("--tree-out")) {
        (_, Some(out)) => {
            // explicit conversion target: requests point at the v1 copy
            std::fs::write(out, treesched_model::io::to_text(&tree))
                .map_err(|e| CliError::new(format!("cannot write {out}: {e}")))?;
            out.to_string()
        }
        (Format::V1, None) => path.clone(),
        (other, None) => {
            return Err(CliError::new(format!(
                "{path} is {} — serve reads v1 tree files, so to-requests needs \
                 --tree-out PATH to write the converted tree",
                other.name()
            )));
        }
    };
    emit(common.out_file.as_deref(), to_requests(&tree_path, &opts))
}
