//! End-to-end daemon test over real processes: one `serve --listen`
//! daemon, two concurrent `connect` client processes, every response
//! byte-identical to the one-shot batch `serve` output.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use treesched_cli::{dispatch, serve_jsonl};

const BIN: &str = env!("CARGO_BIN_EXE_treesched");

/// Generates the fixture trees and returns the directory.
fn fixture_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("treesched-daemon-it");
    std::fs::create_dir_all(&dir).unwrap();
    let gen = |args: &[&str]| {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        dispatch(&v).expect("gen succeeds");
    };
    let d = dir.to_string_lossy();
    gen(&["gen", "fork", "3", "2", "-o", &format!("{d}/fork.tree")]);
    gen(&["gen", "chain", "7", "-o", &format!("{d}/chain.tree")]);
    dir
}

/// A small mixed request stream, including one malformed line so the
/// typed line-numbered record crosses the socket too.
fn request_stream(dir: &Path, tag: &str) -> String {
    let d = dir.to_string_lossy();
    let mut input = String::new();
    for (k, (tree, scheduler, p)) in [
        ("fork.tree", "deepest", 2),
        ("chain.tree", "subtrees", 2),
        ("fork.tree", "inner", 3),
        ("chain.tree", "deepest", 4),
    ]
    .iter()
    .enumerate()
    {
        input.push_str(&format!(
            "{{\"id\":\"{tag}{k}\",\"tree\":\"{d}/{tree}\",\
             \"processors\":{p},\"scheduler\":\"{scheduler}\"}}\n"
        ));
    }
    input.push_str("oops not json\n");
    input
}

/// Spawns a `connect` client with `input` piped to its stdin.
fn spawn_client(socket: &Path, input: &str) -> Child {
    let mut child = Command::new(BIN)
        .arg("connect")
        .arg(socket)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("connect client spawns");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("request stream fits the pipe");
    // dropping the handle closes the pipe: the daemon sees EOF
    child
}

#[test]
fn socket_daemon_serves_two_client_processes_batch_identically() {
    let dir = fixture_dir();
    let socket = dir.join(format!("daemon-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let input_a = request_stream(&dir, "a");
    let input_b = request_stream(&dir, "b");
    // the acceptance reference: the one-shot batch front-end
    let expected_a = serve_jsonl(&input_a, 2, None);
    let expected_b = serve_jsonl(&input_b, 2, None);

    let daemon = Command::new(BIN)
        .args(["serve", "--listen"])
        .arg(&socket)
        .args(["--accept", "2", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    // the socket file appears when the listener has bound
    for _ in 0..500 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(socket.exists(), "daemon never bound {}", socket.display());

    let client_a = spawn_client(&socket, &input_a);
    let client_b = spawn_client(&socket, &input_b);
    for (client, expected, tag) in [(client_a, &expected_a, "a"), (client_b, &expected_b, "b")] {
        let out = client.wait_with_output().expect("client exits");
        assert!(
            out.status.success(),
            "client {tag} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            String::from_utf8(out.stdout).unwrap(),
            *expected,
            "client {tag}: socket stream is not batch-identical"
        );
    }

    // --accept 2 bounds the daemon's lifetime: it exits by itself
    let out = daemon.wait_with_output().expect("daemon exits");
    assert!(
        out.status.success(),
        "daemon failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8(out.stdout).unwrap(),
        "served 2 connections\n"
    );
    assert!(!socket.exists(), "daemon removes its socket file");
}

#[test]
fn stdio_daemon_round_trips_through_the_real_binary() {
    let dir = fixture_dir();
    let input = request_stream(&dir, "s");
    let expected = serve_jsonl(&input, 2, None);
    let mut child = Command::new(BIN)
        .args(["serve", "--stdio", "--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("stdio daemon spawns");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("daemon exits at EOF");
    assert!(
        out.status.success(),
        "stdio daemon failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let framed = String::from_utf8(out.stdout).unwrap();
    let got = treesched_transport::reorder(framed.lines()).expect("framed stream");
    assert_eq!(got, expected, "sorted stdio stream is the batch stream");
}

/// A second client asking `{"op":"metrics"}` mid-session gets a live
/// snapshot whose counters conserve: everything submitted was answered
/// and no worker died. The `metrics` subcommand is the transport.
#[test]
fn metrics_subcommand_reads_a_conserving_live_snapshot() {
    let dir = fixture_dir();
    let socket = dir.join(format!("metrics-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let input = request_stream(&dir, "m");

    let daemon = Command::new(BIN)
        .args(["serve", "--listen"])
        .arg(&socket)
        .args(["--accept", "2", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    for _ in 0..500 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(socket.exists(), "daemon never bound {}", socket.display());

    // connection 1: real traffic, run to completion so the engine
    // counters have settled before the snapshot
    let out = spawn_client(&socket, &input)
        .wait_with_output()
        .expect("client exits");
    assert!(out.status.success());

    // connection 2: the metrics subcommand
    let snap = Command::new(BIN)
        .arg("metrics")
        .arg(&socket)
        .output()
        .expect("metrics subcommand runs");
    assert!(
        snap.status.success(),
        "metrics failed: {}",
        String::from_utf8_lossy(&snap.stderr)
    );
    let record = String::from_utf8(snap.stdout).unwrap();
    assert!(record.starts_with("{\"op\":\"metrics\","), "{record}");

    let count = |key: &str| -> u64 {
        let tail = &record[record
            .find(key)
            .unwrap_or_else(|| panic!("{key} in {record}"))
            + key.len()..];
        tail.trim_start_matches(':')
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("counter value")
    };
    // conservation: 5 lines submitted (4 requests + 1 malformed), every
    // one answered, plus this very metrics request counted in-band
    assert_eq!(count("\"requests_total\""), 6, "{record}");
    assert_eq!(count("\"responses_total\""), 6, "{record}");
    assert_eq!(count("\"worker_lost_total\""), 0, "{record}");
    assert_eq!(count("\"engine_requests_total\""), 4, "{record}");
    assert!(record.contains("\"malformed_total\":1"), "{record}");
    // one latency sample per answered traffic line (4 requests + 1
    // malformed); the in-band metrics answer is not yet sent when sampled
    assert!(
        record.contains("\"response_latency_us\":{\"count\":5"),
        "{record}"
    );

    let out = daemon.wait_with_output().expect("daemon exits");
    assert!(out.status.success());
}

/// SIGTERM is a graceful drain: the daemon stops accepting, answers the
/// in-flight connection, flushes `--metrics-out`, and exits 0.
#[cfg(unix)]
#[test]
fn sigterm_drains_the_listening_daemon_and_flushes_metrics() {
    let dir = fixture_dir();
    let socket = dir.join(format!("sigterm-{}.sock", std::process::id()));
    let metrics_file = dir.join(format!("sigterm-{}.metrics.json", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_file(&metrics_file);
    let input = request_stream(&dir, "t");
    let expected = serve_jsonl(&input, 2, None);

    // no --accept: without the signal this daemon would serve forever
    let daemon = Command::new(BIN)
        .args(["serve", "--listen"])
        .arg(&socket)
        .args(["--workers", "2", "--metrics-out"])
        .arg(&metrics_file)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    for _ in 0..500 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(socket.exists(), "daemon never bound {}", socket.display());

    // one client runs to completion first — its work must survive the drain
    let out = spawn_client(&socket, &input)
        .wait_with_output()
        .expect("client exits");
    assert!(out.status.success());
    assert_eq!(String::from_utf8(out.stdout).unwrap(), expected);

    let term = Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(term.success());

    let out = daemon.wait_with_output().expect("daemon drains and exits");
    assert!(
        out.status.success(),
        "daemon exit after SIGTERM: {:?}, stderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8(out.stdout).unwrap(),
        "served 1 connections\n"
    );
    assert!(!socket.exists(), "drained daemon removes its socket file");

    // the final snapshot reached the file and conserves: the connection
    // submitted 5 lines (4 requests + 1 malformed), all were answered
    let record = std::fs::read_to_string(&metrics_file).expect("metrics flushed");
    assert!(record.starts_with("{\"op\":\"metrics\","), "{record}");
    assert!(record.contains("\"requests_total\":5"), "{record}");
    assert!(record.contains("\"responses_total\":5"), "{record}");
    assert!(record.contains("\"worker_lost_total\":0"), "{record}");
}
