//! Golden-file and determinism tests for the JSONL serving protocol.
//!
//! The golden files pin the request/response schema byte-for-byte: any
//! change to field names, field order, number formatting, or error wording
//! shows up as a diff against `tests/data/serve_responses.golden.jsonl`
//! (flat legacy platforms — success records must never change; the
//! malformed-line error record last changed deliberately when it became a
//! typed line-numbered record) and
//! `tests/data/serve_hetero_responses.golden.jsonl` (heterogeneous
//! `platform` objects) and
//! `tests/data/serve_comm_responses.golden.jsonl` (communication-cost
//! matrices: comm-aware list scheduling, the `comm` echo — present only
//! when some cost is non-zero — and the typed refusals and matrix
//! validation errors). Regenerate deliberately with `UPDATE_GOLDEN=1
//! cargo test -p treesched_cli --test serve` after an intentional protocol
//! change.

use treesched_cli::{dispatch, serve_jsonl};

/// Request stream templates; `{DIR}` is replaced with the tree directory.
const REQUESTS_IN: &str = include_str!("data/serve_requests.jsonl.in");
const RESPONSES_GOLDEN: &str = include_str!("data/serve_responses.golden.jsonl");
const HETERO_REQUESTS_IN: &str = include_str!("data/serve_hetero_requests.jsonl.in");
const HETERO_RESPONSES_GOLDEN: &str = include_str!("data/serve_hetero_responses.golden.jsonl");
const COMM_REQUESTS_IN: &str = include_str!("data/serve_comm_requests.jsonl.in");
const COMM_RESPONSES_GOLDEN: &str = include_str!("data/serve_comm_responses.golden.jsonl");

fn run(args: &[&str]) -> String {
    let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    dispatch(&v).expect("command succeeds")
}

/// Generates the fixture trees and returns the instantiated request stream.
fn requests(template: &str) -> String {
    let dir = std::env::temp_dir().join("treesched-serve-golden");
    std::fs::create_dir_all(&dir).unwrap();
    let dir = dir.to_string_lossy().into_owned();
    run(&["gen", "fork", "2", "3", "-o", &format!("{dir}/fork.tree")]);
    run(&[
        "gen",
        "spider",
        "4",
        "3",
        "-o",
        &format!("{dir}/spider.tree"),
    ]);
    template.replace("{DIR}", &dir)
}

fn check_golden(got: &str, golden: &str, golden_file: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = format!("{}/tests/data/{golden_file}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(path, got).unwrap();
        return;
    }
    assert_eq!(
        got, golden,
        "JSONL response schema drifted from {golden_file} \
         (UPDATE_GOLDEN=1 regenerates after an intentional change)"
    );
}

#[test]
fn serve_responses_match_the_golden_schema() {
    let got = serve_jsonl(&requests(REQUESTS_IN), 2, None);
    check_golden(&got, RESPONSES_GOLDEN, "serve_responses.golden.jsonl");
}

#[test]
fn hetero_serve_responses_match_the_golden_schema() {
    let got = serve_jsonl(&requests(HETERO_REQUESTS_IN), 2, None);
    check_golden(
        &got,
        HETERO_RESPONSES_GOLDEN,
        "serve_hetero_responses.golden.jsonl",
    );
}

#[test]
fn comm_serve_responses_match_the_golden_schema() {
    let got = serve_jsonl(&requests(COMM_REQUESTS_IN), 2, None);
    check_golden(
        &got,
        COMM_RESPONSES_GOLDEN,
        "serve_comm_responses.golden.jsonl",
    );
}

/// The daemon acceptance pin: a streamed stdio session, stable-sorted by
/// its frame index client-side, must reproduce the batch golden files
/// byte-for-byte — for both the flat and the heterogeneous protocol.
#[test]
fn daemon_stdio_stream_reordered_matches_the_batch_goldens() {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return; // goldens regenerate through the batch tests above
    }
    use treesched_transport::{reorder, serve_stdio, Daemon, DaemonConfig};
    for (template, golden) in [
        (REQUESTS_IN, RESPONSES_GOLDEN),
        (HETERO_REQUESTS_IN, HETERO_RESPONSES_GOLDEN),
        (COMM_REQUESTS_IN, COMM_RESPONSES_GOLDEN),
    ] {
        let input = requests(template);
        let daemon = Daemon::new(
            treesched_core::SchedulerRegistry::standard(),
            DaemonConfig::default(),
        );
        let (delivered, framed) =
            serve_stdio(&daemon, input.as_bytes(), Vec::new(), true).expect("pipe serves");
        let framed = String::from_utf8(framed).unwrap();
        assert_eq!(delivered as usize, framed.lines().count());
        let got = reorder(framed.lines()).expect("every streamed line is framed");
        assert_eq!(
            got, golden,
            "sorted daemon stream drifted from the batch golden"
        );
    }
}

#[test]
fn serve_output_is_byte_identical_across_worker_counts() {
    for template in [REQUESTS_IN, HETERO_REQUESTS_IN, COMM_REQUESTS_IN] {
        let input = requests(template);
        let reference = serve_jsonl(&input, 1, None);
        for workers in [2usize, 4] {
            assert_eq!(
                serve_jsonl(&input, workers, None),
                reference,
                "serve output depends on the worker count (workers={workers})"
            );
        }
    }
}

#[test]
fn hetero_responses_round_trip_through_the_request_parser() {
    // every heterogeneous response line must itself be parseable JSON of
    // the shared record shape, and the echoed platform object must parse
    // back into the platform that was requested (comm matrices included —
    // an all-zero matrix round-trips as the matrix-free platform it is)
    for template in [HETERO_REQUESTS_IN, COMM_REQUESTS_IN] {
        check_round_trip(&requests(template));
    }
}

fn check_round_trip(input: &str) {
    for (req_line, resp_line) in input.lines().zip(serve_jsonl(input, 2, None).lines()) {
        let resp = treesched_serve::jsonl::parse_object(resp_line)
            .unwrap_or_else(|e| panic!("unparseable response {resp_line}: {e}"));
        if resp.iter().any(|(k, _)| k == "error") {
            continue;
        }
        let req = treesched_serve::RequestRecord::parse(req_line).expect("fixture parses");
        if let Some(spec) = req.platform {
            let requested = spec.to_platform();
            if !requested.is_flat() {
                let echoed = resp
                    .iter()
                    .find(|(k, _)| k == "platform")
                    .map(|(_, v)| treesched_serve::platform_from_value(v).unwrap())
                    .expect("non-flat response carries its platform");
                // canonical-form equality: an all-zero requested matrix
                // echoes (and parses back) as the matrix-free platform
                assert_eq!(
                    treesched_serve::platform_json(&echoed),
                    treesched_serve::platform_json(&requested),
                    "{resp_line}"
                );
                // one domain peak per declared domain, each within the
                // global peak
                let n_domains = requested.domains().len();
                if n_domains > 0 {
                    let peaks = resp
                        .iter()
                        .find(|(k, _)| k == "domain_peaks")
                        .expect("domain platforms report per-domain peaks");
                    match &peaks.1 {
                        treesched_serve::jsonl::Value::Arr(items) => {
                            assert_eq!(items.len(), n_domains, "{resp_line}")
                        }
                        other => panic!("domain_peaks not an array: {other:?}"),
                    }
                }
            }
        }
    }
}

/// The observability contract: metering a serve run must never perturb
/// the response stream. `serve_jsonl` and the snapshot-returning variant
/// are exercised over generated request mixes (valid lines across both
/// fixture trees, malformed lines, unknown schedulers, blanks) at several
/// worker counts, and the streams must match byte-for-byte.
mod metrics_identity {
    use super::*;
    use proptest::prelude::*;
    use treesched_cli::serve_jsonl_with_metrics;

    /// Renders one request line from its generated code.
    fn line(dir: &str, code: usize, k: usize) -> String {
        match code {
            0 => format!(
                "{{\"id\":\"g{k}\",\"tree\":\"{dir}/fork.tree\",\
                 \"processors\":2,\"scheduler\":\"deepest\"}}"
            ),
            1 => format!(
                "{{\"id\":\"g{k}\",\"tree\":\"{dir}/spider.tree\",\
                 \"processors\":3,\"scheduler\":\"subtrees\"}}"
            ),
            2 => format!(
                "{{\"id\":\"g{k}\",\"tree\":\"{dir}/fork.tree\",\
                 \"processors\":4,\"scheduler\":\"inner\"}}"
            ),
            3 => "oops not json".to_string(),
            4 => format!(
                "{{\"id\":\"g{k}\",\"tree\":\"{dir}/fork.tree\",\
                 \"processors\":2,\"scheduler\":\"nosuch\"}}"
            ),
            _ => String::new(), // blank line
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn metrics_never_perturb_the_response_stream(
            codes in proptest::collection::vec(0usize..6, 1..20),
            workers in 1usize..4,
        ) {
            // `requests("{DIR}")` generates the fixture trees and hands
            // back the directory itself
            let dir = requests("{DIR}");
            let input: String = codes
                .iter()
                .enumerate()
                .map(|(k, &c)| format!("{}\n", line(&dir, c, k)))
                .collect();
            let plain = serve_jsonl(&input, workers, None);
            let (metered, snapshot) = serve_jsonl_with_metrics(&input, workers, None);
            prop_assert_eq!(&plain, &metered, "metrics perturbed the stream");
            // the snapshot is a well-formed metrics record, outside the
            // response stream
            prop_assert!(snapshot.starts_with("{\"op\":\"metrics\","), "{}", snapshot);
            prop_assert!(snapshot.ends_with("}\n"), "{}", snapshot);
            // everything that parses reaches the engine — unknown
            // schedulers error *there* and still count; only malformed
            // JSON (3) and blank lines (5) stay outside
            let scheduled = codes.iter().filter(|&&c| c != 3 && c != 5).count() as u64;
            prop_assert!(
                snapshot.contains(&format!("\"engine_requests_total\":{scheduled}")),
                "want {} scheduled in {}", scheduled, snapshot
            );
            prop_assert!(snapshot.contains("\"schedule_time_us\":{\"count\":"), "{}", snapshot);
            prop_assert!(snapshot.contains("\"span_parse\":"), "{}", snapshot);
            prop_assert!(snapshot.contains("\"span_drain\":"), "{}", snapshot);
        }
    }
}

/// `serve --metrics-out` in batch mode: the response stream is untouched
/// and the snapshot lands in the file with the engine counters filled.
#[test]
fn serve_metrics_out_writes_the_snapshot_beside_identical_output() {
    let input = requests(REQUESTS_IN);
    let dir = std::env::temp_dir().join("treesched-serve-golden");
    let req_file = dir.join("metrics_requests.jsonl");
    std::fs::write(&req_file, &input).unwrap();
    let metrics_file = dir.join("metrics_snapshot.json");
    let _ = std::fs::remove_file(&metrics_file);
    let out = run(&[
        "serve",
        req_file.to_str().unwrap(),
        "--workers",
        "2",
        "--metrics-out",
        metrics_file.to_str().unwrap(),
    ]);
    assert_eq!(out, serve_jsonl(&input, 2, None), "responses drifted");
    let snapshot = std::fs::read_to_string(&metrics_file).expect("snapshot written");
    assert!(snapshot.starts_with("{\"op\":\"metrics\","), "{snapshot}");
    // every line that parses is an engine request (unknown schedulers
    // error inside the engine and still count); only the malformed line
    // is answered by the parser itself
    let scheduled = out
        .lines()
        .filter(|l| !l.contains("\"error\":\"bad request on line"))
        .count();
    assert!(
        snapshot.contains(&format!("\"engine_requests_total\":{scheduled}")),
        "{snapshot}"
    );
    // every scheduled request left exactly one latency sample
    assert!(
        snapshot.contains(&format!("\"schedule_time_us\":{{\"count\":{scheduled}")),
        "{snapshot}"
    );
}
