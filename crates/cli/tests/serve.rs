//! Golden-file and determinism tests for the JSONL serving protocol.
//!
//! The golden files pin the request/response schema byte-for-byte: any
//! change to field names, field order, number formatting, or error wording
//! shows up as a diff against `tests/data/serve_responses.golden.jsonl`.
//! Regenerate deliberately with `UPDATE_GOLDEN=1 cargo test -p
//! treesched_cli --test serve` after an intentional protocol change.

use treesched_cli::{dispatch, serve_jsonl};

/// Request stream template; `{DIR}` is replaced with the tree directory.
const REQUESTS_IN: &str = include_str!("data/serve_requests.jsonl.in");
const RESPONSES_GOLDEN: &str = include_str!("data/serve_responses.golden.jsonl");

fn run(args: &[&str]) -> String {
    let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    dispatch(&v).expect("command succeeds")
}

/// Generates the fixture trees and returns the instantiated request stream.
fn requests() -> String {
    let dir = std::env::temp_dir().join("treesched-serve-golden");
    std::fs::create_dir_all(&dir).unwrap();
    let dir = dir.to_string_lossy().into_owned();
    run(&["gen", "fork", "2", "3", "-o", &format!("{dir}/fork.tree")]);
    run(&[
        "gen",
        "spider",
        "4",
        "3",
        "-o",
        &format!("{dir}/spider.tree"),
    ]);
    REQUESTS_IN.replace("{DIR}", &dir)
}

#[test]
fn serve_responses_match_the_golden_schema() {
    let got = serve_jsonl(&requests(), 2);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/data/serve_responses.golden.jsonl"
        );
        std::fs::write(path, &got).unwrap();
        return;
    }
    assert_eq!(
        got, RESPONSES_GOLDEN,
        "JSONL response schema drifted from the golden file \
         (UPDATE_GOLDEN=1 regenerates after an intentional change)"
    );
}

#[test]
fn serve_output_is_byte_identical_across_worker_counts() {
    let input = requests();
    let reference = serve_jsonl(&input, 1);
    for workers in [2usize, 4] {
        assert_eq!(
            serve_jsonl(&input, workers),
            reference,
            "serve output depends on the worker count (workers={workers})"
        );
    }
}
