//! CLI smoke tests: every subcommand's help and error paths through
//! [`treesched_cli::dispatch`], plus true process-level exit codes via the
//! compiled `treesched` binary.

use treesched_cli::{dispatch, CliError, USAGE};

fn run(args: &[&str]) -> Result<String, CliError> {
    let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    dispatch(&v)
}

fn err(args: &[&str]) -> CliError {
    match run(args) {
        Ok(out) => panic!("expected `{}` to fail, got: {out}", args.join(" ")),
        Err(e) => e,
    }
}

#[test]
fn no_args_is_usage_error() {
    let e = err(&[]);
    assert_eq!(e.code, 2);
    assert!(e.message.contains("usage:"));
}

#[test]
fn help_succeeds_for_all_spellings() {
    for flag in ["--help", "-h", "help"] {
        let out = run(&[flag]).unwrap_or_else(|e| panic!("{flag}: {e}"));
        assert_eq!(out, USAGE);
    }
}

#[test]
fn unknown_command_mentions_itself_and_usage() {
    let e = err(&["frobnicate"]);
    assert_eq!(e.code, 2);
    assert!(e.message.contains("unknown command `frobnicate`"));
    assert!(e.message.contains("usage:"));
}

#[test]
fn every_subcommand_rejects_missing_args() {
    // each file-taking subcommand must fail cleanly with exit code 2 when
    // called without its required arguments
    for cmd in ["gen", "stats", "sketch", "seq", "schedule", "pareto", "dot"] {
        let e = err(&[cmd]);
        assert_eq!(e.code, 2, "{cmd}: wrong exit code");
        assert!(!e.message.is_empty(), "{cmd}: empty error message");
    }
}

/// The name→scheduler→name round trip the CLI relies on: every canonical
/// name and alias printed by `treesched schedulers` resolves back to its
/// canonical scheduler. The bench harness runs the same check on its side
/// (`crates/bench/src/harness.rs`), so CLI and bench can never drift apart
/// on scheduler naming.
#[test]
fn scheduler_names_round_trip_through_the_registry() {
    let registry = treesched_core::SchedulerRegistry::standard();
    let listing = run(&["schedulers"]).unwrap();
    for e in registry.iter() {
        assert!(listing.contains(e.name()), "listing misses {}", e.name());
        assert_eq!(registry.get(e.name()).unwrap().name(), e.name());
        for alias in e.aliases() {
            assert_eq!(
                registry.get(alias).unwrap().name(),
                e.name(),
                "alias {alias}"
            );
            assert_eq!(
                registry.get(&alias.to_uppercase()).unwrap().name(),
                e.name(),
                "case-insensitive alias {alias}"
            );
        }
    }
}

#[test]
fn gen_help_lists_all_generators() {
    let e = err(&["gen"]);
    for kind in [
        "fork",
        "chain",
        "complete",
        "random",
        "deep",
        "caterpillar",
        "spider",
        "inapprox",
        "gadget",
        "longchain",
        "assembly",
    ] {
        assert!(e.message.contains(kind), "gen usage missing `{kind}`");
    }
}

#[test]
fn file_commands_report_missing_files() {
    for cmd in ["stats", "sketch", "seq", "dot"] {
        let e = err(&[cmd, "/nonexistent/treesched-smoke.tree"]);
        assert_eq!(e.code, 2, "{cmd}");
        assert!(e.message.contains("cannot read"), "{cmd}: {}", e.message);
    }
    let e = err(&["schedule", "/nonexistent/treesched-smoke.tree", "-p", "2"]);
    assert!(e.message.contains("cannot read"));
    let e = err(&["pareto", "/nonexistent/treesched-smoke.tree", "-p", "2"]);
    assert!(e.message.contains("cannot read"));
}

#[test]
fn malformed_flags_fail_cleanly() {
    assert_eq!(err(&["gen", "fork", "2", "3", "-o"]).code, 2); // -o needs a path
    assert_eq!(err(&["schedule", "x.tree", "-p"]).code, 2); // -p needs N
    assert_eq!(err(&["seq", "x.tree", "--algo"]).code, 2); // wrong arity
    assert_eq!(err(&["sketch", "x.tree", "--max"]).code, 2); // wrong arity
    assert_eq!(err(&["pareto", "x.tree"]).code, 2); // missing -p
}

/// End-to-end through the real binary: process exit codes and stdio routing.
mod process {
    use std::process::Command;

    fn treesched(args: &[&str]) -> std::process::Output {
        Command::new(env!("CARGO_BIN_EXE_treesched"))
            .args(args)
            .output()
            .expect("spawn treesched binary")
    }

    #[test]
    fn help_exits_zero_on_stdout() {
        let out = treesched(&["--help"]);
        assert!(out.status.success());
        assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
        assert!(out.stderr.is_empty());
    }

    #[test]
    fn errors_exit_two_on_stderr() {
        for args in [
            &["frobnicate"][..],
            &[][..],
            &["stats", "/nonexistent/x.tree"][..],
            &["gen", "fork", "2"][..],
        ] {
            let out = treesched(args);
            assert_eq!(out.status.code(), Some(2), "{args:?}");
            assert!(out.stdout.is_empty(), "{args:?}: error leaked to stdout");
            assert!(!out.stderr.is_empty(), "{args:?}: empty stderr");
        }
    }

    #[test]
    fn scheduling_failures_exit_one() {
        let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("treesched-smoke");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("exit1.tree");
        let path = file.to_str().unwrap();
        assert!(treesched(&["gen", "chain", "4", "-o", path])
            .status
            .success());

        // typed scheduling errors (not usage errors) exit with code 1
        for args in [
            &["schedule", path, "-p", "0"][..],
            &["schedule", path, "-p", "2", "--scheduler", "membound"][..],
        ] {
            let out = treesched(args);
            assert_eq!(out.status.code(), Some(1), "{args:?}");
            assert!(out.stdout.is_empty(), "{args:?}");
            assert!(!out.stderr.is_empty(), "{args:?}");
        }
    }

    #[test]
    fn gen_pipes_into_schedule_via_file() {
        let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("treesched-smoke");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("fork.tree");
        let path = file.to_str().unwrap();

        let gen = treesched(&["gen", "fork", "2", "4", "-o", path]);
        assert!(gen.status.success());

        let sched = treesched(&["schedule", path, "-p", "2", "--heuristic", "deepest"]);
        assert!(sched.status.success());
        let text = String::from_utf8_lossy(&sched.stdout).into_owned();
        assert!(text.contains("makespan:"), "{text}");
        assert!(text.contains("peak memory:"), "{text}");
    }
}
