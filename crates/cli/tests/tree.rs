//! End-to-end tests of the `tree` toolbox subcommands: fixture ingest,
//! conversion through `schedule`, and a golden pin of `tree to-requests`
//! output run through the real `serve` binary (the satellite contract:
//! to-requests output is accepted verbatim).

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use treesched_cli::{dispatch, serve_jsonl, CliError};

const BIN: &str = env!("CARGO_BIN_EXE_treesched");
const RESPONSES_GOLDEN: &str = include_str!("data/tree_to_requests_responses.golden.jsonl");

fn run(args: &[&str]) -> Result<String, CliError> {
    let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    dispatch(&v)
}

fn ok(args: &[&str]) -> String {
    run(args).expect("command succeeds")
}

/// Path of a fixture in the trees crate's corpus (shared with its unit
/// tests and the CI campaign point).
fn fixture(name: &str) -> String {
    let p = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../trees/tests/data")
        .join(name);
    p.to_string_lossy().into_owned()
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("treesched-tree-it");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn stat_reads_every_fixture_format() {
    let out = ok(&[
        "tree",
        "stat",
        &fixture("fork.nwk"),
        &fixture("plain.nwk"),
        &fixture("band8.mtx"),
        "--ordering",
        "natural",
    ]);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(lines[0].contains("[newick]: nodes=6"), "{}", lines[0]);
    assert!(lines[2].contains("[mm]: nodes=8"), "{}", lines[2]);
}

#[test]
fn convert_newick_fixture_is_byte_stable() {
    // fork.nwk is written in the canonical writer form: converting to
    // newick must reproduce the file exactly
    let out = ok(&["tree", "convert", &fixture("fork.nwk"), "--to", "newick"]);
    let original = std::fs::read_to_string(fixture("fork.nwk")).unwrap();
    assert_eq!(out, original);
}

#[test]
fn converted_mtx_schedules_like_any_tree() {
    let dir = temp_dir();
    let tree = dir.join("band8.tree");
    let tree = tree.to_string_lossy();
    let wrote = ok(&[
        "tree",
        "convert",
        &fixture("band8.mtx"),
        "--ordering",
        "natural",
        "-o",
        &tree,
    ]);
    assert_eq!(wrote, format!("wrote {tree}\n"));
    let out = ok(&["schedule", &tree, "-p", "2", "--scheduler", "deepest"]);
    assert!(out.contains("scheduler: ParDeepestFirst"), "{out}");
    assert!(out.contains("makespan: 19.333333333333332"), "{out}");
}

#[test]
fn prune_and_subtree_compose() {
    // prune node 3 of the fork fixture, then take the subtree at the root
    let pruned = ok(&["tree", "prune", &fixture("fork.nwk"), "3", "--to", "newick"]);
    assert_eq!(
        pruned,
        "(1[&work=2,output=1,exec=0],2[&work=3,output=2,exec=1])0[&work=5,output=0,exec=3];\n"
    );
    let sub = ok(&[
        "tree",
        "subtree",
        &fixture("fork.nwk"),
        "3",
        "--to",
        "newick",
    ]);
    assert_eq!(
        sub,
        "(1[&work=1,output=0.5,exec=0],2[&work=1,output=0.5,exec=0])0[&work=4,output=2,exec=2];\n"
    );
    // typed op errors surface with their wording
    let e = run(&["tree", "prune", &fixture("fork.nwk"), "0"]).unwrap_err();
    assert_eq!(e.message, "cannot prune the root");
    let e = run(&["tree", "subtree", &fixture("fork.nwk"), "11"]).unwrap_err();
    assert_eq!(e.message, "node 11 out of range (tree has 6 node(s))");
}

#[test]
fn to_dot_styles_nodes_and_edges() {
    let out = ok(&["tree", "to-dot", &fixture("weighted.nwk")]);
    assert!(out.starts_with("digraph"), "{out}");
    assert!(out.contains("style=filled"), "{out}");
    assert!(out.contains("penwidth="), "{out}");
    let bare = ok(&["tree", "to-dot", &fixture("weighted.nwk"), "--bare"]);
    assert!(!bare.contains("w="), "{bare}");
}

#[test]
fn ingest_errors_carry_path_and_position() {
    let dir = temp_dir();
    let bad = dir.join("bad.nwk");
    std::fs::write(&bad, "(a,b); extra").unwrap();
    let bad = bad.to_string_lossy();
    let e = run(&["tree", "stat", &bad]).unwrap_err();
    assert_eq!(
        e.message,
        format!("cannot parse {bad}: line 1, col 8: trailing text after the tree")
    );
    let e = run(&["tree", "convert", "/nonexistent.nwk"]).unwrap_err();
    assert!(e.message.starts_with("cannot read /nonexistent.nwk: "));
    // non-v1 input without --tree-out is a guided usage error
    let e = run(&[
        "tree",
        "to-requests",
        &fixture("fork.nwk"),
        "--procs",
        "1,2",
    ])
    .unwrap_err();
    assert!(e.message.contains("needs --tree-out"), "{}", e.message);
}

/// The satellite contract: `tree to-requests` output is accepted verbatim
/// by `serve` — run through the real binary and pinned against a golden
/// response stream (responses don't echo the tree path, so the golden is
/// machine-independent).
#[test]
fn to_requests_through_real_serve_binary_matches_golden() {
    let dir = temp_dir();
    let tree = dir.join("star9.tree").to_string_lossy().into_owned();
    let requests = ok(&[
        "tree",
        "to-requests",
        &fixture("star9.mtx"),
        "--tree-out",
        &tree,
        "--procs",
        "1,2,4",
        "--scheduler",
        "deepest",
        "--prefix",
        "star9",
    ]);
    // every line is a valid request of the wire protocol
    for line in requests.lines() {
        treesched_serve::RequestRecord::parse(line).expect("verbatim acceptance");
    }

    let mut child = Command::new(BIN)
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(requests.as_bytes())
        .expect("requests written");
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "serve failed: {out:?}");
    let got = String::from_utf8(out.stdout).expect("utf8");

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = format!(
            "{}/tests/data/tree_to_requests_responses.golden.jsonl",
            env!("CARGO_MANIFEST_DIR")
        );
        std::fs::write(path, &got).unwrap();
        return;
    }
    assert_eq!(
        got, RESPONSES_GOLDEN,
        "serve responses for tree to-requests drifted \
         (UPDATE_GOLDEN=1 regenerates after an intentional change)"
    );

    // worker-count independence of the same stream via the library path
    let one = serve_jsonl(&requests, 1, None);
    let two = serve_jsonl(&requests, 2, None);
    let four = serve_jsonl(&requests, 4, None);
    assert_eq!(one, two);
    assert_eq!(two, four);
    assert_eq!(one, got, "binary and library serve outputs diverged");
}

#[test]
fn reroot_rehangs_the_tree_with_typed_errors() {
    // hang the fork fixture from node 3: the old root becomes a child,
    // the path edge reverses and its weight travels with it
    let out = ok(&[
        "tree",
        "reroot",
        &fixture("fork.nwk"),
        "3",
        "--to",
        "newick",
    ]);
    assert_eq!(
        out,
        "((1[&work=2,output=1,exec=0],2[&work=3,output=2,exec=1])\
         0[&work=5,output=2,exec=3],4[&work=1,output=0.5,exec=0],\
         5[&work=1,output=0.5,exec=0])3[&work=4,output=0,exec=2];\n"
    );
    // rerooting at the current root is the identity
    let same = ok(&[
        "tree",
        "reroot",
        &fixture("fork.nwk"),
        "0",
        "--to",
        "newick",
    ]);
    let original = std::fs::read_to_string(fixture("fork.nwk")).unwrap();
    assert_eq!(same, original);
    // typed op errors surface with their wording
    let e = run(&["tree", "reroot", &fixture("fork.nwk"), "11"]).unwrap_err();
    assert_eq!(e.message, "node 11 out of range (tree has 6 node(s))");
}

/// `schedule` ingests any toolbox format directly — no `tree convert`
/// round-trip needed — and `--ordering` steers MatrixMarket elimination.
#[test]
fn schedule_ingests_toolbox_formats_directly() {
    // the one-step path matches the two-step convert-then-schedule path
    let direct = ok(&[
        "schedule",
        &fixture("band8.mtx"),
        "--ordering",
        "natural",
        "-p",
        "2",
        "--scheduler",
        "deepest",
    ]);
    assert!(direct.contains("makespan: 19.333333333333332"), "{direct}");

    // amd ordering is accepted and schedules the same fixture
    let amd = ok(&[
        "schedule",
        &fixture("band8.mtx"),
        "--ordering",
        "amd",
        "-p",
        "2",
        "--scheduler",
        "deepest",
    ]);
    assert!(amd.contains("scheduler: ParDeepestFirst"), "{amd}");
    assert!(amd.contains("peak memory:"), "{amd}");

    // newick input schedules without conversion too
    let nwk = ok(&["schedule", &fixture("fork.nwk"), "-p", "2"]);
    assert!(nwk.contains("makespan:"), "{nwk}");

    // a bad ordering name is a usage error with the accepted set
    let e = run(&["schedule", &fixture("band8.mtx"), "--ordering", "bogus"]).unwrap_err();
    assert_eq!(
        e.message,
        "unknown ordering `bogus` (expected natural, amd or rcm)"
    );
}
