//! The unified scheduling API: one pluggable surface over every scheduler
//! in this crate.
//!
//! The paper evaluates its four heuristics (§5), textbook baselines, and a
//! memory-capped scheduler (§7) over a large `(tree, p)` campaign. This
//! module gives them all one shape so that front-ends (CLI, experiment
//! harness, user code) never dispatch on concrete scheduler types:
//!
//! * [`Scheduler`] — the trait: `name()` plus
//!   `schedule(&Request, &mut Scratch) -> Result<Outcome, SchedError>`;
//! * [`Platform`] — the machine: processor classes ([`ProcClass`]:
//!   `count` processors at a relative `speed`) and memory domains
//!   ([`MemDomain`]: a capacity shared by its classes). The paper's
//!   machine — `p` identical processors, one memory — is the flat
//!   special case built by [`Platform::new`]/[`Platform::with_memory_cap`]
//!   and stays bit-compatible;
//! * [`Request`] — a borrowed scheduling problem: tree + platform +
//!   sequential sub-algorithm choice;
//! * [`Outcome`] — the schedule, its validated evaluation, and diagnostics;
//! * [`SchedError`] — every failure mode as a typed error (no panics);
//! * [`Scratch`] — reusable ready-queue/placement buffers and per-tree
//!   caches, so campaigns of thousands of schedules do not re-allocate;
//! * [`SchedulerRegistry`] — name-based lookup (canonical names + aliases)
//!   over all built-in schedulers, open for user registration.
//!
//! ```
//! use treesched_core::api::{Platform, Request, Scratch, SchedulerRegistry};
//! use treesched_model::TaskTree;
//!
//! let registry = SchedulerRegistry::standard();
//! let tree = TaskTree::fork(8, 1.0, 1.0, 0.0);
//! let req = Request::new(&tree, Platform::new(4));
//! let mut scratch = Scratch::new();
//! let sched = registry.get("deepest").unwrap(); // alias of ParDeepestFirst
//! let out = sched.schedule(&req, &mut scratch).unwrap();
//! assert_eq!(sched.name(), "ParDeepestFirst");
//! assert!(out.eval.makespan >= treesched_core::makespan_lower_bound(&tree, 4));
//! ```

use crate::baselines::splitmix_key;
use crate::heuristics::{
    par_subtrees_hetero_with_order_scratch, par_subtrees_optim_hetero_with_order_scratch,
    par_subtrees_optim_with_order_scratch, par_subtrees_with_order_scratch, SeqAlgo,
    SubtreeScratch,
};
use crate::listsched::{
    key_from_f64, list_schedule_reusing, list_schedule_with_comm, list_schedule_with_speeds,
    CommCosts, Key3, ListScratch, Speeds,
};
use crate::membound::{mem_bounded_schedule, mem_bounded_schedule_domains, Admission, DomainCtx};
use crate::schedule::{try_evaluate_on, EvalResult, Schedule, ScheduleError};
use std::sync::Arc;
use treesched_model::{NodeId, TaskTree};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a scheduling request failed. Every condition the schedulers used to
/// `panic!`/`expect` on is a variant here; front-ends map them to clean
/// process exits.
#[derive(Clone, Debug, PartialEq)]
pub enum SchedError {
    /// The platform has `processors == 0`.
    NoProcessors,
    /// The task tree holds no tasks.
    EmptyTree,
    /// A memory cap or domain capacity is NaN or negative.
    InvalidMemoryCap {
        /// The offending cap value.
        cap: f64,
    },
    /// A processor class has a non-finite or non-positive speed.
    InvalidSpeed {
        /// Index of the offending class in [`Platform::classes`].
        class: usize,
        /// The offending speed value.
        speed: f64,
    },
    /// A processor class has `count == 0`.
    EmptyClass {
        /// Index of the offending class in [`Platform::classes`].
        class: usize,
    },
    /// A memory domain lists no processor classes.
    EmptyDomain {
        /// Index of the offending domain in [`Platform::domains`].
        domain: usize,
    },
    /// A processor class is claimed by more than one memory domain (or
    /// twice by the same domain).
    OverlappingDomains {
        /// Index of the doubly-claimed class.
        class: usize,
    },
    /// A memory domain references a class index outside
    /// [`Platform::classes`].
    UnknownClass {
        /// Index of the offending domain.
        domain: usize,
        /// The out-of-range class index it referenced.
        class: usize,
    },
    /// The communication-cost matrix is malformed: wrong dimension,
    /// asymmetric, a non-zero diagonal, non-finite or negative entries, or
    /// declared without memory domains to index it.
    InvalidCommMatrix {
        /// What the validation rejected.
        reason: &'static str,
    },
    /// A memory-capped scheduler was invoked without
    /// [`Platform::memory_cap`].
    MissingMemoryCap {
        /// Canonical name of the scheduler that needs the cap.
        scheduler: &'static str,
    },
    /// The scheduler cannot handle the requested platform shape (e.g.
    /// mixed-speed processors for a scheduler that places whole subtrees,
    /// or per-domain capacities for a scheduler that enforces one shared
    /// cap). Returned instead of silently mis-scheduling.
    UnsupportedPlatform {
        /// Canonical name of the scheduler that rejected the platform.
        scheduler: &'static str,
        /// What the scheduler cannot handle.
        reason: &'static str,
    },
    /// The scheduler produced a schedule that failed validation — an
    /// internal bug surfaced as data instead of a panic.
    InvalidSchedule {
        /// Canonical name of the offending scheduler.
        scheduler: String,
        /// What [`Schedule::validate`] found.
        error: ScheduleError,
    },
    /// No registered scheduler matches the requested name or alias.
    UnknownScheduler {
        /// The name that failed to resolve.
        name: String,
        /// Canonical names of all registered schedulers.
        known: Vec<String>,
    },
    /// A registration clashed with an existing canonical name or alias.
    DuplicateName {
        /// The already-taken name.
        name: String,
    },
    /// The worker thread serving the request died (a user scheduler
    /// panicked) before producing a result. The request was not served;
    /// the rest of the stream is unaffected.
    WorkerLost {
        /// Index of the dead worker thread.
        worker: usize,
    },
    /// A serving front-end refused the request because the client's
    /// bounded in-flight queue was full. The request was not served; the
    /// client may resubmit once earlier responses drain.
    Overloaded {
        /// The in-flight cap that was hit.
        limit: usize,
    },
    /// A serving front-end could not parse the request line. Carries the
    /// 1-based line number within the client's input stream.
    MalformedRequest {
        /// 1-based input line number.
        line: usize,
        /// What the JSONL parser rejected.
        reason: String,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::NoProcessors => write!(f, "platform needs at least one processor"),
            SchedError::EmptyTree => write!(f, "cannot schedule an empty task tree"),
            SchedError::InvalidMemoryCap { cap } => {
                write!(
                    f,
                    "invalid memory cap {cap} (must be finite and non-negative)"
                )
            }
            SchedError::InvalidSpeed { class, speed } => {
                write!(
                    f,
                    "invalid speed {speed} for processor class {class} (must be finite and positive)"
                )
            }
            SchedError::EmptyClass { class } => {
                write!(f, "processor class {class} has no processors")
            }
            SchedError::EmptyDomain { domain } => {
                write!(f, "memory domain {domain} covers no processor classes")
            }
            SchedError::OverlappingDomains { class } => {
                write!(
                    f,
                    "processor class {class} belongs to more than one memory domain"
                )
            }
            SchedError::UnknownClass { domain, class } => {
                write!(
                    f,
                    "memory domain {domain} references unknown processor class {class}"
                )
            }
            SchedError::InvalidCommMatrix { reason } => {
                write!(f, "invalid communication-cost matrix: {reason}")
            }
            SchedError::MissingMemoryCap { scheduler } => {
                write!(f, "scheduler `{scheduler}` needs a platform memory cap")
            }
            SchedError::UnsupportedPlatform { scheduler, reason } => {
                write!(
                    f,
                    "scheduler `{scheduler}` does not support this platform: {reason}"
                )
            }
            SchedError::InvalidSchedule { scheduler, error } => {
                write!(
                    f,
                    "scheduler `{scheduler}` produced an invalid schedule: {error}"
                )
            }
            SchedError::UnknownScheduler { name, known } => {
                write!(
                    f,
                    "unknown scheduler `{name}` (known: {})",
                    known.join(", ")
                )
            }
            SchedError::DuplicateName { name } => {
                write!(f, "scheduler name or alias `{name}` is already registered")
            }
            SchedError::WorkerLost { worker } => {
                write!(f, "serve worker {worker} died before the request completed")
            }
            SchedError::Overloaded { limit } => {
                write!(
                    f,
                    "client queue overloaded: {limit} requests already in flight"
                )
            }
            SchedError::MalformedRequest { line, reason } => {
                write!(f, "bad request on line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::InvalidSchedule { error, .. } => Some(error),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Platform / Request / Outcome
// ---------------------------------------------------------------------------

/// One class of identical processors of a [`Platform`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProcClass {
    /// Number of processors in this class.
    pub count: u32,
    /// Relative execution speed: a task of work `w` runs for `w / speed`
    /// on a processor of this class. The paper's model is speed `1.0`.
    pub speed: f64,
}

impl ProcClass {
    /// A class of `count` processors at `speed`.
    pub fn new(count: u32, speed: f64) -> ProcClass {
        ProcClass { count, speed }
    }
}

/// One memory domain of a [`Platform`]: a capacity shared by the
/// processors of the listed classes (NUMA-style).
#[derive(Clone, Debug, PartialEq)]
pub struct MemDomain {
    /// Memory capacity of the domain.
    pub capacity: f64,
    /// Indices into [`Platform::classes`] of the classes whose processors
    /// allocate from this domain. A class may belong to at most one domain;
    /// classes in no domain have unbounded memory.
    pub classes: Vec<usize>,
}

/// The target machine: a set of processor *classes* (`count` processors at
/// a relative `speed` each) and optional memory *domains* (a capacity
/// shared by the classes that belong to it).
///
/// The paper's model (§3.2) — `p` identical processors sharing one memory —
/// is the special case built by [`Platform::new`] /
/// [`Platform::with_memory_cap`], and stays the wire- and bit-compatible
/// default: one class at speed `1.0`, at most one domain covering it.
/// Schedulers that cannot handle a richer shape return
/// [`SchedError::UnsupportedPlatform`] instead of silently mis-scheduling.
///
/// ```
/// use treesched_core::api::{Platform, ProcClass};
///
/// // 2 fast + 2 slow processors, each pair with its own 64-unit memory
/// let platform = Platform::heterogeneous(vec![
///     ProcClass::new(2, 2.0),
///     ProcClass::new(2, 1.0),
/// ])
/// .with_domain(64.0, &[0])
/// .with_domain(64.0, &[1]);
/// assert_eq!(platform.processors(), 4);
/// assert_eq!(platform.speed_of(1), 2.0);
/// assert_eq!(platform.domain_of(3), Some(1));
/// assert!(platform.validate().is_ok());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Platform {
    /// Processor classes, in declaration order. Processor indices `0..p`
    /// are assigned class by class: class 0's processors first.
    classes: Vec<ProcClass>,
    /// Memory domains; empty means unbounded shared memory.
    domains: Vec<MemDomain>,
    /// Flattened `domains × domains` cross-domain transfer-cost matrix,
    /// row-major; empty means free communication everywhere. Entry
    /// `[src * D + dst]` is the cost per unit of output data a child's
    /// result pays to cross from `src`'s memory into `dst`'s.
    comm: Vec<f64>,
}

impl Platform {
    /// The fluent way to describe a platform: start empty, add
    /// [`classes`](PlatformBuilder::classes) /
    /// [`domain`](PlatformBuilder::domain) /
    /// [`memory_cap`](PlatformBuilder::memory_cap) /
    /// [`comm`](PlatformBuilder::comm), then
    /// [`build`](PlatformBuilder::build) — which runs
    /// [`Platform::validate`] so an ill-formed description is a typed
    /// [`SchedError`] at construction time, not a surprise mid-campaign.
    pub fn builder() -> PlatformBuilder {
        PlatformBuilder::default()
    }

    /// Decomposes the platform back into a builder, e.g. to attach domains
    /// or communication costs to an existing machine description.
    pub fn into_builder(self) -> PlatformBuilder {
        PlatformBuilder {
            classes: self.classes,
            domains: self.domains,
            shared_cap: None,
            comm: self.comm,
            comm_entries: Vec::new(),
        }
    }

    /// An uncapped platform with `processors` identical unit-speed
    /// processors — the paper's machine. Thin wrapper over
    /// [`Platform::builder`]; prefer `builder()` for anything richer.
    pub fn new(processors: u32) -> Platform {
        Platform::builder()
            .classes([ProcClass::new(processors, 1.0)])
            .assemble()
    }

    /// A platform from explicit processor classes, with unbounded memory.
    /// Thin wrapper over [`Platform::builder`]; prefer `builder()` for
    /// anything richer.
    pub fn heterogeneous(classes: Vec<ProcClass>) -> Platform {
        Platform::builder().classes(classes).assemble()
    }

    /// Returns the platform with a single shared-memory cap over **all**
    /// classes, replacing any previously declared domains (and dropping any
    /// communication-cost matrix, which was indexed by them). Thin wrapper
    /// over [`Platform::builder`]; prefer `builder()` for anything richer.
    pub fn with_memory_cap(self, cap: f64) -> Platform {
        self.into_builder().memory_cap(cap).assemble()
    }

    /// Returns the platform with an additional memory domain of `capacity`
    /// over the given class indices. Thin wrapper over
    /// [`Platform::builder`]; prefer `builder()` for anything richer.
    pub fn with_domain(self, capacity: f64, classes: &[usize]) -> Platform {
        self.into_builder().domain(capacity, classes).assemble()
    }

    /// Returns the platform with the given flattened `domains × domains`
    /// row-major transfer-cost matrix (see [`Platform::comm_cost`]). Thin
    /// wrapper over [`Platform::builder`]; prefer `builder()` for anything
    /// richer.
    pub fn with_comm(self, comm: Vec<f64>) -> Platform {
        self.into_builder().comm(comm).assemble()
    }

    /// Total processor count across all classes.
    pub fn processors(&self) -> u32 {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// The processor classes.
    pub fn classes(&self) -> &[ProcClass] {
        &self.classes
    }

    /// The memory domains (empty = unbounded shared memory).
    pub fn domains(&self) -> &[MemDomain] {
        &self.domains
    }

    /// The flattened `domains × domains` row-major transfer-cost matrix
    /// (empty = free communication).
    pub fn comm(&self) -> &[f64] {
        &self.comm
    }

    /// Transfer cost per unit of output data crossing from memory domain
    /// `src` into `dst`. Zero on the diagonal, zero when the platform
    /// declares no matrix, and symmetric by construction
    /// ([`Platform::validate`] enforces it).
    pub fn comm_cost(&self, src: usize, dst: usize) -> f64 {
        if src == dst || self.comm.is_empty() {
            return 0.0;
        }
        self.comm[src * self.domains.len() + dst]
    }

    /// Whether any cross-domain transfer actually costs something. An
    /// all-zero matrix is equivalent to no matrix at all, and every
    /// scheduler treats the two spellings identically (pinned by the
    /// registry property tests).
    pub fn has_comm(&self) -> bool {
        self.comm.iter().any(|&c| c != 0.0)
    }

    /// The single shared-memory cap, when the platform has exactly one
    /// domain covering every class (the shape [`Platform::with_memory_cap`]
    /// builds). `None` for uncapped platforms **and** for genuinely
    /// multi-domain ones — schedulers that need one shared cap must treat
    /// the latter as [`SchedError::UnsupportedPlatform`], which
    /// [`Platform::has_shared_memory`] distinguishes.
    pub fn memory_cap(&self) -> Option<f64> {
        match self.domains.as_slice() {
            [d] if (0..self.classes.len()).all(|c| d.classes.contains(&c)) => Some(d.capacity),
            _ => None,
        }
    }

    /// Whether every processor allocates from one shared memory: no domains
    /// at all, or a single domain covering every class.
    pub fn has_shared_memory(&self) -> bool {
        self.domains.is_empty() || self.memory_cap().is_some()
    }

    /// Whether every processor runs at speed `1.0` (the paper's model).
    pub fn is_unit_speed(&self) -> bool {
        self.classes.iter().all(|c| c.speed == 1.0)
    }

    /// The common speed when all classes run equally fast, `None` when the
    /// platform mixes speeds.
    pub fn uniform_speed(&self) -> Option<f64> {
        let speed = self.classes.first().map_or(1.0, |c| c.speed);
        self.classes
            .iter()
            .all(|c| c.speed == speed)
            .then_some(speed)
    }

    /// Whether the platform is expressible in the flat legacy shape
    /// `(processors, optional cap)`: one unit-speed class and at most one
    /// all-covering domain. Flat platforms keep every record and schedule
    /// byte-identical to the homogeneous API.
    pub fn is_flat(&self) -> bool {
        self.classes.len() == 1 && self.is_unit_speed() && self.has_shared_memory()
    }

    /// Class index of processor `proc`.
    ///
    /// # Panics
    ///
    /// Panics when `proc >= self.processors()`.
    pub fn class_of(&self, proc: u32) -> usize {
        let mut first = 0;
        for (k, c) in self.classes.iter().enumerate() {
            first += c.count;
            if proc < first {
                return k;
            }
        }
        panic!("processor {proc} out of range (platform has {first})");
    }

    /// Speed of processor `proc`.
    ///
    /// # Panics
    ///
    /// Panics when `proc >= self.processors()`.
    pub fn speed_of(&self, proc: u32) -> f64 {
        self.classes[self.class_of(proc)].speed
    }

    /// Memory domain of processor `proc`, `None` when its class belongs to
    /// no domain (unbounded memory).
    ///
    /// # Panics
    ///
    /// Panics when `proc >= self.processors()`.
    pub fn domain_of(&self, proc: u32) -> Option<usize> {
        let class = self.class_of(proc);
        self.domains.iter().position(|d| d.classes.contains(&class))
    }

    /// Clears `out` and fills it with one speed per processor, in processor
    /// index order (`out.len() == self.processors()` afterwards).
    pub fn fill_speeds(&self, out: &mut Vec<f64>) {
        out.clear();
        for c in &self.classes {
            out.extend(std::iter::repeat(c.speed).take(c.count as usize));
        }
    }

    /// Clears `out` and fills it with one memory-domain index per processor,
    /// in processor index order; `u32::MAX` marks a processor whose class
    /// belongs to no domain (unbounded memory, free communication).
    pub fn fill_domains(&self, out: &mut Vec<u32>) {
        out.clear();
        for (k, c) in self.classes.iter().enumerate() {
            let domain = self
                .domains
                .iter()
                .position(|d| d.classes.contains(&k))
                .map_or(u32::MAX, |d| d as u32);
            out.extend(std::iter::repeat(domain).take(c.count as usize));
        }
    }

    /// Checks the platform invariants: at least one processor, finite
    /// positive speeds, non-empty classes, and well-formed domains
    /// (finite non-negative capacity — "unbounded" is spelled by *absence*
    /// of a domain, and a non-finite capacity would corrupt the JSON wire
    /// records — at least one class each, no class in two domains, no
    /// dangling class index).
    pub fn validate(&self) -> Result<(), SchedError> {
        if self.processors() == 0 {
            return Err(SchedError::NoProcessors);
        }
        for (k, c) in self.classes.iter().enumerate() {
            if c.count == 0 {
                return Err(SchedError::EmptyClass { class: k });
            }
            if !c.speed.is_finite() || c.speed <= 0.0 {
                return Err(SchedError::InvalidSpeed {
                    class: k,
                    speed: c.speed,
                });
            }
        }
        let mut claimed = vec![false; self.classes.len()];
        for (k, d) in self.domains.iter().enumerate() {
            if !d.capacity.is_finite() || d.capacity < 0.0 {
                return Err(SchedError::InvalidMemoryCap { cap: d.capacity });
            }
            if d.classes.is_empty() {
                return Err(SchedError::EmptyDomain { domain: k });
            }
            for &c in &d.classes {
                if c >= self.classes.len() {
                    return Err(SchedError::UnknownClass {
                        domain: k,
                        class: c,
                    });
                }
                if claimed[c] {
                    return Err(SchedError::OverlappingDomains { class: c });
                }
                claimed[c] = true;
            }
        }
        if !self.comm.is_empty() {
            let d = self.domains.len();
            if d == 0 {
                return Err(SchedError::InvalidCommMatrix {
                    reason: "a comm matrix needs memory domains to index it",
                });
            }
            if self.comm.len() != d * d {
                return Err(SchedError::InvalidCommMatrix {
                    reason: "matrix length must be domains x domains",
                });
            }
            for (i, &c) in self.comm.iter().enumerate() {
                if !c.is_finite() || c < 0.0 {
                    return Err(SchedError::InvalidCommMatrix {
                        reason: "costs must be finite and non-negative",
                    });
                }
                if i / d == i % d && c != 0.0 {
                    return Err(SchedError::InvalidCommMatrix {
                        reason: "the diagonal (intra-domain cost) must be zero",
                    });
                }
                if self.comm[(i % d) * d + i / d] != c {
                    return Err(SchedError::InvalidCommMatrix {
                        reason: "the matrix must be symmetric",
                    });
                }
            }
        }
        Ok(())
    }
}

/// Fluent, validating constructor for [`Platform`] — the one front door for
/// every platform shape (flat, mixed-speed, NUMA domains, communication
/// costs). [`PlatformBuilder::build`] runs [`Platform::validate`], so the
/// result is either a well-formed machine or a typed [`SchedError`]:
///
/// ```
/// use treesched_core::api::{Platform, ProcClass};
///
/// let platform = Platform::builder()
///     .classes([ProcClass::new(2, 2.0), ProcClass::new(2, 1.0)])
///     .domain(64.0, &[0])
///     .domain(64.0, &[1])
///     .comm_cost(0, 1, 0.5)
///     .build()
///     .unwrap();
/// assert_eq!(platform.processors(), 4);
/// assert_eq!(platform.comm_cost(1, 0), 0.5); // symmetric
/// ```
#[derive(Clone, Debug, Default)]
pub struct PlatformBuilder {
    classes: Vec<ProcClass>,
    domains: Vec<MemDomain>,
    shared_cap: Option<f64>,
    comm: Vec<f64>,
    comm_entries: Vec<(usize, usize, f64)>,
}

impl PlatformBuilder {
    /// Sets the processor classes, replacing any set before.
    pub fn classes(mut self, classes: impl IntoIterator<Item = ProcClass>) -> PlatformBuilder {
        self.classes = classes.into_iter().collect();
        self
    }

    /// Appends one class of `count` processors at `speed`.
    pub fn class(mut self, count: u32, speed: f64) -> PlatformBuilder {
        self.classes.push(ProcClass::new(count, speed));
        self
    }

    /// Appends a memory domain of `capacity` over the given class indices.
    pub fn domain(mut self, capacity: f64, classes: &[usize]) -> PlatformBuilder {
        self.domains.push(MemDomain {
            capacity,
            classes: classes.to_vec(),
        });
        self
    }

    /// One shared-memory cap over **all** classes — the paper's single
    /// memory. Replaces any domains declared before or after (applied at
    /// build time) and drops any comm matrix, which was indexed by them.
    pub fn memory_cap(mut self, cap: f64) -> PlatformBuilder {
        self.shared_cap = Some(cap);
        self.comm = Vec::new();
        self.comm_entries = Vec::new();
        self
    }

    /// Sets the full flattened `domains × domains` row-major transfer-cost
    /// matrix, replacing any matrix or per-pair entries set before.
    pub fn comm(mut self, matrix: Vec<f64>) -> PlatformBuilder {
        self.comm = matrix;
        self.comm_entries = Vec::new();
        self
    }

    /// Sets one symmetric transfer cost between domains `src` and `dst`
    /// (applied at build time over a zero matrix, or over a matrix given to
    /// [`PlatformBuilder::comm`]). Unset pairs stay at zero.
    pub fn comm_cost(mut self, src: usize, dst: usize, cost: f64) -> PlatformBuilder {
        self.comm_entries.push((src, dst, cost));
        self
    }

    /// Assembles the platform without validating — the escape hatch behind
    /// the legacy infallible constructors, which historically deferred
    /// invariant checking to [`Request::validate`]. Per-pair
    /// [`PlatformBuilder::comm_cost`] entries that reference a domain the
    /// builder never declared are dropped here (build() reports them).
    fn assemble(self) -> Platform {
        let domains = match self.shared_cap {
            Some(cap) => vec![MemDomain {
                capacity: cap,
                classes: (0..self.classes.len()).collect(),
            }],
            None => self.domains,
        };
        let d = domains.len();
        let mut comm = self.comm;
        if !self.comm_entries.is_empty() {
            if comm.is_empty() {
                comm = vec![0.0; d * d];
            }
            for &(src, dst, cost) in &self.comm_entries {
                if src < d && dst < d && comm.len() == d * d {
                    comm[src * d + dst] = cost;
                    comm[dst * d + src] = cost;
                }
            }
        }
        Platform {
            classes: self.classes,
            domains,
            comm,
        }
    }

    /// Builds and validates the platform. A per-pair
    /// [`PlatformBuilder::comm_cost`] referencing a domain index the builder
    /// never declared is reported as [`SchedError::InvalidCommMatrix`].
    pub fn build(self) -> Result<Platform, SchedError> {
        let d = match self.shared_cap {
            Some(_) => 1,
            None => self.domains.len(),
        };
        if self.comm_entries.iter().any(|&(s, t, _)| s >= d || t >= d) {
            return Err(SchedError::InvalidCommMatrix {
                reason: "a comm entry references a domain that was never declared",
            });
        }
        let platform = self.assemble();
        platform.validate()?;
        Ok(platform)
    }
}

/// Which platform flag a [`PlatformParseError`] came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlatformFlag {
    /// `--speeds COUNTxSPEED,..` (spec key `speeds`).
    Speeds,
    /// `--domains CAP@CLASSES,..` (spec key `domains`).
    Domains,
    /// `--comm SRC-DST:COST,..` (spec key `comm`).
    Comm,
}

impl PlatformFlag {
    /// The flag spelling used in error messages and usage strings.
    pub fn flag(self) -> &'static str {
        match self {
            PlatformFlag::Speeds => "--speeds",
            PlatformFlag::Domains => "--domains",
            PlatformFlag::Comm => "--comm",
        }
    }
}

/// Typed parse error of [`PlatformSpec::parse_flags`]: which flag, which
/// comma-separated entry (0-based), and what went wrong. `Display` renders
/// the exact messages the CLI has always printed, so front-ends keep their
/// wording by mapping through `to_string()`.
#[derive(Clone, Debug, PartialEq)]
pub enum PlatformParseError {
    /// A token inside one entry failed to parse as a number. `what` names
    /// the token as the usage strings spell it (e.g. `--speeds count`).
    BadToken {
        /// The flag the token came from.
        flag: PlatformFlag,
        /// Human name of the token (`--speeds count`, `--domains capacity`, …).
        what: &'static str,
        /// The offending token text.
        token: String,
        /// 0-based index of the comma-separated entry holding the token.
        entry: usize,
    },
    /// An entry was empty (a bare `,,` or an empty flag value).
    EmptyEntry {
        /// The flag with the empty entry.
        flag: PlatformFlag,
        /// 0-based index of the empty entry.
        entry: usize,
    },
    /// A `--comm` entry was not in `SRC-DST:COST` shape.
    MalformedCommEntry {
        /// The offending entry text.
        token: String,
        /// 0-based index of the offending entry.
        entry: usize,
    },
    /// A `--comm` entry referenced a domain index the `--domains` flag
    /// never declared.
    CommDomainOutOfRange {
        /// The out-of-range domain index.
        index: usize,
        /// Number of domains the spec declares.
        domains: usize,
        /// 0-based index of the offending entry.
        entry: usize,
    },
}

impl std::fmt::Display for PlatformParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformParseError::BadToken { what, token, .. } => {
                write!(f, "cannot parse {what} from `{token}`")
            }
            PlatformParseError::EmptyEntry { flag, .. } => match flag {
                PlatformFlag::Speeds => {
                    write!(f, "--speeds needs COUNTxSPEED entries (e.g. 2x2.0,2x1.0)")
                }
                PlatformFlag::Domains => {
                    write!(f, "--domains needs CAP@CLASSES entries (e.g. 64@0,32@1+2)")
                }
                PlatformFlag::Comm => {
                    write!(f, "--comm needs SRC-DST:COST entries (e.g. 0-1:2,0-2:0.5)")
                }
            },
            PlatformParseError::MalformedCommEntry { token, .. } => {
                write!(
                    f,
                    "cannot parse --comm entry from `{token}` (want SRC-DST:COST)"
                )
            }
            PlatformParseError::CommDomainOutOfRange { index, domains, .. } => {
                write!(
                    f,
                    "--comm references domain {index}, but only {domains} domains are declared"
                )
            }
        }
    }
}

impl std::error::Error for PlatformParseError {}

impl PlatformParseError {
    /// The flag the error came from.
    pub fn flag(&self) -> PlatformFlag {
        match self {
            PlatformParseError::BadToken { flag, .. } => *flag,
            PlatformParseError::EmptyEntry { flag, .. } => *flag,
            PlatformParseError::MalformedCommEntry { .. } => PlatformFlag::Comm,
            PlatformParseError::CommDomainOutOfRange { .. } => PlatformFlag::Comm,
        }
    }

    /// 0-based index of the comma-separated entry the error points at.
    pub fn entry(&self) -> usize {
        match self {
            PlatformParseError::BadToken { entry, .. } => *entry,
            PlatformParseError::EmptyEntry { entry, .. } => *entry,
            PlatformParseError::MalformedCommEntry { entry, .. } => *entry,
            PlatformParseError::CommDomainOutOfRange { entry, .. } => *entry,
        }
    }
}

/// A declarative, not-yet-validated platform description — the parsed form
/// of the CLI's `--speeds COUNTxSPEED,..` / `--domains CAP@CLASSES,..` /
/// `--comm SRC-DST:COST,..` flags, shared by every front-end that spells
/// platforms as text (the `treesched` CLI, campaign specs, JSON spec files).
///
/// Unlike [`Platform`] itself, a spec is cheap to build from user input and
/// keeps parse errors (typed [`PlatformParseError`], pointing at the
/// offending flag, entry, and token) separate from the typed invariant
/// errors of [`Platform::validate`]:
///
/// ```
/// use treesched_core::api::PlatformSpec;
///
/// let spec =
///     PlatformSpec::parse_flags("2x2.0,2x1.0", Some("64@0,32@1"), Some("0-1:0.5")).unwrap();
/// let platform = spec.to_platform();
/// assert_eq!(platform.processors(), 4);
/// assert_eq!(platform.domains().len(), 2);
/// assert_eq!(platform.comm_cost(0, 1), 0.5);
/// assert!(platform.validate().is_ok());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PlatformSpec {
    /// Processor classes, in declaration order.
    pub classes: Vec<ProcClass>,
    /// Memory domains as `(capacity, class indices)` pairs.
    pub domains: Vec<(f64, Vec<usize>)>,
    /// Symmetric cross-domain transfer costs as `(src, dst, cost)` entries
    /// (empty = free communication).
    pub comm: Vec<(usize, usize, f64)>,
}

impl PlatformSpec {
    /// The paper's flat machine: `processors` unit-speed processors,
    /// unbounded shared memory.
    pub fn flat(processors: u32) -> PlatformSpec {
        PlatformSpec {
            classes: vec![ProcClass::new(processors, 1.0)],
            domains: Vec::new(),
            comm: Vec::new(),
        }
    }

    /// Parses the CLI flag syntax: `speeds` is a comma-separated list of
    /// `COUNTxSPEED` processor classes (`2x2.0,2x1.0`; a bare `SPEED` means
    /// one processor), `domains` an optional comma-separated list of
    /// `CAP@CLASSES` memory domains with `+`-joined class indices
    /// (`64@0,32@1+2`; a bare `CAP` covers every class), and `comm` an
    /// optional comma-separated list of `SRC-DST:COST` symmetric
    /// cross-domain transfer costs (`0-1:2,0-2:0.5`). Parse errors only —
    /// invariant checking (positive speeds, domain shapes, matrix
    /// well-formedness) stays with [`Platform::validate`] on the built
    /// platform; the one semantic check done here is that `comm` entries
    /// reference declared domains, because only the spec still knows the
    /// flag that declared them.
    pub fn parse_flags(
        speeds: &str,
        domains: Option<&str>,
        comm: Option<&str>,
    ) -> Result<PlatformSpec, PlatformParseError> {
        fn num<T: std::str::FromStr>(
            s: &str,
            flag: PlatformFlag,
            what: &'static str,
            entry: usize,
        ) -> Result<T, PlatformParseError> {
            s.parse().map_err(|_| PlatformParseError::BadToken {
                flag,
                what,
                token: s.to_string(),
                entry,
            })
        }
        let mut classes = Vec::new();
        for (k, entry) in speeds.split(',').enumerate() {
            let entry = entry.trim();
            if entry.is_empty() {
                return Err(PlatformParseError::EmptyEntry {
                    flag: PlatformFlag::Speeds,
                    entry: k,
                });
            }
            let class = match entry.split_once(['x', 'X']) {
                Some((count, speed)) => ProcClass::new(
                    num(count.trim(), PlatformFlag::Speeds, "--speeds count", k)?,
                    num(speed.trim(), PlatformFlag::Speeds, "--speeds speed", k)?,
                ),
                None => ProcClass::new(1, num(entry, PlatformFlag::Speeds, "--speeds speed", k)?),
            };
            classes.push(class);
        }
        let mut parsed_domains = Vec::new();
        if let Some(domains) = domains {
            for (k, entry) in domains.split(',').enumerate() {
                let entry = entry.trim();
                if entry.is_empty() {
                    return Err(PlatformParseError::EmptyEntry {
                        flag: PlatformFlag::Domains,
                        entry: k,
                    });
                }
                let (cap, ids) = match entry.split_once('@') {
                    Some((cap, list)) => {
                        let mut ids = Vec::new();
                        for id in list.split('+') {
                            ids.push(num(
                                id.trim(),
                                PlatformFlag::Domains,
                                "--domains class index",
                                k,
                            )?);
                        }
                        (cap.trim(), ids)
                    }
                    None => (entry, (0..classes.len()).collect()),
                };
                parsed_domains.push((
                    num(cap, PlatformFlag::Domains, "--domains capacity", k)?,
                    ids,
                ));
            }
        }
        let mut parsed_comm = Vec::new();
        if let Some(comm) = comm {
            for (k, entry) in comm.split(',').enumerate() {
                let entry = entry.trim();
                if entry.is_empty() {
                    return Err(PlatformParseError::EmptyEntry {
                        flag: PlatformFlag::Comm,
                        entry: k,
                    });
                }
                let (pair, cost) = entry.split_once(':').ok_or_else(|| {
                    PlatformParseError::MalformedCommEntry {
                        token: entry.to_string(),
                        entry: k,
                    }
                })?;
                let (src, dst) =
                    pair.split_once('-')
                        .ok_or_else(|| PlatformParseError::MalformedCommEntry {
                            token: entry.to_string(),
                            entry: k,
                        })?;
                let src: usize = num(src.trim(), PlatformFlag::Comm, "--comm domain index", k)?;
                let dst: usize = num(dst.trim(), PlatformFlag::Comm, "--comm domain index", k)?;
                let cost: f64 = num(cost.trim(), PlatformFlag::Comm, "--comm cost", k)?;
                for index in [src, dst] {
                    if index >= parsed_domains.len() {
                        return Err(PlatformParseError::CommDomainOutOfRange {
                            index,
                            domains: parsed_domains.len(),
                            entry: k,
                        });
                    }
                }
                parsed_comm.push((src, dst, cost));
            }
        }
        Ok(PlatformSpec {
            classes,
            domains: parsed_domains,
            comm: parsed_comm,
        })
    }

    /// Total processor count across all classes.
    pub fn processors(&self) -> u32 {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// Builds the described [`Platform`] (not yet validated).
    pub fn to_platform(&self) -> Platform {
        let mut builder = Platform::builder().classes(self.classes.iter().copied());
        for (capacity, classes) in &self.domains {
            builder = builder.domain(*capacity, classes);
        }
        for &(src, dst, cost) in &self.comm {
            builder = builder.comm_cost(src, dst, cost);
        }
        builder.assemble()
    }

    /// Renders the spec back in the flag syntax (`speeds`, `domains`,
    /// `comm`) suitable for labels and flag round trips. The domains and
    /// comm strings are `None` when the spec declares none.
    pub fn flag_strings(&self) -> (String, Option<String>, Option<String>) {
        let speeds = self
            .classes
            .iter()
            .map(|c| format!("{}x{}", c.count, c.speed))
            .collect::<Vec<_>>()
            .join(",");
        let domains = if self.domains.is_empty() {
            None
        } else {
            Some(
                self.domains
                    .iter()
                    .map(|(cap, ids)| {
                        let ids: Vec<String> = ids.iter().map(|c| c.to_string()).collect();
                        format!("{cap}@{}", ids.join("+"))
                    })
                    .collect::<Vec<_>>()
                    .join(","),
            )
        };
        let comm = if self.comm.is_empty() {
            None
        } else {
            Some(
                self.comm
                    .iter()
                    .map(|(src, dst, cost)| format!("{src}-{dst}:{cost}"))
                    .collect::<Vec<_>>()
                    .join(","),
            )
        };
        (speeds, domains, comm)
    }
}

/// A borrowed scheduling problem: which tree, on which platform, with which
/// sequential sub-algorithm.
#[derive(Clone, Debug)]
pub struct Request<'a> {
    /// The task tree to schedule.
    pub tree: &'a TaskTree,
    /// The target platform.
    pub platform: Platform,
    /// Sequential memory-minimizing sub-algorithm used as the reference
    /// traversal (subtree phases, activation orders, leaf tie-breaks).
    pub seq: SeqAlgo,
    /// Seed for randomized schedulers (the `RandomList` baseline).
    pub seed: u64,
}

impl<'a> Request<'a> {
    /// A request with the default sequential sub-algorithm and seed.
    pub fn new(tree: &'a TaskTree, platform: Platform) -> Request<'a> {
        Request {
            tree,
            platform,
            seq: SeqAlgo::default(),
            seed: 42,
        }
    }

    /// Returns the request with a different sequential sub-algorithm.
    pub fn with_seq(mut self, seq: SeqAlgo) -> Request<'a> {
        self.seq = seq;
        self
    }

    /// Returns the request with a different randomization seed.
    pub fn with_seed(mut self, seed: u64) -> Request<'a> {
        self.seed = seed;
        self
    }

    /// Checks the request invariants shared by every scheduler.
    pub fn validate(&self) -> Result<(), SchedError> {
        self.platform.validate()?;
        if self.tree.is_empty() {
            return Err(SchedError::EmptyTree);
        }
        Ok(())
    }
}

/// An owned, thread-movable scheduling problem: [`Request`] with the tree
/// behind an [`Arc`] instead of a borrow.
///
/// `Request` borrows its tree, which keeps one-shot callers allocation-free
/// but pins the request to the tree's lifetime. Serving engines that move
/// work across worker threads (see the `treesched_serve` crate) need the
/// problem to be `'static` and cheap to clone — cloning an `OwnedRequest`
/// copies an `Arc` pointer, never the tree. Requests built from the same
/// `Arc` share one tree, so per-tree [`Scratch`] caches hit across them.
#[derive(Clone, Debug)]
pub struct OwnedRequest {
    /// The task tree to schedule, shared across clones.
    pub tree: Arc<TaskTree>,
    /// The target platform.
    pub platform: Platform,
    /// Sequential sub-algorithm choice (see [`Request::seq`]).
    pub seq: SeqAlgo,
    /// Seed for randomized schedulers (see [`Request::seed`]).
    pub seed: u64,
}

impl OwnedRequest {
    /// An owned request with the default sequential sub-algorithm and seed.
    pub fn new(tree: Arc<TaskTree>, platform: Platform) -> OwnedRequest {
        OwnedRequest {
            tree,
            platform,
            seq: SeqAlgo::default(),
            seed: 42,
        }
    }

    /// Returns the request with a different sequential sub-algorithm.
    pub fn with_seq(mut self, seq: SeqAlgo) -> OwnedRequest {
        self.seq = seq;
        self
    }

    /// Returns the request with a different randomization seed.
    pub fn with_seed(mut self, seed: u64) -> OwnedRequest {
        self.seed = seed;
        self
    }

    /// The borrowed view every [`Scheduler`] consumes.
    pub fn as_request(&self) -> Request<'_> {
        Request {
            tree: &self.tree,
            platform: self.platform.clone(),
            seq: self.seq,
            seed: self.seed,
        }
    }

    /// Checks the request invariants shared by every scheduler.
    pub fn validate(&self) -> Result<(), SchedError> {
        self.as_request().validate()
    }
}

/// Side observations a scheduler reports alongside its schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Diagnostics {
    /// Peak memory of the reference sequential traversal the scheduler used
    /// (the paper's memory reference when [`Request::seq`] is the default).
    pub seq_peak: Option<f64>,
    /// Forced admissions over the memory cap (memory-capped schedulers
    /// only; `Some(0)` means the cap was honored throughout).
    pub cap_violations: Option<usize>,
}

/// A successful scheduling run: the schedule, its validated evaluation, and
/// diagnostics. The evaluation is always present — every outcome returned
/// through this API has passed [`Schedule::validate_on`] for its request's
/// platform.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The produced schedule.
    pub schedule: Schedule,
    /// Joint makespan/peak-memory evaluation of the schedule (the peak is
    /// platform-global).
    pub eval: EvalResult,
    /// Peak memory per platform memory domain, in [`Platform::domains`]
    /// order. Empty for flat platforms (where the single-domain peak equals
    /// [`EvalResult::peak_memory`]) and for platforms without domains.
    pub domain_peaks: Vec<f64>,
    /// Scheduler-specific observations.
    pub diagnostics: Diagnostics,
}

/// A named scalar measurement extractable from an [`Outcome`] — the metric
/// vocabulary of campaign specs (`--metrics`) and JSON records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Finish time of the schedule.
    Makespan,
    /// Platform-global peak memory.
    PeakMemory,
    /// Sequential work over makespan ([`crate::Schedule::speedup`]).
    Speedup,
    /// Average processor utilization ([`crate::Schedule::utilization`]).
    Utilization,
    /// Forced cap admissions (memory-capped schedulers only).
    CapViolations,
    /// Largest per-domain peak (platforms with memory domains only).
    MaxDomainPeak,
    /// Wall-clock duration of the scheduler call in microseconds. Carried
    /// by the serving layer (median over its timing repetitions), not
    /// extractable from an [`Outcome`] — [`Outcome::metric`] returns
    /// `None` for it.
    TimeUs,
}

impl Metric {
    /// Every metric, in canonical order.
    pub const ALL: [Metric; 7] = [
        Metric::Makespan,
        Metric::PeakMemory,
        Metric::Speedup,
        Metric::Utilization,
        Metric::CapViolations,
        Metric::MaxDomainPeak,
        Metric::TimeUs,
    ];

    /// The stable snake_case name used in flags and JSON records.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Makespan => "makespan",
            Metric::PeakMemory => "peak_memory",
            Metric::Speedup => "speedup",
            Metric::Utilization => "utilization",
            Metric::CapViolations => "cap_violations",
            Metric::MaxDomainPeak => "max_domain_peak",
            Metric::TimeUs => "time_us",
        }
    }

    /// Parses a metric by its [`Metric::name`].
    pub fn by_name(name: &str) -> Option<Metric> {
        Metric::ALL.into_iter().find(|m| m.name() == name)
    }
}

impl Outcome {
    /// Extracts `metric` from this outcome; `None` when the outcome does
    /// not carry it (no cap in force, no memory domains declared).
    pub fn metric(&self, metric: Metric) -> Option<f64> {
        match metric {
            Metric::Makespan => Some(self.eval.makespan),
            Metric::PeakMemory => Some(self.eval.peak_memory),
            Metric::Speedup => Some(self.schedule.speedup()),
            Metric::Utilization => Some(self.schedule.utilization()),
            Metric::CapViolations => self.diagnostics.cap_violations.map(|v| v as f64),
            Metric::MaxDomainPeak => self.domain_peaks.iter().copied().max_by(f64::total_cmp),
            Metric::TimeUs => None, // timing lives in the serving layer
        }
    }
}

// ---------------------------------------------------------------------------
// Scratch
// ---------------------------------------------------------------------------

/// Reusable working memory for [`Scheduler::schedule`] calls.
///
/// A campaign runs thousands of `(tree, p, scheduler)` scenarios; `Scratch`
/// keeps the allocations of one call alive for the next:
///
/// * the **reference traversal** (order, its peak, and node positions) is
///   cached per `(tree, SeqAlgo)` — every scheduler and every processor
///   count on the same tree reuses it;
/// * node **depths** and **weighted depths** are cached per tree;
/// * the encoded **priority keys** and the list scheduler's queues/tables
///   (see [`ListScratch`]) are cleared, not re-allocated.
///
/// Trees are identified by a structural hash (parents + weights), so the
/// caches invalidate automatically when a different tree arrives.
#[derive(Default)]
pub struct Scratch {
    tree_hash: u64,
    traversal_algo: Option<SeqAlgo>,
    order: Vec<NodeId>,
    pos: Vec<usize>,
    seq_peak: f64,
    depths: Vec<u32>,
    wdepths: Vec<f64>,
    subtree_w: Vec<f64>,
    keys: Vec<Key3>,
    speeds: Vec<f64>,
    proc_domains: Vec<u32>,
    domain_caps: Vec<f64>,
    list: ListScratch,
    sub: SubtreeScratch,
    stats: ScratchStats,
}

/// Cache-effectiveness counters of a [`Scratch`], for serving engines and
/// benchmarks that report how much work batching avoided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Reference traversals actually computed (cache misses).
    pub traversal_computes: u64,
    /// Traversal requests answered from the per-tree cache (hits).
    pub traversal_reuses: u64,
    /// Subtrees scheduled through a borrowed view (no clone allocated).
    pub subtree_views: u64,
    /// Subtrees scheduled through a cloned `TaskTree` (the `LiuExact`
    /// fallback — the only remaining clone path).
    pub subtree_clones: u64,
}

impl ScratchStats {
    /// Field-wise sum, for aggregating over a pool of scratches.
    pub fn merged(self, other: ScratchStats) -> ScratchStats {
        ScratchStats {
            traversal_computes: self.traversal_computes + other.traversal_computes,
            traversal_reuses: self.traversal_reuses + other.traversal_reuses,
            subtree_views: self.subtree_views + other.subtree_views,
            subtree_clones: self.subtree_clones + other.subtree_clones,
        }
    }
}

/// Structural hash of a tree: parents and weight bits through splitmix64
/// mixing, never 0.
///
/// [`Scratch`] uses it to invalidate its per-tree caches; sharded serving
/// engines use it to route same-tree requests to the worker whose caches
/// are already warm. Equal trees (same shape and weights) hash equal even
/// when they are distinct allocations.
pub fn tree_fingerprint(tree: &TaskTree) -> u64 {
    #[inline]
    fn mix(h: u64, v: u64) -> u64 {
        let mut z = h ^ v.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    let mut h = mix(0x7ee5_c0de, tree.len() as u64);
    h = mix(h, tree.root().0 as u64);
    for i in tree.ids() {
        let parent = tree.parent(i).map_or(u64::MAX, |p| p.0 as u64);
        h = mix(h, parent);
        h = mix(h, tree.work(i).to_bits());
        h = mix(h, tree.output(i).to_bits());
        h = mix(h, tree.exec(i).to_bits());
    }
    // 0 is the "empty" sentinel of a fresh Scratch
    h | 1
}

impl Scratch {
    /// A fresh scratch with empty caches.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// Invalidates every cache if `tree` differs from the cached one.
    fn sync(&mut self, tree: &TaskTree) {
        let h = tree_fingerprint(tree);
        if self.tree_hash != h {
            self.tree_hash = h;
            self.traversal_algo = None;
            self.order.clear();
            self.pos.clear();
            self.seq_peak = 0.0;
            self.depths.clear();
            self.wdepths.clear();
            self.subtree_w.clear();
        }
    }

    fn ensure_traversal(&mut self, tree: &TaskTree, algo: SeqAlgo) {
        self.sync(tree);
        if self.traversal_algo == Some(algo) {
            self.stats.traversal_reuses += 1;
        } else {
            self.stats.traversal_computes += 1;
            let tr = algo.traversal(tree);
            self.order = tr.order;
            self.seq_peak = tr.peak;
            self.pos.clear();
            self.pos.resize(tree.len(), 0);
            for (k, &v) in self.order.iter().enumerate() {
                self.pos[v.index()] = k;
            }
            self.traversal_algo = Some(algo);
        }
    }

    fn ensure_depths(&mut self, tree: &TaskTree) {
        self.sync(tree);
        if self.depths.len() != tree.len() {
            self.depths = tree.depths();
        }
    }

    fn ensure_wdepths(&mut self, tree: &TaskTree) {
        self.sync(tree);
        if self.wdepths.len() != tree.len() {
            self.wdepths = tree.weighted_depths();
        }
    }

    fn ensure_subtree_work(&mut self, tree: &TaskTree) {
        self.sync(tree);
        if self.subtree_w.len() != tree.len() {
            self.subtree_w = tree.subtree_work();
        }
    }

    /// Cache-effectiveness counters accumulated over the scratch's
    /// lifetime (they survive tree changes; only the caches invalidate).
    pub fn stats(&self) -> ScratchStats {
        ScratchStats {
            subtree_views: self.sub.subtree_views(),
            subtree_clones: self.sub.subtree_clones(),
            ..self.stats
        }
    }

    /// The cached reference traversal of `tree` under `algo`: the execution
    /// order and its sequential peak memory. Computes it on the first call
    /// per `(tree, algo)` and reuses it afterwards. Available to custom
    /// [`Scheduler`] implementations.
    pub fn traversal(&mut self, tree: &TaskTree, algo: SeqAlgo) -> (&[NodeId], f64) {
        self.ensure_traversal(tree, algo);
        (&self.order, self.seq_peak)
    }

    /// Event-based list scheduling with reused buffers: builds one encoded
    /// key per node with `key` and runs [`list_schedule_reusing`].
    /// The building block for custom list schedulers on top of this API.
    ///
    /// # Panics
    ///
    /// Panics when `p == 0` (checked upstream by [`Request::validate`]).
    pub fn run_list_schedule<F: FnMut(NodeId) -> Key3>(
        &mut self,
        tree: &TaskTree,
        p: u32,
        mut key: F,
    ) -> Schedule {
        self.sync(tree);
        self.keys.clear();
        for i in tree.ids() {
            self.keys.push(key(i));
        }
        list_schedule_reusing(tree, p, &self.keys, &mut self.list)
    }

    /// [`Scratch::run_list_schedule`] on an explicit [`Platform`]: on
    /// unit-speed platforms it is exactly the uniform path; on mixed-speed
    /// platforms each ready task goes to the free processor where it
    /// finishes earliest; on platforms with cross-domain communication
    /// costs each task's start is additionally delayed until its children's
    /// outputs have crossed into its processor's domain. Custom
    /// [`Scheduler`] implementations built on this helper handle
    /// heterogeneous and comm-bearing requests for free.
    ///
    /// # Panics
    ///
    /// Panics when the platform has no processors (checked upstream by
    /// [`Request::validate`]).
    pub fn run_list_schedule_on<F: FnMut(NodeId) -> Key3>(
        &mut self,
        tree: &TaskTree,
        platform: &Platform,
        mut key: F,
    ) -> Schedule {
        self.sync(tree);
        self.keys.clear();
        for i in tree.ids() {
            self.keys.push(key(i));
        }
        if platform.has_comm() {
            platform.fill_domains(&mut self.proc_domains);
            let comm = CommCosts {
                domain_of: &self.proc_domains,
                cost: platform.comm(),
                domains: platform.domains().len(),
            };
            if platform.is_unit_speed() {
                let speeds = Speeds::Unit(platform.processors());
                list_schedule_with_comm(tree, speeds, &self.keys, &comm, &mut self.list)
            } else {
                platform.fill_speeds(&mut self.speeds);
                list_schedule_with_comm(
                    tree,
                    Speeds::Per(&self.speeds),
                    &self.keys,
                    &comm,
                    &mut self.list,
                )
            }
        } else if platform.is_unit_speed() {
            list_schedule_reusing(tree, platform.processors(), &self.keys, &mut self.list)
        } else {
            platform.fill_speeds(&mut self.speeds);
            list_schedule_with_speeds(tree, Speeds::Per(&self.speeds), &self.keys, &mut self.list)
        }
    }
}

// ---------------------------------------------------------------------------
// The Scheduler trait
// ---------------------------------------------------------------------------

/// A scheduling algorithm for tree-shaped task graphs on a [`Platform`]:
/// anything that turns a [`Request`] into an [`Outcome`]. Schedulers that
/// cannot handle a platform shape (mixed speeds, split memory) must return
/// [`SchedError::UnsupportedPlatform`] rather than mis-schedule.
///
/// Implementations must be deterministic for a given request (randomized
/// schedulers draw from [`Request::seed`]) and must return schedules that
/// pass [`Schedule::validate_on`] for the request's platform — the
/// built-ins funnel their result through [`try_evaluate_on`], surfacing
/// internal bugs as [`SchedError::InvalidSchedule`] instead of panicking.
pub trait Scheduler: Send + Sync {
    /// Canonical name (stable across releases; the registry key).
    fn name(&self) -> &'static str;

    /// One-line human description for listings.
    fn description(&self) -> &'static str {
        ""
    }

    /// Builds and evaluates a schedule for `req`, using `scratch` for
    /// reusable working memory.
    fn schedule(&self, req: &Request<'_>, scratch: &mut Scratch) -> Result<Outcome, SchedError>;

    /// Convenience: [`Scheduler::schedule`] with a throwaway scratch.
    fn schedule_once(&self, req: &Request<'_>) -> Result<Outcome, SchedError> {
        self.schedule(req, &mut Scratch::new())
    }
}

/// Validates + evaluates `schedule` on the request's platform and bundles
/// the outcome. Per-domain peaks are computed only for non-flat platforms —
/// on a flat platform the single-domain peak is the global peak already.
fn finish(
    name: &str,
    req: &Request<'_>,
    schedule: Schedule,
    diagnostics: Diagnostics,
) -> Result<Outcome, SchedError> {
    let (tree, platform) = (req.tree, &req.platform);
    let eval = try_evaluate_on(tree, &schedule, platform).map_err(|error| {
        SchedError::InvalidSchedule {
            scheduler: name.to_string(),
            error,
        }
    })?;
    let domain_peaks = if platform.is_flat() {
        Vec::new()
    } else {
        schedule.domain_peaks(tree, platform)
    };
    Ok(Outcome {
        schedule,
        eval,
        domain_peaks,
        diagnostics,
    })
}

/// Divides every placement instant by `speed`, turning a unit-time schedule
/// into its equal-speed counterpart (a no-op at speed `1.0`, so uniform
/// platforms stay bit-identical).
fn scale_times(schedule: &mut Schedule, speed: f64) {
    if speed != 1.0 {
        for pl in &mut schedule.placements {
            pl.start /= speed;
            pl.finish /= speed;
        }
    }
}

// ---------------------------------------------------------------------------
// Built-in scheduler wrappers
// ---------------------------------------------------------------------------

/// `ParSubtrees` / `ParSubtreesOptim` (paper §5.1).
struct ParSubtreesSched {
    optim: bool,
}

impl Scheduler for ParSubtreesSched {
    fn name(&self) -> &'static str {
        if self.optim {
            "ParSubtreesOptim"
        } else {
            "ParSubtrees"
        }
    }

    fn description(&self) -> &'static str {
        if self.optim {
            "ParSubtrees with LPT allocation of all subtrees; better makespan, slightly more memory"
        } else {
            "concurrent subtrees + sequential remainder; memory-focused, M <= (p+1)*M_seq"
        }
    }

    fn schedule(&self, req: &Request<'_>, scratch: &mut Scratch) -> Result<Outcome, SchedError> {
        req.validate()?;
        let (tree, p) = (req.tree, req.platform.processors());
        // Subtree placement pins every cross-subtree edge at a fixed
        // processor pairing chosen before any comm cost is known; only the
        // list schedulers model transfer delays.
        if req.platform.has_comm() {
            return Err(SchedError::UnsupportedPlatform {
                scheduler: self.name(),
                reason: "communication costs need a comm-aware list scheduler",
            });
        }
        scratch.ensure_traversal(tree, req.seq);
        scratch.ensure_subtree_work(tree);
        // Equal-speed platforms stay on the historical unit-time route with
        // every instant rescaled (bit-identical at speed 1.0); mixed speeds
        // take the speed-aware placement (split still in work units,
        // heaviest subtree to the fastest processor / finish-time LPT).
        let schedule = match req.platform.uniform_speed() {
            Some(speed) => {
                let mut schedule = if self.optim {
                    par_subtrees_optim_with_order_scratch(
                        tree,
                        p,
                        req.seq,
                        &scratch.order,
                        &scratch.subtree_w,
                        &mut scratch.sub,
                    )
                } else {
                    par_subtrees_with_order_scratch(
                        tree,
                        p,
                        req.seq,
                        &scratch.order,
                        &scratch.subtree_w,
                        &mut scratch.sub,
                    )
                };
                scale_times(&mut schedule, speed);
                schedule
            }
            None => {
                req.platform.fill_speeds(&mut scratch.speeds);
                if self.optim {
                    par_subtrees_optim_hetero_with_order_scratch(
                        tree,
                        &scratch.speeds,
                        req.seq,
                        &scratch.order,
                        &scratch.subtree_w,
                        &mut scratch.sub,
                    )
                } else {
                    par_subtrees_hetero_with_order_scratch(
                        tree,
                        &scratch.speeds,
                        req.seq,
                        &scratch.order,
                        &scratch.subtree_w,
                        &mut scratch.sub,
                    )
                }
            }
        };
        let diag = Diagnostics {
            seq_peak: Some(scratch.seq_peak),
            cap_violations: None,
        };
        finish(self.name(), req, schedule, diag)
    }
}

/// Which priority scheme a [`ListSched`] uses.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ListKind {
    /// `ParInnerFirst` (paper §5.2).
    InnerFirst,
    /// `ParDeepestFirst` (paper §5.3).
    DeepestFirst,
    /// Critical-path baseline (no inner/leaf preference, id ties).
    Cp,
    /// FIFO/no-priority baseline.
    Fifo,
    /// Seeded random-priority baseline.
    Random,
}

struct ListSched {
    kind: ListKind,
}

impl Scheduler for ListSched {
    fn name(&self) -> &'static str {
        match self.kind {
            ListKind::InnerFirst => "ParInnerFirst",
            ListKind::DeepestFirst => "ParDeepestFirst",
            ListKind::Cp => "CpList",
            ListKind::Fifo => "FifoList",
            ListKind::Random => "RandomList",
        }
    }

    fn description(&self) -> &'static str {
        match self.kind {
            ListKind::InnerFirst => {
                "list scheduling, inner nodes first then postorder leaves; balanced"
            }
            ListKind::DeepestFirst => "list scheduling along the critical path; makespan-focused",
            ListKind::Cp => "baseline: critical-path priority, no paper tie-breaks",
            ListKind::Fifo => "baseline: ready tasks in id order, no priority",
            ListKind::Random => "baseline: seeded random priorities",
        }
    }

    fn schedule(&self, req: &Request<'_>, scratch: &mut Scratch) -> Result<Outcome, SchedError> {
        req.validate()?;
        let (tree, p) = (req.tree, req.platform.processors());
        scratch.ensure_traversal(tree, req.seq);
        match self.kind {
            ListKind::InnerFirst => scratch.ensure_depths(tree),
            ListKind::DeepestFirst | ListKind::Cp => scratch.ensure_wdepths(tree),
            ListKind::Fifo | ListKind::Random => {}
        }
        let Scratch {
            pos,
            depths,
            wdepths,
            keys,
            speeds,
            proc_domains,
            list,
            seq_peak,
            ..
        } = scratch;
        keys.clear();
        match self.kind {
            ListKind::InnerFirst => keys.extend(tree.ids().map(|i| {
                if tree.is_leaf(i) {
                    (1u64, pos[i.index()] as u64, 0u64)
                } else {
                    (
                        0u64,
                        (u32::MAX - depths[i.index()]) as u64,
                        pos[i.index()] as u64,
                    )
                }
            })),
            ListKind::DeepestFirst => keys.extend(tree.ids().map(|i| {
                (
                    key_from_f64(-wdepths[i.index()]),
                    u64::from(tree.is_leaf(i)),
                    pos[i.index()] as u64,
                )
            })),
            ListKind::Cp => keys.extend(
                tree.ids()
                    .map(|i| (key_from_f64(-wdepths[i.index()]), i.0 as u64, 0u64)),
            ),
            ListKind::Fifo => keys.extend(tree.ids().map(|i| (i.0 as u64, 0u64, 0u64))),
            ListKind::Random => keys.extend(
                tree.ids()
                    .map(|i| (splitmix_key(req.seed, i.0), i.0 as u64, 0u64)),
            ),
        }
        // list scheduling is natively heterogeneous: the priority queue is
        // speed-independent and each ready task takes the free processor
        // where it finishes earliest. With cross-domain communication costs
        // the pick additionally delays the task's start until every child's
        // output has crossed into the chosen processor's domain.
        let schedule = if req.platform.has_comm() {
            req.platform.fill_domains(proc_domains);
            let comm = CommCosts {
                domain_of: proc_domains,
                cost: req.platform.comm(),
                domains: req.platform.domains().len(),
            };
            if req.platform.is_unit_speed() {
                list_schedule_with_comm(tree, Speeds::Unit(p), keys, &comm, list)
            } else {
                req.platform.fill_speeds(speeds);
                list_schedule_with_comm(tree, Speeds::Per(speeds), keys, &comm, list)
            }
        } else if req.platform.is_unit_speed() {
            list_schedule_reusing(tree, p, keys, list)
        } else {
            req.platform.fill_speeds(speeds);
            list_schedule_with_speeds(tree, Speeds::Per(speeds), keys, list)
        };
        let diag = Diagnostics {
            seq_peak: Some(*seq_peak),
            cap_violations: None,
        };
        finish(self.name(), req, schedule, diag)
    }
}

/// Memory-capped list scheduling (paper §7 future work) under a fixed
/// admission policy. Requires [`Platform::memory_cap`].
struct MemBoundedSched {
    policy: Admission,
}

impl Scheduler for MemBoundedSched {
    fn name(&self) -> &'static str {
        match self.policy {
            Admission::SequentialOrder => "MemBoundedSeq",
            Admission::Greedy => "MemBoundedGreedy",
        }
    }

    fn description(&self) -> &'static str {
        match self.policy {
            Admission::SequentialOrder => {
                "memory-capped, sequential activation order; never exceeds a feasible cap"
            }
            Admission::Greedy => {
                "memory-capped, greedy admission; more parallel but may violate the cap"
            }
        }
    }

    fn schedule(&self, req: &Request<'_>, scratch: &mut Scratch) -> Result<Outcome, SchedError> {
        req.validate()?;
        let (tree, p) = (req.tree, req.platform.processors());
        // admission reasons about where memory lives, not about when
        // transfers complete; only the list schedulers model comm delays
        if req.platform.has_comm() {
            return Err(SchedError::UnsupportedPlatform {
                scheduler: self.name(),
                reason: "communication costs need a comm-aware list scheduler",
            });
        }
        // a cap (shared or per-domain) is what this scheduler exists to
        // enforce — a platform without any domain has nothing to enforce
        if req.platform.domains().is_empty() {
            return Err(SchedError::MissingMemoryCap {
                scheduler: self.name(),
            });
        }
        scratch.ensure_traversal(tree, req.seq);
        let uniform = req.platform.uniform_speed();
        let run = match (uniform, req.platform.memory_cap()) {
            // the paper's shape — one shared cap, equal speeds — stays on
            // the historical shared-counter path, rescaled uniformly so the
            // admission event order is preserved (bit-identical at 1.0)
            (Some(speed), Some(cap)) => {
                let mut run = mem_bounded_schedule(tree, p, &scratch.order, cap, self.policy);
                scale_times(&mut run.schedule, speed);
                run
            }
            // mixed speeds and/or genuinely split memory: per-domain
            // resident counters enforce each domain's capacity during
            // admission, per-processor speeds set the durations
            _ => {
                req.platform.fill_speeds(&mut scratch.speeds);
                req.platform.fill_domains(&mut scratch.proc_domains);
                scratch.domain_caps.clear();
                scratch
                    .domain_caps
                    .extend(req.platform.domains().iter().map(|d| d.capacity));
                let ctx = DomainCtx {
                    speeds: &scratch.speeds,
                    domain_of: &scratch.proc_domains,
                    caps: &scratch.domain_caps,
                };
                mem_bounded_schedule_domains(tree, &ctx, &scratch.order, self.policy)
            }
        };
        let diag = Diagnostics {
            seq_peak: Some(scratch.seq_peak),
            cap_violations: Some(run.violations),
        };
        finish(self.name(), req, run.schedule, diag)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// One registered scheduler: the implementation, its aliases, and whether
/// it belongs to the paper's comparison campaign (Table 1, Figures 6–8).
pub struct RegistryEntry {
    scheduler: Box<dyn Scheduler>,
    aliases: Vec<&'static str>,
    campaign: bool,
}

impl RegistryEntry {
    /// The scheduler.
    pub fn scheduler(&self) -> &dyn Scheduler {
        self.scheduler.as_ref()
    }

    /// Canonical name.
    pub fn name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// One-line description.
    pub fn description(&self) -> &'static str {
        self.scheduler.description()
    }

    /// Accepted aliases (canonical name excluded).
    pub fn aliases(&self) -> &[&'static str] {
        &self.aliases
    }

    /// Whether the scheduler participates in the default experiment
    /// campaign.
    pub fn in_campaign(&self) -> bool {
        self.campaign
    }
}

/// Name-based scheduler lookup: canonical names and aliases, matched
/// case-insensitively. [`SchedulerRegistry::standard`] holds every built-in
/// scheduler; front-ends resolve user input exclusively through this.
#[derive(Default)]
pub struct SchedulerRegistry {
    entries: Vec<RegistryEntry>,
}

impl SchedulerRegistry {
    /// An empty registry.
    pub fn new() -> SchedulerRegistry {
        SchedulerRegistry::default()
    }

    /// The built-in registry: the paper's four heuristics (campaign
    /// members), the three textbook baselines, and the two memory-capped
    /// wrappers.
    pub fn standard() -> SchedulerRegistry {
        let mut r = SchedulerRegistry::new();
        let must = |res: Result<(), SchedError>| res.expect("built-in names are unique");
        must(r.register(
            Box::new(ParSubtreesSched { optim: false }),
            &["subtrees"],
            true,
        ));
        must(r.register(
            Box::new(ParSubtreesSched { optim: true }),
            &["subtrees-optim", "optim"],
            true,
        ));
        must(r.register(
            Box::new(ListSched {
                kind: ListKind::InnerFirst,
            }),
            &["inner", "inner-first"],
            true,
        ));
        must(r.register(
            Box::new(ListSched {
                kind: ListKind::DeepestFirst,
            }),
            &["deepest", "deepest-first"],
            true,
        ));
        must(r.register(
            Box::new(ListSched { kind: ListKind::Cp }),
            &["cp", "cp-list"],
            false,
        ));
        must(r.register(
            Box::new(ListSched {
                kind: ListKind::Fifo,
            }),
            &["fifo", "fifo-list"],
            false,
        ));
        must(r.register(
            Box::new(ListSched {
                kind: ListKind::Random,
            }),
            &["random", "random-list"],
            false,
        ));
        must(r.register(
            Box::new(MemBoundedSched {
                policy: Admission::SequentialOrder,
            }),
            &["membound", "capped", "mem-seq"],
            false,
        ));
        must(r.register(
            Box::new(MemBoundedSched {
                policy: Admission::Greedy,
            }),
            &["mem-greedy", "greedy-capped"],
            false,
        ));
        r
    }

    /// Registers a scheduler under its canonical name plus `aliases`.
    /// `campaign` adds it to [`SchedulerRegistry::campaign`], i.e. the
    /// default experiment sweep.
    pub fn register(
        &mut self,
        scheduler: Box<dyn Scheduler>,
        aliases: &[&'static str],
        campaign: bool,
    ) -> Result<(), SchedError> {
        for name in std::iter::once(scheduler.name()).chain(aliases.iter().copied()) {
            if self.resolve(name).is_ok() {
                return Err(SchedError::DuplicateName {
                    name: name.to_string(),
                });
            }
        }
        self.entries.push(RegistryEntry {
            scheduler,
            aliases: aliases.to_vec(),
            campaign,
        });
        Ok(())
    }

    /// Resolves `name` (canonical or alias, case-insensitive) to its entry.
    pub fn resolve(&self, name: &str) -> Result<&RegistryEntry, SchedError> {
        self.entries
            .iter()
            .find(|e| {
                e.name().eq_ignore_ascii_case(name)
                    || e.aliases.iter().any(|a| a.eq_ignore_ascii_case(name))
            })
            .ok_or_else(|| SchedError::UnknownScheduler {
                name: name.to_string(),
                known: self.names().iter().map(|s| s.to_string()).collect(),
            })
    }

    /// Resolves `name` to its scheduler.
    pub fn get(&self, name: &str) -> Result<&dyn Scheduler, SchedError> {
        Ok(self.resolve(name)?.scheduler())
    }

    /// All entries, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &RegistryEntry> {
        self.entries.iter()
    }

    /// The campaign members (the schedulers compared in Table 1 and
    /// Figures 6–8), in registration order.
    pub fn campaign(&self) -> impl Iterator<Item = &RegistryEntry> {
        self.entries.iter().filter(|e| e.campaign)
    }

    /// Canonical names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{cp_list_schedule, fifo_list_schedule, random_list_schedule};
    use crate::heuristics::Heuristic;
    use crate::schedule::evaluate;
    use treesched_model::TaskTree;

    fn sample() -> TaskTree {
        TaskTree::complete(3, 4, 1.0, 2.0, 0.5)
    }

    #[test]
    fn platform_spec_parses_the_flag_syntax() {
        let spec = PlatformSpec::parse_flags("2x2.0,2x1.0", Some("64@0,32@1"), None).unwrap();
        assert_eq!(
            spec.classes,
            vec![ProcClass::new(2, 2.0), ProcClass::new(2, 1.0)]
        );
        assert_eq!(spec.domains, vec![(64.0, vec![0]), (32.0, vec![1])]);
        assert_eq!(spec.processors(), 4);
        let platform = spec.to_platform();
        assert!(platform.validate().is_ok());
        assert_eq!(platform.domains().len(), 2);
        // a bare SPEED is one processor; a bare CAP covers every class
        let spec = PlatformSpec::parse_flags("2.0, 1x1.0", Some("100"), None).unwrap();
        assert_eq!(
            spec.classes,
            vec![ProcClass::new(1, 2.0), ProcClass::new(1, 1.0)]
        );
        assert_eq!(spec.domains, vec![(100.0, vec![0, 1])]);
        assert_eq!(spec.to_platform().memory_cap(), Some(100.0));
        // `+`-joined class lists
        let spec = PlatformSpec::parse_flags("1x2.0,1x1.0,1x1.0", Some("8@1+2"), None).unwrap();
        assert_eq!(spec.domains, vec![(8.0, vec![1, 2])]);
        // comm entries are symmetric in the built matrix
        let spec =
            PlatformSpec::parse_flags("2x2.0,2x1.0", Some("64@0,32@1"), Some("0-1:0.5")).unwrap();
        assert_eq!(spec.comm, vec![(0, 1, 0.5)]);
        let platform = spec.to_platform();
        assert!(platform.validate().is_ok());
        assert_eq!(platform.comm(), &[0.0, 0.5, 0.5, 0.0]);
        assert_eq!(platform.comm_cost(1, 0), 0.5);
        assert_eq!(platform.comm_cost(0, 0), 0.0);
        // flat spelling matches Platform::new bit for bit
        assert_eq!(PlatformSpec::flat(4).to_platform(), Platform::new(4));
    }

    #[test]
    fn platform_spec_flag_strings_round_trip() {
        for (speeds, domains, comm) in [
            ("4x1", None, None),
            ("2x2,2x1", None, None),
            ("2x2,2x1", Some("64@0,32@1"), None),
            ("1x1.5,3x0.5", Some("100@0+1"), None),
            ("2x2,2x1", Some("64@0,32@1"), Some("0-1:2")),
            ("1x2,1x1,1x1", Some("8@0,8@1,8@2"), Some("0-1:0.5,1-2:2")),
        ] {
            let spec = PlatformSpec::parse_flags(speeds, domains, comm).unwrap();
            let (s, d, c) = spec.flag_strings();
            assert_eq!(s, speeds);
            assert_eq!(d.as_deref(), domains);
            assert_eq!(c.as_deref(), comm);
            assert_eq!(
                PlatformSpec::parse_flags(&s, d.as_deref(), c.as_deref()).unwrap(),
                spec,
                "{speeds} {domains:?} {comm:?}"
            );
        }
    }

    #[test]
    fn platform_spec_rejects_malformed_flags() {
        for (speeds, domains, comm, needle) in [
            ("", None, None, "--speeds"),
            ("2x", None, None, "--speeds speed"),
            ("x2", None, None, "--speeds count"),
            ("fast", None, None, "--speeds speed"),
            ("2x1.0,", None, None, "--speeds"),
            ("2.5x1.0", None, None, "--speeds count"),
            ("2x1.0", Some(""), None, "--domains"),
            ("2x1.0", Some("abc"), None, "--domains capacity"),
            ("2x1.0", Some("5@"), None, "--domains class index"),
            ("2x1.0", Some("5@a"), None, "--domains class index"),
            ("2x1.0", Some("5@0+"), None, "--domains class index"),
            ("2x1.0", Some("5@-1"), None, "--domains class index"),
            ("2x1.0", Some("5@0,"), None, "--domains"),
            ("2x1,2x1", Some("8@0,8@1"), Some(""), "--comm"),
            ("2x1,2x1", Some("8@0,8@1"), Some("0-1"), "want SRC-DST:COST"),
            ("2x1,2x1", Some("8@0,8@1"), Some("0:1"), "want SRC-DST:COST"),
            (
                "2x1,2x1",
                Some("8@0,8@1"),
                Some("a-1:2"),
                "--comm domain index",
            ),
            ("2x1,2x1", Some("8@0,8@1"), Some("0-1:x"), "--comm cost"),
            ("2x1,2x1", Some("8@0,8@1"), Some("0-2:1"), "only 2 domains"),
            ("2x1", None, Some("0-1:1"), "only 0 domains"),
        ] {
            let err = PlatformSpec::parse_flags(speeds, domains, comm).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{speeds} {domains:?} {comm:?}: expected `{needle}` in `{err}`"
            );
        }
        // structural junk parses but fails Platform::validate, typed
        let spec = PlatformSpec::parse_flags("2x0", None, None).unwrap();
        assert!(matches!(
            spec.to_platform().validate(),
            Err(SchedError::InvalidSpeed { .. })
        ));
        let spec = PlatformSpec::parse_flags("2x1.0", Some("5@7"), None).unwrap();
        assert!(matches!(
            spec.to_platform().validate(),
            Err(SchedError::UnknownClass { .. })
        ));
    }

    #[test]
    fn metrics_extract_from_outcomes_and_round_trip_names() {
        for m in Metric::ALL {
            assert_eq!(Metric::by_name(m.name()), Some(m));
        }
        assert_eq!(Metric::by_name("nosuch"), None);
        let tree = sample();
        let registry = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        let req = Request::new(&tree, Platform::new(4));
        let out = registry
            .get("deepest")
            .unwrap()
            .schedule(&req, &mut scratch)
            .unwrap();
        assert_eq!(out.metric(Metric::Makespan), Some(out.eval.makespan));
        assert_eq!(out.metric(Metric::PeakMemory), Some(out.eval.peak_memory));
        assert_eq!(out.metric(Metric::Speedup), Some(out.schedule.speedup()));
        assert_eq!(
            out.metric(Metric::Utilization),
            Some(out.schedule.utilization())
        );
        // uncapped, domain-less run: the conditional metrics are absent
        assert_eq!(out.metric(Metric::CapViolations), None);
        assert_eq!(out.metric(Metric::MaxDomainPeak), None);
        // capped run fills them in
        let req = Request::new(&tree, Platform::new(4).with_memory_cap(1e9));
        let out = registry
            .get("membound")
            .unwrap()
            .schedule(&req, &mut scratch)
            .unwrap();
        assert_eq!(out.metric(Metric::CapViolations), Some(0.0));
    }

    #[test]
    fn registry_resolves_names_and_aliases_case_insensitively() {
        let r = SchedulerRegistry::standard();
        for (spelling, canonical) in [
            ("ParSubtrees", "ParSubtrees"),
            ("subtrees", "ParSubtrees"),
            ("SUBTREES-OPTIM", "ParSubtreesOptim"),
            ("inner", "ParInnerFirst"),
            ("Deepest", "ParDeepestFirst"),
            ("cp", "CpList"),
            ("fifo", "FifoList"),
            ("random", "RandomList"),
            ("membound", "MemBoundedSeq"),
            ("MEM-GREEDY", "MemBoundedGreedy"),
        ] {
            assert_eq!(r.get(spelling).unwrap().name(), canonical, "{spelling}");
        }
        assert!(matches!(
            r.get("nosuch"),
            Err(SchedError::UnknownScheduler { .. })
        ));
    }

    #[test]
    fn registry_round_trips_every_name_and_alias() {
        let r = SchedulerRegistry::standard();
        assert_eq!(r.names().len(), 9);
        for e in r.iter() {
            assert_eq!(r.get(e.name()).unwrap().name(), e.name());
            for a in e.aliases() {
                assert_eq!(r.get(a).unwrap().name(), e.name(), "alias {a}");
            }
            assert!(!e.description().is_empty(), "{}", e.name());
        }
    }

    #[test]
    fn campaign_is_the_four_paper_heuristics() {
        let r = SchedulerRegistry::standard();
        let names: Vec<&str> = r.campaign().map(|e| e.name()).collect();
        assert_eq!(
            names,
            [
                "ParSubtrees",
                "ParSubtreesOptim",
                "ParInnerFirst",
                "ParDeepestFirst"
            ]
        );
        assert_eq!(
            names,
            Heuristic::ALL.map(|h| h.name()),
            "campaign mirrors Heuristic::ALL"
        );
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        struct Dup;
        impl Scheduler for Dup {
            fn name(&self) -> &'static str {
                "ParSubtrees"
            }
            fn schedule(
                &self,
                _req: &Request<'_>,
                _s: &mut Scratch,
            ) -> Result<Outcome, SchedError> {
                unreachable!()
            }
        }
        let mut r = SchedulerRegistry::standard();
        assert!(matches!(
            r.register(Box::new(Dup), &[], false),
            Err(SchedError::DuplicateName { .. })
        ));
        struct AliasClash;
        impl Scheduler for AliasClash {
            fn name(&self) -> &'static str {
                "Fresh"
            }
            fn schedule(
                &self,
                _req: &Request<'_>,
                _s: &mut Scratch,
            ) -> Result<Outcome, SchedError> {
                unreachable!()
            }
        }
        assert!(matches!(
            r.register(Box::new(AliasClash), &["inner"], false),
            Err(SchedError::DuplicateName { .. })
        ));
    }

    #[test]
    fn api_heuristics_match_legacy_functions() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        for p in [1u32, 2, 5] {
            let req = Request::new(&t, Platform::new(p));
            for h in Heuristic::ALL {
                let legacy = h.schedule(&t, p);
                let out = r
                    .get(h.name())
                    .unwrap()
                    .schedule(&req, &mut scratch)
                    .unwrap();
                assert_eq!(out.schedule, legacy, "{h} p={p}");
                assert_eq!(out.eval, evaluate(&t, &legacy));
            }
        }
    }

    #[test]
    fn api_baselines_match_legacy_functions() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        let p = 3;
        let req = Request::new(&t, Platform::new(p)).with_seed(7);
        let pairs: [(&str, Schedule); 3] = [
            ("cp", cp_list_schedule(&t, p)),
            ("fifo", fifo_list_schedule(&t, p)),
            ("random", random_list_schedule(&t, p, 7)),
        ];
        for (name, legacy) in pairs {
            let out = r.get(name).unwrap().schedule(&req, &mut scratch).unwrap();
            assert_eq!(out.schedule, legacy, "{name}");
        }
    }

    #[test]
    fn scratch_survives_tree_and_algo_changes() {
        // interleave trees and algorithms through one scratch: cached
        // traversals must invalidate correctly (wrong caches would produce
        // invalid schedules, caught by the outcome evaluation)
        let trees = [
            TaskTree::fork(9, 1.0, 1.0, 0.0),
            TaskTree::complete(2, 5, 1.0, 1.0, 0.0),
            TaskTree::chain(12, 2.0, 1.0, 0.5),
        ];
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        for algo in [SeqAlgo::BestPostorder, SeqAlgo::LiuExact] {
            for t in &trees {
                for e in r.iter() {
                    let req =
                        Request::new(t, Platform::new(4).with_memory_cap(1e12)).with_seq(algo);
                    let out = e.scheduler().schedule(&req, &mut scratch).unwrap();
                    assert!(out.schedule.validate(t).is_ok(), "{}", e.name());
                    assert!(out.eval.makespan > 0.0);
                }
            }
        }
    }

    #[test]
    fn owned_request_matches_borrowed_and_moves_across_threads() {
        let tree = Arc::new(sample());
        let r = SchedulerRegistry::standard();
        let owned = OwnedRequest::new(Arc::clone(&tree), Platform::new(3)).with_seed(7);
        let borrowed = Request::new(&tree, Platform::new(3)).with_seed(7);
        let mut scratch = Scratch::new();
        let a = r
            .get("deepest")
            .unwrap()
            .schedule(&owned.as_request(), &mut scratch)
            .unwrap();
        let b = r
            .get("deepest")
            .unwrap()
            .schedule(&borrowed, &mut scratch)
            .unwrap();
        assert_eq!(a.schedule, b.schedule);
        // the whole point of the owned variant: 'static, Send, cheap clone
        let clone = owned.clone();
        let handle = std::thread::spawn(move || {
            let reg = SchedulerRegistry::standard();
            reg.get("deepest")
                .unwrap()
                .schedule(&clone.as_request(), &mut Scratch::new())
                .unwrap()
                .eval
        });
        assert_eq!(handle.join().unwrap(), a.eval);
        assert!(owned.validate().is_ok());
        assert_eq!(
            OwnedRequest::new(tree, Platform::new(0)).validate(),
            Err(SchedError::NoProcessors)
        );
    }

    #[test]
    fn fingerprint_distinguishes_structure_not_allocation() {
        let a = sample();
        let b = sample();
        assert_eq!(tree_fingerprint(&a), tree_fingerprint(&b));
        assert_ne!(
            tree_fingerprint(&a),
            tree_fingerprint(&TaskTree::chain(5, 1.0, 1.0, 0.0))
        );
        assert_ne!(tree_fingerprint(&a), 0, "0 is the empty-scratch sentinel");
    }

    #[test]
    fn scratch_counts_traversal_reuse() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        let req = Request::new(&t, Platform::new(2));
        for _ in 0..3 {
            r.get("deepest")
                .unwrap()
                .schedule(&req, &mut scratch)
                .unwrap();
        }
        let s = scratch.stats();
        assert_eq!(s.traversal_computes, 1);
        assert_eq!(s.traversal_reuses, 2);
        // a different tree misses once, then hits again
        let t2 = TaskTree::chain(6, 1.0, 1.0, 0.0);
        let req2 = Request::new(&t2, Platform::new(2));
        r.get("deepest")
            .unwrap()
            .schedule(&req2, &mut scratch)
            .unwrap();
        r.get("inner")
            .unwrap()
            .schedule(&req2, &mut scratch)
            .unwrap();
        let s2 = scratch.stats();
        assert_eq!(s2.traversal_computes, 2);
        assert_eq!(s2.traversal_reuses, 3);
        assert_eq!(s.merged(s), s.merged(s));
    }

    #[test]
    fn typed_errors_replace_panics() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        // p == 0
        let req = Request::new(&t, Platform::new(0));
        for e in r.iter() {
            assert_eq!(
                e.scheduler().schedule(&req, &mut scratch).unwrap_err(),
                SchedError::NoProcessors,
                "{}",
                e.name()
            );
        }
        // capped scheduler without a cap
        let req = Request::new(&t, Platform::new(2));
        assert_eq!(
            r.get("membound")
                .unwrap()
                .schedule(&req, &mut scratch)
                .unwrap_err(),
            SchedError::MissingMemoryCap {
                scheduler: "MemBoundedSeq"
            }
        );
        // NaN cap
        let req = Request::new(&t, Platform::new(2).with_memory_cap(f64::NAN));
        assert!(matches!(
            r.get("membound").unwrap().schedule(&req, &mut scratch),
            Err(SchedError::InvalidMemoryCap { .. })
        ));
    }

    #[test]
    fn membound_outcome_reports_violations() {
        let t = TaskTree::complete(2, 3, 1.0, 5.0, 2.0);
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        // infeasible cap: completes with violations counted
        let req = Request::new(&t, Platform::new(2).with_memory_cap(0.5));
        let out = r
            .get("membound")
            .unwrap()
            .schedule(&req, &mut scratch)
            .unwrap();
        assert!(out.diagnostics.cap_violations.unwrap() > 0);
        // generous cap: zero violations
        let req = Request::new(&t, Platform::new(2).with_memory_cap(1e12));
        let out = r
            .get("mem-greedy")
            .unwrap()
            .schedule(&req, &mut scratch)
            .unwrap();
        assert_eq!(out.diagnostics.cap_violations, Some(0));
    }

    #[test]
    fn diagnostics_carry_the_memory_reference() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        let req = Request::new(&t, Platform::new(4));
        let out = r
            .get("subtrees")
            .unwrap()
            .schedule(&req, &mut scratch)
            .unwrap();
        assert_eq!(
            out.diagnostics.seq_peak,
            Some(crate::bounds::memory_reference(&t))
        );
    }

    fn fast_slow() -> Platform {
        Platform::heterogeneous(vec![ProcClass::new(2, 2.0), ProcClass::new(2, 1.0)])
    }

    #[test]
    fn platform_accessors_describe_classes_and_domains() {
        let flat = Platform::new(4);
        assert_eq!(flat.processors(), 4);
        assert!(flat.is_flat() && flat.is_unit_speed() && flat.has_shared_memory());
        assert_eq!(flat.memory_cap(), None);
        assert_eq!(flat.uniform_speed(), Some(1.0));

        let capped = Platform::new(3).with_memory_cap(7.5);
        assert_eq!(capped.memory_cap(), Some(7.5));
        assert!(capped.is_flat());
        // re-capping replaces, matching the old `memory_cap = Some(..)`
        assert_eq!(capped.clone().with_memory_cap(9.0).memory_cap(), Some(9.0));

        let het = fast_slow().with_domain(64.0, &[0]).with_domain(32.0, &[1]);
        assert_eq!(het.processors(), 4);
        assert!(!het.is_flat() && !het.is_unit_speed() && !het.has_shared_memory());
        assert_eq!(het.memory_cap(), None, "two domains are not one cap");
        assert_eq!(het.uniform_speed(), None);
        assert_eq!(
            (0..4).map(|p| het.speed_of(p)).collect::<Vec<_>>(),
            [2.0, 2.0, 1.0, 1.0]
        );
        assert_eq!(
            (0..4).map(|p| het.class_of(p)).collect::<Vec<_>>(),
            [0, 0, 1, 1]
        );
        assert_eq!(
            (0..4).map(|p| het.domain_of(p)).collect::<Vec<_>>(),
            [Some(0), Some(0), Some(1), Some(1)]
        );
        let mut speeds = Vec::new();
        het.fill_speeds(&mut speeds);
        assert_eq!(speeds, [2.0, 2.0, 1.0, 1.0]);

        // one domain covering every class IS one shared cap
        let shared = fast_slow().with_domain(100.0, &[0, 1]);
        assert_eq!(shared.memory_cap(), Some(100.0));
        assert!(shared.has_shared_memory() && !shared.is_flat());
        // a partial domain is neither shared nor a cap
        let partial = fast_slow().with_domain(100.0, &[0]);
        assert_eq!(partial.memory_cap(), None);
        assert!(!partial.has_shared_memory());
        assert_eq!(partial.domain_of(3), None, "class 1 is unconstrained");
    }

    #[test]
    fn platform_validation_rejects_bad_speeds_and_domains() {
        // the NaN-cap check generalizes to every shape error, typed
        assert_eq!(
            Platform::heterogeneous(vec![]).validate(),
            Err(SchedError::NoProcessors)
        );
        assert_eq!(
            Platform::heterogeneous(vec![ProcClass::new(2, 1.0), ProcClass::new(0, 1.0)])
                .validate(),
            Err(SchedError::EmptyClass { class: 1 })
        );
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    Platform::heterogeneous(vec![ProcClass::new(2, bad)]).validate(),
                    Err(SchedError::InvalidSpeed { class: 0, .. })
                ),
                "{bad}"
            );
        }
        // non-finite capacities would corrupt the JSON wire records (the
        // legacy flat `cap` wire field already rejects them)
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            assert!(
                matches!(
                    fast_slow().with_domain(bad, &[0]).validate(),
                    Err(SchedError::InvalidMemoryCap { .. })
                ),
                "{bad}"
            );
        }
        assert_eq!(
            fast_slow().with_domain(5.0, &[]).validate(),
            Err(SchedError::EmptyDomain { domain: 0 })
        );
        assert_eq!(
            fast_slow()
                .with_domain(5.0, &[0])
                .with_domain(5.0, &[0])
                .validate(),
            Err(SchedError::OverlappingDomains { class: 0 })
        );
        assert_eq!(
            fast_slow().with_domain(5.0, &[2]).validate(),
            Err(SchedError::UnknownClass {
                domain: 0,
                class: 2
            })
        );
        // schedulers surface the same typed errors through requests
        let t = sample();
        let r = SchedulerRegistry::standard();
        let req = Request::new(
            &t,
            fast_slow().with_domain(5.0, &[0]).with_domain(5.0, &[0]),
        );
        assert_eq!(
            r.get("deepest")
                .unwrap()
                .schedule(&req, &mut Scratch::new())
                .unwrap_err(),
            SchedError::OverlappingDomains { class: 0 }
        );
    }

    #[test]
    fn list_schedulers_run_heterogeneous_platforms() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        let platform = fast_slow().with_domain(1e9, &[0]).with_domain(1e9, &[1]);
        let flat_req = Request::new(&t, Platform::new(4));
        for name in ["inner", "deepest", "cp", "fifo", "random"] {
            let req = Request::new(&t, platform.clone());
            let out = r.get(name).unwrap().schedule(&req, &mut scratch).unwrap();
            assert!(out.schedule.validate_on(&t, &platform).is_ok(), "{name}");
            assert!(
                out.eval.makespan >= crate::bounds::makespan_lower_bound_on(&t, &platform) - 1e-9,
                "{name}"
            );
            assert_eq!(out.domain_peaks.len(), 2, "{name}");
            // each domain holds at most the global peak, and together they
            // cover it (every processor is in a domain here)
            for &peak in &out.domain_peaks {
                assert!(peak <= out.eval.peak_memory + 1e-9, "{name}");
            }
            assert!(
                out.domain_peaks.iter().sum::<f64>() >= out.eval.peak_memory - 1e-9,
                "{name}: domains at their peaks must cover the global peak"
            );
            // faster processors can only help the makespan
            let flat = r
                .get(name)
                .unwrap()
                .schedule(&flat_req, &mut scratch)
                .unwrap();
            assert!(out.eval.makespan <= flat.eval.makespan + 1e-9, "{name}");
        }
    }

    #[test]
    fn subtree_and_capped_schedulers_serve_mixed_speeds_and_domains() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        // subtree schedulers serve mixed speeds natively: the split stays in
        // work units, placement is speed-aware
        let mixed = fast_slow();
        let flat_req = Request::new(&t, Platform::new(4));
        for name in ["subtrees", "optim"] {
            let out = r
                .get(name)
                .unwrap()
                .schedule(&Request::new(&t, mixed.clone()), &mut scratch)
                .unwrap();
            assert!(out.schedule.validate_on(&t, &mixed).is_ok(), "{name}");
            assert!(
                out.eval.makespan >= crate::bounds::makespan_lower_bound_on(&t, &mixed) - 1e-9,
                "{name}"
            );
            // faster processors can only help the makespan
            let flat = r
                .get(name)
                .unwrap()
                .schedule(&flat_req, &mut scratch)
                .unwrap();
            assert!(out.eval.makespan <= flat.eval.makespan + 1e-9, "{name}");
        }
        // capped schedulers on a domain-less platform still have nothing to
        // enforce — typed, whatever the speeds
        for name in ["membound", "mem-greedy"] {
            assert!(
                matches!(
                    r.get(name)
                        .unwrap()
                        .schedule(&Request::new(&t, mixed.clone()), &mut scratch),
                    Err(SchedError::MissingMemoryCap { .. })
                ),
                "{name}"
            );
        }
        // split memory is now enforced per domain during admission: a
        // generous per-domain cap completes with zero violations
        let split = fast_slow().with_domain(1e9, &[0]).with_domain(1e9, &[1]);
        for name in ["membound", "mem-greedy"] {
            let out = r
                .get(name)
                .unwrap()
                .schedule(&Request::new(&t, split.clone()), &mut scratch)
                .unwrap();
            assert!(out.schedule.validate_on(&t, &split).is_ok(), "{name}");
            assert_eq!(out.diagnostics.cap_violations, Some(0), "{name}");
            assert_eq!(out.metric(Metric::CapViolations), Some(0.0), "{name}");
            assert_eq!(out.domain_peaks.len(), 2, "{name}");
        }
        // an infeasibly tight domain force-admits and counts violations
        // instead of deadlocking
        let tight = fast_slow().with_domain(0.5, &[0]).with_domain(0.5, &[1]);
        let out = r
            .get("membound")
            .unwrap()
            .schedule(&Request::new(&t, tight), &mut scratch)
            .unwrap();
        assert!(out.diagnostics.cap_violations.unwrap() > 0);
        // comm-bearing platforms stay with the comm-aware list schedulers
        let comm = fast_slow()
            .with_domain(1e9, &[0])
            .with_domain(1e9, &[1])
            .with_comm(vec![0.0, 1.0, 1.0, 0.0]);
        for name in ["subtrees", "optim", "membound", "mem-greedy"] {
            assert!(
                matches!(
                    r.get(name)
                        .unwrap()
                        .schedule(&Request::new(&t, comm.clone()), &mut scratch),
                    Err(SchedError::UnsupportedPlatform { .. })
                ),
                "{name}"
            );
        }
    }

    #[test]
    fn equal_speed_platforms_rescale_subtree_and_capped_schedules() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        let double = Platform::heterogeneous(vec![ProcClass::new(4, 2.0)]).with_memory_cap(1e9);
        let unit = Platform::new(4).with_memory_cap(1e9);
        for name in ["subtrees", "optim", "membound", "mem-greedy", "deepest"] {
            let fast = r
                .get(name)
                .unwrap()
                .schedule(&Request::new(&t, double.clone()), &mut scratch)
                .unwrap();
            let slow = r
                .get(name)
                .unwrap()
                .schedule(&Request::new(&t, unit.clone()), &mut scratch)
                .unwrap();
            assert!(
                (fast.eval.makespan - slow.eval.makespan / 2.0).abs() < 1e-9,
                "{name}: {} vs {}",
                fast.eval.makespan,
                slow.eval.makespan
            );
            assert_eq!(
                fast.eval.peak_memory, slow.eval.peak_memory,
                "{name}: time scaling must not change memory"
            );
        }
    }

    #[test]
    fn uniform_heterogeneous_spelling_matches_homogeneous_bit_for_bit() {
        // all speeds 1.0 split across two classes + one all-covering domain:
        // every scheduler must produce the exact same Schedule as the flat
        // spelling — the backward-compatibility contract of the redesign
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        let cap = crate::bounds::memory_reference(&t);
        let uniform = Platform::heterogeneous(vec![ProcClass::new(1, 1.0), ProcClass::new(3, 1.0)])
            .with_domain(cap, &[0, 1]);
        let flat = Platform::new(4).with_memory_cap(cap);
        for e in r.iter() {
            let a = e
                .scheduler()
                .schedule(
                    &Request::new(&t, uniform.clone()).with_seed(9),
                    &mut scratch,
                )
                .unwrap();
            let b = e
                .scheduler()
                .schedule(&Request::new(&t, flat.clone()).with_seed(9), &mut scratch)
                .unwrap();
            assert_eq!(a.schedule, b.schedule, "{}", e.name());
            assert_eq!(a.eval, b.eval, "{}", e.name());
            // the het spelling additionally reports its single-domain peak,
            // which must equal the global peak
            assert_eq!(a.domain_peaks, vec![a.eval.peak_memory], "{}", e.name());
            assert_eq!(b.domain_peaks, Vec::<f64>::new(), "{}", e.name());
        }
    }

    #[test]
    fn platform_builder_builds_what_the_wrappers_build() {
        // the fluent spelling and the legacy constructors are the same values
        assert_eq!(
            Platform::builder().class(4, 1.0).build().unwrap(),
            Platform::new(4)
        );
        assert_eq!(
            Platform::builder()
                .class(2, 2.0)
                .class(2, 1.0)
                .build()
                .unwrap(),
            fast_slow()
        );
        assert_eq!(
            Platform::builder()
                .class(3, 1.0)
                .memory_cap(7.5)
                .build()
                .unwrap(),
            Platform::new(3).with_memory_cap(7.5)
        );
        assert_eq!(
            Platform::builder()
                .classes([ProcClass::new(2, 2.0), ProcClass::new(2, 1.0)])
                .domain(64.0, &[0])
                .domain(32.0, &[1])
                .build()
                .unwrap(),
            fast_slow().with_domain(64.0, &[0]).with_domain(32.0, &[1])
        );
        // comm_cost entries assemble a symmetric matrix over a zero default
        let p = Platform::builder()
            .class(1, 2.0)
            .class(1, 1.0)
            .class(1, 1.0)
            .domain(8.0, &[0])
            .domain(8.0, &[1])
            .domain(8.0, &[2])
            .comm_cost(0, 1, 0.5)
            .comm_cost(1, 2, 2.0)
            .build()
            .unwrap();
        assert_eq!(p.comm_cost(1, 0), 0.5);
        assert_eq!(p.comm_cost(2, 1), 2.0);
        assert_eq!(p.comm_cost(0, 2), 0.0);
        assert!(p.has_comm());
        // build() surfaces validation errors, typed
        assert!(matches!(
            Platform::builder().build(),
            Err(SchedError::NoProcessors)
        ));
        assert!(matches!(
            Platform::builder().class(2, -1.0).build(),
            Err(SchedError::InvalidSpeed { .. })
        ));
        // a comm entry against an undeclared domain is caught before assembly
        assert!(matches!(
            Platform::builder()
                .class(2, 1.0)
                .domain(8.0, &[0])
                .comm_cost(0, 1, 1.0)
                .build(),
            Err(SchedError::InvalidCommMatrix { .. })
        ));
        // memory_cap collapses domains to one shared cap and drops comm
        let p = Platform::builder()
            .class(1, 1.0)
            .class(1, 1.0)
            .domain(4.0, &[0])
            .domain(4.0, &[1])
            .comm_cost(0, 1, 1.0)
            .memory_cap(100.0)
            .build()
            .unwrap();
        assert_eq!(p.memory_cap(), Some(100.0));
        assert!(!p.has_comm());
    }

    #[test]
    fn comm_matrix_validation_is_typed() {
        let two = || {
            Platform::heterogeneous(vec![ProcClass::new(1, 1.0), ProcClass::new(1, 1.0)])
                .with_domain(8.0, &[0])
                .with_domain(8.0, &[1])
        };
        for (comm, needle) in [
            (vec![0.0, 1.0], "domains x domains"),
            (vec![0.0, 1.0, 2.0, 0.0], "symmetric"),
            (vec![1.0, 0.5, 0.5, 0.0], "diagonal"),
            (vec![0.0, -1.0, -1.0, 0.0], "finite and non-negative"),
            (
                vec![0.0, f64::NAN, f64::NAN, 0.0],
                "finite and non-negative",
            ),
        ] {
            let err = two().with_comm(comm.clone()).validate().unwrap_err();
            assert!(
                matches!(err, SchedError::InvalidCommMatrix { .. })
                    && err.to_string().contains(needle),
                "{comm:?}: {err}"
            );
        }
        // a matrix with no domains to index it
        let err = Platform::new(2)
            .with_comm(vec![0.0])
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("memory domains"));
        // well-formed matrices pass, and the all-zero matrix means "none"
        assert!(two().with_comm(vec![0.0, 2.0, 2.0, 0.0]).validate().is_ok());
        let zero = two().with_comm(vec![0.0; 4]);
        assert!(zero.validate().is_ok());
        assert!(!zero.has_comm());
    }

    #[test]
    fn comm_costs_delay_cross_domain_dependencies() {
        // two leaves feeding a root, one processor per domain: whichever
        // processor runs the root, one leaf's output must cross domains
        let t = TaskTree::fork(2, 1.0, 1.0, 0.0);
        let free = Platform::heterogeneous(vec![ProcClass::new(1, 1.0), ProcClass::new(1, 1.0)])
            .with_domain(1e9, &[0])
            .with_domain(1e9, &[1]);
        let costly = free.clone().with_comm(vec![0.0, 3.0, 3.0, 0.0]);
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        for name in ["inner", "deepest", "cp", "fifo"] {
            let base = r
                .get(name)
                .unwrap()
                .schedule(&Request::new(&t, free.clone()), &mut scratch)
                .unwrap();
            let out = r
                .get(name)
                .unwrap()
                .schedule(&Request::new(&t, costly.clone()), &mut scratch)
                .unwrap();
            assert!(
                out.schedule.validate_on(&t, &costly).is_ok(),
                "{name}: comm-aware validation"
            );
            assert!(
                (out.eval.makespan - (base.eval.makespan + 3.0)).abs() < 1e-9,
                "{name}: root waits exactly output x cost ({} vs {})",
                out.eval.makespan,
                base.eval.makespan
            );
            // a schedule that ignores the transfer is rejected by the
            // comm-aware validator even though plain precedence holds
            let mut cheat = out.schedule.clone();
            let root = cheat
                .placements
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.finish.total_cmp(&b.1.finish))
                .map(|(i, _)| i)
                .unwrap();
            cheat.placements[root].start -= 3.0;
            cheat.placements[root].finish -= 3.0;
            assert!(cheat.validate_on(&t, &free).is_ok(), "{name}");
            assert!(cheat.validate_on(&t, &costly).is_err(), "{name}");
        }
    }

    #[test]
    fn zero_comm_matrix_schedules_byte_identically_to_no_matrix() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        let bare = fast_slow().with_domain(64.0, &[0]).with_domain(32.0, &[1]);
        let zeroed = bare.clone().with_comm(vec![0.0; 4]);
        for e in r.iter() {
            let a = e
                .scheduler()
                .schedule(&Request::new(&t, bare.clone()).with_seed(3), &mut scratch);
            let b = e
                .scheduler()
                .schedule(&Request::new(&t, zeroed.clone()).with_seed(3), &mut scratch);
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.schedule, b.schedule, "{}", e.name());
                    assert_eq!(a.eval, b.eval, "{}", e.name());
                }
                (a, b) => assert_eq!(a.is_err(), b.is_err(), "{}", e.name()),
            }
        }
    }

    #[test]
    fn error_messages_are_informative() {
        let r = SchedulerRegistry::standard();
        let e = r.resolve("warp-drive").err().expect("unknown name");
        let msg = e.to_string();
        assert!(msg.contains("warp-drive"));
        assert!(msg.contains("ParSubtrees"), "lists known names: {msg}");
        assert!(SchedError::NoProcessors.to_string().contains("processor"));
    }
}
