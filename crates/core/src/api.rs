//! The unified scheduling API: one pluggable surface over every scheduler
//! in this crate.
//!
//! The paper evaluates its four heuristics (§5), textbook baselines, and a
//! memory-capped scheduler (§7) over a large `(tree, p)` campaign. This
//! module gives them all one shape so that front-ends (CLI, experiment
//! harness, user code) never dispatch on concrete scheduler types:
//!
//! * [`Scheduler`] — the trait: `name()` plus
//!   `schedule(&Request, &mut Scratch) -> Result<Outcome, SchedError>`;
//! * [`Platform`] — the machine: `p` identical processors sharing one
//!   memory, with an optional memory cap;
//! * [`Request`] — a borrowed scheduling problem: tree + platform +
//!   sequential sub-algorithm choice;
//! * [`Outcome`] — the schedule, its validated evaluation, and diagnostics;
//! * [`SchedError`] — every failure mode as a typed error (no panics);
//! * [`Scratch`] — reusable ready-queue/placement buffers and per-tree
//!   caches, so campaigns of thousands of schedules do not re-allocate;
//! * [`SchedulerRegistry`] — name-based lookup (canonical names + aliases)
//!   over all built-in schedulers, open for user registration.
//!
//! ```
//! use treesched_core::api::{Platform, Request, Scratch, SchedulerRegistry};
//! use treesched_model::TaskTree;
//!
//! let registry = SchedulerRegistry::standard();
//! let tree = TaskTree::fork(8, 1.0, 1.0, 0.0);
//! let req = Request::new(&tree, Platform::new(4));
//! let mut scratch = Scratch::new();
//! let sched = registry.get("deepest").unwrap(); // alias of ParDeepestFirst
//! let out = sched.schedule(&req, &mut scratch).unwrap();
//! assert_eq!(sched.name(), "ParDeepestFirst");
//! assert!(out.eval.makespan >= treesched_core::makespan_lower_bound(&tree, 4));
//! ```

use crate::baselines::splitmix_key;
use crate::heuristics::{par_subtrees_optim_with_order, par_subtrees_with_order, SeqAlgo};
use crate::listsched::{key_from_f64, list_schedule_reusing, Key3, ListScratch};
use crate::membound::{mem_bounded_schedule, Admission};
use crate::schedule::{try_evaluate, EvalResult, Schedule, ScheduleError};
use std::sync::Arc;
use treesched_model::{NodeId, TaskTree};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a scheduling request failed. Every condition the schedulers used to
/// `panic!`/`expect` on is a variant here; front-ends map them to clean
/// process exits.
#[derive(Clone, Debug, PartialEq)]
pub enum SchedError {
    /// The platform has `processors == 0`.
    NoProcessors,
    /// The task tree holds no tasks.
    EmptyTree,
    /// The memory cap is NaN or negative.
    InvalidMemoryCap {
        /// The offending cap value.
        cap: f64,
    },
    /// A memory-capped scheduler was invoked without
    /// [`Platform::memory_cap`].
    MissingMemoryCap {
        /// Canonical name of the scheduler that needs the cap.
        scheduler: &'static str,
    },
    /// The scheduler produced a schedule that failed validation — an
    /// internal bug surfaced as data instead of a panic.
    InvalidSchedule {
        /// Canonical name of the offending scheduler.
        scheduler: String,
        /// What [`Schedule::validate`] found.
        error: ScheduleError,
    },
    /// No registered scheduler matches the requested name or alias.
    UnknownScheduler {
        /// The name that failed to resolve.
        name: String,
        /// Canonical names of all registered schedulers.
        known: Vec<String>,
    },
    /// A registration clashed with an existing canonical name or alias.
    DuplicateName {
        /// The already-taken name.
        name: String,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::NoProcessors => write!(f, "platform needs at least one processor"),
            SchedError::EmptyTree => write!(f, "cannot schedule an empty task tree"),
            SchedError::InvalidMemoryCap { cap } => {
                write!(f, "invalid memory cap {cap} (must be non-negative)")
            }
            SchedError::MissingMemoryCap { scheduler } => {
                write!(f, "scheduler `{scheduler}` needs a platform memory cap")
            }
            SchedError::InvalidSchedule { scheduler, error } => {
                write!(
                    f,
                    "scheduler `{scheduler}` produced an invalid schedule: {error}"
                )
            }
            SchedError::UnknownScheduler { name, known } => {
                write!(
                    f,
                    "unknown scheduler `{name}` (known: {})",
                    known.join(", ")
                )
            }
            SchedError::DuplicateName { name } => {
                write!(f, "scheduler name or alias `{name}` is already registered")
            }
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::InvalidSchedule { error, .. } => Some(error),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Platform / Request / Outcome
// ---------------------------------------------------------------------------

/// The target machine of the paper's model (§3.2): `p` identical processors
/// sharing one memory, optionally capped.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Platform {
    /// Number of identical processors.
    pub processors: u32,
    /// Shared-memory cap, if the scheduler should respect one. `None`
    /// means unbounded memory; memory-capped schedulers require `Some`.
    pub memory_cap: Option<f64>,
}

impl Platform {
    /// An uncapped platform with `processors` processors.
    pub fn new(processors: u32) -> Platform {
        Platform {
            processors,
            memory_cap: None,
        }
    }

    /// Returns the platform with a shared-memory cap.
    pub fn with_memory_cap(mut self, cap: f64) -> Platform {
        self.memory_cap = Some(cap);
        self
    }

    /// Checks the platform invariants (`p >= 1`, cap non-negative).
    pub fn validate(&self) -> Result<(), SchedError> {
        if self.processors == 0 {
            return Err(SchedError::NoProcessors);
        }
        if let Some(cap) = self.memory_cap {
            if cap.is_nan() || cap < 0.0 {
                return Err(SchedError::InvalidMemoryCap { cap });
            }
        }
        Ok(())
    }
}

/// A borrowed scheduling problem: which tree, on which platform, with which
/// sequential sub-algorithm.
#[derive(Clone, Copy, Debug)]
pub struct Request<'a> {
    /// The task tree to schedule.
    pub tree: &'a TaskTree,
    /// The target platform.
    pub platform: Platform,
    /// Sequential memory-minimizing sub-algorithm used as the reference
    /// traversal (subtree phases, activation orders, leaf tie-breaks).
    pub seq: SeqAlgo,
    /// Seed for randomized schedulers (the `RandomList` baseline).
    pub seed: u64,
}

impl<'a> Request<'a> {
    /// A request with the default sequential sub-algorithm and seed.
    pub fn new(tree: &'a TaskTree, platform: Platform) -> Request<'a> {
        Request {
            tree,
            platform,
            seq: SeqAlgo::default(),
            seed: 42,
        }
    }

    /// Returns the request with a different sequential sub-algorithm.
    pub fn with_seq(mut self, seq: SeqAlgo) -> Request<'a> {
        self.seq = seq;
        self
    }

    /// Returns the request with a different randomization seed.
    pub fn with_seed(mut self, seed: u64) -> Request<'a> {
        self.seed = seed;
        self
    }

    /// Checks the request invariants shared by every scheduler.
    pub fn validate(&self) -> Result<(), SchedError> {
        self.platform.validate()?;
        if self.tree.is_empty() {
            return Err(SchedError::EmptyTree);
        }
        Ok(())
    }
}

/// An owned, thread-movable scheduling problem: [`Request`] with the tree
/// behind an [`Arc`] instead of a borrow.
///
/// `Request` borrows its tree, which keeps one-shot callers allocation-free
/// but pins the request to the tree's lifetime. Serving engines that move
/// work across worker threads (see the `treesched_serve` crate) need the
/// problem to be `'static` and cheap to clone — cloning an `OwnedRequest`
/// copies an `Arc` pointer, never the tree. Requests built from the same
/// `Arc` share one tree, so per-tree [`Scratch`] caches hit across them.
#[derive(Clone, Debug)]
pub struct OwnedRequest {
    /// The task tree to schedule, shared across clones.
    pub tree: Arc<TaskTree>,
    /// The target platform.
    pub platform: Platform,
    /// Sequential sub-algorithm choice (see [`Request::seq`]).
    pub seq: SeqAlgo,
    /// Seed for randomized schedulers (see [`Request::seed`]).
    pub seed: u64,
}

impl OwnedRequest {
    /// An owned request with the default sequential sub-algorithm and seed.
    pub fn new(tree: Arc<TaskTree>, platform: Platform) -> OwnedRequest {
        OwnedRequest {
            tree,
            platform,
            seq: SeqAlgo::default(),
            seed: 42,
        }
    }

    /// Returns the request with a different sequential sub-algorithm.
    pub fn with_seq(mut self, seq: SeqAlgo) -> OwnedRequest {
        self.seq = seq;
        self
    }

    /// Returns the request with a different randomization seed.
    pub fn with_seed(mut self, seed: u64) -> OwnedRequest {
        self.seed = seed;
        self
    }

    /// The borrowed view every [`Scheduler`] consumes.
    pub fn as_request(&self) -> Request<'_> {
        Request {
            tree: &self.tree,
            platform: self.platform,
            seq: self.seq,
            seed: self.seed,
        }
    }

    /// Checks the request invariants shared by every scheduler.
    pub fn validate(&self) -> Result<(), SchedError> {
        self.as_request().validate()
    }
}

/// Side observations a scheduler reports alongside its schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Diagnostics {
    /// Peak memory of the reference sequential traversal the scheduler used
    /// (the paper's memory reference when [`Request::seq`] is the default).
    pub seq_peak: Option<f64>,
    /// Forced admissions over the memory cap (memory-capped schedulers
    /// only; `Some(0)` means the cap was honored throughout).
    pub cap_violations: Option<usize>,
}

/// A successful scheduling run: the schedule, its validated evaluation, and
/// diagnostics. The evaluation is always present — every outcome returned
/// through this API has passed [`Schedule::validate`].
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The produced schedule.
    pub schedule: Schedule,
    /// Joint makespan/peak-memory evaluation of the schedule.
    pub eval: EvalResult,
    /// Scheduler-specific observations.
    pub diagnostics: Diagnostics,
}

// ---------------------------------------------------------------------------
// Scratch
// ---------------------------------------------------------------------------

/// Reusable working memory for [`Scheduler::schedule`] calls.
///
/// A campaign runs thousands of `(tree, p, scheduler)` scenarios; `Scratch`
/// keeps the allocations of one call alive for the next:
///
/// * the **reference traversal** (order, its peak, and node positions) is
///   cached per `(tree, SeqAlgo)` — every scheduler and every processor
///   count on the same tree reuses it;
/// * node **depths** and **weighted depths** are cached per tree;
/// * the encoded **priority keys** and the list scheduler's queues/tables
///   (see [`ListScratch`]) are cleared, not re-allocated.
///
/// Trees are identified by a structural hash (parents + weights), so the
/// caches invalidate automatically when a different tree arrives.
#[derive(Default)]
pub struct Scratch {
    tree_hash: u64,
    traversal_algo: Option<SeqAlgo>,
    order: Vec<NodeId>,
    pos: Vec<usize>,
    seq_peak: f64,
    depths: Vec<u32>,
    wdepths: Vec<f64>,
    keys: Vec<Key3>,
    list: ListScratch,
    stats: ScratchStats,
}

/// Cache-effectiveness counters of a [`Scratch`], for serving engines and
/// benchmarks that report how much work batching avoided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Reference traversals actually computed (cache misses).
    pub traversal_computes: u64,
    /// Traversal requests answered from the per-tree cache (hits).
    pub traversal_reuses: u64,
}

impl ScratchStats {
    /// Field-wise sum, for aggregating over a pool of scratches.
    pub fn merged(self, other: ScratchStats) -> ScratchStats {
        ScratchStats {
            traversal_computes: self.traversal_computes + other.traversal_computes,
            traversal_reuses: self.traversal_reuses + other.traversal_reuses,
        }
    }
}

/// Structural hash of a tree: parents and weight bits through splitmix64
/// mixing, never 0.
///
/// [`Scratch`] uses it to invalidate its per-tree caches; sharded serving
/// engines use it to route same-tree requests to the worker whose caches
/// are already warm. Equal trees (same shape and weights) hash equal even
/// when they are distinct allocations.
pub fn tree_fingerprint(tree: &TaskTree) -> u64 {
    #[inline]
    fn mix(h: u64, v: u64) -> u64 {
        let mut z = h ^ v.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    let mut h = mix(0x7ee5_c0de, tree.len() as u64);
    h = mix(h, tree.root().0 as u64);
    for i in tree.ids() {
        let parent = tree.parent(i).map_or(u64::MAX, |p| p.0 as u64);
        h = mix(h, parent);
        h = mix(h, tree.work(i).to_bits());
        h = mix(h, tree.output(i).to_bits());
        h = mix(h, tree.exec(i).to_bits());
    }
    // 0 is the "empty" sentinel of a fresh Scratch
    h | 1
}

impl Scratch {
    /// A fresh scratch with empty caches.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// Invalidates every cache if `tree` differs from the cached one.
    fn sync(&mut self, tree: &TaskTree) {
        let h = tree_fingerprint(tree);
        if self.tree_hash != h {
            self.tree_hash = h;
            self.traversal_algo = None;
            self.order.clear();
            self.pos.clear();
            self.seq_peak = 0.0;
            self.depths.clear();
            self.wdepths.clear();
        }
    }

    fn ensure_traversal(&mut self, tree: &TaskTree, algo: SeqAlgo) {
        self.sync(tree);
        if self.traversal_algo == Some(algo) {
            self.stats.traversal_reuses += 1;
        } else {
            self.stats.traversal_computes += 1;
            let tr = algo.traversal(tree);
            self.order = tr.order;
            self.seq_peak = tr.peak;
            self.pos.clear();
            self.pos.resize(tree.len(), 0);
            for (k, &v) in self.order.iter().enumerate() {
                self.pos[v.index()] = k;
            }
            self.traversal_algo = Some(algo);
        }
    }

    fn ensure_depths(&mut self, tree: &TaskTree) {
        self.sync(tree);
        if self.depths.len() != tree.len() {
            self.depths = tree.depths();
        }
    }

    fn ensure_wdepths(&mut self, tree: &TaskTree) {
        self.sync(tree);
        if self.wdepths.len() != tree.len() {
            self.wdepths = tree.weighted_depths();
        }
    }

    /// Cache-effectiveness counters accumulated over the scratch's
    /// lifetime (they survive tree changes; only the caches invalidate).
    pub fn stats(&self) -> ScratchStats {
        self.stats
    }

    /// The cached reference traversal of `tree` under `algo`: the execution
    /// order and its sequential peak memory. Computes it on the first call
    /// per `(tree, algo)` and reuses it afterwards. Available to custom
    /// [`Scheduler`] implementations.
    pub fn traversal(&mut self, tree: &TaskTree, algo: SeqAlgo) -> (&[NodeId], f64) {
        self.ensure_traversal(tree, algo);
        (&self.order, self.seq_peak)
    }

    /// Event-based list scheduling with reused buffers: builds one encoded
    /// key per node with `key` and runs [`list_schedule_reusing`].
    /// The building block for custom list schedulers on top of this API.
    ///
    /// # Panics
    ///
    /// Panics when `p == 0` (checked upstream by [`Request::validate`]).
    pub fn run_list_schedule<F: FnMut(NodeId) -> Key3>(
        &mut self,
        tree: &TaskTree,
        p: u32,
        mut key: F,
    ) -> Schedule {
        self.sync(tree);
        self.keys.clear();
        for i in tree.ids() {
            self.keys.push(key(i));
        }
        list_schedule_reusing(tree, p, &self.keys, &mut self.list)
    }
}

// ---------------------------------------------------------------------------
// The Scheduler trait
// ---------------------------------------------------------------------------

/// A scheduling algorithm for tree-shaped task graphs on identical
/// processors: anything that turns a [`Request`] into an [`Outcome`].
///
/// Implementations must be deterministic for a given request (randomized
/// schedulers draw from [`Request::seed`]) and must return schedules that
/// pass [`Schedule::validate`] — the built-ins funnel their result through
/// [`try_evaluate`], surfacing internal bugs as
/// [`SchedError::InvalidSchedule`] instead of panicking.
pub trait Scheduler: Send + Sync {
    /// Canonical name (stable across releases; the registry key).
    fn name(&self) -> &'static str;

    /// One-line human description for listings.
    fn description(&self) -> &'static str {
        ""
    }

    /// Builds and evaluates a schedule for `req`, using `scratch` for
    /// reusable working memory.
    fn schedule(&self, req: &Request<'_>, scratch: &mut Scratch) -> Result<Outcome, SchedError>;

    /// Convenience: [`Scheduler::schedule`] with a throwaway scratch.
    fn schedule_once(&self, req: &Request<'_>) -> Result<Outcome, SchedError> {
        self.schedule(req, &mut Scratch::new())
    }
}

/// Validates + evaluates `schedule` and bundles the outcome.
fn finish(
    name: &str,
    tree: &TaskTree,
    schedule: Schedule,
    diagnostics: Diagnostics,
) -> Result<Outcome, SchedError> {
    let eval = try_evaluate(tree, &schedule).map_err(|error| SchedError::InvalidSchedule {
        scheduler: name.to_string(),
        error,
    })?;
    Ok(Outcome {
        schedule,
        eval,
        diagnostics,
    })
}

// ---------------------------------------------------------------------------
// Built-in scheduler wrappers
// ---------------------------------------------------------------------------

/// `ParSubtrees` / `ParSubtreesOptim` (paper §5.1).
struct ParSubtreesSched {
    optim: bool,
}

impl Scheduler for ParSubtreesSched {
    fn name(&self) -> &'static str {
        if self.optim {
            "ParSubtreesOptim"
        } else {
            "ParSubtrees"
        }
    }

    fn description(&self) -> &'static str {
        if self.optim {
            "ParSubtrees with LPT allocation of all subtrees; better makespan, slightly more memory"
        } else {
            "concurrent subtrees + sequential remainder; memory-focused, M <= (p+1)*M_seq"
        }
    }

    fn schedule(&self, req: &Request<'_>, scratch: &mut Scratch) -> Result<Outcome, SchedError> {
        req.validate()?;
        let (tree, p) = (req.tree, req.platform.processors);
        scratch.ensure_traversal(tree, req.seq);
        let schedule = if self.optim {
            par_subtrees_optim_with_order(tree, p, req.seq, &scratch.order)
        } else {
            par_subtrees_with_order(tree, p, req.seq, &scratch.order)
        };
        let diag = Diagnostics {
            seq_peak: Some(scratch.seq_peak),
            cap_violations: None,
        };
        finish(self.name(), tree, schedule, diag)
    }
}

/// Which priority scheme a [`ListSched`] uses.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ListKind {
    /// `ParInnerFirst` (paper §5.2).
    InnerFirst,
    /// `ParDeepestFirst` (paper §5.3).
    DeepestFirst,
    /// Critical-path baseline (no inner/leaf preference, id ties).
    Cp,
    /// FIFO/no-priority baseline.
    Fifo,
    /// Seeded random-priority baseline.
    Random,
}

struct ListSched {
    kind: ListKind,
}

impl Scheduler for ListSched {
    fn name(&self) -> &'static str {
        match self.kind {
            ListKind::InnerFirst => "ParInnerFirst",
            ListKind::DeepestFirst => "ParDeepestFirst",
            ListKind::Cp => "CpList",
            ListKind::Fifo => "FifoList",
            ListKind::Random => "RandomList",
        }
    }

    fn description(&self) -> &'static str {
        match self.kind {
            ListKind::InnerFirst => {
                "list scheduling, inner nodes first then postorder leaves; balanced"
            }
            ListKind::DeepestFirst => "list scheduling along the critical path; makespan-focused",
            ListKind::Cp => "baseline: critical-path priority, no paper tie-breaks",
            ListKind::Fifo => "baseline: ready tasks in id order, no priority",
            ListKind::Random => "baseline: seeded random priorities",
        }
    }

    fn schedule(&self, req: &Request<'_>, scratch: &mut Scratch) -> Result<Outcome, SchedError> {
        req.validate()?;
        let (tree, p) = (req.tree, req.platform.processors);
        scratch.ensure_traversal(tree, req.seq);
        match self.kind {
            ListKind::InnerFirst => scratch.ensure_depths(tree),
            ListKind::DeepestFirst | ListKind::Cp => scratch.ensure_wdepths(tree),
            ListKind::Fifo | ListKind::Random => {}
        }
        let Scratch {
            pos,
            depths,
            wdepths,
            keys,
            list,
            seq_peak,
            ..
        } = scratch;
        keys.clear();
        match self.kind {
            ListKind::InnerFirst => keys.extend(tree.ids().map(|i| {
                if tree.is_leaf(i) {
                    (1u64, pos[i.index()] as u64, 0u64)
                } else {
                    (
                        0u64,
                        (u32::MAX - depths[i.index()]) as u64,
                        pos[i.index()] as u64,
                    )
                }
            })),
            ListKind::DeepestFirst => keys.extend(tree.ids().map(|i| {
                (
                    key_from_f64(-wdepths[i.index()]),
                    u64::from(tree.is_leaf(i)),
                    pos[i.index()] as u64,
                )
            })),
            ListKind::Cp => keys.extend(
                tree.ids()
                    .map(|i| (key_from_f64(-wdepths[i.index()]), i.0 as u64, 0u64)),
            ),
            ListKind::Fifo => keys.extend(tree.ids().map(|i| (i.0 as u64, 0u64, 0u64))),
            ListKind::Random => keys.extend(
                tree.ids()
                    .map(|i| (splitmix_key(req.seed, i.0), i.0 as u64, 0u64)),
            ),
        }
        let schedule = list_schedule_reusing(tree, p, keys, list);
        let diag = Diagnostics {
            seq_peak: Some(*seq_peak),
            cap_violations: None,
        };
        finish(self.name(), tree, schedule, diag)
    }
}

/// Memory-capped list scheduling (paper §7 future work) under a fixed
/// admission policy. Requires [`Platform::memory_cap`].
struct MemBoundedSched {
    policy: Admission,
}

impl Scheduler for MemBoundedSched {
    fn name(&self) -> &'static str {
        match self.policy {
            Admission::SequentialOrder => "MemBoundedSeq",
            Admission::Greedy => "MemBoundedGreedy",
        }
    }

    fn description(&self) -> &'static str {
        match self.policy {
            Admission::SequentialOrder => {
                "memory-capped, sequential activation order; never exceeds a feasible cap"
            }
            Admission::Greedy => {
                "memory-capped, greedy admission; more parallel but may violate the cap"
            }
        }
    }

    fn schedule(&self, req: &Request<'_>, scratch: &mut Scratch) -> Result<Outcome, SchedError> {
        req.validate()?;
        let (tree, p) = (req.tree, req.platform.processors);
        let cap = req
            .platform
            .memory_cap
            .ok_or(SchedError::MissingMemoryCap {
                scheduler: self.name(),
            })?;
        scratch.ensure_traversal(tree, req.seq);
        let run = mem_bounded_schedule(tree, p, &scratch.order, cap, self.policy);
        let diag = Diagnostics {
            seq_peak: Some(scratch.seq_peak),
            cap_violations: Some(run.violations),
        };
        finish(self.name(), tree, run.schedule, diag)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// One registered scheduler: the implementation, its aliases, and whether
/// it belongs to the paper's comparison campaign (Table 1, Figures 6–8).
pub struct RegistryEntry {
    scheduler: Box<dyn Scheduler>,
    aliases: Vec<&'static str>,
    campaign: bool,
}

impl RegistryEntry {
    /// The scheduler.
    pub fn scheduler(&self) -> &dyn Scheduler {
        self.scheduler.as_ref()
    }

    /// Canonical name.
    pub fn name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// One-line description.
    pub fn description(&self) -> &'static str {
        self.scheduler.description()
    }

    /// Accepted aliases (canonical name excluded).
    pub fn aliases(&self) -> &[&'static str] {
        &self.aliases
    }

    /// Whether the scheduler participates in the default experiment
    /// campaign.
    pub fn in_campaign(&self) -> bool {
        self.campaign
    }
}

/// Name-based scheduler lookup: canonical names and aliases, matched
/// case-insensitively. [`SchedulerRegistry::standard`] holds every built-in
/// scheduler; front-ends resolve user input exclusively through this.
#[derive(Default)]
pub struct SchedulerRegistry {
    entries: Vec<RegistryEntry>,
}

impl SchedulerRegistry {
    /// An empty registry.
    pub fn new() -> SchedulerRegistry {
        SchedulerRegistry::default()
    }

    /// The built-in registry: the paper's four heuristics (campaign
    /// members), the three textbook baselines, and the two memory-capped
    /// wrappers.
    pub fn standard() -> SchedulerRegistry {
        let mut r = SchedulerRegistry::new();
        let must = |res: Result<(), SchedError>| res.expect("built-in names are unique");
        must(r.register(
            Box::new(ParSubtreesSched { optim: false }),
            &["subtrees"],
            true,
        ));
        must(r.register(
            Box::new(ParSubtreesSched { optim: true }),
            &["subtrees-optim", "optim"],
            true,
        ));
        must(r.register(
            Box::new(ListSched {
                kind: ListKind::InnerFirst,
            }),
            &["inner", "inner-first"],
            true,
        ));
        must(r.register(
            Box::new(ListSched {
                kind: ListKind::DeepestFirst,
            }),
            &["deepest", "deepest-first"],
            true,
        ));
        must(r.register(
            Box::new(ListSched { kind: ListKind::Cp }),
            &["cp", "cp-list"],
            false,
        ));
        must(r.register(
            Box::new(ListSched {
                kind: ListKind::Fifo,
            }),
            &["fifo", "fifo-list"],
            false,
        ));
        must(r.register(
            Box::new(ListSched {
                kind: ListKind::Random,
            }),
            &["random", "random-list"],
            false,
        ));
        must(r.register(
            Box::new(MemBoundedSched {
                policy: Admission::SequentialOrder,
            }),
            &["membound", "capped", "mem-seq"],
            false,
        ));
        must(r.register(
            Box::new(MemBoundedSched {
                policy: Admission::Greedy,
            }),
            &["mem-greedy", "greedy-capped"],
            false,
        ));
        r
    }

    /// Registers a scheduler under its canonical name plus `aliases`.
    /// `campaign` adds it to [`SchedulerRegistry::campaign`], i.e. the
    /// default experiment sweep.
    pub fn register(
        &mut self,
        scheduler: Box<dyn Scheduler>,
        aliases: &[&'static str],
        campaign: bool,
    ) -> Result<(), SchedError> {
        for name in std::iter::once(scheduler.name()).chain(aliases.iter().copied()) {
            if self.resolve(name).is_ok() {
                return Err(SchedError::DuplicateName {
                    name: name.to_string(),
                });
            }
        }
        self.entries.push(RegistryEntry {
            scheduler,
            aliases: aliases.to_vec(),
            campaign,
        });
        Ok(())
    }

    /// Resolves `name` (canonical or alias, case-insensitive) to its entry.
    pub fn resolve(&self, name: &str) -> Result<&RegistryEntry, SchedError> {
        self.entries
            .iter()
            .find(|e| {
                e.name().eq_ignore_ascii_case(name)
                    || e.aliases.iter().any(|a| a.eq_ignore_ascii_case(name))
            })
            .ok_or_else(|| SchedError::UnknownScheduler {
                name: name.to_string(),
                known: self.names().iter().map(|s| s.to_string()).collect(),
            })
    }

    /// Resolves `name` to its scheduler.
    pub fn get(&self, name: &str) -> Result<&dyn Scheduler, SchedError> {
        Ok(self.resolve(name)?.scheduler())
    }

    /// All entries, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &RegistryEntry> {
        self.entries.iter()
    }

    /// The campaign members (the schedulers compared in Table 1 and
    /// Figures 6–8), in registration order.
    pub fn campaign(&self) -> impl Iterator<Item = &RegistryEntry> {
        self.entries.iter().filter(|e| e.campaign)
    }

    /// Canonical names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{cp_list_schedule, fifo_list_schedule, random_list_schedule};
    use crate::heuristics::Heuristic;
    use crate::schedule::evaluate;
    use treesched_model::TaskTree;

    fn sample() -> TaskTree {
        TaskTree::complete(3, 4, 1.0, 2.0, 0.5)
    }

    #[test]
    fn registry_resolves_names_and_aliases_case_insensitively() {
        let r = SchedulerRegistry::standard();
        for (spelling, canonical) in [
            ("ParSubtrees", "ParSubtrees"),
            ("subtrees", "ParSubtrees"),
            ("SUBTREES-OPTIM", "ParSubtreesOptim"),
            ("inner", "ParInnerFirst"),
            ("Deepest", "ParDeepestFirst"),
            ("cp", "CpList"),
            ("fifo", "FifoList"),
            ("random", "RandomList"),
            ("membound", "MemBoundedSeq"),
            ("MEM-GREEDY", "MemBoundedGreedy"),
        ] {
            assert_eq!(r.get(spelling).unwrap().name(), canonical, "{spelling}");
        }
        assert!(matches!(
            r.get("nosuch"),
            Err(SchedError::UnknownScheduler { .. })
        ));
    }

    #[test]
    fn registry_round_trips_every_name_and_alias() {
        let r = SchedulerRegistry::standard();
        assert_eq!(r.names().len(), 9);
        for e in r.iter() {
            assert_eq!(r.get(e.name()).unwrap().name(), e.name());
            for a in e.aliases() {
                assert_eq!(r.get(a).unwrap().name(), e.name(), "alias {a}");
            }
            assert!(!e.description().is_empty(), "{}", e.name());
        }
    }

    #[test]
    fn campaign_is_the_four_paper_heuristics() {
        let r = SchedulerRegistry::standard();
        let names: Vec<&str> = r.campaign().map(|e| e.name()).collect();
        assert_eq!(
            names,
            [
                "ParSubtrees",
                "ParSubtreesOptim",
                "ParInnerFirst",
                "ParDeepestFirst"
            ]
        );
        assert_eq!(
            names,
            Heuristic::ALL.map(|h| h.name()),
            "campaign mirrors Heuristic::ALL"
        );
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        struct Dup;
        impl Scheduler for Dup {
            fn name(&self) -> &'static str {
                "ParSubtrees"
            }
            fn schedule(
                &self,
                _req: &Request<'_>,
                _s: &mut Scratch,
            ) -> Result<Outcome, SchedError> {
                unreachable!()
            }
        }
        let mut r = SchedulerRegistry::standard();
        assert!(matches!(
            r.register(Box::new(Dup), &[], false),
            Err(SchedError::DuplicateName { .. })
        ));
        struct AliasClash;
        impl Scheduler for AliasClash {
            fn name(&self) -> &'static str {
                "Fresh"
            }
            fn schedule(
                &self,
                _req: &Request<'_>,
                _s: &mut Scratch,
            ) -> Result<Outcome, SchedError> {
                unreachable!()
            }
        }
        assert!(matches!(
            r.register(Box::new(AliasClash), &["inner"], false),
            Err(SchedError::DuplicateName { .. })
        ));
    }

    #[test]
    fn api_heuristics_match_legacy_functions() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        for p in [1u32, 2, 5] {
            let req = Request::new(&t, Platform::new(p));
            for h in Heuristic::ALL {
                let legacy = h.schedule(&t, p);
                let out = r
                    .get(h.name())
                    .unwrap()
                    .schedule(&req, &mut scratch)
                    .unwrap();
                assert_eq!(out.schedule, legacy, "{h} p={p}");
                assert_eq!(out.eval, evaluate(&t, &legacy));
            }
        }
    }

    #[test]
    fn api_baselines_match_legacy_functions() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        let p = 3;
        let req = Request::new(&t, Platform::new(p)).with_seed(7);
        let pairs: [(&str, Schedule); 3] = [
            ("cp", cp_list_schedule(&t, p)),
            ("fifo", fifo_list_schedule(&t, p)),
            ("random", random_list_schedule(&t, p, 7)),
        ];
        for (name, legacy) in pairs {
            let out = r.get(name).unwrap().schedule(&req, &mut scratch).unwrap();
            assert_eq!(out.schedule, legacy, "{name}");
        }
    }

    #[test]
    fn scratch_survives_tree_and_algo_changes() {
        // interleave trees and algorithms through one scratch: cached
        // traversals must invalidate correctly (wrong caches would produce
        // invalid schedules, caught by the outcome evaluation)
        let trees = [
            TaskTree::fork(9, 1.0, 1.0, 0.0),
            TaskTree::complete(2, 5, 1.0, 1.0, 0.0),
            TaskTree::chain(12, 2.0, 1.0, 0.5),
        ];
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        for algo in [SeqAlgo::BestPostorder, SeqAlgo::LiuExact] {
            for t in &trees {
                for e in r.iter() {
                    let req =
                        Request::new(t, Platform::new(4).with_memory_cap(1e12)).with_seq(algo);
                    let out = e.scheduler().schedule(&req, &mut scratch).unwrap();
                    assert!(out.schedule.validate(t).is_ok(), "{}", e.name());
                    assert!(out.eval.makespan > 0.0);
                }
            }
        }
    }

    #[test]
    fn owned_request_matches_borrowed_and_moves_across_threads() {
        let tree = Arc::new(sample());
        let r = SchedulerRegistry::standard();
        let owned = OwnedRequest::new(Arc::clone(&tree), Platform::new(3)).with_seed(7);
        let borrowed = Request::new(&tree, Platform::new(3)).with_seed(7);
        let mut scratch = Scratch::new();
        let a = r
            .get("deepest")
            .unwrap()
            .schedule(&owned.as_request(), &mut scratch)
            .unwrap();
        let b = r
            .get("deepest")
            .unwrap()
            .schedule(&borrowed, &mut scratch)
            .unwrap();
        assert_eq!(a.schedule, b.schedule);
        // the whole point of the owned variant: 'static, Send, cheap clone
        let clone = owned.clone();
        let handle = std::thread::spawn(move || {
            let reg = SchedulerRegistry::standard();
            reg.get("deepest")
                .unwrap()
                .schedule(&clone.as_request(), &mut Scratch::new())
                .unwrap()
                .eval
        });
        assert_eq!(handle.join().unwrap(), a.eval);
        assert!(owned.validate().is_ok());
        assert_eq!(
            OwnedRequest::new(tree, Platform::new(0)).validate(),
            Err(SchedError::NoProcessors)
        );
    }

    #[test]
    fn fingerprint_distinguishes_structure_not_allocation() {
        let a = sample();
        let b = sample();
        assert_eq!(tree_fingerprint(&a), tree_fingerprint(&b));
        assert_ne!(
            tree_fingerprint(&a),
            tree_fingerprint(&TaskTree::chain(5, 1.0, 1.0, 0.0))
        );
        assert_ne!(tree_fingerprint(&a), 0, "0 is the empty-scratch sentinel");
    }

    #[test]
    fn scratch_counts_traversal_reuse() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        let req = Request::new(&t, Platform::new(2));
        for _ in 0..3 {
            r.get("deepest")
                .unwrap()
                .schedule(&req, &mut scratch)
                .unwrap();
        }
        let s = scratch.stats();
        assert_eq!(s.traversal_computes, 1);
        assert_eq!(s.traversal_reuses, 2);
        // a different tree misses once, then hits again
        let t2 = TaskTree::chain(6, 1.0, 1.0, 0.0);
        let req2 = Request::new(&t2, Platform::new(2));
        r.get("deepest")
            .unwrap()
            .schedule(&req2, &mut scratch)
            .unwrap();
        r.get("inner")
            .unwrap()
            .schedule(&req2, &mut scratch)
            .unwrap();
        let s2 = scratch.stats();
        assert_eq!(s2.traversal_computes, 2);
        assert_eq!(s2.traversal_reuses, 3);
        assert_eq!(s.merged(s), s.merged(s));
    }

    #[test]
    fn typed_errors_replace_panics() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        // p == 0
        let req = Request::new(&t, Platform::new(0));
        for e in r.iter() {
            assert_eq!(
                e.scheduler().schedule(&req, &mut scratch).unwrap_err(),
                SchedError::NoProcessors,
                "{}",
                e.name()
            );
        }
        // capped scheduler without a cap
        let req = Request::new(&t, Platform::new(2));
        assert_eq!(
            r.get("membound")
                .unwrap()
                .schedule(&req, &mut scratch)
                .unwrap_err(),
            SchedError::MissingMemoryCap {
                scheduler: "MemBoundedSeq"
            }
        );
        // NaN cap
        let req = Request::new(&t, Platform::new(2).with_memory_cap(f64::NAN));
        assert!(matches!(
            r.get("membound").unwrap().schedule(&req, &mut scratch),
            Err(SchedError::InvalidMemoryCap { .. })
        ));
    }

    #[test]
    fn membound_outcome_reports_violations() {
        let t = TaskTree::complete(2, 3, 1.0, 5.0, 2.0);
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        // infeasible cap: completes with violations counted
        let req = Request::new(&t, Platform::new(2).with_memory_cap(0.5));
        let out = r
            .get("membound")
            .unwrap()
            .schedule(&req, &mut scratch)
            .unwrap();
        assert!(out.diagnostics.cap_violations.unwrap() > 0);
        // generous cap: zero violations
        let req = Request::new(&t, Platform::new(2).with_memory_cap(1e12));
        let out = r
            .get("mem-greedy")
            .unwrap()
            .schedule(&req, &mut scratch)
            .unwrap();
        assert_eq!(out.diagnostics.cap_violations, Some(0));
    }

    #[test]
    fn diagnostics_carry_the_memory_reference() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        let req = Request::new(&t, Platform::new(4));
        let out = r
            .get("subtrees")
            .unwrap()
            .schedule(&req, &mut scratch)
            .unwrap();
        assert_eq!(
            out.diagnostics.seq_peak,
            Some(crate::bounds::memory_reference(&t))
        );
    }

    #[test]
    fn error_messages_are_informative() {
        let r = SchedulerRegistry::standard();
        let e = r.resolve("warp-drive").err().expect("unknown name");
        let msg = e.to_string();
        assert!(msg.contains("warp-drive"));
        assert!(msg.contains("ParSubtrees"), "lists known names: {msg}");
        assert!(SchedError::NoProcessors.to_string().contains("processor"));
    }
}
