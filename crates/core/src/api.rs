//! The unified scheduling API: one pluggable surface over every scheduler
//! in this crate.
//!
//! The paper evaluates its four heuristics (§5), textbook baselines, and a
//! memory-capped scheduler (§7) over a large `(tree, p)` campaign. This
//! module gives them all one shape so that front-ends (CLI, experiment
//! harness, user code) never dispatch on concrete scheduler types:
//!
//! * [`Scheduler`] — the trait: `name()` plus
//!   `schedule(&Request, &mut Scratch) -> Result<Outcome, SchedError>`;
//! * [`Platform`] — the machine: processor classes ([`ProcClass`]:
//!   `count` processors at a relative `speed`) and memory domains
//!   ([`MemDomain`]: a capacity shared by its classes). The paper's
//!   machine — `p` identical processors, one memory — is the flat
//!   special case built by [`Platform::new`]/[`Platform::with_memory_cap`]
//!   and stays bit-compatible;
//! * [`Request`] — a borrowed scheduling problem: tree + platform +
//!   sequential sub-algorithm choice;
//! * [`Outcome`] — the schedule, its validated evaluation, and diagnostics;
//! * [`SchedError`] — every failure mode as a typed error (no panics);
//! * [`Scratch`] — reusable ready-queue/placement buffers and per-tree
//!   caches, so campaigns of thousands of schedules do not re-allocate;
//! * [`SchedulerRegistry`] — name-based lookup (canonical names + aliases)
//!   over all built-in schedulers, open for user registration.
//!
//! ```
//! use treesched_core::api::{Platform, Request, Scratch, SchedulerRegistry};
//! use treesched_model::TaskTree;
//!
//! let registry = SchedulerRegistry::standard();
//! let tree = TaskTree::fork(8, 1.0, 1.0, 0.0);
//! let req = Request::new(&tree, Platform::new(4));
//! let mut scratch = Scratch::new();
//! let sched = registry.get("deepest").unwrap(); // alias of ParDeepestFirst
//! let out = sched.schedule(&req, &mut scratch).unwrap();
//! assert_eq!(sched.name(), "ParDeepestFirst");
//! assert!(out.eval.makespan >= treesched_core::makespan_lower_bound(&tree, 4));
//! ```

use crate::baselines::splitmix_key;
use crate::heuristics::{
    par_subtrees_optim_with_order_scratch, par_subtrees_with_order_scratch, SeqAlgo, SubtreeScratch,
};
use crate::listsched::{
    key_from_f64, list_schedule_reusing, list_schedule_with_speeds, Key3, ListScratch, Speeds,
};
use crate::membound::{mem_bounded_schedule, Admission};
use crate::schedule::{try_evaluate_on, EvalResult, Schedule, ScheduleError};
use std::sync::Arc;
use treesched_model::{NodeId, TaskTree};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a scheduling request failed. Every condition the schedulers used to
/// `panic!`/`expect` on is a variant here; front-ends map them to clean
/// process exits.
#[derive(Clone, Debug, PartialEq)]
pub enum SchedError {
    /// The platform has `processors == 0`.
    NoProcessors,
    /// The task tree holds no tasks.
    EmptyTree,
    /// A memory cap or domain capacity is NaN or negative.
    InvalidMemoryCap {
        /// The offending cap value.
        cap: f64,
    },
    /// A processor class has a non-finite or non-positive speed.
    InvalidSpeed {
        /// Index of the offending class in [`Platform::classes`].
        class: usize,
        /// The offending speed value.
        speed: f64,
    },
    /// A processor class has `count == 0`.
    EmptyClass {
        /// Index of the offending class in [`Platform::classes`].
        class: usize,
    },
    /// A memory domain lists no processor classes.
    EmptyDomain {
        /// Index of the offending domain in [`Platform::domains`].
        domain: usize,
    },
    /// A processor class is claimed by more than one memory domain (or
    /// twice by the same domain).
    OverlappingDomains {
        /// Index of the doubly-claimed class.
        class: usize,
    },
    /// A memory domain references a class index outside
    /// [`Platform::classes`].
    UnknownClass {
        /// Index of the offending domain.
        domain: usize,
        /// The out-of-range class index it referenced.
        class: usize,
    },
    /// A memory-capped scheduler was invoked without
    /// [`Platform::memory_cap`].
    MissingMemoryCap {
        /// Canonical name of the scheduler that needs the cap.
        scheduler: &'static str,
    },
    /// The scheduler cannot handle the requested platform shape (e.g.
    /// mixed-speed processors for a scheduler that places whole subtrees,
    /// or per-domain capacities for a scheduler that enforces one shared
    /// cap). Returned instead of silently mis-scheduling.
    UnsupportedPlatform {
        /// Canonical name of the scheduler that rejected the platform.
        scheduler: &'static str,
        /// What the scheduler cannot handle.
        reason: &'static str,
    },
    /// The scheduler produced a schedule that failed validation — an
    /// internal bug surfaced as data instead of a panic.
    InvalidSchedule {
        /// Canonical name of the offending scheduler.
        scheduler: String,
        /// What [`Schedule::validate`] found.
        error: ScheduleError,
    },
    /// No registered scheduler matches the requested name or alias.
    UnknownScheduler {
        /// The name that failed to resolve.
        name: String,
        /// Canonical names of all registered schedulers.
        known: Vec<String>,
    },
    /// A registration clashed with an existing canonical name or alias.
    DuplicateName {
        /// The already-taken name.
        name: String,
    },
    /// The worker thread serving the request died (a user scheduler
    /// panicked) before producing a result. The request was not served;
    /// the rest of the stream is unaffected.
    WorkerLost {
        /// Index of the dead worker thread.
        worker: usize,
    },
    /// A serving front-end refused the request because the client's
    /// bounded in-flight queue was full. The request was not served; the
    /// client may resubmit once earlier responses drain.
    Overloaded {
        /// The in-flight cap that was hit.
        limit: usize,
    },
    /// A serving front-end could not parse the request line. Carries the
    /// 1-based line number within the client's input stream.
    MalformedRequest {
        /// 1-based input line number.
        line: usize,
        /// What the JSONL parser rejected.
        reason: String,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::NoProcessors => write!(f, "platform needs at least one processor"),
            SchedError::EmptyTree => write!(f, "cannot schedule an empty task tree"),
            SchedError::InvalidMemoryCap { cap } => {
                write!(
                    f,
                    "invalid memory cap {cap} (must be finite and non-negative)"
                )
            }
            SchedError::InvalidSpeed { class, speed } => {
                write!(
                    f,
                    "invalid speed {speed} for processor class {class} (must be finite and positive)"
                )
            }
            SchedError::EmptyClass { class } => {
                write!(f, "processor class {class} has no processors")
            }
            SchedError::EmptyDomain { domain } => {
                write!(f, "memory domain {domain} covers no processor classes")
            }
            SchedError::OverlappingDomains { class } => {
                write!(
                    f,
                    "processor class {class} belongs to more than one memory domain"
                )
            }
            SchedError::UnknownClass { domain, class } => {
                write!(
                    f,
                    "memory domain {domain} references unknown processor class {class}"
                )
            }
            SchedError::MissingMemoryCap { scheduler } => {
                write!(f, "scheduler `{scheduler}` needs a platform memory cap")
            }
            SchedError::UnsupportedPlatform { scheduler, reason } => {
                write!(
                    f,
                    "scheduler `{scheduler}` does not support this platform: {reason}"
                )
            }
            SchedError::InvalidSchedule { scheduler, error } => {
                write!(
                    f,
                    "scheduler `{scheduler}` produced an invalid schedule: {error}"
                )
            }
            SchedError::UnknownScheduler { name, known } => {
                write!(
                    f,
                    "unknown scheduler `{name}` (known: {})",
                    known.join(", ")
                )
            }
            SchedError::DuplicateName { name } => {
                write!(f, "scheduler name or alias `{name}` is already registered")
            }
            SchedError::WorkerLost { worker } => {
                write!(f, "serve worker {worker} died before the request completed")
            }
            SchedError::Overloaded { limit } => {
                write!(
                    f,
                    "client queue overloaded: {limit} requests already in flight"
                )
            }
            SchedError::MalformedRequest { line, reason } => {
                write!(f, "bad request on line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::InvalidSchedule { error, .. } => Some(error),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Platform / Request / Outcome
// ---------------------------------------------------------------------------

/// One class of identical processors of a [`Platform`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProcClass {
    /// Number of processors in this class.
    pub count: u32,
    /// Relative execution speed: a task of work `w` runs for `w / speed`
    /// on a processor of this class. The paper's model is speed `1.0`.
    pub speed: f64,
}

impl ProcClass {
    /// A class of `count` processors at `speed`.
    pub fn new(count: u32, speed: f64) -> ProcClass {
        ProcClass { count, speed }
    }
}

/// One memory domain of a [`Platform`]: a capacity shared by the
/// processors of the listed classes (NUMA-style).
#[derive(Clone, Debug, PartialEq)]
pub struct MemDomain {
    /// Memory capacity of the domain.
    pub capacity: f64,
    /// Indices into [`Platform::classes`] of the classes whose processors
    /// allocate from this domain. A class may belong to at most one domain;
    /// classes in no domain have unbounded memory.
    pub classes: Vec<usize>,
}

/// The target machine: a set of processor *classes* (`count` processors at
/// a relative `speed` each) and optional memory *domains* (a capacity
/// shared by the classes that belong to it).
///
/// The paper's model (§3.2) — `p` identical processors sharing one memory —
/// is the special case built by [`Platform::new`] /
/// [`Platform::with_memory_cap`], and stays the wire- and bit-compatible
/// default: one class at speed `1.0`, at most one domain covering it.
/// Schedulers that cannot handle a richer shape return
/// [`SchedError::UnsupportedPlatform`] instead of silently mis-scheduling.
///
/// ```
/// use treesched_core::api::{Platform, ProcClass};
///
/// // 2 fast + 2 slow processors, each pair with its own 64-unit memory
/// let platform = Platform::heterogeneous(vec![
///     ProcClass::new(2, 2.0),
///     ProcClass::new(2, 1.0),
/// ])
/// .with_domain(64.0, &[0])
/// .with_domain(64.0, &[1]);
/// assert_eq!(platform.processors(), 4);
/// assert_eq!(platform.speed_of(1), 2.0);
/// assert_eq!(platform.domain_of(3), Some(1));
/// assert!(platform.validate().is_ok());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Platform {
    /// Processor classes, in declaration order. Processor indices `0..p`
    /// are assigned class by class: class 0's processors first.
    classes: Vec<ProcClass>,
    /// Memory domains; empty means unbounded shared memory.
    domains: Vec<MemDomain>,
}

impl Platform {
    /// An uncapped platform with `processors` identical unit-speed
    /// processors — the paper's machine.
    pub fn new(processors: u32) -> Platform {
        Platform {
            classes: vec![ProcClass::new(processors, 1.0)],
            domains: Vec::new(),
        }
    }

    /// A platform from explicit processor classes, with unbounded memory.
    pub fn heterogeneous(classes: Vec<ProcClass>) -> Platform {
        Platform {
            classes,
            domains: Vec::new(),
        }
    }

    /// Returns the platform with a single shared-memory cap over **all**
    /// classes, replacing any previously declared domains.
    pub fn with_memory_cap(mut self, cap: f64) -> Platform {
        self.domains = vec![MemDomain {
            capacity: cap,
            classes: (0..self.classes.len()).collect(),
        }];
        self
    }

    /// Returns the platform with an additional memory domain of `capacity`
    /// over the given class indices.
    pub fn with_domain(mut self, capacity: f64, classes: &[usize]) -> Platform {
        self.domains.push(MemDomain {
            capacity,
            classes: classes.to_vec(),
        });
        self
    }

    /// Total processor count across all classes.
    pub fn processors(&self) -> u32 {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// The processor classes.
    pub fn classes(&self) -> &[ProcClass] {
        &self.classes
    }

    /// The memory domains (empty = unbounded shared memory).
    pub fn domains(&self) -> &[MemDomain] {
        &self.domains
    }

    /// The single shared-memory cap, when the platform has exactly one
    /// domain covering every class (the shape [`Platform::with_memory_cap`]
    /// builds). `None` for uncapped platforms **and** for genuinely
    /// multi-domain ones — schedulers that need one shared cap must treat
    /// the latter as [`SchedError::UnsupportedPlatform`], which
    /// [`Platform::has_shared_memory`] distinguishes.
    pub fn memory_cap(&self) -> Option<f64> {
        match self.domains.as_slice() {
            [d] if (0..self.classes.len()).all(|c| d.classes.contains(&c)) => Some(d.capacity),
            _ => None,
        }
    }

    /// Whether every processor allocates from one shared memory: no domains
    /// at all, or a single domain covering every class.
    pub fn has_shared_memory(&self) -> bool {
        self.domains.is_empty() || self.memory_cap().is_some()
    }

    /// Whether every processor runs at speed `1.0` (the paper's model).
    pub fn is_unit_speed(&self) -> bool {
        self.classes.iter().all(|c| c.speed == 1.0)
    }

    /// The common speed when all classes run equally fast, `None` when the
    /// platform mixes speeds.
    pub fn uniform_speed(&self) -> Option<f64> {
        let speed = self.classes.first().map_or(1.0, |c| c.speed);
        self.classes
            .iter()
            .all(|c| c.speed == speed)
            .then_some(speed)
    }

    /// Whether the platform is expressible in the flat legacy shape
    /// `(processors, optional cap)`: one unit-speed class and at most one
    /// all-covering domain. Flat platforms keep every record and schedule
    /// byte-identical to the homogeneous API.
    pub fn is_flat(&self) -> bool {
        self.classes.len() == 1 && self.is_unit_speed() && self.has_shared_memory()
    }

    /// Class index of processor `proc`.
    ///
    /// # Panics
    ///
    /// Panics when `proc >= self.processors()`.
    pub fn class_of(&self, proc: u32) -> usize {
        let mut first = 0;
        for (k, c) in self.classes.iter().enumerate() {
            first += c.count;
            if proc < first {
                return k;
            }
        }
        panic!("processor {proc} out of range (platform has {first})");
    }

    /// Speed of processor `proc`.
    ///
    /// # Panics
    ///
    /// Panics when `proc >= self.processors()`.
    pub fn speed_of(&self, proc: u32) -> f64 {
        self.classes[self.class_of(proc)].speed
    }

    /// Memory domain of processor `proc`, `None` when its class belongs to
    /// no domain (unbounded memory).
    ///
    /// # Panics
    ///
    /// Panics when `proc >= self.processors()`.
    pub fn domain_of(&self, proc: u32) -> Option<usize> {
        let class = self.class_of(proc);
        self.domains.iter().position(|d| d.classes.contains(&class))
    }

    /// Clears `out` and fills it with one speed per processor, in processor
    /// index order (`out.len() == self.processors()` afterwards).
    pub fn fill_speeds(&self, out: &mut Vec<f64>) {
        out.clear();
        for c in &self.classes {
            out.extend(std::iter::repeat(c.speed).take(c.count as usize));
        }
    }

    /// Checks the platform invariants: at least one processor, finite
    /// positive speeds, non-empty classes, and well-formed domains
    /// (finite non-negative capacity — "unbounded" is spelled by *absence*
    /// of a domain, and a non-finite capacity would corrupt the JSON wire
    /// records — at least one class each, no class in two domains, no
    /// dangling class index).
    pub fn validate(&self) -> Result<(), SchedError> {
        if self.processors() == 0 {
            return Err(SchedError::NoProcessors);
        }
        for (k, c) in self.classes.iter().enumerate() {
            if c.count == 0 {
                return Err(SchedError::EmptyClass { class: k });
            }
            if !c.speed.is_finite() || c.speed <= 0.0 {
                return Err(SchedError::InvalidSpeed {
                    class: k,
                    speed: c.speed,
                });
            }
        }
        let mut claimed = vec![false; self.classes.len()];
        for (k, d) in self.domains.iter().enumerate() {
            if !d.capacity.is_finite() || d.capacity < 0.0 {
                return Err(SchedError::InvalidMemoryCap { cap: d.capacity });
            }
            if d.classes.is_empty() {
                return Err(SchedError::EmptyDomain { domain: k });
            }
            for &c in &d.classes {
                if c >= self.classes.len() {
                    return Err(SchedError::UnknownClass {
                        domain: k,
                        class: c,
                    });
                }
                if claimed[c] {
                    return Err(SchedError::OverlappingDomains { class: c });
                }
                claimed[c] = true;
            }
        }
        Ok(())
    }
}

/// A declarative, not-yet-validated platform description — the parsed form
/// of the CLI's `--speeds COUNTxSPEED,..` / `--domains CAP@CLASSES,..`
/// flags, shared by every front-end that spells platforms as text (the
/// `treesched` CLI, campaign specs, JSON spec files).
///
/// Unlike [`Platform`] itself, a spec is cheap to build from user input and
/// keeps parse errors (`String`, pointing at the offending token) separate
/// from the typed invariant errors of [`Platform::validate`]:
///
/// ```
/// use treesched_core::api::PlatformSpec;
///
/// let spec = PlatformSpec::parse_flags("2x2.0,2x1.0", Some("64@0,32@1")).unwrap();
/// let platform = spec.to_platform();
/// assert_eq!(platform.processors(), 4);
/// assert_eq!(platform.domains().len(), 2);
/// assert!(platform.validate().is_ok());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PlatformSpec {
    /// Processor classes, in declaration order.
    pub classes: Vec<ProcClass>,
    /// Memory domains as `(capacity, class indices)` pairs.
    pub domains: Vec<(f64, Vec<usize>)>,
}

impl PlatformSpec {
    /// The paper's flat machine: `processors` unit-speed processors,
    /// unbounded shared memory.
    pub fn flat(processors: u32) -> PlatformSpec {
        PlatformSpec {
            classes: vec![ProcClass::new(processors, 1.0)],
            domains: Vec::new(),
        }
    }

    /// Parses the CLI flag syntax: `speeds` is a comma-separated list of
    /// `COUNTxSPEED` processor classes (`2x2.0,2x1.0`; a bare `SPEED` means
    /// one processor), `domains` an optional comma-separated list of
    /// `CAP@CLASSES` memory domains with `+`-joined class indices
    /// (`64@0,32@1+2`; a bare `CAP` covers every class). Parse errors only —
    /// invariant checking (positive speeds, domain shapes) stays with
    /// [`Platform::validate`] on the built platform.
    pub fn parse_flags(speeds: &str, domains: Option<&str>) -> Result<PlatformSpec, String> {
        fn num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
            s.parse()
                .map_err(|_| format!("cannot parse {what} from `{s}`"))
        }
        let mut classes = Vec::new();
        for entry in speeds.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                return Err("--speeds needs COUNTxSPEED entries (e.g. 2x2.0,2x1.0)".into());
            }
            let class = match entry.split_once(['x', 'X']) {
                Some((count, speed)) => ProcClass::new(
                    num(count.trim(), "--speeds count")?,
                    num(speed.trim(), "--speeds speed")?,
                ),
                None => ProcClass::new(1, num(entry, "--speeds speed")?),
            };
            classes.push(class);
        }
        let mut parsed_domains = Vec::new();
        if let Some(domains) = domains {
            for entry in domains.split(',') {
                let entry = entry.trim();
                if entry.is_empty() {
                    return Err("--domains needs CAP@CLASSES entries (e.g. 64@0,32@1+2)".into());
                }
                let (cap, ids) = match entry.split_once('@') {
                    Some((cap, list)) => {
                        let mut ids = Vec::new();
                        for id in list.split('+') {
                            ids.push(num(id.trim(), "--domains class index")?);
                        }
                        (cap.trim(), ids)
                    }
                    None => (entry, (0..classes.len()).collect()),
                };
                parsed_domains.push((num(cap, "--domains capacity")?, ids));
            }
        }
        Ok(PlatformSpec {
            classes,
            domains: parsed_domains,
        })
    }

    /// Total processor count across all classes.
    pub fn processors(&self) -> u32 {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// Builds the described [`Platform`] (not yet validated).
    pub fn to_platform(&self) -> Platform {
        let mut platform = Platform::heterogeneous(self.classes.clone());
        for (capacity, classes) in &self.domains {
            platform = platform.with_domain(*capacity, classes);
        }
        platform
    }

    /// Renders the spec back in the flag syntax (`speeds`, `domains`)
    /// suitable for labels and `--speeds`/`--domains` round trips. The
    /// domains string is `None` when the spec declares no domain.
    pub fn flag_strings(&self) -> (String, Option<String>) {
        let speeds = self
            .classes
            .iter()
            .map(|c| format!("{}x{}", c.count, c.speed))
            .collect::<Vec<_>>()
            .join(",");
        let domains = if self.domains.is_empty() {
            None
        } else {
            Some(
                self.domains
                    .iter()
                    .map(|(cap, ids)| {
                        let ids: Vec<String> = ids.iter().map(|c| c.to_string()).collect();
                        format!("{cap}@{}", ids.join("+"))
                    })
                    .collect::<Vec<_>>()
                    .join(","),
            )
        };
        (speeds, domains)
    }
}

/// A borrowed scheduling problem: which tree, on which platform, with which
/// sequential sub-algorithm.
#[derive(Clone, Debug)]
pub struct Request<'a> {
    /// The task tree to schedule.
    pub tree: &'a TaskTree,
    /// The target platform.
    pub platform: Platform,
    /// Sequential memory-minimizing sub-algorithm used as the reference
    /// traversal (subtree phases, activation orders, leaf tie-breaks).
    pub seq: SeqAlgo,
    /// Seed for randomized schedulers (the `RandomList` baseline).
    pub seed: u64,
}

impl<'a> Request<'a> {
    /// A request with the default sequential sub-algorithm and seed.
    pub fn new(tree: &'a TaskTree, platform: Platform) -> Request<'a> {
        Request {
            tree,
            platform,
            seq: SeqAlgo::default(),
            seed: 42,
        }
    }

    /// Returns the request with a different sequential sub-algorithm.
    pub fn with_seq(mut self, seq: SeqAlgo) -> Request<'a> {
        self.seq = seq;
        self
    }

    /// Returns the request with a different randomization seed.
    pub fn with_seed(mut self, seed: u64) -> Request<'a> {
        self.seed = seed;
        self
    }

    /// Checks the request invariants shared by every scheduler.
    pub fn validate(&self) -> Result<(), SchedError> {
        self.platform.validate()?;
        if self.tree.is_empty() {
            return Err(SchedError::EmptyTree);
        }
        Ok(())
    }
}

/// An owned, thread-movable scheduling problem: [`Request`] with the tree
/// behind an [`Arc`] instead of a borrow.
///
/// `Request` borrows its tree, which keeps one-shot callers allocation-free
/// but pins the request to the tree's lifetime. Serving engines that move
/// work across worker threads (see the `treesched_serve` crate) need the
/// problem to be `'static` and cheap to clone — cloning an `OwnedRequest`
/// copies an `Arc` pointer, never the tree. Requests built from the same
/// `Arc` share one tree, so per-tree [`Scratch`] caches hit across them.
#[derive(Clone, Debug)]
pub struct OwnedRequest {
    /// The task tree to schedule, shared across clones.
    pub tree: Arc<TaskTree>,
    /// The target platform.
    pub platform: Platform,
    /// Sequential sub-algorithm choice (see [`Request::seq`]).
    pub seq: SeqAlgo,
    /// Seed for randomized schedulers (see [`Request::seed`]).
    pub seed: u64,
}

impl OwnedRequest {
    /// An owned request with the default sequential sub-algorithm and seed.
    pub fn new(tree: Arc<TaskTree>, platform: Platform) -> OwnedRequest {
        OwnedRequest {
            tree,
            platform,
            seq: SeqAlgo::default(),
            seed: 42,
        }
    }

    /// Returns the request with a different sequential sub-algorithm.
    pub fn with_seq(mut self, seq: SeqAlgo) -> OwnedRequest {
        self.seq = seq;
        self
    }

    /// Returns the request with a different randomization seed.
    pub fn with_seed(mut self, seed: u64) -> OwnedRequest {
        self.seed = seed;
        self
    }

    /// The borrowed view every [`Scheduler`] consumes.
    pub fn as_request(&self) -> Request<'_> {
        Request {
            tree: &self.tree,
            platform: self.platform.clone(),
            seq: self.seq,
            seed: self.seed,
        }
    }

    /// Checks the request invariants shared by every scheduler.
    pub fn validate(&self) -> Result<(), SchedError> {
        self.as_request().validate()
    }
}

/// Side observations a scheduler reports alongside its schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Diagnostics {
    /// Peak memory of the reference sequential traversal the scheduler used
    /// (the paper's memory reference when [`Request::seq`] is the default).
    pub seq_peak: Option<f64>,
    /// Forced admissions over the memory cap (memory-capped schedulers
    /// only; `Some(0)` means the cap was honored throughout).
    pub cap_violations: Option<usize>,
}

/// A successful scheduling run: the schedule, its validated evaluation, and
/// diagnostics. The evaluation is always present — every outcome returned
/// through this API has passed [`Schedule::validate_on`] for its request's
/// platform.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The produced schedule.
    pub schedule: Schedule,
    /// Joint makespan/peak-memory evaluation of the schedule (the peak is
    /// platform-global).
    pub eval: EvalResult,
    /// Peak memory per platform memory domain, in [`Platform::domains`]
    /// order. Empty for flat platforms (where the single-domain peak equals
    /// [`EvalResult::peak_memory`]) and for platforms without domains.
    pub domain_peaks: Vec<f64>,
    /// Scheduler-specific observations.
    pub diagnostics: Diagnostics,
}

/// A named scalar measurement extractable from an [`Outcome`] — the metric
/// vocabulary of campaign specs (`--metrics`) and JSON records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Finish time of the schedule.
    Makespan,
    /// Platform-global peak memory.
    PeakMemory,
    /// Sequential work over makespan ([`crate::Schedule::speedup`]).
    Speedup,
    /// Average processor utilization ([`crate::Schedule::utilization`]).
    Utilization,
    /// Forced cap admissions (memory-capped schedulers only).
    CapViolations,
    /// Largest per-domain peak (platforms with memory domains only).
    MaxDomainPeak,
    /// Wall-clock duration of the scheduler call in microseconds. Carried
    /// by the serving layer (median over its timing repetitions), not
    /// extractable from an [`Outcome`] — [`Outcome::metric`] returns
    /// `None` for it.
    TimeUs,
}

impl Metric {
    /// Every metric, in canonical order.
    pub const ALL: [Metric; 7] = [
        Metric::Makespan,
        Metric::PeakMemory,
        Metric::Speedup,
        Metric::Utilization,
        Metric::CapViolations,
        Metric::MaxDomainPeak,
        Metric::TimeUs,
    ];

    /// The stable snake_case name used in flags and JSON records.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Makespan => "makespan",
            Metric::PeakMemory => "peak_memory",
            Metric::Speedup => "speedup",
            Metric::Utilization => "utilization",
            Metric::CapViolations => "cap_violations",
            Metric::MaxDomainPeak => "max_domain_peak",
            Metric::TimeUs => "time_us",
        }
    }

    /// Parses a metric by its [`Metric::name`].
    pub fn by_name(name: &str) -> Option<Metric> {
        Metric::ALL.into_iter().find(|m| m.name() == name)
    }
}

impl Outcome {
    /// Extracts `metric` from this outcome; `None` when the outcome does
    /// not carry it (no cap in force, no memory domains declared).
    pub fn metric(&self, metric: Metric) -> Option<f64> {
        match metric {
            Metric::Makespan => Some(self.eval.makespan),
            Metric::PeakMemory => Some(self.eval.peak_memory),
            Metric::Speedup => Some(self.schedule.speedup()),
            Metric::Utilization => Some(self.schedule.utilization()),
            Metric::CapViolations => self.diagnostics.cap_violations.map(|v| v as f64),
            Metric::MaxDomainPeak => self.domain_peaks.iter().copied().max_by(f64::total_cmp),
            Metric::TimeUs => None, // timing lives in the serving layer
        }
    }
}

// ---------------------------------------------------------------------------
// Scratch
// ---------------------------------------------------------------------------

/// Reusable working memory for [`Scheduler::schedule`] calls.
///
/// A campaign runs thousands of `(tree, p, scheduler)` scenarios; `Scratch`
/// keeps the allocations of one call alive for the next:
///
/// * the **reference traversal** (order, its peak, and node positions) is
///   cached per `(tree, SeqAlgo)` — every scheduler and every processor
///   count on the same tree reuses it;
/// * node **depths** and **weighted depths** are cached per tree;
/// * the encoded **priority keys** and the list scheduler's queues/tables
///   (see [`ListScratch`]) are cleared, not re-allocated.
///
/// Trees are identified by a structural hash (parents + weights), so the
/// caches invalidate automatically when a different tree arrives.
#[derive(Default)]
pub struct Scratch {
    tree_hash: u64,
    traversal_algo: Option<SeqAlgo>,
    order: Vec<NodeId>,
    pos: Vec<usize>,
    seq_peak: f64,
    depths: Vec<u32>,
    wdepths: Vec<f64>,
    subtree_w: Vec<f64>,
    keys: Vec<Key3>,
    speeds: Vec<f64>,
    list: ListScratch,
    sub: SubtreeScratch,
    stats: ScratchStats,
}

/// Cache-effectiveness counters of a [`Scratch`], for serving engines and
/// benchmarks that report how much work batching avoided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Reference traversals actually computed (cache misses).
    pub traversal_computes: u64,
    /// Traversal requests answered from the per-tree cache (hits).
    pub traversal_reuses: u64,
    /// Subtrees scheduled through a borrowed view (no clone allocated).
    pub subtree_views: u64,
    /// Subtrees scheduled through a cloned `TaskTree` (the `LiuExact`
    /// fallback — the only remaining clone path).
    pub subtree_clones: u64,
}

impl ScratchStats {
    /// Field-wise sum, for aggregating over a pool of scratches.
    pub fn merged(self, other: ScratchStats) -> ScratchStats {
        ScratchStats {
            traversal_computes: self.traversal_computes + other.traversal_computes,
            traversal_reuses: self.traversal_reuses + other.traversal_reuses,
            subtree_views: self.subtree_views + other.subtree_views,
            subtree_clones: self.subtree_clones + other.subtree_clones,
        }
    }
}

/// Structural hash of a tree: parents and weight bits through splitmix64
/// mixing, never 0.
///
/// [`Scratch`] uses it to invalidate its per-tree caches; sharded serving
/// engines use it to route same-tree requests to the worker whose caches
/// are already warm. Equal trees (same shape and weights) hash equal even
/// when they are distinct allocations.
pub fn tree_fingerprint(tree: &TaskTree) -> u64 {
    #[inline]
    fn mix(h: u64, v: u64) -> u64 {
        let mut z = h ^ v.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    let mut h = mix(0x7ee5_c0de, tree.len() as u64);
    h = mix(h, tree.root().0 as u64);
    for i in tree.ids() {
        let parent = tree.parent(i).map_or(u64::MAX, |p| p.0 as u64);
        h = mix(h, parent);
        h = mix(h, tree.work(i).to_bits());
        h = mix(h, tree.output(i).to_bits());
        h = mix(h, tree.exec(i).to_bits());
    }
    // 0 is the "empty" sentinel of a fresh Scratch
    h | 1
}

impl Scratch {
    /// A fresh scratch with empty caches.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// Invalidates every cache if `tree` differs from the cached one.
    fn sync(&mut self, tree: &TaskTree) {
        let h = tree_fingerprint(tree);
        if self.tree_hash != h {
            self.tree_hash = h;
            self.traversal_algo = None;
            self.order.clear();
            self.pos.clear();
            self.seq_peak = 0.0;
            self.depths.clear();
            self.wdepths.clear();
            self.subtree_w.clear();
        }
    }

    fn ensure_traversal(&mut self, tree: &TaskTree, algo: SeqAlgo) {
        self.sync(tree);
        if self.traversal_algo == Some(algo) {
            self.stats.traversal_reuses += 1;
        } else {
            self.stats.traversal_computes += 1;
            let tr = algo.traversal(tree);
            self.order = tr.order;
            self.seq_peak = tr.peak;
            self.pos.clear();
            self.pos.resize(tree.len(), 0);
            for (k, &v) in self.order.iter().enumerate() {
                self.pos[v.index()] = k;
            }
            self.traversal_algo = Some(algo);
        }
    }

    fn ensure_depths(&mut self, tree: &TaskTree) {
        self.sync(tree);
        if self.depths.len() != tree.len() {
            self.depths = tree.depths();
        }
    }

    fn ensure_wdepths(&mut self, tree: &TaskTree) {
        self.sync(tree);
        if self.wdepths.len() != tree.len() {
            self.wdepths = tree.weighted_depths();
        }
    }

    fn ensure_subtree_work(&mut self, tree: &TaskTree) {
        self.sync(tree);
        if self.subtree_w.len() != tree.len() {
            self.subtree_w = tree.subtree_work();
        }
    }

    /// Cache-effectiveness counters accumulated over the scratch's
    /// lifetime (they survive tree changes; only the caches invalidate).
    pub fn stats(&self) -> ScratchStats {
        ScratchStats {
            subtree_views: self.sub.subtree_views(),
            subtree_clones: self.sub.subtree_clones(),
            ..self.stats
        }
    }

    /// The cached reference traversal of `tree` under `algo`: the execution
    /// order and its sequential peak memory. Computes it on the first call
    /// per `(tree, algo)` and reuses it afterwards. Available to custom
    /// [`Scheduler`] implementations.
    pub fn traversal(&mut self, tree: &TaskTree, algo: SeqAlgo) -> (&[NodeId], f64) {
        self.ensure_traversal(tree, algo);
        (&self.order, self.seq_peak)
    }

    /// Event-based list scheduling with reused buffers: builds one encoded
    /// key per node with `key` and runs [`list_schedule_reusing`].
    /// The building block for custom list schedulers on top of this API.
    ///
    /// # Panics
    ///
    /// Panics when `p == 0` (checked upstream by [`Request::validate`]).
    pub fn run_list_schedule<F: FnMut(NodeId) -> Key3>(
        &mut self,
        tree: &TaskTree,
        p: u32,
        mut key: F,
    ) -> Schedule {
        self.sync(tree);
        self.keys.clear();
        for i in tree.ids() {
            self.keys.push(key(i));
        }
        list_schedule_reusing(tree, p, &self.keys, &mut self.list)
    }

    /// [`Scratch::run_list_schedule`] on an explicit [`Platform`]: on
    /// unit-speed platforms it is exactly the uniform path; on mixed-speed
    /// platforms each ready task goes to the free processor where it
    /// finishes earliest. Custom [`Scheduler`] implementations built on
    /// this helper handle heterogeneous requests for free.
    ///
    /// # Panics
    ///
    /// Panics when the platform has no processors (checked upstream by
    /// [`Request::validate`]).
    pub fn run_list_schedule_on<F: FnMut(NodeId) -> Key3>(
        &mut self,
        tree: &TaskTree,
        platform: &Platform,
        mut key: F,
    ) -> Schedule {
        self.sync(tree);
        self.keys.clear();
        for i in tree.ids() {
            self.keys.push(key(i));
        }
        if platform.is_unit_speed() {
            list_schedule_reusing(tree, platform.processors(), &self.keys, &mut self.list)
        } else {
            platform.fill_speeds(&mut self.speeds);
            list_schedule_with_speeds(tree, Speeds::Per(&self.speeds), &self.keys, &mut self.list)
        }
    }
}

// ---------------------------------------------------------------------------
// The Scheduler trait
// ---------------------------------------------------------------------------

/// A scheduling algorithm for tree-shaped task graphs on a [`Platform`]:
/// anything that turns a [`Request`] into an [`Outcome`]. Schedulers that
/// cannot handle a platform shape (mixed speeds, split memory) must return
/// [`SchedError::UnsupportedPlatform`] rather than mis-schedule.
///
/// Implementations must be deterministic for a given request (randomized
/// schedulers draw from [`Request::seed`]) and must return schedules that
/// pass [`Schedule::validate_on`] for the request's platform — the
/// built-ins funnel their result through [`try_evaluate_on`], surfacing
/// internal bugs as [`SchedError::InvalidSchedule`] instead of panicking.
pub trait Scheduler: Send + Sync {
    /// Canonical name (stable across releases; the registry key).
    fn name(&self) -> &'static str;

    /// One-line human description for listings.
    fn description(&self) -> &'static str {
        ""
    }

    /// Builds and evaluates a schedule for `req`, using `scratch` for
    /// reusable working memory.
    fn schedule(&self, req: &Request<'_>, scratch: &mut Scratch) -> Result<Outcome, SchedError>;

    /// Convenience: [`Scheduler::schedule`] with a throwaway scratch.
    fn schedule_once(&self, req: &Request<'_>) -> Result<Outcome, SchedError> {
        self.schedule(req, &mut Scratch::new())
    }
}

/// Validates + evaluates `schedule` on the request's platform and bundles
/// the outcome. Per-domain peaks are computed only for non-flat platforms —
/// on a flat platform the single-domain peak is the global peak already.
fn finish(
    name: &str,
    req: &Request<'_>,
    schedule: Schedule,
    diagnostics: Diagnostics,
) -> Result<Outcome, SchedError> {
    let (tree, platform) = (req.tree, &req.platform);
    let eval = try_evaluate_on(tree, &schedule, platform).map_err(|error| {
        SchedError::InvalidSchedule {
            scheduler: name.to_string(),
            error,
        }
    })?;
    let domain_peaks = if platform.is_flat() {
        Vec::new()
    } else {
        schedule.domain_peaks(tree, platform)
    };
    Ok(Outcome {
        schedule,
        eval,
        domain_peaks,
        diagnostics,
    })
}

/// Divides every placement instant by `speed`, turning a unit-time schedule
/// into its equal-speed counterpart (a no-op at speed `1.0`, so uniform
/// platforms stay bit-identical).
fn scale_times(schedule: &mut Schedule, speed: f64) {
    if speed != 1.0 {
        for pl in &mut schedule.placements {
            pl.start /= speed;
            pl.finish /= speed;
        }
    }
}

// ---------------------------------------------------------------------------
// Built-in scheduler wrappers
// ---------------------------------------------------------------------------

/// `ParSubtrees` / `ParSubtreesOptim` (paper §5.1).
struct ParSubtreesSched {
    optim: bool,
}

impl Scheduler for ParSubtreesSched {
    fn name(&self) -> &'static str {
        if self.optim {
            "ParSubtreesOptim"
        } else {
            "ParSubtrees"
        }
    }

    fn description(&self) -> &'static str {
        if self.optim {
            "ParSubtrees with LPT allocation of all subtrees; better makespan, slightly more memory"
        } else {
            "concurrent subtrees + sequential remainder; memory-focused, M <= (p+1)*M_seq"
        }
    }

    fn schedule(&self, req: &Request<'_>, scratch: &mut Scratch) -> Result<Outcome, SchedError> {
        req.validate()?;
        let (tree, p) = (req.tree, req.platform.processors());
        // ParSubtrees reasons in whole-subtree work units: a mixed-speed
        // platform would need speed-aware splitting, so refuse rather than
        // place subtrees as if processors were interchangeable. Equal-speed
        // platforms are the unit-time schedule with every instant rescaled.
        let Some(speed) = req.platform.uniform_speed() else {
            return Err(SchedError::UnsupportedPlatform {
                scheduler: self.name(),
                reason: "subtree placement requires equal-speed processors",
            });
        };
        scratch.ensure_traversal(tree, req.seq);
        scratch.ensure_subtree_work(tree);
        let mut schedule = if self.optim {
            par_subtrees_optim_with_order_scratch(
                tree,
                p,
                req.seq,
                &scratch.order,
                &scratch.subtree_w,
                &mut scratch.sub,
            )
        } else {
            par_subtrees_with_order_scratch(
                tree,
                p,
                req.seq,
                &scratch.order,
                &scratch.subtree_w,
                &mut scratch.sub,
            )
        };
        scale_times(&mut schedule, speed);
        let diag = Diagnostics {
            seq_peak: Some(scratch.seq_peak),
            cap_violations: None,
        };
        finish(self.name(), req, schedule, diag)
    }
}

/// Which priority scheme a [`ListSched`] uses.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ListKind {
    /// `ParInnerFirst` (paper §5.2).
    InnerFirst,
    /// `ParDeepestFirst` (paper §5.3).
    DeepestFirst,
    /// Critical-path baseline (no inner/leaf preference, id ties).
    Cp,
    /// FIFO/no-priority baseline.
    Fifo,
    /// Seeded random-priority baseline.
    Random,
}

struct ListSched {
    kind: ListKind,
}

impl Scheduler for ListSched {
    fn name(&self) -> &'static str {
        match self.kind {
            ListKind::InnerFirst => "ParInnerFirst",
            ListKind::DeepestFirst => "ParDeepestFirst",
            ListKind::Cp => "CpList",
            ListKind::Fifo => "FifoList",
            ListKind::Random => "RandomList",
        }
    }

    fn description(&self) -> &'static str {
        match self.kind {
            ListKind::InnerFirst => {
                "list scheduling, inner nodes first then postorder leaves; balanced"
            }
            ListKind::DeepestFirst => "list scheduling along the critical path; makespan-focused",
            ListKind::Cp => "baseline: critical-path priority, no paper tie-breaks",
            ListKind::Fifo => "baseline: ready tasks in id order, no priority",
            ListKind::Random => "baseline: seeded random priorities",
        }
    }

    fn schedule(&self, req: &Request<'_>, scratch: &mut Scratch) -> Result<Outcome, SchedError> {
        req.validate()?;
        let (tree, p) = (req.tree, req.platform.processors());
        scratch.ensure_traversal(tree, req.seq);
        match self.kind {
            ListKind::InnerFirst => scratch.ensure_depths(tree),
            ListKind::DeepestFirst | ListKind::Cp => scratch.ensure_wdepths(tree),
            ListKind::Fifo | ListKind::Random => {}
        }
        let Scratch {
            pos,
            depths,
            wdepths,
            keys,
            speeds,
            list,
            seq_peak,
            ..
        } = scratch;
        keys.clear();
        match self.kind {
            ListKind::InnerFirst => keys.extend(tree.ids().map(|i| {
                if tree.is_leaf(i) {
                    (1u64, pos[i.index()] as u64, 0u64)
                } else {
                    (
                        0u64,
                        (u32::MAX - depths[i.index()]) as u64,
                        pos[i.index()] as u64,
                    )
                }
            })),
            ListKind::DeepestFirst => keys.extend(tree.ids().map(|i| {
                (
                    key_from_f64(-wdepths[i.index()]),
                    u64::from(tree.is_leaf(i)),
                    pos[i.index()] as u64,
                )
            })),
            ListKind::Cp => keys.extend(
                tree.ids()
                    .map(|i| (key_from_f64(-wdepths[i.index()]), i.0 as u64, 0u64)),
            ),
            ListKind::Fifo => keys.extend(tree.ids().map(|i| (i.0 as u64, 0u64, 0u64))),
            ListKind::Random => keys.extend(
                tree.ids()
                    .map(|i| (splitmix_key(req.seed, i.0), i.0 as u64, 0u64)),
            ),
        }
        // list scheduling is natively heterogeneous: the priority queue is
        // speed-independent and each ready task takes the free processor
        // where it finishes earliest
        let schedule = if req.platform.is_unit_speed() {
            list_schedule_reusing(tree, p, keys, list)
        } else {
            req.platform.fill_speeds(speeds);
            list_schedule_with_speeds(tree, Speeds::Per(speeds), keys, list)
        };
        let diag = Diagnostics {
            seq_peak: Some(*seq_peak),
            cap_violations: None,
        };
        finish(self.name(), req, schedule, diag)
    }
}

/// Memory-capped list scheduling (paper §7 future work) under a fixed
/// admission policy. Requires [`Platform::memory_cap`].
struct MemBoundedSched {
    policy: Admission,
}

impl Scheduler for MemBoundedSched {
    fn name(&self) -> &'static str {
        match self.policy {
            Admission::SequentialOrder => "MemBoundedSeq",
            Admission::Greedy => "MemBoundedGreedy",
        }
    }

    fn description(&self) -> &'static str {
        match self.policy {
            Admission::SequentialOrder => {
                "memory-capped, sequential activation order; never exceeds a feasible cap"
            }
            Admission::Greedy => {
                "memory-capped, greedy admission; more parallel but may violate the cap"
            }
        }
    }

    fn schedule(&self, req: &Request<'_>, scratch: &mut Scratch) -> Result<Outcome, SchedError> {
        req.validate()?;
        let (tree, p) = (req.tree, req.platform.processors());
        // the admission policies reason against ONE shared resident-memory
        // counter in reference-traversal time; refuse shapes they would
        // mis-model rather than silently ignore domains or speeds
        let Some(speed) = req.platform.uniform_speed() else {
            return Err(SchedError::UnsupportedPlatform {
                scheduler: self.name(),
                reason: "admission order is defined in equal-speed time",
            });
        };
        if !req.platform.has_shared_memory() {
            return Err(SchedError::UnsupportedPlatform {
                scheduler: self.name(),
                reason: "enforces one shared memory cap, not per-domain capacities",
            });
        }
        let cap = req
            .platform
            .memory_cap()
            .ok_or(SchedError::MissingMemoryCap {
                scheduler: self.name(),
            })?;
        scratch.ensure_traversal(tree, req.seq);
        let mut run = mem_bounded_schedule(tree, p, &scratch.order, cap, self.policy);
        // equal speeds rescale every instant uniformly, preserving the
        // event order the admission decisions were made in
        scale_times(&mut run.schedule, speed);
        let diag = Diagnostics {
            seq_peak: Some(scratch.seq_peak),
            cap_violations: Some(run.violations),
        };
        finish(self.name(), req, run.schedule, diag)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// One registered scheduler: the implementation, its aliases, and whether
/// it belongs to the paper's comparison campaign (Table 1, Figures 6–8).
pub struct RegistryEntry {
    scheduler: Box<dyn Scheduler>,
    aliases: Vec<&'static str>,
    campaign: bool,
}

impl RegistryEntry {
    /// The scheduler.
    pub fn scheduler(&self) -> &dyn Scheduler {
        self.scheduler.as_ref()
    }

    /// Canonical name.
    pub fn name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// One-line description.
    pub fn description(&self) -> &'static str {
        self.scheduler.description()
    }

    /// Accepted aliases (canonical name excluded).
    pub fn aliases(&self) -> &[&'static str] {
        &self.aliases
    }

    /// Whether the scheduler participates in the default experiment
    /// campaign.
    pub fn in_campaign(&self) -> bool {
        self.campaign
    }
}

/// Name-based scheduler lookup: canonical names and aliases, matched
/// case-insensitively. [`SchedulerRegistry::standard`] holds every built-in
/// scheduler; front-ends resolve user input exclusively through this.
#[derive(Default)]
pub struct SchedulerRegistry {
    entries: Vec<RegistryEntry>,
}

impl SchedulerRegistry {
    /// An empty registry.
    pub fn new() -> SchedulerRegistry {
        SchedulerRegistry::default()
    }

    /// The built-in registry: the paper's four heuristics (campaign
    /// members), the three textbook baselines, and the two memory-capped
    /// wrappers.
    pub fn standard() -> SchedulerRegistry {
        let mut r = SchedulerRegistry::new();
        let must = |res: Result<(), SchedError>| res.expect("built-in names are unique");
        must(r.register(
            Box::new(ParSubtreesSched { optim: false }),
            &["subtrees"],
            true,
        ));
        must(r.register(
            Box::new(ParSubtreesSched { optim: true }),
            &["subtrees-optim", "optim"],
            true,
        ));
        must(r.register(
            Box::new(ListSched {
                kind: ListKind::InnerFirst,
            }),
            &["inner", "inner-first"],
            true,
        ));
        must(r.register(
            Box::new(ListSched {
                kind: ListKind::DeepestFirst,
            }),
            &["deepest", "deepest-first"],
            true,
        ));
        must(r.register(
            Box::new(ListSched { kind: ListKind::Cp }),
            &["cp", "cp-list"],
            false,
        ));
        must(r.register(
            Box::new(ListSched {
                kind: ListKind::Fifo,
            }),
            &["fifo", "fifo-list"],
            false,
        ));
        must(r.register(
            Box::new(ListSched {
                kind: ListKind::Random,
            }),
            &["random", "random-list"],
            false,
        ));
        must(r.register(
            Box::new(MemBoundedSched {
                policy: Admission::SequentialOrder,
            }),
            &["membound", "capped", "mem-seq"],
            false,
        ));
        must(r.register(
            Box::new(MemBoundedSched {
                policy: Admission::Greedy,
            }),
            &["mem-greedy", "greedy-capped"],
            false,
        ));
        r
    }

    /// Registers a scheduler under its canonical name plus `aliases`.
    /// `campaign` adds it to [`SchedulerRegistry::campaign`], i.e. the
    /// default experiment sweep.
    pub fn register(
        &mut self,
        scheduler: Box<dyn Scheduler>,
        aliases: &[&'static str],
        campaign: bool,
    ) -> Result<(), SchedError> {
        for name in std::iter::once(scheduler.name()).chain(aliases.iter().copied()) {
            if self.resolve(name).is_ok() {
                return Err(SchedError::DuplicateName {
                    name: name.to_string(),
                });
            }
        }
        self.entries.push(RegistryEntry {
            scheduler,
            aliases: aliases.to_vec(),
            campaign,
        });
        Ok(())
    }

    /// Resolves `name` (canonical or alias, case-insensitive) to its entry.
    pub fn resolve(&self, name: &str) -> Result<&RegistryEntry, SchedError> {
        self.entries
            .iter()
            .find(|e| {
                e.name().eq_ignore_ascii_case(name)
                    || e.aliases.iter().any(|a| a.eq_ignore_ascii_case(name))
            })
            .ok_or_else(|| SchedError::UnknownScheduler {
                name: name.to_string(),
                known: self.names().iter().map(|s| s.to_string()).collect(),
            })
    }

    /// Resolves `name` to its scheduler.
    pub fn get(&self, name: &str) -> Result<&dyn Scheduler, SchedError> {
        Ok(self.resolve(name)?.scheduler())
    }

    /// All entries, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &RegistryEntry> {
        self.entries.iter()
    }

    /// The campaign members (the schedulers compared in Table 1 and
    /// Figures 6–8), in registration order.
    pub fn campaign(&self) -> impl Iterator<Item = &RegistryEntry> {
        self.entries.iter().filter(|e| e.campaign)
    }

    /// Canonical names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{cp_list_schedule, fifo_list_schedule, random_list_schedule};
    use crate::heuristics::Heuristic;
    use crate::schedule::evaluate;
    use treesched_model::TaskTree;

    fn sample() -> TaskTree {
        TaskTree::complete(3, 4, 1.0, 2.0, 0.5)
    }

    #[test]
    fn platform_spec_parses_the_flag_syntax() {
        let spec = PlatformSpec::parse_flags("2x2.0,2x1.0", Some("64@0,32@1")).unwrap();
        assert_eq!(
            spec.classes,
            vec![ProcClass::new(2, 2.0), ProcClass::new(2, 1.0)]
        );
        assert_eq!(spec.domains, vec![(64.0, vec![0]), (32.0, vec![1])]);
        assert_eq!(spec.processors(), 4);
        let platform = spec.to_platform();
        assert!(platform.validate().is_ok());
        assert_eq!(platform.domains().len(), 2);
        // a bare SPEED is one processor; a bare CAP covers every class
        let spec = PlatformSpec::parse_flags("2.0, 1x1.0", Some("100")).unwrap();
        assert_eq!(
            spec.classes,
            vec![ProcClass::new(1, 2.0), ProcClass::new(1, 1.0)]
        );
        assert_eq!(spec.domains, vec![(100.0, vec![0, 1])]);
        assert_eq!(spec.to_platform().memory_cap(), Some(100.0));
        // `+`-joined class lists
        let spec = PlatformSpec::parse_flags("1x2.0,1x1.0,1x1.0", Some("8@1+2")).unwrap();
        assert_eq!(spec.domains, vec![(8.0, vec![1, 2])]);
        // flat spelling matches Platform::new bit for bit
        assert_eq!(PlatformSpec::flat(4).to_platform(), Platform::new(4));
    }

    #[test]
    fn platform_spec_flag_strings_round_trip() {
        for (speeds, domains) in [
            ("4x1", None),
            ("2x2,2x1", None),
            ("2x2,2x1", Some("64@0,32@1")),
            ("1x1.5,3x0.5", Some("100@0+1")),
        ] {
            let spec = PlatformSpec::parse_flags(speeds, domains).unwrap();
            let (s, d) = spec.flag_strings();
            assert_eq!(s, speeds);
            assert_eq!(d.as_deref(), domains);
            assert_eq!(
                PlatformSpec::parse_flags(&s, d.as_deref()).unwrap(),
                spec,
                "{speeds} {domains:?}"
            );
        }
    }

    #[test]
    fn platform_spec_rejects_malformed_flags() {
        for (speeds, domains, needle) in [
            ("", None, "--speeds"),
            ("2x", None, "--speeds speed"),
            ("x2", None, "--speeds count"),
            ("fast", None, "--speeds speed"),
            ("2x1.0,", None, "--speeds"),
            ("2.5x1.0", None, "--speeds count"),
            ("2x1.0", Some(""), "--domains"),
            ("2x1.0", Some("abc"), "--domains capacity"),
            ("2x1.0", Some("5@"), "--domains class index"),
            ("2x1.0", Some("5@a"), "--domains class index"),
            ("2x1.0", Some("5@0+"), "--domains class index"),
            ("2x1.0", Some("5@-1"), "--domains class index"),
            ("2x1.0", Some("5@0,"), "--domains"),
        ] {
            let err = PlatformSpec::parse_flags(speeds, domains).unwrap_err();
            assert!(
                err.contains(needle),
                "{speeds} {domains:?}: expected `{needle}` in `{err}`"
            );
        }
        // structural junk parses but fails Platform::validate, typed
        let spec = PlatformSpec::parse_flags("2x0", None).unwrap();
        assert!(matches!(
            spec.to_platform().validate(),
            Err(SchedError::InvalidSpeed { .. })
        ));
        let spec = PlatformSpec::parse_flags("2x1.0", Some("5@7")).unwrap();
        assert!(matches!(
            spec.to_platform().validate(),
            Err(SchedError::UnknownClass { .. })
        ));
    }

    #[test]
    fn metrics_extract_from_outcomes_and_round_trip_names() {
        for m in Metric::ALL {
            assert_eq!(Metric::by_name(m.name()), Some(m));
        }
        assert_eq!(Metric::by_name("nosuch"), None);
        let tree = sample();
        let registry = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        let req = Request::new(&tree, Platform::new(4));
        let out = registry
            .get("deepest")
            .unwrap()
            .schedule(&req, &mut scratch)
            .unwrap();
        assert_eq!(out.metric(Metric::Makespan), Some(out.eval.makespan));
        assert_eq!(out.metric(Metric::PeakMemory), Some(out.eval.peak_memory));
        assert_eq!(out.metric(Metric::Speedup), Some(out.schedule.speedup()));
        assert_eq!(
            out.metric(Metric::Utilization),
            Some(out.schedule.utilization())
        );
        // uncapped, domain-less run: the conditional metrics are absent
        assert_eq!(out.metric(Metric::CapViolations), None);
        assert_eq!(out.metric(Metric::MaxDomainPeak), None);
        // capped run fills them in
        let req = Request::new(&tree, Platform::new(4).with_memory_cap(1e9));
        let out = registry
            .get("membound")
            .unwrap()
            .schedule(&req, &mut scratch)
            .unwrap();
        assert_eq!(out.metric(Metric::CapViolations), Some(0.0));
    }

    #[test]
    fn registry_resolves_names_and_aliases_case_insensitively() {
        let r = SchedulerRegistry::standard();
        for (spelling, canonical) in [
            ("ParSubtrees", "ParSubtrees"),
            ("subtrees", "ParSubtrees"),
            ("SUBTREES-OPTIM", "ParSubtreesOptim"),
            ("inner", "ParInnerFirst"),
            ("Deepest", "ParDeepestFirst"),
            ("cp", "CpList"),
            ("fifo", "FifoList"),
            ("random", "RandomList"),
            ("membound", "MemBoundedSeq"),
            ("MEM-GREEDY", "MemBoundedGreedy"),
        ] {
            assert_eq!(r.get(spelling).unwrap().name(), canonical, "{spelling}");
        }
        assert!(matches!(
            r.get("nosuch"),
            Err(SchedError::UnknownScheduler { .. })
        ));
    }

    #[test]
    fn registry_round_trips_every_name_and_alias() {
        let r = SchedulerRegistry::standard();
        assert_eq!(r.names().len(), 9);
        for e in r.iter() {
            assert_eq!(r.get(e.name()).unwrap().name(), e.name());
            for a in e.aliases() {
                assert_eq!(r.get(a).unwrap().name(), e.name(), "alias {a}");
            }
            assert!(!e.description().is_empty(), "{}", e.name());
        }
    }

    #[test]
    fn campaign_is_the_four_paper_heuristics() {
        let r = SchedulerRegistry::standard();
        let names: Vec<&str> = r.campaign().map(|e| e.name()).collect();
        assert_eq!(
            names,
            [
                "ParSubtrees",
                "ParSubtreesOptim",
                "ParInnerFirst",
                "ParDeepestFirst"
            ]
        );
        assert_eq!(
            names,
            Heuristic::ALL.map(|h| h.name()),
            "campaign mirrors Heuristic::ALL"
        );
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        struct Dup;
        impl Scheduler for Dup {
            fn name(&self) -> &'static str {
                "ParSubtrees"
            }
            fn schedule(
                &self,
                _req: &Request<'_>,
                _s: &mut Scratch,
            ) -> Result<Outcome, SchedError> {
                unreachable!()
            }
        }
        let mut r = SchedulerRegistry::standard();
        assert!(matches!(
            r.register(Box::new(Dup), &[], false),
            Err(SchedError::DuplicateName { .. })
        ));
        struct AliasClash;
        impl Scheduler for AliasClash {
            fn name(&self) -> &'static str {
                "Fresh"
            }
            fn schedule(
                &self,
                _req: &Request<'_>,
                _s: &mut Scratch,
            ) -> Result<Outcome, SchedError> {
                unreachable!()
            }
        }
        assert!(matches!(
            r.register(Box::new(AliasClash), &["inner"], false),
            Err(SchedError::DuplicateName { .. })
        ));
    }

    #[test]
    fn api_heuristics_match_legacy_functions() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        for p in [1u32, 2, 5] {
            let req = Request::new(&t, Platform::new(p));
            for h in Heuristic::ALL {
                let legacy = h.schedule(&t, p);
                let out = r
                    .get(h.name())
                    .unwrap()
                    .schedule(&req, &mut scratch)
                    .unwrap();
                assert_eq!(out.schedule, legacy, "{h} p={p}");
                assert_eq!(out.eval, evaluate(&t, &legacy));
            }
        }
    }

    #[test]
    fn api_baselines_match_legacy_functions() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        let p = 3;
        let req = Request::new(&t, Platform::new(p)).with_seed(7);
        let pairs: [(&str, Schedule); 3] = [
            ("cp", cp_list_schedule(&t, p)),
            ("fifo", fifo_list_schedule(&t, p)),
            ("random", random_list_schedule(&t, p, 7)),
        ];
        for (name, legacy) in pairs {
            let out = r.get(name).unwrap().schedule(&req, &mut scratch).unwrap();
            assert_eq!(out.schedule, legacy, "{name}");
        }
    }

    #[test]
    fn scratch_survives_tree_and_algo_changes() {
        // interleave trees and algorithms through one scratch: cached
        // traversals must invalidate correctly (wrong caches would produce
        // invalid schedules, caught by the outcome evaluation)
        let trees = [
            TaskTree::fork(9, 1.0, 1.0, 0.0),
            TaskTree::complete(2, 5, 1.0, 1.0, 0.0),
            TaskTree::chain(12, 2.0, 1.0, 0.5),
        ];
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        for algo in [SeqAlgo::BestPostorder, SeqAlgo::LiuExact] {
            for t in &trees {
                for e in r.iter() {
                    let req =
                        Request::new(t, Platform::new(4).with_memory_cap(1e12)).with_seq(algo);
                    let out = e.scheduler().schedule(&req, &mut scratch).unwrap();
                    assert!(out.schedule.validate(t).is_ok(), "{}", e.name());
                    assert!(out.eval.makespan > 0.0);
                }
            }
        }
    }

    #[test]
    fn owned_request_matches_borrowed_and_moves_across_threads() {
        let tree = Arc::new(sample());
        let r = SchedulerRegistry::standard();
        let owned = OwnedRequest::new(Arc::clone(&tree), Platform::new(3)).with_seed(7);
        let borrowed = Request::new(&tree, Platform::new(3)).with_seed(7);
        let mut scratch = Scratch::new();
        let a = r
            .get("deepest")
            .unwrap()
            .schedule(&owned.as_request(), &mut scratch)
            .unwrap();
        let b = r
            .get("deepest")
            .unwrap()
            .schedule(&borrowed, &mut scratch)
            .unwrap();
        assert_eq!(a.schedule, b.schedule);
        // the whole point of the owned variant: 'static, Send, cheap clone
        let clone = owned.clone();
        let handle = std::thread::spawn(move || {
            let reg = SchedulerRegistry::standard();
            reg.get("deepest")
                .unwrap()
                .schedule(&clone.as_request(), &mut Scratch::new())
                .unwrap()
                .eval
        });
        assert_eq!(handle.join().unwrap(), a.eval);
        assert!(owned.validate().is_ok());
        assert_eq!(
            OwnedRequest::new(tree, Platform::new(0)).validate(),
            Err(SchedError::NoProcessors)
        );
    }

    #[test]
    fn fingerprint_distinguishes_structure_not_allocation() {
        let a = sample();
        let b = sample();
        assert_eq!(tree_fingerprint(&a), tree_fingerprint(&b));
        assert_ne!(
            tree_fingerprint(&a),
            tree_fingerprint(&TaskTree::chain(5, 1.0, 1.0, 0.0))
        );
        assert_ne!(tree_fingerprint(&a), 0, "0 is the empty-scratch sentinel");
    }

    #[test]
    fn scratch_counts_traversal_reuse() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        let req = Request::new(&t, Platform::new(2));
        for _ in 0..3 {
            r.get("deepest")
                .unwrap()
                .schedule(&req, &mut scratch)
                .unwrap();
        }
        let s = scratch.stats();
        assert_eq!(s.traversal_computes, 1);
        assert_eq!(s.traversal_reuses, 2);
        // a different tree misses once, then hits again
        let t2 = TaskTree::chain(6, 1.0, 1.0, 0.0);
        let req2 = Request::new(&t2, Platform::new(2));
        r.get("deepest")
            .unwrap()
            .schedule(&req2, &mut scratch)
            .unwrap();
        r.get("inner")
            .unwrap()
            .schedule(&req2, &mut scratch)
            .unwrap();
        let s2 = scratch.stats();
        assert_eq!(s2.traversal_computes, 2);
        assert_eq!(s2.traversal_reuses, 3);
        assert_eq!(s.merged(s), s.merged(s));
    }

    #[test]
    fn typed_errors_replace_panics() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        // p == 0
        let req = Request::new(&t, Platform::new(0));
        for e in r.iter() {
            assert_eq!(
                e.scheduler().schedule(&req, &mut scratch).unwrap_err(),
                SchedError::NoProcessors,
                "{}",
                e.name()
            );
        }
        // capped scheduler without a cap
        let req = Request::new(&t, Platform::new(2));
        assert_eq!(
            r.get("membound")
                .unwrap()
                .schedule(&req, &mut scratch)
                .unwrap_err(),
            SchedError::MissingMemoryCap {
                scheduler: "MemBoundedSeq"
            }
        );
        // NaN cap
        let req = Request::new(&t, Platform::new(2).with_memory_cap(f64::NAN));
        assert!(matches!(
            r.get("membound").unwrap().schedule(&req, &mut scratch),
            Err(SchedError::InvalidMemoryCap { .. })
        ));
    }

    #[test]
    fn membound_outcome_reports_violations() {
        let t = TaskTree::complete(2, 3, 1.0, 5.0, 2.0);
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        // infeasible cap: completes with violations counted
        let req = Request::new(&t, Platform::new(2).with_memory_cap(0.5));
        let out = r
            .get("membound")
            .unwrap()
            .schedule(&req, &mut scratch)
            .unwrap();
        assert!(out.diagnostics.cap_violations.unwrap() > 0);
        // generous cap: zero violations
        let req = Request::new(&t, Platform::new(2).with_memory_cap(1e12));
        let out = r
            .get("mem-greedy")
            .unwrap()
            .schedule(&req, &mut scratch)
            .unwrap();
        assert_eq!(out.diagnostics.cap_violations, Some(0));
    }

    #[test]
    fn diagnostics_carry_the_memory_reference() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        let req = Request::new(&t, Platform::new(4));
        let out = r
            .get("subtrees")
            .unwrap()
            .schedule(&req, &mut scratch)
            .unwrap();
        assert_eq!(
            out.diagnostics.seq_peak,
            Some(crate::bounds::memory_reference(&t))
        );
    }

    fn fast_slow() -> Platform {
        Platform::heterogeneous(vec![ProcClass::new(2, 2.0), ProcClass::new(2, 1.0)])
    }

    #[test]
    fn platform_accessors_describe_classes_and_domains() {
        let flat = Platform::new(4);
        assert_eq!(flat.processors(), 4);
        assert!(flat.is_flat() && flat.is_unit_speed() && flat.has_shared_memory());
        assert_eq!(flat.memory_cap(), None);
        assert_eq!(flat.uniform_speed(), Some(1.0));

        let capped = Platform::new(3).with_memory_cap(7.5);
        assert_eq!(capped.memory_cap(), Some(7.5));
        assert!(capped.is_flat());
        // re-capping replaces, matching the old `memory_cap = Some(..)`
        assert_eq!(capped.clone().with_memory_cap(9.0).memory_cap(), Some(9.0));

        let het = fast_slow().with_domain(64.0, &[0]).with_domain(32.0, &[1]);
        assert_eq!(het.processors(), 4);
        assert!(!het.is_flat() && !het.is_unit_speed() && !het.has_shared_memory());
        assert_eq!(het.memory_cap(), None, "two domains are not one cap");
        assert_eq!(het.uniform_speed(), None);
        assert_eq!(
            (0..4).map(|p| het.speed_of(p)).collect::<Vec<_>>(),
            [2.0, 2.0, 1.0, 1.0]
        );
        assert_eq!(
            (0..4).map(|p| het.class_of(p)).collect::<Vec<_>>(),
            [0, 0, 1, 1]
        );
        assert_eq!(
            (0..4).map(|p| het.domain_of(p)).collect::<Vec<_>>(),
            [Some(0), Some(0), Some(1), Some(1)]
        );
        let mut speeds = Vec::new();
        het.fill_speeds(&mut speeds);
        assert_eq!(speeds, [2.0, 2.0, 1.0, 1.0]);

        // one domain covering every class IS one shared cap
        let shared = fast_slow().with_domain(100.0, &[0, 1]);
        assert_eq!(shared.memory_cap(), Some(100.0));
        assert!(shared.has_shared_memory() && !shared.is_flat());
        // a partial domain is neither shared nor a cap
        let partial = fast_slow().with_domain(100.0, &[0]);
        assert_eq!(partial.memory_cap(), None);
        assert!(!partial.has_shared_memory());
        assert_eq!(partial.domain_of(3), None, "class 1 is unconstrained");
    }

    #[test]
    fn platform_validation_rejects_bad_speeds_and_domains() {
        // the NaN-cap check generalizes to every shape error, typed
        assert_eq!(
            Platform::heterogeneous(vec![]).validate(),
            Err(SchedError::NoProcessors)
        );
        assert_eq!(
            Platform::heterogeneous(vec![ProcClass::new(2, 1.0), ProcClass::new(0, 1.0)])
                .validate(),
            Err(SchedError::EmptyClass { class: 1 })
        );
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    Platform::heterogeneous(vec![ProcClass::new(2, bad)]).validate(),
                    Err(SchedError::InvalidSpeed { class: 0, .. })
                ),
                "{bad}"
            );
        }
        // non-finite capacities would corrupt the JSON wire records (the
        // legacy flat `cap` wire field already rejects them)
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            assert!(
                matches!(
                    fast_slow().with_domain(bad, &[0]).validate(),
                    Err(SchedError::InvalidMemoryCap { .. })
                ),
                "{bad}"
            );
        }
        assert_eq!(
            fast_slow().with_domain(5.0, &[]).validate(),
            Err(SchedError::EmptyDomain { domain: 0 })
        );
        assert_eq!(
            fast_slow()
                .with_domain(5.0, &[0])
                .with_domain(5.0, &[0])
                .validate(),
            Err(SchedError::OverlappingDomains { class: 0 })
        );
        assert_eq!(
            fast_slow().with_domain(5.0, &[2]).validate(),
            Err(SchedError::UnknownClass {
                domain: 0,
                class: 2
            })
        );
        // schedulers surface the same typed errors through requests
        let t = sample();
        let r = SchedulerRegistry::standard();
        let req = Request::new(
            &t,
            fast_slow().with_domain(5.0, &[0]).with_domain(5.0, &[0]),
        );
        assert_eq!(
            r.get("deepest")
                .unwrap()
                .schedule(&req, &mut Scratch::new())
                .unwrap_err(),
            SchedError::OverlappingDomains { class: 0 }
        );
    }

    #[test]
    fn list_schedulers_run_heterogeneous_platforms() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        let platform = fast_slow().with_domain(1e9, &[0]).with_domain(1e9, &[1]);
        let flat_req = Request::new(&t, Platform::new(4));
        for name in ["inner", "deepest", "cp", "fifo", "random"] {
            let req = Request::new(&t, platform.clone());
            let out = r.get(name).unwrap().schedule(&req, &mut scratch).unwrap();
            assert!(out.schedule.validate_on(&t, &platform).is_ok(), "{name}");
            assert!(
                out.eval.makespan >= crate::bounds::makespan_lower_bound_on(&t, &platform) - 1e-9,
                "{name}"
            );
            assert_eq!(out.domain_peaks.len(), 2, "{name}");
            // each domain holds at most the global peak, and together they
            // cover it (every processor is in a domain here)
            for &peak in &out.domain_peaks {
                assert!(peak <= out.eval.peak_memory + 1e-9, "{name}");
            }
            assert!(
                out.domain_peaks.iter().sum::<f64>() >= out.eval.peak_memory - 1e-9,
                "{name}: domains at their peaks must cover the global peak"
            );
            // faster processors can only help the makespan
            let flat = r
                .get(name)
                .unwrap()
                .schedule(&flat_req, &mut scratch)
                .unwrap();
            assert!(out.eval.makespan <= flat.eval.makespan + 1e-9, "{name}");
        }
    }

    #[test]
    fn subtree_and_capped_schedulers_reject_mixed_speeds() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        let req = Request::new(&t, fast_slow());
        for name in ["subtrees", "optim", "membound", "mem-greedy"] {
            assert!(
                matches!(
                    r.get(name).unwrap().schedule(&req, &mut scratch),
                    Err(SchedError::UnsupportedPlatform { .. })
                ),
                "{name}"
            );
        }
        // membound also refuses split memory even at uniform speed
        let split = Platform::heterogeneous(vec![ProcClass::new(2, 1.0), ProcClass::new(2, 1.0)])
            .with_domain(50.0, &[0])
            .with_domain(50.0, &[1]);
        assert!(matches!(
            r.get("membound")
                .unwrap()
                .schedule(&Request::new(&t, split), &mut scratch),
            Err(SchedError::UnsupportedPlatform { .. })
        ));
    }

    #[test]
    fn equal_speed_platforms_rescale_subtree_and_capped_schedules() {
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        let double = Platform::heterogeneous(vec![ProcClass::new(4, 2.0)]).with_memory_cap(1e9);
        let unit = Platform::new(4).with_memory_cap(1e9);
        for name in ["subtrees", "optim", "membound", "mem-greedy", "deepest"] {
            let fast = r
                .get(name)
                .unwrap()
                .schedule(&Request::new(&t, double.clone()), &mut scratch)
                .unwrap();
            let slow = r
                .get(name)
                .unwrap()
                .schedule(&Request::new(&t, unit.clone()), &mut scratch)
                .unwrap();
            assert!(
                (fast.eval.makespan - slow.eval.makespan / 2.0).abs() < 1e-9,
                "{name}: {} vs {}",
                fast.eval.makespan,
                slow.eval.makespan
            );
            assert_eq!(
                fast.eval.peak_memory, slow.eval.peak_memory,
                "{name}: time scaling must not change memory"
            );
        }
    }

    #[test]
    fn uniform_heterogeneous_spelling_matches_homogeneous_bit_for_bit() {
        // all speeds 1.0 split across two classes + one all-covering domain:
        // every scheduler must produce the exact same Schedule as the flat
        // spelling — the backward-compatibility contract of the redesign
        let t = sample();
        let r = SchedulerRegistry::standard();
        let mut scratch = Scratch::new();
        let cap = crate::bounds::memory_reference(&t);
        let uniform = Platform::heterogeneous(vec![ProcClass::new(1, 1.0), ProcClass::new(3, 1.0)])
            .with_domain(cap, &[0, 1]);
        let flat = Platform::new(4).with_memory_cap(cap);
        for e in r.iter() {
            let a = e
                .scheduler()
                .schedule(
                    &Request::new(&t, uniform.clone()).with_seed(9),
                    &mut scratch,
                )
                .unwrap();
            let b = e
                .scheduler()
                .schedule(&Request::new(&t, flat.clone()).with_seed(9), &mut scratch)
                .unwrap();
            assert_eq!(a.schedule, b.schedule, "{}", e.name());
            assert_eq!(a.eval, b.eval, "{}", e.name());
            // the het spelling additionally reports its single-domain peak,
            // which must equal the global peak
            assert_eq!(a.domain_peaks, vec![a.eval.peak_memory], "{}", e.name());
            assert_eq!(b.domain_peaks, Vec::<f64>::new(), "{}", e.name());
        }
    }

    #[test]
    fn error_messages_are_informative() {
        let r = SchedulerRegistry::standard();
        let e = r.resolve("warp-drive").err().expect("unknown name");
        let msg = e.to_string();
        assert!(msg.contains("warp-drive"));
        assert!(msg.contains("ParSubtrees"), "lists known names: {msg}");
        assert!(SchedError::NoProcessors.to_string().contains("processor"));
    }
}
