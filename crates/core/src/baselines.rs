//! Classic list-scheduling baselines, for component ablations.
//!
//! The paper's `ParInnerFirst`/`ParDeepestFirst` differ from textbook list
//! scheduling in two ingredients: the *inner-before-leaf* preference and
//! the *optimal-postorder* ordering of equal-priority leaves. These
//! baselines isolate those ingredients:
//!
//! * [`cp_list_schedule`] — plain critical-path scheduling (priority =
//!   weighted depth only, no inner/leaf distinction, arbitrary ties);
//! * [`fifo_list_schedule`] — ready tasks served in id order (no priority
//!   at all);
//! * [`random_list_schedule`] — ready tasks in a seeded random order, the
//!   "how bad can a list schedule get" reference.
//!
//! All three inherit Graham's `(2 − 1/p)` makespan guarantee; the
//! interesting axis is memory, where the paper-specific tie-breaks pay off
//! (see the `ablation` experiment binary).

use crate::listsched::{list_schedule, TotalF64};
use crate::schedule::Schedule;
use treesched_model::TaskTree;

/// Critical-path list scheduling: deepest weighted depth first, ties by id.
/// No inner-node preference, no postorder leaf ordering.
pub fn cp_list_schedule(tree: &TaskTree, p: u32) -> Schedule {
    let wdepth = tree.weighted_depths();
    let keys: Vec<(TotalF64, u32)> = tree
        .ids()
        .map(|i| (TotalF64(-wdepth[i.index()]), i.0))
        .collect();
    list_schedule(tree, p, &keys)
}

/// FIFO/no-priority list scheduling: ready tasks in node-id order.
pub fn fifo_list_schedule(tree: &TaskTree, p: u32) -> Schedule {
    let keys: Vec<u32> = tree.ids().map(|i| i.0).collect();
    list_schedule(tree, p, &keys)
}

/// Splitmix64 hash of a node id under `seed` — the deterministic priority
/// source of [`random_list_schedule`] (shared with the [`crate::api`]
/// registry wrapper so both paths produce identical schedules).
pub(crate) fn splitmix_key(seed: u64, id: u32) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e3779b97f4a7c15)
        .wrapping_add((id as u64) << 32 | id as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Random-priority list scheduling with a deterministic seed (splitmix64
/// over node ids, so no external RNG dependency is needed here).
pub fn random_list_schedule(tree: &TaskTree, p: u32, seed: u64) -> Schedule {
    let keys: Vec<(u64, u32)> = tree.ids().map(|i| (splitmix_key(seed, i.0), i.0)).collect();
    list_schedule(tree, p, &keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::evaluate;
    use treesched_model::TaskTree;

    fn sample() -> TaskTree {
        TaskTree::complete(3, 3, 1.0, 2.0, 0.5)
    }

    #[test]
    fn baselines_produce_valid_schedules() {
        let t = sample();
        for p in [1u32, 2, 4] {
            for s in [
                cp_list_schedule(&t, p),
                fifo_list_schedule(&t, p),
                random_list_schedule(&t, p, 1),
            ] {
                assert!(s.validate(&t).is_ok());
                assert!(s.max_concurrency() <= p as usize);
            }
        }
    }

    #[test]
    fn baselines_meet_graham_bound() {
        let t = sample();
        let p = 4u32;
        let bound = t.total_work() / p as f64 + t.critical_path() * (1.0 - 1.0 / p as f64);
        for s in [
            cp_list_schedule(&t, p),
            fifo_list_schedule(&t, p),
            random_list_schedule(&t, p, 7),
        ] {
            assert!(evaluate(&t, &s).makespan <= bound + 1e-9);
        }
    }

    #[test]
    fn random_schedules_differ_by_seed_but_not_run() {
        let t = sample();
        let a = random_list_schedule(&t, 3, 1);
        let b = random_list_schedule(&t, 3, 1);
        let c = random_list_schedule(&t, 3, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn cp_matches_deepest_first_makespan_on_uniform_trees() {
        // without ties the two differ only in tie-breaking, so on this
        // regular tree the makespans coincide
        let t = sample();
        let p = 4;
        let cp = evaluate(&t, &cp_list_schedule(&t, p)).makespan;
        let df = evaluate(&t, &crate::heuristics::par_deepest_first(&t, p)).makespan;
        assert_eq!(cp, df);
    }
}
