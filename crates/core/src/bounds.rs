//! Lower bounds for both objectives (paper §6.3, Figure 6).

use crate::api::Platform;
use treesched_model::TaskTree;

/// Makespan lower bound for `p` processors: the maximum of the average load
/// `W/p` and the `w`-weighted critical path. The paper uses exactly this
/// bound for Figure 6.
pub fn makespan_lower_bound(tree: &TaskTree, p: u32) -> f64 {
    assert!(p > 0, "need at least one processor");
    (tree.total_work() / p as f64).max(tree.critical_path())
}

/// [`makespan_lower_bound`] generalized to a heterogeneous [`Platform`]:
/// the maximum of the speed-weighted average load `W / Σ speed_i` (no
/// schedule can process work faster than every processor running flat out)
/// and the critical path on the fastest processor `CP / max_i speed_i`
/// (dependent work cannot be split). On unit-speed platforms this is
/// exactly [`makespan_lower_bound`], bit for bit.
///
/// The bound already accounts for cross-domain communication costs
/// ([`Platform::comm_cost`]) — by proving no transfer is *unavoidable*: a
/// schedule may colocate the whole tree inside one memory domain (every
/// domain holds at least one processor), paying zero transfer time, so no
/// universal lower bound can charge for communication and the comm-free
/// value remains the tightest simple bound on comm-bearing platforms.
pub fn makespan_lower_bound_on(tree: &TaskTree, platform: &Platform) -> f64 {
    if platform.is_unit_speed() {
        return makespan_lower_bound(tree, platform.processors());
    }
    let total_speed: f64 = platform
        .classes()
        .iter()
        .map(|c| c.count as f64 * c.speed)
        .sum();
    let max_speed = platform
        .classes()
        .iter()
        .map(|c| c.speed)
        .fold(0.0f64, f64::max);
    assert!(total_speed > 0.0, "need at least one processor");
    (tree.total_work() / total_speed).max(tree.critical_path() / max_speed)
}

/// Memory reference used by the paper (§6.1, §6.3): the peak of the
/// **optimal sequential postorder**. More processors can never require less
/// memory than an optimal sequential traversal, and the optimal postorder
/// is within 1% of it on realistic trees, so this is the paper's practical
/// lower-bound estimate for parallel peak memory.
pub fn memory_reference(tree: &TaskTree) -> f64 {
    treesched_seq::best_postorder_peak(tree)
}

/// True optimal sequential memory (Liu's exact algorithm) — a genuine lower
/// bound on the peak memory of any schedule, sequential or parallel, at
/// `O(n²)` worst-case cost.
pub fn memory_lower_bound_exact(tree: &TaskTree) -> f64 {
    treesched_seq::liu_exact(tree).peak
}

/// Trivial structural memory bound: the largest single-task footprint.
pub fn memory_lower_bound_trivial(tree: &TaskTree) -> f64 {
    tree.max_local_need()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::Heuristic;
    use crate::schedule::evaluate;
    use treesched_model::TaskTree;

    #[test]
    fn makespan_bound_fork() {
        let t = TaskTree::fork(8, 1.0, 1.0, 0.0);
        assert_eq!(makespan_lower_bound(&t, 2), 4.5); // W/p = 9/2
        assert_eq!(makespan_lower_bound(&t, 8), 2.0); // CP
    }

    #[test]
    fn makespan_bound_chain_is_critical_path() {
        let t = TaskTree::chain(7, 2.0, 1.0, 0.0);
        for p in [1, 2, 4, 32] {
            assert_eq!(makespan_lower_bound(&t, p), 14.0);
        }
    }

    #[test]
    fn bound_hierarchy() {
        let t = TaskTree::complete(3, 3, 1.0, 2.0, 1.0);
        let trivial = memory_lower_bound_trivial(&t);
        let exact = memory_lower_bound_exact(&t);
        let reference = memory_reference(&t);
        assert!(trivial <= exact);
        assert!(exact <= reference);
    }

    #[test]
    fn all_heuristics_respect_bounds() {
        let t = TaskTree::complete(2, 6, 1.0, 2.0, 0.5);
        for h in Heuristic::ALL {
            for p in [2u32, 4, 8] {
                let ev = evaluate(&t, &h.schedule(&t, p));
                assert!(
                    ev.makespan >= makespan_lower_bound(&t, p) - 1e-9,
                    "{h} p={p}"
                );
                assert!(
                    ev.peak_memory >= memory_lower_bound_exact(&t) - 1e-9,
                    "{h} p={p}"
                );
            }
        }
    }
}
