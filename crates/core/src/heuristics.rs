//! The paper's four scheduling heuristics (§5).
//!
//! | Heuristic           | Focus     | Memory guarantee        | Makespan guarantee |
//! |---------------------|-----------|-------------------------|--------------------|
//! | [`par_subtrees`]    | memory    | `≤ (p+1)·M_seq`         | `p`-approx         |
//! | [`par_subtrees_optim`] | balanced | (weaker than above)  | better in practice |
//! | [`par_inner_first`] | balanced  | unbounded (Fig. 4)      | `(2 − 1/p)`-approx |
//! | [`par_deepest_first`] | makespan | unbounded (Fig. 5)    | `(2 − 1/p)`-approx |

use crate::listsched::{list_schedule, TotalF64};
use crate::schedule::{Placement, Schedule};
use crate::split::split_subtrees_with_work;
use treesched_model::{NodeId, SubtreeView, TaskTree};
use treesched_seq::{
    best_postorder_view, liu_exact_view, naive_postorder_view, LiuScratch, TraversalResult,
    ViewScratch,
};

/// Which sequential memory-minimizing algorithm the subtree phases use.
///
/// The paper's implementation (§6.1) uses the **optimal postorder** rather
/// than Liu's exact `O(n²)` algorithm, having measured it optimal in 95.8%
/// of instances; that is the default here too.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SeqAlgo {
    /// Liu's optimal postorder (1986) — the paper's choice, `O(n log n)`.
    #[default]
    BestPostorder,
    /// Liu's exact algorithm (1987) — optimal over all traversals, `O(n²)`.
    LiuExact,
    /// The postorder induced by the stored child order (baseline).
    NaivePostorder,
}

impl SeqAlgo {
    /// Runs the selected traversal algorithm.
    pub fn traversal(self, tree: &TaskTree) -> TraversalResult {
        match self {
            SeqAlgo::BestPostorder => treesched_seq::best_postorder(tree),
            SeqAlgo::LiuExact => treesched_seq::liu_exact(tree),
            SeqAlgo::NaivePostorder => treesched_seq::naive_postorder(tree),
        }
    }

    /// The stable wire name used by the CLI `--seq` flag and the serving
    /// JSONL protocol.
    pub fn name(self) -> &'static str {
        match self {
            SeqAlgo::BestPostorder => "best",
            SeqAlgo::LiuExact => "liu",
            SeqAlgo::NaivePostorder => "naive",
        }
    }

    /// Inverse of [`SeqAlgo::name`]; `None` for unknown names.
    pub fn by_name(name: &str) -> Option<SeqAlgo> {
        match name {
            "best" => Some(SeqAlgo::BestPostorder),
            "liu" => Some(SeqAlgo::LiuExact),
            "naive" => Some(SeqAlgo::NaivePostorder),
            _ => None,
        }
    }
}

/// Reusable buffers for the per-subtree scheduling phases.
///
/// Every sequential sub-algorithm — the two postorders *and*
/// [`SeqAlgo::LiuExact`] — runs on a borrowed [`SubtreeView`] over these
/// buffers instead of cloning each subtree into a fresh `TaskTree`, so a
/// warm scratch never clones. The two counters record which path ran;
/// `clones` stays 0 unless a caller bypasses the view entry points.
#[derive(Clone, Debug, Default)]
pub struct SubtreeScratch {
    /// DFS work stack for [`TaskTree::subtree_nodes_into`].
    dfs: Vec<NodeId>,
    /// Subtree membership in clone-DFS order (the view's node list).
    nodes: Vec<NodeId>,
    /// Traversal order of the current subtree, in original ids.
    order: Vec<NodeId>,
    /// Buffers of the view-based postorder algorithms.
    view: ViewScratch,
    /// Chain storage of the view-based exact algorithm.
    liu: LiuScratch,
    views: u64,
    clones: u64,
}

impl SubtreeScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> SubtreeScratch {
        SubtreeScratch::default()
    }

    /// Number of subtrees scheduled through a borrowed view (no clone).
    pub fn subtree_views(&self) -> u64 {
        self.views
    }

    /// Number of subtrees scheduled through a cloned `TaskTree`
    /// (the [`SeqAlgo::LiuExact`] fallback).
    pub fn subtree_clones(&self) -> u64 {
        self.clones
    }
}

/// Schedules the subtree rooted at `r` sequentially on `proc` (of the given
/// `speed`) from `start`, in the order chosen by `seq`, writing placements.
/// Returns the finish time. Unit-speed callers pass `speed = 1.0`, which is
/// bit-identical to the historical unscaled arithmetic (`w / 1.0 == w`).
#[allow(clippy::too_many_arguments)]
fn schedule_subtree(
    tree: &TaskTree,
    r: NodeId,
    proc: u32,
    speed: f64,
    start: f64,
    seq: SeqAlgo,
    placements: &mut [Placement],
    member: &mut [bool],
    sub: &mut SubtreeScratch,
) -> f64 {
    sub.views += 1;
    let SubtreeScratch {
        dfs,
        nodes,
        order,
        view,
        liu,
        ..
    } = sub;
    tree.subtree_nodes_into(r, dfs, nodes);
    let v = SubtreeView::new(tree, nodes);
    match seq {
        SeqAlgo::BestPostorder => best_postorder_view(&v, view, order),
        SeqAlgo::NaivePostorder => naive_postorder_view(&v, view, order),
        SeqAlgo::LiuExact => {
            liu_exact_view(&v, liu, order);
        }
    }
    let mut t = start;
    for &orig in order.iter() {
        member[orig.index()] = true;
        let w = tree.work(orig) / speed;
        placements[orig.index()] = Placement {
            proc,
            start: t,
            finish: t + w,
        };
        t += w;
    }
    t
}

/// Schedules `nodes` (an id-set filter over the tree, in the order induced
/// by `global_order`) sequentially on `proc` (of the given `speed`) from
/// `start`.
#[allow(clippy::too_many_arguments)]
fn schedule_filtered(
    tree: &TaskTree,
    global_order: &[NodeId],
    exclude: &[bool],
    proc: u32,
    speed: f64,
    start: f64,
    placements: &mut [Placement],
) -> f64 {
    let mut t = start;
    for &v in global_order {
        if !exclude[v.index()] {
            let w = tree.work(v) / speed;
            placements[v.index()] = Placement {
                proc,
                start: t,
                finish: t + w,
            };
            t += w;
        }
    }
    t
}

fn blank_placements(n: usize) -> Vec<Placement> {
    vec![
        Placement {
            proc: 0,
            start: f64::NAN,
            finish: f64::NAN
        };
        n
    ]
}

/// **ParSubtrees** (paper Algorithm 1): split the tree with
/// [`split_subtrees`](crate::split::split_subtrees), process the `q ≤ p`
/// chosen subtrees concurrently
/// (each with the sequential memory-optimal algorithm), then process the
/// remaining nodes sequentially.
///
/// Guarantees (paper §5.1): peak memory `≤ (p+1)·M_seq`; makespan is a
/// `p`-approximation and is optimal among all `ParSubtrees`-style splittings
/// (Lemma 1).
pub fn par_subtrees(tree: &TaskTree, p: u32, seq: SeqAlgo) -> Schedule {
    let global = seq.traversal(tree).order;
    par_subtrees_with_order(tree, p, seq, &global)
}

/// [`par_subtrees`] with a caller-supplied whole-tree traversal `global`
/// (the order produced by `seq` on `tree`), so experiment sweeps can reuse
/// one traversal across processor counts.
pub fn par_subtrees_with_order(
    tree: &TaskTree,
    p: u32,
    seq: SeqAlgo,
    global: &[NodeId],
) -> Schedule {
    let subtree_w = tree.subtree_work();
    let mut sub = SubtreeScratch::new();
    par_subtrees_with_order_scratch(tree, p, seq, global, &subtree_w, &mut sub)
}

/// [`par_subtrees_with_order`] with caller-supplied subtree weights
/// (`tree.subtree_work()`) and reusable buffers — the allocation-free entry
/// point used by the engine's warm path.
pub fn par_subtrees_with_order_scratch(
    tree: &TaskTree,
    p: u32,
    seq: SeqAlgo,
    global: &[NodeId],
    subtree_w: &[f64],
    sub: &mut SubtreeScratch,
) -> Schedule {
    assert!(p > 0, "need at least one processor");
    let split = split_subtrees_with_work(tree, p as usize, subtree_w);
    let n = tree.len();
    let mut placements = blank_placements(n);
    let mut in_parallel = vec![false; n];
    let mut t0 = 0.0f64;
    for (k, &r) in split.parallel_roots.iter().enumerate() {
        let fin = schedule_subtree(
            tree,
            r,
            k as u32,
            1.0,
            0.0,
            seq,
            &mut placements,
            &mut in_parallel,
            sub,
        );
        t0 = t0.max(fin);
    }
    // Sequential remainder (popped nodes + surplus subtrees), in the
    // memory-minimizing global order restricted to the remaining nodes.
    schedule_filtered(tree, global, &in_parallel, 0, 1.0, t0, &mut placements);
    Schedule {
        processors: p,
        placements,
    }
}

/// Processor indices of `speeds` in placement priority order:
/// non-increasing speed, ties by index (stable). The fastest processor
/// comes first — it receives the heaviest subtree and the sequential
/// remainder.
fn procs_by_speed(speeds: &[f64]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..speeds.len() as u32).collect();
    order.sort_by(|&a, &b| speeds[b as usize].total_cmp(&speeds[a as usize]));
    order
}

/// [`par_subtrees_with_order_scratch`] for mixed-speed processors: the
/// split (which reasons in platform-independent *work* units) is unchanged,
/// but placement is speed-aware — parallel subtrees are matched
/// heaviest-to-fastest (k-th heaviest subtree onto the k-th fastest
/// processor, each task running for `w / speed`), and the sequential
/// remainder runs on the fastest processor. On equal speeds this would
/// reproduce the uniform path up to rounding; the [`crate::api`] layer
/// keeps equal-speed platforms on the historical unit-time + rescale route
/// for bit-identity and routes only genuinely mixed speeds here.
pub fn par_subtrees_hetero_with_order_scratch(
    tree: &TaskTree,
    speeds: &[f64],
    seq: SeqAlgo,
    global: &[NodeId],
    subtree_w: &[f64],
    sub: &mut SubtreeScratch,
) -> Schedule {
    let p = speeds.len() as u32;
    assert!(p > 0, "need at least one processor");
    let split = split_subtrees_with_work(tree, p as usize, subtree_w);
    let mut roots = split.parallel_roots.clone();
    // heaviest subtree first, ties by id for determinism
    roots.sort_by(|&a, &b| {
        subtree_w[b.index()]
            .total_cmp(&subtree_w[a.index()])
            .then(a.cmp(&b))
    });
    let procs = procs_by_speed(speeds);
    let n = tree.len();
    let mut placements = blank_placements(n);
    let mut in_parallel = vec![false; n];
    let mut t0 = 0.0f64;
    for (k, &r) in roots.iter().enumerate() {
        let proc = procs[k];
        let fin = schedule_subtree(
            tree,
            r,
            proc,
            speeds[proc as usize],
            0.0,
            seq,
            &mut placements,
            &mut in_parallel,
            sub,
        );
        t0 = t0.max(fin);
    }
    let fastest = procs[0];
    schedule_filtered(
        tree,
        global,
        &in_parallel,
        fastest,
        speeds[fastest as usize],
        t0,
        &mut placements,
    );
    Schedule {
        processors: p,
        placements,
    }
}

/// **ParSubtreesOptim** (paper §5.1, makespan optimization): identical
/// splitting, but *all* produced subtrees are allocated to the `p`
/// processors LPT-style (largest total weight first, to the least-loaded
/// processor), each processor running its subtrees back to back. The popped
/// nodes still run sequentially at the end.
///
/// This improves the makespan at the price of a (usually slight) memory
/// increase, as the paper's experiments show.
pub fn par_subtrees_optim(tree: &TaskTree, p: u32, seq: SeqAlgo) -> Schedule {
    let global = seq.traversal(tree).order;
    par_subtrees_optim_with_order(tree, p, seq, &global)
}

/// [`par_subtrees_optim`] with a caller-supplied whole-tree traversal
/// `global` (the order produced by `seq` on `tree`).
pub fn par_subtrees_optim_with_order(
    tree: &TaskTree,
    p: u32,
    seq: SeqAlgo,
    global: &[NodeId],
) -> Schedule {
    let subtree_w = tree.subtree_work();
    let mut sub = SubtreeScratch::new();
    par_subtrees_optim_with_order_scratch(tree, p, seq, global, &subtree_w, &mut sub)
}

/// [`par_subtrees_optim_with_order`] with caller-supplied subtree weights
/// and reusable buffers — the allocation-free entry point used by the
/// engine's warm path.
pub fn par_subtrees_optim_with_order_scratch(
    tree: &TaskTree,
    p: u32,
    seq: SeqAlgo,
    global: &[NodeId],
    subtree_w: &[f64],
    sub: &mut SubtreeScratch,
) -> Schedule {
    assert!(p > 0, "need at least one processor");
    let split = split_subtrees_with_work(tree, p as usize, subtree_w);
    let mut roots: Vec<NodeId> = split
        .parallel_roots
        .iter()
        .chain(&split.surplus_roots)
        .copied()
        .collect();
    // LPT order: non-increasing subtree weight, ties by id for determinism
    roots.sort_by(|&a, &b| {
        subtree_w[b.index()]
            .total_cmp(&subtree_w[a.index()])
            .then(a.cmp(&b))
    });
    let n = tree.len();
    let mut placements = blank_placements(n);
    let mut in_parallel = vec![false; n];
    let mut loads = vec![0.0f64; p as usize];
    for &r in &roots {
        let (k, _) = loads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .expect("p > 0");
        loads[k] = schedule_subtree(
            tree,
            r,
            k as u32,
            1.0,
            loads[k],
            seq,
            &mut placements,
            &mut in_parallel,
            sub,
        );
    }
    let t0 = loads.iter().fold(0.0f64, |a, &b| a.max(b));
    schedule_filtered(tree, global, &in_parallel, 0, 1.0, t0, &mut placements);
    Schedule {
        processors: p,
        placements,
    }
}

/// [`par_subtrees_optim_with_order_scratch`] for mixed-speed processors:
/// the LPT allocation becomes finish-time-aware — each subtree (heaviest
/// first) goes to the processor where it would *finish* earliest
/// (`load + W / speed`, ties to the faster then lower-indexed processor),
/// which is exactly LPT on speed-scaled work. The popped nodes run on the
/// fastest processor after every subtree is done. Equal-speed platforms
/// stay on the historical unit-time + rescale route (see
/// [`par_subtrees_hetero_with_order_scratch`]).
pub fn par_subtrees_optim_hetero_with_order_scratch(
    tree: &TaskTree,
    speeds: &[f64],
    seq: SeqAlgo,
    global: &[NodeId],
    subtree_w: &[f64],
    sub: &mut SubtreeScratch,
) -> Schedule {
    let p = speeds.len() as u32;
    assert!(p > 0, "need at least one processor");
    let split = split_subtrees_with_work(tree, p as usize, subtree_w);
    let mut roots: Vec<NodeId> = split
        .parallel_roots
        .iter()
        .chain(&split.surplus_roots)
        .copied()
        .collect();
    roots.sort_by(|&a, &b| {
        subtree_w[b.index()]
            .total_cmp(&subtree_w[a.index()])
            .then(a.cmp(&b))
    });
    let procs = procs_by_speed(speeds);
    let n = tree.len();
    let mut placements = blank_placements(n);
    let mut in_parallel = vec![false; n];
    let mut loads = vec![0.0f64; p as usize];
    for &r in &roots {
        // earliest-finish pick over procs in fastest-first order, so ties
        // go to the faster (then lower-indexed) processor
        let proc = procs
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let fa = loads[a as usize] + subtree_w[r.index()] / speeds[a as usize];
                let fb = loads[b as usize] + subtree_w[r.index()] / speeds[b as usize];
                fa.total_cmp(&fb)
            })
            .expect("p > 0");
        loads[proc as usize] = schedule_subtree(
            tree,
            r,
            proc,
            speeds[proc as usize],
            loads[proc as usize],
            seq,
            &mut placements,
            &mut in_parallel,
            sub,
        );
    }
    let t0 = loads.iter().fold(0.0f64, |a, &b| a.max(b));
    let fastest = procs[0];
    schedule_filtered(
        tree,
        global,
        &in_parallel,
        fastest,
        speeds[fastest as usize],
        t0,
        &mut placements,
    );
    Schedule {
        processors: p,
        placements,
    }
}

/// Priority key for [`par_inner_first`]: all inner nodes before all leaves;
/// inner nodes by non-increasing edge-depth; leaves by their position in
/// the optimal sequential postorder `O` (paper §5.2).
fn inner_first_keys(tree: &TaskTree, order: &[NodeId]) -> Vec<(u8, u64, u64)> {
    let pos = treesched_model::io::positions(tree.len(), order);
    let depths = tree.depths();
    tree.ids()
        .map(|i| {
            if tree.is_leaf(i) {
                (1u8, pos[i.index()] as u64, 0u64)
            } else {
                (
                    0u8,
                    u32::MAX as u64 - depths[i.index()] as u64,
                    pos[i.index()] as u64,
                )
            }
        })
        .collect()
}

/// **ParInnerFirst** (paper §5.2): event-based list scheduling where ready
/// inner nodes always take priority (deepest first), and ready leaves are
/// taken in optimal-postorder order. With one processor this reproduces a
/// sequential postorder; with `p` processors it approximates one.
///
/// Makespan: `(2 − 1/p)`-approximation (list scheduling). Memory: can be
/// arbitrarily worse than sequential (paper Fig. 4).
pub fn par_inner_first(tree: &TaskTree, p: u32) -> Schedule {
    let order = treesched_seq::best_postorder(tree).order;
    par_inner_first_with_order(tree, p, &order)
}

/// [`par_inner_first`] with a caller-supplied sequential order `O`.
pub fn par_inner_first_with_order(tree: &TaskTree, p: u32, order: &[NodeId]) -> Schedule {
    let keys = inner_first_keys(tree, order);
    list_schedule(tree, p, &keys)
}

/// Priority key for [`par_deepest_first`]: non-increasing `w`-weighted
/// root-path depth (including the node's own `w`), then inner before leaf,
/// then postorder position (paper §5.3).
fn deepest_first_keys(tree: &TaskTree, order: &[NodeId]) -> Vec<(TotalF64, u8, u64)> {
    let pos = treesched_model::io::positions(tree.len(), order);
    let wdepth = tree.weighted_depths();
    tree.ids()
        .map(|i| {
            (
                TotalF64(-wdepth[i.index()]), // deepest first
                u8::from(tree.is_leaf(i)),    // inner before leaf
                pos[i.index()] as u64,        // postorder position
            )
        })
        .collect()
}

/// **ParDeepestFirst** (paper §5.3): event-based list scheduling
/// prioritizing the deepest ready node by weighted path length — the head
/// of the critical path. Fully makespan-focused.
///
/// Makespan: `(2 − 1/p)`-approximation. Memory: unbounded relative to
/// sequential (paper Fig. 5: proportional to the number of leaves on
/// long-chain trees).
pub fn par_deepest_first(tree: &TaskTree, p: u32) -> Schedule {
    let order = treesched_seq::best_postorder(tree).order;
    par_deepest_first_with_order(tree, p, &order)
}

/// [`par_deepest_first`] with a caller-supplied sequential order `O`.
pub fn par_deepest_first_with_order(tree: &TaskTree, p: u32, order: &[NodeId]) -> Schedule {
    let keys = deepest_first_keys(tree, order);
    list_schedule(tree, p, &keys)
}

/// The four heuristics of the paper, as a value for driving experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// [`par_subtrees`]
    ParSubtrees,
    /// [`par_subtrees_optim`]
    ParSubtreesOptim,
    /// [`par_inner_first`]
    ParInnerFirst,
    /// [`par_deepest_first`]
    ParDeepestFirst,
}

impl Heuristic {
    /// All four heuristics in the paper's Table 1 order.
    pub const ALL: [Heuristic; 4] = [
        Heuristic::ParSubtrees,
        Heuristic::ParSubtreesOptim,
        Heuristic::ParInnerFirst,
        Heuristic::ParDeepestFirst,
    ];

    /// Paper name of the heuristic.
    pub fn name(self) -> &'static str {
        match self {
            Heuristic::ParSubtrees => "ParSubtrees",
            Heuristic::ParSubtreesOptim => "ParSubtreesOptim",
            Heuristic::ParInnerFirst => "ParInnerFirst",
            Heuristic::ParDeepestFirst => "ParDeepestFirst",
        }
    }

    /// Builds the heuristic's schedule for `tree` on `p` processors with the
    /// default sequential sub-algorithm.
    pub fn schedule(self, tree: &TaskTree, p: u32) -> Schedule {
        match self {
            Heuristic::ParSubtrees => par_subtrees(tree, p, SeqAlgo::default()),
            Heuristic::ParSubtreesOptim => par_subtrees_optim(tree, p, SeqAlgo::default()),
            Heuristic::ParInnerFirst => par_inner_first(tree, p),
            Heuristic::ParDeepestFirst => par_deepest_first(tree, p),
        }
    }

    /// As [`Heuristic::schedule`] but reusing a precomputed optimal
    /// sequential postorder (avoids recomputing it per heuristic in
    /// experiment sweeps). `order` must be the best-postorder traversal of
    /// `tree` (the default sequential sub-algorithm's order).
    pub fn schedule_with_order(self, tree: &TaskTree, p: u32, order: &[NodeId]) -> Schedule {
        match self {
            Heuristic::ParSubtrees => par_subtrees_with_order(tree, p, SeqAlgo::default(), order),
            Heuristic::ParSubtreesOptim => {
                par_subtrees_optim_with_order(tree, p, SeqAlgo::default(), order)
            }
            Heuristic::ParInnerFirst => par_inner_first_with_order(tree, p, order),
            Heuristic::ParDeepestFirst => par_deepest_first_with_order(tree, p, order),
        }
    }
}

impl std::fmt::Display for Heuristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::evaluate;
    use treesched_model::{TaskTree, TreeBuilder};
    use treesched_seq::best_postorder;

    /// Paper Figure 3: ParSubtrees achieves makespan `p(k−1) + 2` on the
    /// fork with `p·k` unit leaves while the optimum is `k + 1`; the
    /// optimized variant recovers it.
    #[test]
    fn fig3_fork_makespans() {
        let (p, k) = (4u32, 6usize);
        let t = TaskTree::fork(p as usize * k, 1.0, 1.0, 0.0);
        let ms = evaluate(&t, &par_subtrees(&t, p, SeqAlgo::default())).makespan;
        assert_eq!(ms, (p as usize * (k - 1) + 2) as f64);
        let opt = evaluate(&t, &par_subtrees_optim(&t, p, SeqAlgo::default())).makespan;
        assert_eq!(opt, (k + 1) as f64);
        // list schedulers also achieve the optimum here
        let dfs = evaluate(&t, &par_deepest_first(&t, p)).makespan;
        assert_eq!(dfs, (k + 1) as f64);
    }

    #[test]
    fn all_heuristics_produce_valid_schedules() {
        let t = TaskTree::complete(3, 4, 1.0, 2.0, 0.5);
        for h in Heuristic::ALL {
            for p in [1u32, 2, 5, 16] {
                let s = h.schedule(&t, p);
                assert!(s.validate(&t).is_ok(), "{h} p={p}");
                assert!(s.max_concurrency() <= p as usize, "{h} p={p}");
            }
        }
    }

    #[test]
    fn par_subtrees_makespan_equals_split_cost() {
        let t = TaskTree::complete(2, 5, 1.0, 1.0, 0.0);
        for p in [1u32, 2, 3, 8] {
            let split = crate::split::split_subtrees(&t, p as usize);
            let s = par_subtrees(&t, p, SeqAlgo::default());
            let ev = evaluate(&t, &s);
            assert!(
                (ev.makespan - split.cost).abs() < 1e-9,
                "p={p}: {} vs {}",
                ev.makespan,
                split.cost
            );
        }
    }

    #[test]
    fn par_subtrees_memory_bound_holds() {
        // M <= (p+1) * M_seq (paper §5.1), with M_seq the best postorder
        let mut b = TreeBuilder::new();
        let r = b.node(2.0, 3.0, 1.0);
        let x = b.child(r, 1.0, 4.0, 0.0);
        let y = b.child(r, 5.0, 2.0, 2.0);
        for _ in 0..5 {
            b.child(x, 2.0, 3.0, 1.0);
            b.child(y, 1.0, 2.0, 0.0);
        }
        let t = b.build().unwrap();
        let mseq = best_postorder(&t).peak;
        for p in [1u32, 2, 4] {
            let ev = evaluate(&t, &par_subtrees(&t, p, SeqAlgo::default()));
            assert!(
                ev.peak_memory <= (p as f64 + 1.0) * mseq + 1e-9,
                "p={p}: {} > {}",
                ev.peak_memory,
                (p as f64 + 1.0) * mseq
            );
        }
    }

    #[test]
    fn single_processor_heuristics_match_sequential_memory() {
        // with p = 1, ParSubtrees runs the sequential algorithm on the whole
        // tree; its memory equals the best postorder peak
        let t = TaskTree::complete(2, 4, 1.0, 2.0, 1.0);
        let ev = evaluate(&t, &par_subtrees(&t, 1, SeqAlgo::default()));
        assert_eq!(ev.peak_memory, best_postorder(&t).peak);
        assert_eq!(ev.makespan, t.total_work());
        // ParInnerFirst on one processor replays a sequential postorder
        let ev = evaluate(&t, &par_inner_first(&t, 1));
        assert_eq!(ev.peak_memory, best_postorder(&t).peak);
    }

    #[test]
    fn inner_first_prefers_inner_nodes() {
        // a chain plus spare leaves: when the chain's inner node becomes
        // ready it must run before any queued leaf
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 1.0, 0.0);
        let c = b.child(r, 1.0, 1.0, 0.0);
        b.child(c, 1.0, 1.0, 0.0); // chain leaf
        for _ in 0..6 {
            b.child(r, 1.0, 1.0, 0.0); // fork leaves
        }
        let t = b.build().unwrap();
        let s = par_inner_first(&t, 1);
        // node c (inner, id 1) becomes ready after its leaf (id 2); it must
        // start right then, before the remaining fork leaves
        let start_c = s.placement(NodeId(1)).start;
        let later_leaves = (3..9)
            .filter(|&i| s.placement(NodeId(i)).start > start_c)
            .count();
        assert!(later_leaves >= 5, "inner node must preempt queued leaves");
    }

    #[test]
    fn deepest_first_follows_critical_path() {
        // two chains of different weighted depth: the deep chain's leaf goes
        // first
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 1.0, 0.0);
        let a = b.child(r, 1.0, 1.0, 0.0);
        let deep = b.child(a, 10.0, 1.0, 0.0); // wdepth 12
        b.child(r, 1.0, 1.0, 0.0); // shallow leaf, wdepth 2
        let t = b.build().unwrap();
        let s = par_deepest_first(&t, 1);
        assert!(s.placement(deep).start < s.placement(NodeId(3)).start);
    }

    #[test]
    fn heuristic_names() {
        assert_eq!(Heuristic::ParSubtrees.to_string(), "ParSubtrees");
        assert_eq!(Heuristic::ALL.len(), 4);
    }

    /// The borrowed-view subtree path must place every task exactly where
    /// the historical clone-based path did, for every subtree of a zoo of
    /// shapes and both postorder sub-algorithms.
    #[test]
    fn view_scheduling_matches_the_clone_path_on_every_subtree() {
        let mut mixed = TreeBuilder::new();
        let r = mixed.node(2.0, 3.0, 1.0);
        let x = mixed.child(r, 1.0, 4.0, 0.0);
        let y = mixed.child(r, 5.0, 2.0, 2.0);
        for i in 0..4 {
            mixed.child(x, 1.0 + i as f64, 3.0, 1.0);
            let z = mixed.child(y, 2.0, 1.0 + i as f64, 0.0);
            mixed.child(z, 1.0, 1.0, 0.0);
        }
        let zoo = [
            TaskTree::fork(7, 1.0, 1.0, 0.0),
            TaskTree::chain(12, 1.0, 1.0, 0.0),
            TaskTree::complete(2, 4, 1.0, 2.0, 0.5),
            TaskTree::complete(3, 3, 2.0, 1.0, 1.0),
            mixed.build().unwrap(),
        ];
        let mut sub = SubtreeScratch::new();
        for tree in &zoo {
            for seq in [
                SeqAlgo::BestPostorder,
                SeqAlgo::NaivePostorder,
                SeqAlgo::LiuExact,
            ] {
                for r in tree.ids() {
                    let n = tree.len();
                    let mut got = blank_placements(n);
                    let mut got_member = vec![false; n];
                    let fin = schedule_subtree(
                        tree,
                        r,
                        3,
                        1.0,
                        1.5,
                        seq,
                        &mut got,
                        &mut got_member,
                        &mut sub,
                    );

                    // historical clone-based reference
                    let (clone, map) = tree.subtree(r);
                    let order = seq.traversal(&clone).order;
                    let mut want = blank_placements(n);
                    let mut want_member = vec![false; n];
                    let mut t = 1.5;
                    for nid in order {
                        let orig = map[nid.index()];
                        want_member[orig.index()] = true;
                        let w = tree.work(orig);
                        want[orig.index()] = Placement {
                            proc: 3,
                            start: t,
                            finish: t + w,
                        };
                        t += w;
                    }
                    assert_eq!(fin, t, "finish time, root {r:?}");
                    assert_eq!(got_member, want_member, "membership, root {r:?}");
                    for v in tree.ids() {
                        if !want_member[v.index()] {
                            continue;
                        }
                        assert_eq!(got[v.index()], want[v.index()], "node {v:?} of root {r:?}");
                    }
                }
            }
        }
        assert!(sub.subtree_views() > 0);
        assert_eq!(sub.subtree_clones(), 0);
    }

    /// The `_scratch` entry points are bit-identical to the plain ones and
    /// never clone a subtree for the postorder sub-algorithms.
    #[test]
    fn scratch_entry_points_match_and_count() {
        let t = TaskTree::complete(3, 4, 1.0, 2.0, 0.5);
        let subtree_w = t.subtree_work();
        let mut sub = SubtreeScratch::new();
        for p in [1u32, 2, 5] {
            let global = SeqAlgo::default().traversal(&t).order;
            let plain = par_subtrees_with_order(&t, p, SeqAlgo::default(), &global);
            let fast = par_subtrees_with_order_scratch(
                &t,
                p,
                SeqAlgo::default(),
                &global,
                &subtree_w,
                &mut sub,
            );
            assert_eq!(plain, fast, "ParSubtrees p={p}");
            let plain = par_subtrees_optim_with_order(&t, p, SeqAlgo::default(), &global);
            let fast = par_subtrees_optim_with_order_scratch(
                &t,
                p,
                SeqAlgo::default(),
                &global,
                &subtree_w,
                &mut sub,
            );
            assert_eq!(plain, fast, "ParSubtreesOptim p={p}");
        }
        assert!(sub.subtree_views() > 0);
        assert_eq!(sub.subtree_clones(), 0);

        // LiuExact rides the view path too — no clone fallback left
        let global = SeqAlgo::LiuExact.traversal(&t).order;
        par_subtrees_with_order_scratch(&t, 3, SeqAlgo::LiuExact, &global, &subtree_w, &mut sub);
        assert_eq!(sub.subtree_clones(), 0);
        assert!(sub.subtree_views() > 0);
    }

    #[test]
    fn liu_exact_subtree_option_works() {
        let t = TaskTree::complete(2, 4, 1.0, 3.0, 1.0);
        let s = par_subtrees(&t, 3, SeqAlgo::LiuExact);
        assert!(s.validate(&t).is_ok());
        let s2 = par_subtrees(&t, 3, SeqAlgo::NaivePostorder);
        assert!(s2.validate(&t).is_ok());
        // exact sequential sub-traversals can only help memory
        let m_exact = s.peak_memory(&t);
        let m_naive = s2.peak_memory(&t);
        assert!(m_exact <= m_naive + 1e-9);
    }
}
