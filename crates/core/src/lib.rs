//! Parallel memory/makespan-aware scheduling of task trees — the core
//! contribution of Marchal, Sinnen and Vivien (IPDPS 2013).
//!
//! The problem (paper §3): schedule a tree-shaped task graph on `p`
//! identical processors sharing one memory, minimizing both the **makespan**
//! and the **peak memory**. The decision problem is NP-complete even in the
//! unit-weight pebble-game model (Theorem 1) and the two objectives cannot
//! be simultaneously approximated within constant factors (Theorem 2), so
//! the paper proposes four heuristics spanning the trade-off — all
//! implemented here:
//!
//! * [`heuristics::par_subtrees`] / [`heuristics::par_subtrees_optim`] —
//!   split the tree into subtrees ([`split::split_subtrees`], Algorithm 2)
//!   processed concurrently with a sequential memory-optimal algorithm;
//!   memory-focused, `M ≤ (p+1)·M_seq`.
//! * [`heuristics::par_inner_first`] — event-based list scheduling
//!   (Algorithm 3) approximating a parallel postorder; balanced.
//! * [`heuristics::par_deepest_first`] — list scheduling along the critical
//!   path; makespan-focused.
//!
//! ## The unified scheduling API
//!
//! Every scheduler in this crate — the four paper heuristics, the textbook
//! baselines, and the memory-capped wrappers — is exposed through one
//! pluggable surface in [`api`]:
//!
//! * the [`api::Scheduler`] trait:
//!   `schedule(&Request, &mut Scratch) -> Result<Outcome, SchedError>`;
//! * [`api::Platform`] (processor classes with per-class speeds + memory
//!   domains; the paper's `p`-identical-processors machine is the flat
//!   special case built by [`api::Platform::new`]),
//!   [`api::Request`] (tree + platform + [`SeqAlgo`] choice), and
//!   [`api::Outcome`] (schedule + validated [`EvalResult`] + per-domain
//!   peaks + diagnostics);
//! * [`api::SchedulerRegistry`] — name-based lookup with canonical names
//!   and aliases, used by every front-end (CLI, experiment harness) so no
//!   per-heuristic dispatch exists outside this crate;
//! * [`api::Scratch`] — reusable ready-queue/placement buffers and
//!   per-tree caches for allocation-free experiment campaigns;
//! * [`api::SchedError`] — typed errors (`p == 0`, missing cap, invalid
//!   schedule) where the low-level entry points would panic.
//!
//! ```
//! use treesched_core::api::{Platform, Request, Scratch, SchedulerRegistry};
//! use treesched_core::makespan_lower_bound;
//! use treesched_model::TaskTree;
//!
//! let registry = SchedulerRegistry::standard();
//! let tree = TaskTree::fork(8, 1.0, 1.0, 0.0); // 8 pebble leaves
//! let mut scratch = Scratch::new();
//! for entry in registry.campaign() {
//!     let req = Request::new(&tree, Platform::new(4));
//!     let out = entry.scheduler().schedule(&req, &mut scratch).unwrap();
//!     assert!(out.eval.makespan >= makespan_lower_bound(&tree, 4));
//!     assert!(out.eval.peak_memory >= 9.0); // all inputs + root file
//! }
//! ```
//!
//! ## Low-level building blocks
//!
//! The algorithms behind the registry remain available as plain functions:
//! the generic list scheduler ([`listsched::list_schedule`] and its
//! buffer-reusing [`listsched::list_schedule_reusing`]), parallel-schedule
//! evaluation ([`schedule::Schedule::peak_memory`],
//! [`schedule::try_evaluate`]), the lower bounds used by the paper's
//! Figure 6 ([`bounds`]), textbook baselines for component ablations
//! ([`baselines`]), an exact bi-objective Pareto solver for the unit-time
//! model ([`pareto`]), and — as the paper's stated future work — a
//! memory-capped list scheduler ([`membound::mem_bounded_schedule`]).

pub mod api;
pub mod baselines;
pub mod bounds;
pub mod heuristics;
pub mod listsched;
pub mod membound;
pub mod pareto;
pub mod schedule;
pub mod split;

pub use api::{
    tree_fingerprint, Diagnostics, MemDomain, Metric, Outcome, OwnedRequest, Platform,
    PlatformBuilder, PlatformFlag, PlatformParseError, PlatformSpec, ProcClass, Request,
    SchedError, Scheduler, SchedulerRegistry, Scratch, ScratchStats,
};
pub use baselines::{cp_list_schedule, fifo_list_schedule, random_list_schedule};
pub use bounds::{
    makespan_lower_bound, makespan_lower_bound_on, memory_lower_bound_exact, memory_reference,
};
pub use heuristics::{
    par_deepest_first, par_inner_first, par_subtrees, par_subtrees_optim, Heuristic, SeqAlgo,
    SubtreeScratch,
};
pub use listsched::{list_schedule, list_schedule_with_comm, CommCosts, Speeds};
pub use membound::{
    mem_bounded_schedule, mem_bounded_schedule_domains, Admission, DomainCtx, MemBoundedRun,
};
pub use pareto::{dominated_by_frontier, pareto_frontier, ParetoPoint};
pub use schedule::{
    evaluate, try_evaluate, try_evaluate_on, EvalResult, Placement, Schedule, ScheduleError,
};
pub use split::{split_subtrees, split_subtrees_with_work, Split};
