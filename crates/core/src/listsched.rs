//! Event-driven list scheduling (paper Algorithm 3).
//!
//! The scheduler is driven by task-finish events. At each event, tasks whose
//! children have all completed become *ready* and enter a priority queue;
//! every idle processor is then given the head of the queue. The queue
//! ordering is the only degree of freedom —
//! [`par_inner_first`](crate::heuristics::par_inner_first) and
//! [`par_deepest_first`](crate::heuristics::par_deepest_first) are both
//! instances with different priority keys.
//!
//! As a list scheduling algorithm, any instance is a `(2 − 1/p)`-
//! approximation for makespan minimization (Graham 1966, paper §5.2/§5.3).

use crate::schedule::{Placement, Schedule};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use treesched_model::{NodeId, TaskTree};

/// Totally ordered `f64` for use inside priority keys (weights are validated
/// finite, so `total_cmp` agrees with the usual order).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TotalF64(pub f64);

impl Eq for TotalF64 {}
impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Canonical encoded priority key: three `u64` components compared
/// lexicographically, **smaller = higher priority**. Every built-in
/// priority scheme lowers into this shape so the ready queue inside
/// [`ListScratch`] can be reused across schedulers and trees without
/// re-allocating (see [`crate::api::Scratch`]).
pub type Key3 = (u64, u64, u64);

/// Order-preserving encoding of an `f64` into a `u64`: for finite `a`, `b`,
/// `a.total_cmp(&b) == key_from_f64(a).cmp(&key_from_f64(b))`.
#[inline]
pub fn key_from_f64(x: f64) -> u64 {
    let b = x.to_bits();
    if b & (1 << 63) != 0 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Reusable state for [`list_schedule_reusing`]: the ready queue, the event
/// queue, and the bookkeeping tables. Clearing these instead of
/// re-allocating them is what lets a corpus campaign of thousands of
/// schedules run without per-schedule heap churn.
#[derive(Default)]
pub struct ListScratch {
    ready: BinaryHeap<Reverse<(Key3, NodeId)>>,
    events: BinaryHeap<Reverse<(TotalF64, NodeId)>>,
    remaining_children: Vec<usize>,
    free: ClassPool,
    proc_of: Vec<u32>,
}

/// Pool of idle processors grouped by speed class, replacing the historical
/// free-stack with its O(p) fastest-free scan and `Vec::remove` shift.
///
/// The classes are the distinct speeds in non-increasing order; each class
/// owns a fixed contiguous LIFO segment of `slots`. `pop_best`
/// takes the newest entry of the fastest non-empty class — exactly the
/// processor the historical scan picked (ties keep the last-freed slot) —
/// in `O(#classes)` without touching the heap. With a single class
/// (uniform speeds) the pool *is* the historical LIFO stack.
#[derive(Clone, Debug, Default)]
pub struct ClassPool {
    /// Speed-class index of each processor.
    class_of: Vec<u32>,
    /// Start offset of each class's segment in `slots`.
    base: Vec<u32>,
    /// Current fill of each class's segment.
    len: Vec<u32>,
    /// Backing storage, one slot per processor.
    slots: Vec<u32>,
    /// Distinct speeds, non-increasing (parallel to `base`/`len`).
    class_speed: Vec<f64>,
    /// Total idle processors, for an O(1) emptiness check.
    avail: u32,
}

impl ClassPool {
    /// Rebuilds the pool for `speeds` with every processor idle, reusing
    /// the existing buffers (no allocation when capacities suffice).
    fn rebuild(&mut self, speeds: Speeds<'_>) {
        let p = speeds.count() as usize;
        self.class_of.clear();
        self.class_speed.clear();
        match speeds {
            Speeds::Unit(_) => {
                self.class_speed.push(1.0);
                self.class_of.resize(p, 0);
            }
            Speeds::Per(s) => {
                self.class_speed.extend_from_slice(s);
                self.class_speed.sort_unstable_by(|a, b| b.total_cmp(a));
                self.class_speed.dedup_by(|a, b| a.total_cmp(b).is_eq());
                self.class_of.extend(s.iter().map(|v| {
                    self.class_speed
                        .iter()
                        .position(|c| c.total_cmp(v).is_eq())
                        .expect("speed is one of the classes") as u32
                }));
            }
        }
        let classes = self.class_speed.len();
        self.base.clear();
        self.base.resize(classes, 0);
        self.len.clear();
        self.len.resize(classes, 0);
        for &c in &self.class_of {
            self.base[c as usize] += 1; // class sizes, then prefix sums
        }
        let mut offset = 0u32;
        for b in &mut self.base {
            let size = *b;
            *b = offset;
            offset += size;
        }
        self.slots.clear();
        self.slots.resize(p, 0);
        self.avail = 0;
        // proc 0 pushed last = popped first, like the historical
        // `(0..p).rev()` stack fill
        for proc in (0..p as u32).rev() {
            self.push(proc);
        }
    }

    /// Returns `proc` to the idle pool.
    #[inline]
    fn push(&mut self, proc: u32) {
        let c = self.class_of[proc as usize] as usize;
        self.slots[(self.base[c] + self.len[c]) as usize] = proc;
        self.len[c] += 1;
        self.avail += 1;
    }

    /// Takes the newest idle processor of the fastest non-empty class.
    #[inline]
    fn pop_best(&mut self) -> Option<u32> {
        for c in 0..self.len.len() {
            if self.len[c] > 0 {
                self.len[c] -= 1;
                self.avail -= 1;
                return Some(self.slots[(self.base[c] + self.len[c]) as usize]);
            }
        }
        None
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.avail == 0
    }
}

/// Per-processor execution speeds for the list scheduler.
///
/// A task of work `w` placed on processor `i` runs for `w / speed(i)`.
/// [`Speeds::Unit`] is the paper's model of identical processors and is the
/// fast path: no per-processor scan, and `w / 1.0 == w` bit-for-bit, so
/// unit-speed schedules are byte-identical to the historical ones.
#[derive(Clone, Copy, Debug)]
pub enum Speeds<'a> {
    /// `p` processors, all at speed `1.0`.
    Unit(u32),
    /// One finite, positive speed factor per processor (the slice length is
    /// the processor count). Validated upstream by
    /// [`crate::api::Platform::validate`].
    Per(&'a [f64]),
}

impl Speeds<'_> {
    /// Number of processors.
    pub fn count(&self) -> u32 {
        match self {
            Speeds::Unit(p) => *p,
            Speeds::Per(s) => s.len() as u32,
        }
    }

    /// Speed of processor `proc`.
    #[inline]
    pub fn speed(&self, proc: u32) -> f64 {
        match self {
            Speeds::Unit(_) => 1.0,
            Speeds::Per(s) => s[proc as usize],
        }
    }
}

/// The event loop shared by [`list_schedule`] and [`list_schedule_reusing`]:
/// callers provide pre-seeded queues and tables; `placements` is returned
/// because it becomes the produced [`Schedule`] and cannot be reused.
#[allow(clippy::too_many_arguments)]
fn run_list<K: Ord + Copy>(
    tree: &TaskTree,
    speeds: Speeds<'_>,
    keys: &[K],
    ready: &mut BinaryHeap<Reverse<(K, NodeId)>>,
    events: &mut BinaryHeap<Reverse<(TotalF64, NodeId)>>,
    remaining_children: &mut [usize],
    free: &mut ClassPool,
    proc_of: &mut [u32],
) -> Vec<Placement> {
    let n = tree.len();
    let mut placements: Vec<Placement> = vec![
        Placement {
            proc: 0,
            start: f64::NAN,
            finish: f64::NAN
        };
        n
    ];

    let assign = |t: f64,
                  ready: &mut BinaryHeap<Reverse<(K, NodeId)>>,
                  events: &mut BinaryHeap<Reverse<(TotalF64, NodeId)>>,
                  free: &mut ClassPool,
                  placements: &mut Vec<Placement>,
                  proc_of: &mut [u32]| {
        while !free.is_empty() && !ready.is_empty() {
            let Reverse((_, node)) = ready.pop().expect("nonempty");
            // Every free processor can start the task at `t`, so the
            // earliest-finishing one is the fastest. Ties keep the LIFO
            // (last-freed) slot, which on unit speeds reproduces the
            // historical single-speed assignment exactly.
            let proc = free.pop_best().expect("nonempty");
            let finish = t + tree.work(node) / speeds.speed(proc);
            placements[node.index()] = Placement {
                proc,
                start: t,
                finish,
            };
            proc_of[node.index()] = proc;
            events.push(Reverse((TotalF64(finish), node)));
        }
    };

    // initial assignment at t = 0
    assign(0.0, ready, events, free, &mut placements, proc_of);

    while let Some(&Reverse((TotalF64(t), _))) = events.peek() {
        // pop every task finishing exactly at t, release its processor, and
        // promote parents that became ready
        while let Some(&Reverse((TotalF64(tf), node))) = events.peek() {
            if tf > t {
                break;
            }
            events.pop();
            free.push(proc_of[node.index()]);
            if let Some(parent) = tree.parent(node) {
                let r = &mut remaining_children[parent.index()];
                *r -= 1;
                if *r == 0 {
                    ready.push(Reverse((keys[parent.index()], parent)));
                }
            }
        }
        assign(t, ready, events, free, &mut placements, proc_of);
    }

    placements
}

/// Runs Algorithm 3: event-based list scheduling of `tree` on `p`
/// processors, ready tasks ordered by `keys` (**smaller key = higher
/// priority**), with the node id as the final deterministic tie-break.
///
/// # Panics
///
/// Panics when `p == 0` or `keys.len() != tree.len()`. The [`crate::api`]
/// layer checks both conditions and reports them as typed
/// [`crate::api::SchedError`]s instead.
pub fn list_schedule<K: Ord + Copy>(tree: &TaskTree, p: u32, keys: &[K]) -> Schedule {
    assert!(p > 0, "need at least one processor");
    assert_eq!(keys.len(), tree.len(), "one key per task");
    let n = tree.len();

    // ready queue: min-heap on (key, id); finish events: min-heap on (time, node)
    let mut ready: BinaryHeap<Reverse<(K, NodeId)>> = BinaryHeap::new();
    let mut events: BinaryHeap<Reverse<(TotalF64, NodeId)>> = BinaryHeap::new();
    let mut remaining_children: Vec<usize> = (0..n)
        .map(|i| tree.children(NodeId::from_index(i)).len())
        .collect();
    for i in tree.ids() {
        if tree.is_leaf(i) {
            ready.push(Reverse((keys[i.index()], i)));
        }
    }
    let mut free = ClassPool::default(); // pop_best() yields proc 0 first
    free.rebuild(Speeds::Unit(p));
    let mut proc_of: Vec<u32> = vec![0; n];

    let placements = run_list(
        tree,
        Speeds::Unit(p),
        keys,
        &mut ready,
        &mut events,
        &mut remaining_children,
        &mut free,
        &mut proc_of,
    );
    Schedule {
        processors: p,
        placements,
    }
}

/// As [`list_schedule`], but with [`Key3`]-encoded priorities and all
/// internal queues/tables borrowed from `scratch`, so repeated calls do not
/// re-allocate. This is the hot path of the experiment campaign.
///
/// # Panics
///
/// Panics when `p == 0` or `keys.len() != tree.len()`.
pub fn list_schedule_reusing(
    tree: &TaskTree,
    p: u32,
    keys: &[Key3],
    scratch: &mut ListScratch,
) -> Schedule {
    list_schedule_with_speeds(tree, Speeds::Unit(p), keys, scratch)
}

/// As [`list_schedule_reusing`], but over processors of explicit
/// [`Speeds`]: ready tasks still leave the queue in priority order, and
/// each is placed on the free processor where it would *finish* earliest
/// (the fastest free one), not merely on any free processor.
///
/// With [`Speeds::Unit`] this is exactly [`list_schedule_reusing`].
///
/// # Panics
///
/// Panics when the processor count is 0 or `keys.len() != tree.len()`.
pub fn list_schedule_with_speeds(
    tree: &TaskTree,
    speeds: Speeds<'_>,
    keys: &[Key3],
    scratch: &mut ListScratch,
) -> Schedule {
    let p = speeds.count();
    assert!(p > 0, "need at least one processor");
    assert_eq!(keys.len(), tree.len(), "one key per task");
    let n = tree.len();

    scratch.ready.clear();
    scratch.events.clear();
    scratch.remaining_children.clear();
    scratch
        .remaining_children
        .extend((0..n).map(|i| tree.children(NodeId::from_index(i)).len()));
    for i in tree.ids() {
        if tree.is_leaf(i) {
            scratch.ready.push(Reverse((keys[i.index()], i)));
        }
    }
    scratch.free.rebuild(speeds);
    scratch.proc_of.clear();
    scratch.proc_of.resize(n, 0);

    let placements = run_list(
        tree,
        speeds,
        keys,
        &mut scratch.ready,
        &mut scratch.events,
        &mut scratch.remaining_children,
        &mut scratch.free,
        &mut scratch.proc_of,
    );
    Schedule {
        processors: p,
        placements,
    }
}

/// Cross-domain communication context for [`list_schedule_with_comm`]:
/// which memory domain each processor lives in, and what one unit of output
/// data costs to move between two domains.
#[derive(Clone, Copy, Debug)]
pub struct CommCosts<'a> {
    /// Memory-domain index of each processor, in processor index order
    /// (`u32::MAX` = no domain: unbounded memory, free communication). See
    /// [`crate::api::Platform::fill_domains`].
    pub domain_of: &'a [u32],
    /// Flattened `domains × domains` row-major transfer-cost matrix. See
    /// [`crate::api::Platform::comm`].
    pub cost: &'a [f64],
    /// Number of domains (the matrix dimension).
    pub domains: usize,
}

impl CommCosts<'_> {
    /// Transfer cost per unit of data between the domains of two
    /// processors; zero within a domain and for domain-less processors.
    #[inline]
    fn between(&self, src: u32, dst: u32) -> f64 {
        if src == dst || src == u32::MAX || dst == u32::MAX {
            0.0
        } else {
            self.cost[src as usize * self.domains + dst as usize]
        }
    }
}

/// The comm-aware twin of the [`run_list`] event loop, kept separate so the
/// comm-free hot path stays byte-for-byte untouched. Same queue pairing —
/// highest-priority ready task onto the fastest free processor — but the
/// pick *reserves* the processor at event time `t` and the task then waits
/// until every child's output has crossed into the processor's domain:
/// `start = max(t, max_c finish_c + output_c × cost(dom_c, dom))`.
#[allow(clippy::too_many_arguments)]
fn run_list_comm<K: Ord + Copy>(
    tree: &TaskTree,
    speeds: Speeds<'_>,
    keys: &[K],
    comm: &CommCosts<'_>,
    ready: &mut BinaryHeap<Reverse<(K, NodeId)>>,
    events: &mut BinaryHeap<Reverse<(TotalF64, NodeId)>>,
    remaining_children: &mut [usize],
    free: &mut ClassPool,
    proc_of: &mut [u32],
) -> Vec<Placement> {
    let n = tree.len();
    let mut placements: Vec<Placement> = vec![
        Placement {
            proc: 0,
            start: f64::NAN,
            finish: f64::NAN
        };
        n
    ];

    let assign = |t: f64,
                  ready: &mut BinaryHeap<Reverse<(K, NodeId)>>,
                  events: &mut BinaryHeap<Reverse<(TotalF64, NodeId)>>,
                  free: &mut ClassPool,
                  placements: &mut Vec<Placement>,
                  proc_of: &mut [u32]| {
        while !free.is_empty() && !ready.is_empty() {
            let Reverse((_, node)) = ready.pop().expect("nonempty");
            let proc = free.pop_best().expect("nonempty");
            let dst = comm.domain_of[proc as usize];
            let mut start = t;
            for &c in tree.children(node) {
                let delay =
                    tree.output(c) * comm.between(comm.domain_of[proc_of[c.index()] as usize], dst);
                if delay > 0.0 {
                    let earliest = placements[c.index()].finish + delay;
                    if earliest > start {
                        start = earliest;
                    }
                }
            }
            let finish = start + tree.work(node) / speeds.speed(proc);
            placements[node.index()] = Placement {
                proc,
                start,
                finish,
            };
            proc_of[node.index()] = proc;
            events.push(Reverse((TotalF64(finish), node)));
        }
    };

    assign(0.0, ready, events, free, &mut placements, proc_of);

    while let Some(&Reverse((TotalF64(t), _))) = events.peek() {
        while let Some(&Reverse((TotalF64(tf), node))) = events.peek() {
            if tf > t {
                break;
            }
            events.pop();
            free.push(proc_of[node.index()]);
            if let Some(parent) = tree.parent(node) {
                let r = &mut remaining_children[parent.index()];
                *r -= 1;
                if *r == 0 {
                    ready.push(Reverse((keys[parent.index()], parent)));
                }
            }
        }
        assign(t, ready, events, free, &mut placements, proc_of);
    }

    placements
}

/// As [`list_schedule_with_speeds`], but paying cross-domain transfer
/// costs: a task whose children ran in other memory domains cannot start
/// until each child's output has crossed over, so its start is delayed to
/// `max(t, max_c finish_c + output_c × comm_cost)` while the processor it
/// was assigned stays reserved. With an all-zero cost matrix every delay is
/// zero and the result equals the comm-free path (the [`crate::api`] layer
/// routes such platforms to the comm-free path outright, keeping it
/// byte-identical by construction).
///
/// # Panics
///
/// Panics when the processor count is 0, `keys.len() != tree.len()`, or
/// `comm.domain_of` does not have one entry per processor.
pub fn list_schedule_with_comm(
    tree: &TaskTree,
    speeds: Speeds<'_>,
    keys: &[Key3],
    comm: &CommCosts<'_>,
    scratch: &mut ListScratch,
) -> Schedule {
    let p = speeds.count();
    assert!(p > 0, "need at least one processor");
    assert_eq!(keys.len(), tree.len(), "one key per task");
    assert_eq!(comm.domain_of.len(), p as usize, "one domain per processor");
    let n = tree.len();

    scratch.ready.clear();
    scratch.events.clear();
    scratch.remaining_children.clear();
    scratch
        .remaining_children
        .extend((0..n).map(|i| tree.children(NodeId::from_index(i)).len()));
    for i in tree.ids() {
        if tree.is_leaf(i) {
            scratch.ready.push(Reverse((keys[i.index()], i)));
        }
    }
    scratch.free.rebuild(speeds);
    scratch.proc_of.clear();
    scratch.proc_of.resize(n, 0);

    let placements = run_list_comm(
        tree,
        speeds,
        keys,
        comm,
        &mut scratch.ready,
        &mut scratch.events,
        &mut scratch.remaining_children,
        &mut scratch.free,
        &mut scratch.proc_of,
    );
    Schedule {
        processors: p,
        placements,
    }
}

/// Priority keys replaying a fixed sequential order: ready tasks are served
/// in the order they appear in `order`. With `p = 1` this reproduces the
/// sequential traversal exactly.
pub fn keys_from_order(tree: &TaskTree, order: &[NodeId]) -> Vec<usize> {
    treesched_model::io::positions(tree.len(), order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::evaluate;
    use treesched_model::{TaskTree, TreeBuilder};
    use treesched_seq::best_postorder;

    #[test]
    fn single_processor_replays_sequential_order() {
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 1.0, 0.0);
        let x = b.child(r, 2.0, 3.0, 1.0);
        b.child(x, 1.0, 5.0, 0.0);
        b.child(r, 3.0, 2.0, 0.0);
        let t = b.build().unwrap();
        let order = best_postorder(&t).order;
        let keys = keys_from_order(&t, &order);
        let s = list_schedule(&t, 1, &keys);
        let ev = evaluate(&t, &s);
        assert_eq!(ev.makespan, t.total_work());
        assert_eq!(
            ev.peak_memory,
            treesched_seq::peak_of_order(&t, &order).unwrap()
        );
        // tasks ran in exactly the given order
        let mut seq: Vec<NodeId> = t.ids().collect();
        seq.sort_by(|&a, &b| s.placement(a).start.total_cmp(&s.placement(b).start));
        assert_eq!(seq, order);
    }

    #[test]
    fn fork_uses_all_processors() {
        let t = TaskTree::fork(6, 1.0, 1.0, 0.0);
        let keys = keys_from_order(&t, &t.postorder());
        let s = list_schedule(&t, 3, &keys);
        let ev = evaluate(&t, &s);
        assert_eq!(ev.makespan, 3.0); // 6 leaves / 3 procs + root
        assert_eq!(s.max_concurrency(), 3);
    }

    #[test]
    fn never_exceeds_processor_count() {
        let t = TaskTree::complete(3, 4, 1.0, 1.0, 0.0);
        let keys = keys_from_order(&t, &t.postorder());
        for p in [1u32, 2, 4, 7] {
            let s = list_schedule(&t, p, &keys);
            assert!(s.validate(&t).is_ok());
            assert!(s.max_concurrency() <= p as usize);
        }
    }

    #[test]
    fn makespan_within_graham_bound() {
        let t = TaskTree::complete(2, 6, 1.0, 1.0, 0.0);
        for p in [2u32, 4, 8] {
            let keys = keys_from_order(&t, &t.postorder());
            let s = list_schedule(&t, p, &keys);
            let lb = (t.total_work() / p as f64).max(t.critical_path());
            let graham = (2.0 - 1.0 / p as f64) * lb;
            assert!(s.makespan() <= graham + 1e-9);
            assert!(s.makespan() >= lb - 1e-9);
        }
    }

    #[test]
    fn respects_priorities() {
        // two leaves with different priorities, one processor: the smaller
        // key runs first
        let t = TaskTree::fork(2, 1.0, 1.0, 0.0);
        let keys = vec![9usize, 5, 3]; // leaf 2 first, then leaf 1
        let s = list_schedule(&t, 1, &keys);
        assert!(s.placement(NodeId(2)).start < s.placement(NodeId(1)).start);
    }

    #[test]
    fn inner_node_scheduled_when_ready() {
        // chain: with 4 processors only one can be busy at a time
        let t = TaskTree::chain(5, 2.0, 1.0, 0.0);
        let keys = keys_from_order(&t, &t.postorder());
        let s = list_schedule(&t, 4, &keys);
        assert_eq!(s.makespan(), 10.0);
        assert_eq!(s.max_concurrency(), 1);
    }

    #[test]
    fn work_conserving_no_idle_when_ready() {
        // list scheduling never leaves a processor idle while a task is
        // ready: on the fork, leaves are packed tightly
        let t = TaskTree::fork(7, 1.0, 1.0, 0.0);
        let keys = keys_from_order(&t, &t.postorder());
        let s = list_schedule(&t, 2, &keys);
        assert_eq!(s.makespan(), 5.0); // ceil(7/2) = 4 slots, then root
    }

    #[test]
    fn reusing_path_matches_generic_path() {
        // same keys through the fresh-allocation and the scratch-reusing
        // entry points must yield identical schedules, across trees sharing
        // one scratch
        let mut scratch = ListScratch::default();
        for t in [
            TaskTree::fork(6, 1.0, 1.0, 0.0),
            TaskTree::complete(3, 4, 1.0, 1.0, 0.0),
            TaskTree::chain(9, 2.0, 1.0, 0.0),
        ] {
            let keys: Vec<Key3> = keys_from_order(&t, &t.postorder())
                .into_iter()
                .map(|k| (k as u64, 0, 0))
                .collect();
            for p in [1u32, 3, 8] {
                let a = list_schedule(&t, p, &keys);
                let b = list_schedule_reusing(&t, p, &keys, &mut scratch);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn class_pool_matches_the_historical_free_stack_scan() {
        // drive the pool and the historical Vec-based free stack (top scan
        // with strict `>`, ties keep the newest slot) through the same
        // pop/push sequence and compare every pick
        let speeds = [2.0f64, 1.0, 2.0, 3.0, 1.0, 3.0, 2.0];
        let mut pool = ClassPool::default();
        pool.rebuild(Speeds::Per(&speeds));
        let mut stack: Vec<u32> = (0..speeds.len() as u32).rev().collect();
        let reference_pop = |stack: &mut Vec<u32>| {
            let mut best = stack.len() - 1;
            for j in (0..best).rev() {
                if speeds[stack[j] as usize] > speeds[stack[best] as usize] {
                    best = j;
                }
            }
            stack.remove(best)
        };
        let mut held: Vec<u32> = Vec::new();
        for step in 0..200u32 {
            let pop_turn = step % 5 < 3;
            if pop_turn && !stack.is_empty() {
                let want = reference_pop(&mut stack);
                let got = pool.pop_best().expect("pool agrees stack is nonempty");
                assert_eq!(got, want, "step {step}");
                held.push(got);
            } else if let Some(proc) = held.pop() {
                stack.push(proc);
                pool.push(proc);
            }
        }
        while !stack.is_empty() {
            assert_eq!(pool.pop_best(), Some(reference_pop(&mut stack)));
        }
        assert!(pool.pop_best().is_none());
        assert!(pool.is_empty());
    }

    #[test]
    fn key_encoding_preserves_f64_order() {
        let xs: [f64; 8] = [-1e30, -2.5, -0.0, 0.0, 1e-300, 1.0, 2.5, 1e30];
        for a in xs {
            for b in xs {
                assert_eq!(
                    a.total_cmp(&b),
                    key_from_f64(a).cmp(&key_from_f64(b)),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_processors_panics() {
        let t = TaskTree::chain(2, 1.0, 1.0, 0.0);
        let keys = keys_from_order(&t, &t.postorder());
        let _ = list_schedule(&t, 0, &keys);
    }

    #[test]
    fn all_unit_per_speeds_match_the_unit_fast_path_exactly() {
        // Speeds::Per with all-1.0 entries must take the same decisions as
        // Speeds::Unit, down to the processor indices — this is what makes
        // "uniform heterogeneous" platforms bit-compatible with homogeneous
        // ones.
        let mut scratch = ListScratch::default();
        for t in [
            TaskTree::fork(9, 1.0, 1.0, 0.0),
            TaskTree::complete(3, 4, 1.0, 1.0, 0.0),
            TaskTree::chain(7, 2.0, 1.0, 0.0),
        ] {
            let keys: Vec<Key3> = keys_from_order(&t, &t.postorder())
                .into_iter()
                .map(|k| (k as u64, 0, 0))
                .collect();
            for p in [1usize, 3, 5] {
                let unit =
                    list_schedule_with_speeds(&t, Speeds::Unit(p as u32), &keys, &mut scratch);
                let ones = vec![1.0f64; p];
                let per = list_schedule_with_speeds(&t, Speeds::Per(&ones), &keys, &mut scratch);
                assert_eq!(unit, per, "p={p}");
            }
        }
    }

    #[test]
    fn tasks_go_to_the_fastest_free_processor() {
        // fork with 2 leaves on a fast + slow pair: the higher-priority leaf
        // takes the fast processor, and the root (ready when both finish)
        // also lands on the fast one
        let t = TaskTree::fork(2, 1.0, 1.0, 0.0);
        let keys = keys_from_order(&t, &t.postorder());
        let keys: Vec<Key3> = keys.into_iter().map(|k| (k as u64, 0, 0)).collect();
        let speeds = [2.0f64, 1.0];
        let mut scratch = ListScratch::default();
        let s = list_schedule_with_speeds(&t, Speeds::Per(&speeds), &keys, &mut scratch);
        // leaf 1 (first in postorder) on proc 0 at speed 2: finishes at 0.5
        assert_eq!(s.placement(NodeId(1)).proc, 0);
        assert_eq!(s.placement(NodeId(1)).finish, 0.5);
        // leaf 2 runs concurrently on the slow processor
        assert_eq!(s.placement(NodeId(2)).proc, 1);
        assert_eq!(s.placement(NodeId(2)).finish, 1.0);
        // root becomes ready at t = 1 and picks the fast (free) processor
        assert_eq!(s.placement(NodeId(0)).proc, 0);
        assert_eq!(s.placement(NodeId(0)).start, 1.0);
        assert_eq!(s.placement(NodeId(0)).finish, 1.5);
    }

    #[test]
    fn faster_processors_shorten_the_makespan() {
        let t = TaskTree::complete(2, 5, 1.0, 1.0, 0.0);
        let keys: Vec<Key3> = keys_from_order(&t, &t.postorder())
            .into_iter()
            .map(|k| (k as u64, 0, 0))
            .collect();
        let mut scratch = ListScratch::default();
        let uniform = list_schedule_with_speeds(&t, Speeds::Unit(4), &keys, &mut scratch);
        let boosted = [4.0f64, 1.0, 1.0, 1.0];
        let het = list_schedule_with_speeds(&t, Speeds::Per(&boosted), &keys, &mut scratch);
        assert!(het.makespan() < uniform.makespan());
    }
}
