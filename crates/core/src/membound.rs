//! Memory-capped list scheduling — the paper's stated future work (§7:
//! *"we will consider designing scheduling algorithms that take as input a
//! cap on the memory usage"*).
//!
//! Two admission policies are provided:
//!
//! * [`Admission::SequentialOrder`] (default, **safe**): tasks may only
//!   *start* in the order of a reference sequential traversal `σ` (children
//!   of a task precede it in `σ`, so dependencies are compatible). Multiple
//!   consecutive `σ`-tasks run concurrently when memory allows. Key
//!   property: if every started task has finished, the resident memory
//!   equals the sequential resident memory before the next `σ`-step, so
//!   whenever `cap ≥ peak(σ)` the next task *always* fits — the scheduler
//!   never deadlocks and **never exceeds the cap**. This is the
//!   "activation order" idea later formalized by the authors' follow-up
//!   work on memory-bounded tree scheduling.
//! * [`Admission::Greedy`]: scan the ready queue in priority order and
//!   start anything that fits. More parallelism-seeking, but it can paint
//!   itself into a corner (fill memory with leaf outputs whose parents no
//!   longer fit) and then must *force-admit* a task over the cap to make
//!   progress; each forced admission is counted as a violation. Note the
//!   skip-scan costs `O(ready)` per event once memory is saturated —
//!   `O(n · width)` worst case — so this policy is a comparison baseline,
//!   not the production path.
//!
//! A run reporting `violations == 0` stayed under the cap throughout.

use crate::listsched::TotalF64;
use crate::schedule::{Placement, Schedule};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use treesched_model::{NodeId, TaskTree};

/// Admission policy of the memory-capped scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Admission {
    /// Start tasks in the reference sequential order; safe for any cap at
    /// least the sequential traversal's peak.
    #[default]
    SequentialOrder,
    /// Start any ready task that fits, in priority order; may violate an
    /// otherwise-feasible cap.
    Greedy,
}

/// Outcome of a memory-capped scheduling run.
#[derive(Clone, Debug)]
pub struct MemBoundedRun {
    /// The produced schedule (always dependency- and processor-valid).
    pub schedule: Schedule,
    /// Number of forced admissions that exceeded the cap.
    pub violations: usize,
    /// Peak memory actually reached.
    pub peak_memory: f64,
}

struct State {
    resident: f64,
    peak: f64,
    running: usize,
    violations: usize,
    free_procs: Vec<u32>,
    proc_of: Vec<u32>,
    placements: Vec<Placement>,
}

impl State {
    fn start(
        &mut self,
        tree: &TaskTree,
        node: NodeId,
        t: f64,
        events: &mut BinaryHeap<Reverse<(TotalF64, NodeId)>>,
    ) {
        let proc = self
            .free_procs
            .pop()
            .expect("caller checked a processor is free");
        let finish = t + tree.work(node);
        self.placements[node.index()] = Placement {
            proc,
            start: t,
            finish,
        };
        self.proc_of[node.index()] = proc;
        events.push(Reverse((TotalF64(finish), node)));
        self.resident += tree.exec(node) + tree.output(node);
        self.peak = self.peak.max(self.resident);
        self.running += 1;
    }
}

/// Memory-capped scheduling of `tree` on `p` processors under `cap`.
///
/// `order` is the reference sequential traversal (typically
/// [`treesched_seq::best_postorder`]); under [`Admission::SequentialOrder`]
/// it is also the activation order, and under [`Admission::Greedy`] it
/// provides the ready-queue priorities.
///
/// # Panics
///
/// Panics when `p == 0` or when `order` is not a permutation of the nodes.
pub fn mem_bounded_schedule(
    tree: &TaskTree,
    p: u32,
    order: &[NodeId],
    cap: f64,
    policy: Admission,
) -> MemBoundedRun {
    assert!(p > 0, "need at least one processor");
    let n = tree.len();
    assert_eq!(order.len(), n, "order must cover every task");
    let eps = 1e-9 * (1.0 + cap.abs());
    let pos = treesched_model::io::positions(n, order);

    let mut events: BinaryHeap<Reverse<(TotalF64, NodeId)>> = BinaryHeap::new();
    let mut done = vec![false; n];
    let mut remaining_children: Vec<usize> = (0..n)
        .map(|i| tree.children(NodeId::from_index(i)).len())
        .collect();
    // Greedy: ready min-heap keyed by σ-position. SequentialOrder: cursor.
    let mut ready: BinaryHeap<Reverse<(usize, NodeId)>> = BinaryHeap::new();
    if policy == Admission::Greedy {
        for i in tree.ids() {
            if tree.is_leaf(i) {
                ready.push(Reverse((pos[i.index()], i)));
            }
        }
    }
    let mut cursor = 0usize; // next σ-index to start (SequentialOrder)

    let mut st = State {
        resident: 0.0,
        peak: 0.0,
        running: 0,
        violations: 0,
        free_procs: (0..p).rev().collect(),
        proc_of: vec![0; n],
        placements: vec![
            Placement {
                proc: 0,
                start: f64::NAN,
                finish: f64::NAN
            };
            n
        ],
    };

    let admit_sequential =
        |st: &mut State,
         cursor: &mut usize,
         t: f64,
         done: &[bool],
         events: &mut BinaryHeap<Reverse<(TotalF64, NodeId)>>| {
            while *cursor < n && !st.free_procs.is_empty() {
                let node = order[*cursor];
                if !tree.children(node).iter().all(|c| done[c.index()]) {
                    break; // a child is still running; wait for its event
                }
                let footprint = tree.exec(node) + tree.output(node);
                if st.resident + footprint <= cap + eps {
                    st.start(tree, node, t, events);
                    *cursor += 1;
                } else if st.running == 0 {
                    // cap below the sequential peak: force through, count it
                    st.start(tree, node, t, events);
                    st.violations += 1;
                    *cursor += 1;
                } else {
                    break; // wait for running tasks to release memory
                }
            }
        };

    let admit_greedy =
        |st: &mut State,
         ready: &mut BinaryHeap<Reverse<(usize, NodeId)>>,
         t: f64,
         events: &mut BinaryHeap<Reverse<(TotalF64, NodeId)>>| {
            let mut skipped: Vec<(usize, NodeId)> = Vec::new();
            while !st.free_procs.is_empty() {
                let Some(Reverse((k, node))) = ready.pop() else {
                    break;
                };
                let footprint = tree.exec(node) + tree.output(node);
                if st.resident + footprint <= cap + eps {
                    st.start(tree, node, t, events);
                } else {
                    skipped.push((k, node));
                }
            }
            if st.running == 0 && !st.free_procs.is_empty() && !skipped.is_empty() {
                // nothing fits and nothing runs: force the cheapest through
                let (j, _) = skipped
                    .iter()
                    .enumerate()
                    .min_by(|(_, (_, a)), (_, (_, b))| {
                        (tree.exec(*a) + tree.output(*a))
                            .total_cmp(&(tree.exec(*b) + tree.output(*b)))
                    })
                    .expect("nonempty");
                let (_, node) = skipped.swap_remove(j);
                st.start(tree, node, t, events);
                st.violations += 1;
            }
            for e in skipped {
                ready.push(Reverse(e));
            }
        };

    match policy {
        Admission::SequentialOrder => {
            admit_sequential(&mut st, &mut cursor, 0.0, &done, &mut events)
        }
        Admission::Greedy => admit_greedy(&mut st, &mut ready, 0.0, &mut events),
    }

    while let Some(&Reverse((TotalF64(t), _))) = events.peek() {
        while let Some(&Reverse((TotalF64(tf), node))) = events.peek() {
            if tf > t {
                break;
            }
            events.pop();
            st.free_procs.push(st.proc_of[node.index()]);
            st.running -= 1;
            st.resident -= tree.exec(node) + tree.input_size(node);
            done[node.index()] = true;
            if policy == Admission::Greedy {
                if let Some(parent) = tree.parent(node) {
                    let r = &mut remaining_children[parent.index()];
                    *r -= 1;
                    if *r == 0 {
                        ready.push(Reverse((pos[parent.index()], parent)));
                    }
                }
            }
        }
        match policy {
            Admission::SequentialOrder => {
                admit_sequential(&mut st, &mut cursor, t, &done, &mut events)
            }
            Admission::Greedy => admit_greedy(&mut st, &mut ready, t, &mut events),
        }
    }

    debug_assert!(policy == Admission::Greedy || cursor == n);
    MemBoundedRun {
        schedule: Schedule {
            processors: p,
            placements: st.placements,
        },
        violations: st.violations,
        peak_memory: st.peak,
    }
}

/// Per-processor platform context for [`mem_bounded_schedule_domains`]: one
/// speed and one memory-domain index per processor (`u32::MAX` = no domain:
/// unbounded memory), plus one capacity per domain. Built from a
/// [`crate::api::Platform`] via `fill_speeds` / `fill_domains`.
#[derive(Clone, Copy, Debug)]
pub struct DomainCtx<'a> {
    /// Speed of each processor, in processor index order.
    pub speeds: &'a [f64],
    /// Memory-domain index of each processor (`u32::MAX` = none).
    pub domain_of: &'a [u32],
    /// Capacity of each domain, in domain index order.
    pub caps: &'a [f64],
}

/// Domain- and speed-aware memory-capped scheduling: the generalization of
/// [`mem_bounded_schedule`] that *enforces* each memory domain's capacity
/// during admission (where [`crate::schedule::Schedule::domain_peaks`] only
/// reports the peaks after the fact) and runs each task for `w / speed` on
/// its processor.
///
/// Memory accounting mirrors `domain_peaks` exactly: a task's footprint
/// (`exec + output`) is charged to the domain of the processor it starts
/// on; at finish its `exec` is released there and each input file is
/// released from the domain of the *child* that produced it. A task is
/// admitted on the first idle processor — fastest first, ties by index —
/// whose domain has room for the footprint (processors outside every
/// domain are never memory-blocked). When nothing runs and no processor's
/// domain has room, a task is force-admitted and counted in
/// [`MemBoundedRun::violations`], exactly like the shared-cap policies.
/// [`MemBoundedRun::peak_memory`] stays the *global* resident peak, equal
/// to `schedule.peak_memory(tree)`.
///
/// The flat shared-memory equal-speed case stays on
/// [`mem_bounded_schedule`] (bit-identical, pinned by goldens); this entry
/// point serves mixed speeds and genuinely split memory.
///
/// # Panics
///
/// Panics when there are no processors, `order` is not a permutation of
/// the nodes, or the context slices disagree on the processor count.
pub fn mem_bounded_schedule_domains(
    tree: &TaskTree,
    ctx: &DomainCtx<'_>,
    order: &[NodeId],
    policy: Admission,
) -> MemBoundedRun {
    let p = ctx.speeds.len();
    assert!(p > 0, "need at least one processor");
    assert_eq!(ctx.domain_of.len(), p, "one domain per processor");
    let n = tree.len();
    assert_eq!(order.len(), n, "order must cover every task");
    let eps: Vec<f64> = ctx.caps.iter().map(|c| 1e-9 * (1.0 + c.abs())).collect();
    let pos = treesched_model::io::positions(n, order);

    // admission scan order: fastest processor first, ties by index
    let mut prio: Vec<u32> = (0..p as u32).collect();
    prio.sort_by(|&a, &b| ctx.speeds[b as usize].total_cmp(&ctx.speeds[a as usize]));

    let mut events: BinaryHeap<Reverse<(TotalF64, NodeId)>> = BinaryHeap::new();
    let mut done = vec![false; n];
    let mut remaining_children: Vec<usize> = (0..n)
        .map(|i| tree.children(NodeId::from_index(i)).len())
        .collect();
    let mut ready: BinaryHeap<Reverse<(usize, NodeId)>> = BinaryHeap::new();
    if policy == Admission::Greedy {
        for i in tree.ids() {
            if tree.is_leaf(i) {
                ready.push(Reverse((pos[i.index()], i)));
            }
        }
    }
    let mut cursor = 0usize;

    struct DomState {
        resident: Vec<f64>,
        total: f64,
        peak: f64,
        running: usize,
        violations: usize,
        idle: usize,
        free: Vec<bool>,
        proc_of: Vec<u32>,
        placements: Vec<Placement>,
    }

    let mut st = DomState {
        resident: vec![0.0; ctx.caps.len()],
        total: 0.0,
        peak: 0.0,
        running: 0,
        violations: 0,
        idle: p,
        free: vec![true; p],
        proc_of: vec![0; n],
        placements: vec![
            Placement {
                proc: 0,
                start: f64::NAN,
                finish: f64::NAN
            };
            n
        ],
    };

    // first idle processor (fastest-first) whose domain fits `footprint`,
    // or — with `force` — simply the first idle one
    let pick = |st: &DomState, footprint: f64, force: bool| -> Option<u32> {
        let mut fallback = None;
        for &proc in &prio {
            if !st.free[proc as usize] {
                continue;
            }
            if fallback.is_none() {
                fallback = Some(proc);
            }
            let d = ctx.domain_of[proc as usize];
            if d == u32::MAX
                || st.resident[d as usize] + footprint <= ctx.caps[d as usize] + eps[d as usize]
            {
                return Some(proc);
            }
        }
        if force {
            fallback
        } else {
            None
        }
    };

    let start = |st: &mut DomState,
                 node: NodeId,
                 proc: u32,
                 t: f64,
                 events: &mut BinaryHeap<Reverse<(TotalF64, NodeId)>>| {
        let finish = t + tree.work(node) / ctx.speeds[proc as usize];
        st.placements[node.index()] = Placement {
            proc,
            start: t,
            finish,
        };
        st.proc_of[node.index()] = proc;
        st.free[proc as usize] = false;
        st.idle -= 1;
        events.push(Reverse((TotalF64(finish), node)));
        let footprint = tree.exec(node) + tree.output(node);
        let d = ctx.domain_of[proc as usize];
        if d != u32::MAX {
            st.resident[d as usize] += footprint;
        }
        st.total += footprint;
        st.peak = st.peak.max(st.total);
        st.running += 1;
    };

    let admit_sequential =
        |st: &mut DomState,
         cursor: &mut usize,
         t: f64,
         done: &[bool],
         events: &mut BinaryHeap<Reverse<(TotalF64, NodeId)>>| {
            while *cursor < n && st.idle > 0 {
                let node = order[*cursor];
                if !tree.children(node).iter().all(|c| done[c.index()]) {
                    break;
                }
                let footprint = tree.exec(node) + tree.output(node);
                if let Some(proc) = pick(st, footprint, false) {
                    start(st, node, proc, t, events);
                    *cursor += 1;
                } else if st.running == 0 {
                    // no domain has room and nothing runs: force through
                    let proc = pick(st, footprint, true).expect("a processor is idle");
                    start(st, node, proc, t, events);
                    st.violations += 1;
                    *cursor += 1;
                } else {
                    break;
                }
            }
        };

    let admit_greedy =
        |st: &mut DomState,
         ready: &mut BinaryHeap<Reverse<(usize, NodeId)>>,
         t: f64,
         events: &mut BinaryHeap<Reverse<(TotalF64, NodeId)>>| {
            let mut skipped: Vec<(usize, NodeId)> = Vec::new();
            while st.idle > 0 {
                let Some(Reverse((k, node))) = ready.pop() else {
                    break;
                };
                let footprint = tree.exec(node) + tree.output(node);
                if let Some(proc) = pick(st, footprint, false) {
                    start(st, node, proc, t, events);
                } else {
                    skipped.push((k, node));
                }
            }
            if st.running == 0 && st.idle > 0 && !skipped.is_empty() {
                let (j, _) = skipped
                    .iter()
                    .enumerate()
                    .min_by(|(_, (_, a)), (_, (_, b))| {
                        (tree.exec(*a) + tree.output(*a))
                            .total_cmp(&(tree.exec(*b) + tree.output(*b)))
                    })
                    .expect("nonempty");
                let (_, node) = skipped.swap_remove(j);
                let footprint = tree.exec(node) + tree.output(node);
                let proc = pick(&*st, footprint, true).expect("a processor is idle");
                start(st, node, proc, t, events);
                st.violations += 1;
            }
            for e in skipped {
                ready.push(Reverse(e));
            }
        };

    match policy {
        Admission::SequentialOrder => {
            admit_sequential(&mut st, &mut cursor, 0.0, &done, &mut events)
        }
        Admission::Greedy => admit_greedy(&mut st, &mut ready, 0.0, &mut events),
    }

    while let Some(&Reverse((TotalF64(t), _))) = events.peek() {
        while let Some(&Reverse((TotalF64(tf), node))) = events.peek() {
            if tf > t {
                break;
            }
            events.pop();
            let proc = st.proc_of[node.index()];
            st.free[proc as usize] = true;
            st.idle += 1;
            st.running -= 1;
            // release the program from this task's domain and each input
            // file from the domain of the child that produced it
            let d = ctx.domain_of[proc as usize];
            if d != u32::MAX {
                st.resident[d as usize] -= tree.exec(node);
            }
            for &c in tree.children(node) {
                let cd = ctx.domain_of[st.proc_of[c.index()] as usize];
                if cd != u32::MAX {
                    st.resident[cd as usize] -= tree.output(c);
                }
            }
            st.total -= tree.exec(node) + tree.input_size(node);
            done[node.index()] = true;
            if policy == Admission::Greedy {
                if let Some(parent) = tree.parent(node) {
                    let r = &mut remaining_children[parent.index()];
                    *r -= 1;
                    if *r == 0 {
                        ready.push(Reverse((pos[parent.index()], parent)));
                    }
                }
            }
        }
        match policy {
            Admission::SequentialOrder => {
                admit_sequential(&mut st, &mut cursor, t, &done, &mut events)
            }
            Admission::Greedy => admit_greedy(&mut st, &mut ready, t, &mut events),
        }
    }

    debug_assert!(policy == Admission::Greedy || cursor == n);
    MemBoundedRun {
        schedule: Schedule {
            processors: p as u32,
            placements: st.placements,
        },
        violations: st.violations,
        peak_memory: st.peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::memory_reference;
    use treesched_model::TaskTree;
    use treesched_seq::best_postorder;

    fn run(tree: &TaskTree, p: u32, cap: f64, policy: Admission) -> MemBoundedRun {
        let order = best_postorder(tree).order;
        mem_bounded_schedule(tree, p, &order, cap, policy)
    }

    #[test]
    fn generous_cap_behaves_like_unbounded() {
        let t = TaskTree::fork(6, 1.0, 1.0, 0.0);
        for policy in [Admission::SequentialOrder, Admission::Greedy] {
            let r = run(&t, 3, 1e12, policy);
            assert_eq!(r.violations, 0);
            assert!(r.schedule.validate(&t).is_ok());
            assert_eq!(r.peak_memory, r.schedule.peak_memory(&t));
        }
        // greedy with ample memory packs the leaves: 6/3 + root = 3
        assert_eq!(run(&t, 3, 1e12, Admission::Greedy).schedule.makespan(), 3.0);
    }

    /// The safety theorem for the sequential-activation policy: any cap at
    /// least the reference traversal's peak yields zero violations and a
    /// peak within the cap.
    #[test]
    fn sequential_policy_is_safe_at_reference_cap() {
        let trees = [
            TaskTree::complete(2, 5, 1.0, 1.0, 0.0),
            TaskTree::complete(3, 3, 1.0, 2.0, 0.5),
            TaskTree::fork(17, 1.0, 3.0, 1.0),
            TaskTree::chain(25, 2.0, 4.0, 1.0),
        ];
        for t in &trees {
            let mseq = memory_reference(t);
            for p in [1u32, 2, 4, 8] {
                let r = run(t, p, mseq, Admission::SequentialOrder);
                assert_eq!(r.violations, 0, "p={p}");
                assert!(r.peak_memory <= mseq + 1e-9, "p={p}");
                assert!(r.schedule.validate(t).is_ok());
            }
        }
    }

    #[test]
    fn greedy_can_violate_where_sequential_does_not() {
        // Binary tree: greedy grabs leaves across subtrees and strands
        // itself; sequential-order stays feasible at the same cap.
        let t = TaskTree::complete(2, 5, 1.0, 1.0, 0.0);
        let mseq = memory_reference(&t);
        let seq = run(&t, 8, mseq, Admission::SequentialOrder);
        let greedy = run(&t, 8, mseq, Admission::Greedy);
        assert_eq!(seq.violations, 0);
        assert!(greedy.violations > 0, "greedy should strand itself here");
    }

    #[test]
    fn cap_trades_makespan_for_memory() {
        let t = TaskTree::complete(2, 6, 1.0, 1.0, 0.0);
        let p = 8;
        let loose = run(&t, p, 1e12, Admission::SequentialOrder);
        let mseq = memory_reference(&t);
        let tight = run(&t, p, mseq, Admission::SequentialOrder);
        assert_eq!(tight.violations, 0);
        assert!(tight.peak_memory <= mseq + 1e-9);
        assert!(loose.peak_memory >= tight.peak_memory);
        assert!(loose.schedule.makespan() <= tight.schedule.makespan() + 1e-9);
    }

    #[test]
    fn infeasible_cap_still_completes_with_violations() {
        let t = TaskTree::complete(2, 3, 1.0, 5.0, 2.0);
        for policy in [Admission::SequentialOrder, Admission::Greedy] {
            let r = run(&t, 2, 0.5, policy);
            assert!(r.schedule.validate(&t).is_ok());
            assert!(r.violations > 0);
            assert_eq!(r.peak_memory, r.schedule.peak_memory(&t));
        }
    }

    #[test]
    fn chain_cap_two_is_exact() {
        let t = TaskTree::chain(20, 1.0, 1.0, 0.0);
        let r = run(&t, 4, 2.0, Admission::SequentialOrder);
        assert_eq!(r.violations, 0);
        assert_eq!(r.peak_memory, 2.0);
        assert_eq!(r.schedule.makespan(), 20.0);
    }

    #[test]
    fn sequential_policy_parallelizes_when_memory_allows() {
        // fork with ample cap: consecutive σ-leaves start concurrently
        let t = TaskTree::fork(8, 1.0, 1.0, 0.0);
        let r = run(&t, 4, 100.0, Admission::SequentialOrder);
        assert_eq!(r.violations, 0);
        assert_eq!(r.schedule.makespan(), 3.0); // 8 leaves / 4 procs + root
        assert_eq!(r.schedule.max_concurrency(), 4);
    }
}
