//! Exact bi-objective solver for the unit-time model: the full Pareto
//! frontier of (makespan, peak memory).
//!
//! The paper's Theorem 1 shows that deciding whether both a makespan bound
//! and a memory bound can be met is NP-complete already in the Pebble Game
//! model (`w_i = 1`). This module solves small instances of that decision
//! problem *exactly* — and more: it enumerates the entire Pareto frontier —
//! by dynamic programming over *waves*.
//!
//! With unit execution times, any schedule can be normalized to
//! synchronous waves: at integer step `t` a set `S_t` of ready tasks
//! (`|S_t| ≤ p`) executes. The DP state is the set of completed tasks; for
//! each state we keep the Pareto set of `(steps, peak)` pairs over all ways
//! of reaching it. File sizes `f_i` and program sizes `n_i` remain
//! arbitrary.
//!
//! Complexity is exponential (states × wave subsets); intended for trees of
//! up to ~16 tasks as a ground-truth oracle for heuristic evaluation — see
//! `pareto_dominates_heuristics` in the integration tests.

use treesched_model::{NodeId, TaskTree};

/// Largest tree accepted by the exact solver.
pub const MAX_PARETO_NODES: usize = 20;

/// One Pareto-optimal trade-off point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParetoPoint {
    /// Number of unit-time steps (the makespan).
    pub makespan: u32,
    /// Peak memory over the whole execution.
    pub memory: f64,
}

/// Inserts `(steps, peak)` into a Pareto set kept sorted by ascending
/// `steps` (and thus strictly descending `peak`).
fn insert_pareto(set: &mut Vec<ParetoPoint>, p: ParetoPoint) {
    // dominated by an existing point?
    if set
        .iter()
        .any(|q| q.makespan <= p.makespan && q.memory <= p.memory + 1e-12)
    {
        return;
    }
    set.retain(|q| !(p.makespan <= q.makespan && p.memory <= q.memory + 1e-12));
    let pos = set.partition_point(|q| q.makespan < p.makespan);
    set.insert(pos, p);
}

/// Computes the exact Pareto frontier of `(makespan, peak memory)` for a
/// **unit-work** tree on `p` processors. Points are returned by increasing
/// makespan (hence decreasing memory).
///
/// # Panics
///
/// Panics when some `w_i ≠ 1`, when `p == 0`, or when the tree exceeds
/// [`MAX_PARETO_NODES`].
pub fn pareto_frontier(tree: &TaskTree, p: u32) -> Vec<ParetoPoint> {
    assert!(p > 0, "need at least one processor");
    let n = tree.len();
    assert!(
        n <= MAX_PARETO_NODES,
        "exact Pareto solver limited to {MAX_PARETO_NODES} tasks, got {n}"
    );
    for i in tree.ids() {
        assert!(
            tree.work(i) == 1.0,
            "exact Pareto solver requires unit works (task {i} has w = {})",
            tree.work(i)
        );
    }

    let child_mask: Vec<u32> = (0..n)
        .map(|i| {
            tree.children(NodeId::from_index(i))
                .iter()
                .fold(0u32, |m, c| m | (1 << c.index()))
        })
        .collect();
    let parent_bit: Vec<Option<u32>> = (0..n)
        .map(|i| {
            tree.parent(NodeId::from_index(i))
                .map(|q| 1u32 << q.index())
        })
        .collect();
    let outputs: Vec<f64> = (0..n).map(|i| tree.output(NodeId::from_index(i))).collect();
    let footprint: Vec<f64> = (0..n)
        .map(|i| {
            let id = NodeId::from_index(i);
            tree.exec(id) + tree.output(id)
        })
        .collect();

    let resident = |mask: u32| -> f64 {
        let mut r = 0.0;
        for i in 0..n {
            if mask & (1 << i) != 0 {
                match parent_bit[i] {
                    Some(pb) if mask & pb != 0 => {}
                    _ => r += outputs[i],
                }
            }
        }
        r
    };

    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut frontier: std::collections::HashMap<u32, Vec<ParetoPoint>> =
        std::collections::HashMap::new();
    frontier.insert(
        0,
        vec![ParetoPoint {
            makespan: 0,
            memory: 0.0,
        }],
    );
    // waves strictly grow the done set, so iterating "levels" by total
    // completed count visits each state after all its predecessors
    let mut by_count: Vec<Vec<u32>> = vec![Vec::new(); n + 1];
    by_count[0].push(0);

    for count in 0..n {
        let states = std::mem::take(&mut by_count[count]);
        for mask in states {
            let Some(points) = frontier.get(&mask).cloned() else {
                continue;
            };
            let res = resident(mask);
            // ready tasks
            let ready: Vec<usize> = (0..n)
                .filter(|&i| mask & (1 << i) == 0 && child_mask[i] & !mask == 0)
                .collect();
            // enumerate nonempty subsets of `ready` of size ≤ p
            let r = ready.len();
            for bits in 1u32..(1 << r) {
                if bits.count_ones() > p {
                    continue;
                }
                let mut add_mask = 0u32;
                let mut wave_mem = 0.0;
                for (j, &task) in ready.iter().enumerate() {
                    if bits & (1 << j) != 0 {
                        add_mask |= 1 << task;
                        wave_mem += footprint[task];
                    }
                }
                let new_mask = mask | add_mask;
                let step_peak = res + wave_mem;
                let entry = frontier.entry(new_mask).or_insert_with(|| {
                    let c = new_mask.count_ones() as usize;
                    by_count[c].push(new_mask);
                    Vec::new()
                });
                for pt in &points {
                    insert_pareto(
                        entry,
                        ParetoPoint {
                            makespan: pt.makespan + 1,
                            memory: pt.memory.max(step_peak),
                        },
                    );
                }
            }
        }
    }
    frontier.remove(&full).unwrap_or_default()
}

/// `true` when some frontier point weakly dominates `(makespan, memory)` —
/// i.e. the measured schedule is consistent with the exact frontier.
pub fn dominated_by_frontier(frontier: &[ParetoPoint], makespan: f64, memory: f64) -> bool {
    frontier
        .iter()
        .any(|q| (q.makespan as f64) <= makespan + 1e-9 && q.memory <= memory + 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::Heuristic;
    use crate::schedule::evaluate;
    use treesched_model::{TaskTree, TreeBuilder};

    #[test]
    fn chain_single_point() {
        let t = TaskTree::chain(6, 1.0, 1.0, 0.0);
        for p in [1u32, 3] {
            let f = pareto_frontier(&t, p);
            assert_eq!(
                f,
                vec![ParetoPoint {
                    makespan: 6,
                    memory: 2.0
                }]
            );
        }
    }

    #[test]
    fn fork_single_point_per_p() {
        // fork of k pebble leaves: memory is k+1 at the root regardless of
        // pacing, so the frontier collapses to the fastest schedule
        let k = 6;
        let t = TaskTree::fork(k, 1.0, 1.0, 0.0);
        for p in [1u32, 2, 3, 6] {
            let f = pareto_frontier(&t, p);
            let steps = (k as u32).div_ceil(p) + 1;
            assert_eq!(
                f,
                vec![ParetoPoint {
                    makespan: steps,
                    memory: k as f64 + 1.0
                }]
            );
        }
    }

    #[test]
    fn sequential_memory_matches_liu_exact() {
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 1.0, 0.0);
        let a = b.child(r, 1.0, 3.0, 0.0);
        b.child(a, 1.0, 1.0, 4.0);
        b.child(a, 1.0, 2.0, 1.0);
        let c = b.child(r, 1.0, 1.0, 2.0);
        b.child(c, 1.0, 2.0, 0.0);
        let t = b.build().unwrap();
        let f1 = pareto_frontier(&t, 1);
        // with one processor the makespan is fixed at n and the best memory
        // is the sequential optimum
        assert_eq!(f1.len(), 1);
        assert_eq!(f1[0].makespan, t.len() as u32);
        assert_eq!(f1[0].memory, treesched_seq::liu_exact(&t).peak);
    }

    #[test]
    fn frontier_exhibits_tradeoff() {
        // two independent pebble chains: running them in parallel halves the
        // makespan but doubles the transient memory
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 0.0, 0.0);
        for _ in 0..2 {
            let mut c = b.pebble_child(r);
            for _ in 0..4 {
                c = b.pebble_child(c);
            }
        }
        let t = b.build().unwrap();
        let f = pareto_frontier(&t, 2);
        assert!(f.len() >= 2, "expected a real trade-off, got {f:?}");
        // frontier sorted by makespan, memory strictly decreasing
        for w in f.windows(2) {
            assert!(w[0].makespan < w[1].makespan);
            assert!(w[0].memory > w[1].memory);
        }
        // fastest point: both chains in lockstep -> 2 files + 2 in flight
        assert_eq!(f[0].makespan, 6); // 5 per chain in parallel + root
                                      // most frugal point: sequential-ish, 3 pebbles
        assert_eq!(f.last().unwrap().memory, 3.0);
    }

    #[test]
    fn heuristics_are_dominated_by_frontier() {
        let trees = [
            TaskTree::complete(2, 2, 1.0, 1.0, 0.0),
            TaskTree::fork(5, 1.0, 2.0, 1.0),
            {
                let mut b = TreeBuilder::new();
                let r = b.node(1.0, 1.0, 0.0);
                let x = b.pebble_child(r);
                b.pebble_leaves(x, 3);
                let y = b.pebble_child(r);
                b.pebble_leaves(y, 2);
                b.build().unwrap()
            },
        ];
        for t in &trees {
            for p in [1u32, 2, 3] {
                let f = pareto_frontier(t, p);
                assert!(!f.is_empty());
                for h in Heuristic::ALL {
                    let ev = evaluate(t, &h.schedule(t, p));
                    assert!(
                        dominated_by_frontier(&f, ev.makespan, ev.peak_memory),
                        "{h} p={p}: ({}, {}) beats the exact frontier {f:?}",
                        ev.makespan,
                        ev.peak_memory
                    );
                }
            }
        }
    }

    #[test]
    fn theorem1_bounds_are_on_the_frontier() {
        // a small 3-partition instance: m = 1, B = 3, a = [1, 1, 1]
        // (degenerate but legal for the construction): p = 3B = 9,
        // B_mem = 3B + 3 = 12, B_Cmax = 3
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 1.0, 0.0);
        for _ in 0..3 {
            let ni = b.pebble_child(r);
            b.pebble_leaves(ni, 3);
        }
        let t = b.build().unwrap();
        let f = pareto_frontier(&t, 9);
        assert!(
            dominated_by_frontier(&f, 3.0, 12.0),
            "theorem-1 witness point missing from {f:?}"
        );
        // and the bounds are tight: nothing strictly better exists
        assert!(!dominated_by_frontier(&f, 2.99, 12.0));
        let best_mem_at_3: f64 = f
            .iter()
            .filter(|q| q.makespan <= 3)
            .map(|q| q.memory)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(best_mem_at_3, 12.0);
    }

    #[test]
    fn insert_pareto_prunes_dominated() {
        let mut s = Vec::new();
        insert_pareto(
            &mut s,
            ParetoPoint {
                makespan: 5,
                memory: 10.0,
            },
        );
        insert_pareto(
            &mut s,
            ParetoPoint {
                makespan: 6,
                memory: 12.0,
            },
        ); // dominated
        assert_eq!(s.len(), 1);
        insert_pareto(
            &mut s,
            ParetoPoint {
                makespan: 4,
                memory: 11.0,
            },
        );
        insert_pareto(
            &mut s,
            ParetoPoint {
                makespan: 3,
                memory: 9.0,
            },
        ); // dominates both
        assert_eq!(
            s,
            vec![ParetoPoint {
                makespan: 3,
                memory: 9.0
            }]
        );
    }

    #[test]
    #[should_panic(expected = "unit works")]
    fn rejects_weighted_works() {
        let t = TaskTree::chain(3, 2.0, 1.0, 0.0);
        let _ = pareto_frontier(&t, 2);
    }
}
