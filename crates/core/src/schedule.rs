//! Parallel schedules and their evaluation (makespan + peak memory).
//!
//! Evaluation is platform-aware: [`Schedule::validate`] checks the paper's
//! unit-speed model, while [`Schedule::validate_on`] and [`try_evaluate_on`]
//! scale each task's expected execution time by the speed of its assigned
//! processor and additionally expose per-memory-domain peaks
//! ([`Schedule::domain_peaks`]) for NUMA-style platforms.

use crate::api::Platform;
use treesched_model::{NodeId, TaskTree};

/// Placement of one task: processor and time interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Placement {
    /// Processor index in `0..p`.
    pub proc: u32,
    /// Start time.
    pub start: f64,
    /// Finish time (`start + w`).
    pub finish: f64,
}

/// A complete schedule of a task tree on `p` identical processors sharing
/// one memory (paper §3.2).
#[derive(Clone, Debug, PartialEq)]
pub struct Schedule {
    /// Number of processors the schedule was built for.
    pub processors: u32,
    /// Placement of every task, indexed by node id.
    pub placements: Vec<Placement>,
}

/// Why a schedule is invalid.
#[derive(Clone, Debug, PartialEq)]
pub enum ScheduleError {
    /// The placement table does not cover every node exactly once.
    WrongLength { expected: usize, got: usize },
    /// A task's interval is malformed (negative, reversed, or `finish !=
    /// start + w` beyond tolerance).
    BadInterval { node: NodeId },
    /// A processor index is out of `0..p`.
    BadProcessor { node: NodeId, proc: u32 },
    /// A task starts before one of its children finishes.
    DependencyViolated { parent: NodeId, child: NodeId },
    /// Two tasks overlap on the same processor.
    Overlap { a: NodeId, b: NodeId, proc: u32 },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::WrongLength { expected, got } => {
                write!(f, "schedule covers {got} tasks, tree has {expected}")
            }
            ScheduleError::BadInterval { node } => write!(f, "task {node} has a bad interval"),
            ScheduleError::BadProcessor { node, proc } => {
                write!(f, "task {node} placed on invalid processor {proc}")
            }
            ScheduleError::DependencyViolated { parent, child } => {
                write!(f, "task {parent} starts before its child {child} finishes")
            }
            ScheduleError::Overlap { a, b, proc } => {
                write!(f, "tasks {a} and {b} overlap on processor {proc}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Relative tolerance used when checking `finish == start + w` under f64
/// accumulation.
const TIME_EPS: f64 = 1e-9;

impl Schedule {
    /// Total execution time: the latest finish time.
    pub fn makespan(&self) -> f64 {
        self.placements.iter().map(|t| t.finish).fold(0.0, f64::max)
    }

    /// Placement of node `i`.
    pub fn placement(&self, i: NodeId) -> Placement {
        self.placements[i.index()]
    }

    /// Checks that the schedule is feasible for `tree` under the paper's
    /// unit-speed model:
    /// every task placed exactly once with `finish = start + w`, processors
    /// in range, no overlap per processor, and every parent starting no
    /// earlier than the finish of each of its children.
    pub fn validate(&self, tree: &TaskTree) -> Result<(), ScheduleError> {
        self.validate_with(tree, |_| 1.0)
    }

    /// [`Schedule::validate`] for a heterogeneous [`Platform`]: the expected
    /// execution time of a task on processor `i` is `w / speed(i)`.
    ///
    /// The platform must describe the `processors` this schedule was built
    /// for; placements on processors outside the platform are
    /// [`ScheduleError::BadProcessor`].
    ///
    /// On a platform with cross-domain communication costs
    /// ([`Platform::has_comm`]) the dependency check tightens: a parent may
    /// not start before `child.finish + output × comm_cost` for each child
    /// placed in a different memory domain — the time the child's output
    /// needs to cross into the parent's domain.
    pub fn validate_on(&self, tree: &TaskTree, platform: &Platform) -> Result<(), ScheduleError> {
        if self.placements.len() != tree.len() {
            return Err(ScheduleError::WrongLength {
                expected: tree.len(),
                got: self.placements.len(),
            });
        }
        let p = platform.processors();
        if let Some(i) = tree.ids().find(|&i| self.placement(i).proc >= p) {
            return Err(ScheduleError::BadProcessor {
                node: i,
                proc: self.placement(i).proc,
            });
        }
        self.validate_with(tree, |proc| platform.speed_of(proc))?;
        if platform.has_comm() {
            // domain of each processor, resolved once
            let domain = |proc: u32| platform.domain_of(proc);
            for i in tree.ids() {
                let pl = self.placement(i);
                let dst = domain(pl.proc);
                for &c in tree.children(i) {
                    let cp = self.placement(c);
                    let cost = match (domain(cp.proc), dst) {
                        (Some(src), Some(dst)) => platform.comm_cost(src, dst),
                        _ => 0.0,
                    };
                    let earliest = cp.finish + tree.output(c) * cost;
                    if pl.start + TIME_EPS * (1.0 + earliest.abs()) < earliest {
                        return Err(ScheduleError::DependencyViolated {
                            parent: i,
                            child: c,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn validate_with(
        &self,
        tree: &TaskTree,
        speed_of: impl Fn(u32) -> f64,
    ) -> Result<(), ScheduleError> {
        let n = tree.len();
        if self.placements.len() != n {
            return Err(ScheduleError::WrongLength {
                expected: n,
                got: self.placements.len(),
            });
        }
        for i in tree.ids() {
            let pl = self.placement(i);
            if pl.proc >= self.processors {
                return Err(ScheduleError::BadProcessor {
                    node: i,
                    proc: pl.proc,
                });
            }
            let w = tree.work(i) / speed_of(pl.proc);
            if !(pl.start.is_finite() && pl.finish.is_finite())
                || pl.start < 0.0
                || (pl.finish - (pl.start + w)).abs() > TIME_EPS * (1.0 + pl.finish.abs())
            {
                return Err(ScheduleError::BadInterval { node: i });
            }
            for &c in tree.children(i) {
                let cf = self.placement(c).finish;
                if pl.start + TIME_EPS * (1.0 + cf.abs()) < cf {
                    return Err(ScheduleError::DependencyViolated {
                        parent: i,
                        child: c,
                    });
                }
            }
        }
        // per-processor overlap check
        let mut by_proc: Vec<Vec<NodeId>> = vec![Vec::new(); self.processors as usize];
        for i in tree.ids() {
            by_proc[self.placement(i).proc as usize].push(i);
        }
        for (proc, tasks) in by_proc.iter_mut().enumerate() {
            tasks.sort_by(|&a, &b| self.placement(a).start.total_cmp(&self.placement(b).start));
            for pair in tasks.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                let fa = self.placement(a).finish;
                let sb = self.placement(b).start;
                if sb + TIME_EPS * (1.0 + fa.abs()) < fa {
                    return Err(ScheduleError::Overlap {
                        a,
                        b,
                        proc: proc as u32,
                    });
                }
            }
        }
        Ok(())
    }

    /// Peak memory of the schedule under the paper's model, via an event
    /// sweep.
    ///
    /// Contributions: `n_i + f_i` are allocated at `start(i)`; at
    /// `finish(i)` the program `n_i` and all input files (the children's
    /// `f_c`) are freed. The root's output stays resident to the end.
    /// Finish events at a given instant are applied before start events at
    /// the same instant (task intervals are half-open `[start, finish)`).
    pub fn peak_memory(&self, tree: &TaskTree) -> f64 {
        #[derive(Clone, Copy)]
        struct Ev {
            time: f64,
            /// 0 = finish (free), 1 = start (allocate)
            phase: u8,
            delta: f64,
        }
        let mut evs = Vec::with_capacity(tree.len() * 2);
        for i in tree.ids() {
            let pl = self.placement(i);
            evs.push(Ev {
                time: pl.start,
                phase: 1,
                delta: tree.exec(i) + tree.output(i),
            });
            evs.push(Ev {
                time: pl.finish,
                phase: 0,
                delta: -(tree.exec(i) + tree.input_size(i)),
            });
        }
        evs.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.phase.cmp(&b.phase)));
        let mut cur = 0.0f64;
        let mut peak = 0.0f64;
        for e in evs {
            cur += e.delta;
            if cur > peak {
                peak = cur;
            }
        }
        peak
    }

    /// Peak memory per memory domain of `platform`, via the same event
    /// sweep as [`Schedule::peak_memory`] split by domain.
    ///
    /// A task's footprint (`n_i + f_i`) lives in the domain of the
    /// processor it runs on: allocated there at `start(i)`, the program
    /// `n_i` freed there at `finish(i)`. An input file is freed from the
    /// domain of the *child* that produced it when the parent finishes —
    /// cross-domain parent/child edges release memory where the file was
    /// allocated, not where it is consumed. Tasks on processors outside
    /// every declared domain are unconstrained and count toward no domain.
    ///
    /// Returns one peak per domain, in [`Platform::domains`] order; empty
    /// when the platform declares no domains.
    pub fn domain_peaks(&self, tree: &TaskTree, platform: &Platform) -> Vec<f64> {
        let n_domains = platform.domains().len();
        if n_domains == 0 {
            return Vec::new();
        }
        // (time, phase, domain, delta): frees (phase 0) before allocations
        // (phase 1) at equal instants, exactly like the global sweep
        let mut evs: Vec<(f64, u8, usize, f64)> = Vec::with_capacity(tree.len() * 2);
        for i in tree.ids() {
            let pl = self.placement(i);
            let Some(d) = platform.domain_of(pl.proc) else {
                continue;
            };
            evs.push((pl.start, 1, d, tree.exec(i) + tree.output(i)));
            evs.push((pl.finish, 0, d, -tree.exec(i)));
        }
        // input files are freed from the producing child's domain when the
        // parent finishes (the root's output stays resident to the end)
        for i in tree.ids() {
            let finish = self.placement(i).finish;
            for &c in tree.children(i) {
                if let Some(d) = platform.domain_of(self.placement(c).proc) {
                    evs.push((finish, 0, d, -tree.output(c)));
                }
            }
        }
        evs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut cur = vec![0.0f64; n_domains];
        let mut peak = vec![0.0f64; n_domains];
        for (_, _, d, delta) in evs {
            cur[d] += delta;
            if cur[d] > peak[d] {
                peak[d] = cur[d];
            }
        }
        peak
    }

    /// Memory profile sampled at every event instant (after applying the
    /// instant's frees and allocations). Returns `(time, memory)` pairs,
    /// useful for plotting.
    pub fn memory_profile(&self, tree: &TaskTree) -> Vec<(f64, f64)> {
        let mut evs: Vec<(f64, u8, f64)> = Vec::with_capacity(tree.len() * 2);
        for i in tree.ids() {
            let pl = self.placement(i);
            evs.push((pl.start, 1, tree.exec(i) + tree.output(i)));
            evs.push((pl.finish, 0, -(tree.exec(i) + tree.input_size(i))));
        }
        evs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut cur = 0.0;
        for (t, _, d) in evs {
            cur += d;
            match out.last_mut() {
                Some(last) if last.0 == t => last.1 = last.1.max(cur),
                _ => out.push((t, cur)),
            }
        }
        out
    }

    /// Total busy time per processor, indexed by processor id.
    pub fn loads(&self) -> Vec<f64> {
        let mut loads = vec![0.0f64; self.processors as usize];
        for pl in &self.placements {
            loads[pl.proc as usize] += pl.finish - pl.start;
        }
        loads
    }

    /// Average processor utilization over the makespan: `Σ busy / (p ·
    /// makespan)`, in `[0, 1]`. A utilization of `1/p` means the schedule
    /// is effectively sequential.
    pub fn utilization(&self) -> f64 {
        let ms = self.makespan();
        if ms == 0.0 {
            return 1.0;
        }
        self.loads().iter().sum::<f64>() / (self.processors as f64 * ms)
    }

    /// Speedup over a one-processor execution of the same tasks:
    /// `Σ w / makespan`.
    pub fn speedup(&self) -> f64 {
        let ms = self.makespan();
        if ms == 0.0 {
            return 1.0;
        }
        self.loads().iter().sum::<f64>() / ms
    }

    /// Number of tasks running at any time, sampled at start events; the
    /// maximum must never exceed `p` for a valid schedule.
    pub fn max_concurrency(&self) -> usize {
        let mut evs: Vec<(f64, i32, u8)> = Vec::with_capacity(self.placements.len() * 2);
        for pl in &self.placements {
            evs.push((pl.start, 1, 1));
            evs.push((pl.finish, -1, 0));
        }
        evs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        let mut cur = 0i32;
        let mut peak = 0i32;
        for (_, d, _) in evs {
            cur += d;
            peak = peak.max(cur);
        }
        peak as usize
    }
}

/// Joint evaluation of a schedule: the two objectives of the paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalResult {
    /// Total completion time.
    pub makespan: f64,
    /// Peak memory over the execution.
    pub peak_memory: f64,
}

/// Evaluates `schedule` against `tree`, validating it first. This is the
/// non-panicking path used by the [`crate::api`] layer: an invalid schedule
/// comes back as the [`ScheduleError`] that [`Schedule::validate`] found.
pub fn try_evaluate(tree: &TaskTree, schedule: &Schedule) -> Result<EvalResult, ScheduleError> {
    schedule.validate(tree)?;
    Ok(EvalResult {
        makespan: schedule.makespan(),
        peak_memory: schedule.peak_memory(tree),
    })
}

/// [`try_evaluate`] for a heterogeneous [`Platform`]: validation scales
/// each task's expected duration by its processor's speed
/// ([`Schedule::validate_on`]). The reported `peak_memory` stays the
/// platform-global peak (the sum over all domains at the worst instant);
/// per-domain peaks come from [`Schedule::domain_peaks`].
pub fn try_evaluate_on(
    tree: &TaskTree,
    schedule: &Schedule,
    platform: &Platform,
) -> Result<EvalResult, ScheduleError> {
    schedule.validate_on(tree, platform)?;
    Ok(EvalResult {
        makespan: schedule.makespan(),
        peak_memory: schedule.peak_memory(tree),
    })
}

/// Evaluates `schedule` against `tree`, validating it first.
///
/// # Panics
///
/// Panics if the schedule is invalid — heuristics in this crate always
/// produce valid schedules, so a panic indicates an internal bug. Callers
/// that evaluate untrusted schedules should use [`try_evaluate`].
pub fn evaluate(tree: &TaskTree, schedule: &Schedule) -> EvalResult {
    match try_evaluate(tree, schedule) {
        Ok(ev) => ev,
        Err(e) => panic!("invalid schedule: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesched_model::TaskTree;

    fn place(proc: u32, start: f64, w: f64) -> Placement {
        Placement {
            proc,
            start,
            finish: start + w,
        }
    }

    /// Sequential schedule of a fork: leaves then root on one processor.
    #[test]
    fn sequential_fork_schedule() {
        let t = TaskTree::fork(3, 1.0, 1.0, 0.0);
        let s = Schedule {
            processors: 1,
            placements: vec![
                place(0, 3.0, 1.0),
                place(0, 0.0, 1.0),
                place(0, 1.0, 1.0),
                place(0, 2.0, 1.0),
            ],
        };
        assert!(s.validate(&t).is_ok());
        assert_eq!(s.makespan(), 4.0);
        // peak = 3 leaf files + root file while root runs
        assert_eq!(s.peak_memory(&t), 4.0);
        assert_eq!(s.max_concurrency(), 1);
    }

    /// Parallel schedule of the same fork on 3 processors: all leaves at
    /// once.
    #[test]
    fn parallel_fork_schedule() {
        let t = TaskTree::fork(3, 1.0, 1.0, 0.0);
        let s = Schedule {
            processors: 3,
            placements: vec![
                place(0, 1.0, 1.0),
                place(0, 0.0, 1.0),
                place(1, 0.0, 1.0),
                place(2, 0.0, 1.0),
            ],
        };
        assert!(s.validate(&t).is_ok());
        assert_eq!(s.makespan(), 2.0);
        // while leaves run: 3 files; while root runs: 3 inputs + 1 output
        assert_eq!(s.peak_memory(&t), 4.0);
        assert_eq!(s.max_concurrency(), 3);
    }

    #[test]
    fn detects_dependency_violation() {
        let t = TaskTree::chain(2, 1.0, 1.0, 0.0);
        // root (node 0) starts at 0, child (node 1) at 0 too
        let s = Schedule {
            processors: 2,
            placements: vec![place(0, 0.0, 1.0), place(1, 0.0, 1.0)],
        };
        assert!(matches!(
            s.validate(&t),
            Err(ScheduleError::DependencyViolated { .. })
        ));
    }

    #[test]
    fn detects_overlap() {
        let t = TaskTree::fork(2, 1.0, 1.0, 0.0);
        // the two leaves overlap on processor 0; the root starts late enough
        // that no dependency is violated
        let s = Schedule {
            processors: 1,
            placements: vec![place(0, 2.0, 1.0), place(0, 0.0, 1.0), place(0, 0.5, 1.0)],
        };
        assert!(matches!(s.validate(&t), Err(ScheduleError::Overlap { .. })));
    }

    #[test]
    fn detects_bad_processor_and_interval() {
        let t = TaskTree::chain(1, 1.0, 1.0, 0.0);
        let s = Schedule {
            processors: 1,
            placements: vec![place(5, 0.0, 1.0)],
        };
        assert!(matches!(
            s.validate(&t),
            Err(ScheduleError::BadProcessor { .. })
        ));
        let s = Schedule {
            processors: 1,
            placements: vec![Placement {
                proc: 0,
                start: 0.0,
                finish: 0.5,
            }],
        };
        assert!(matches!(
            s.validate(&t),
            Err(ScheduleError::BadInterval { .. })
        ));
    }

    #[test]
    fn back_to_back_on_same_processor_is_ok() {
        let t = TaskTree::chain(3, 2.0, 1.0, 0.0);
        // nodes: 0 root, 1 mid, 2 leaf; run leaf, mid, root back to back
        let s = Schedule {
            processors: 1,
            placements: vec![place(0, 4.0, 2.0), place(0, 2.0, 2.0), place(0, 0.0, 2.0)],
        };
        assert!(s.validate(&t).is_ok());
        assert_eq!(s.peak_memory(&t), 2.0);
    }

    #[test]
    fn memory_frees_before_allocating_at_same_instant() {
        // chain a <- b: b finishes at 1, a starts at 1. During a: f_b + f_a.
        let t = TaskTree::chain(2, 1.0, 5.0, 0.0);
        let s = Schedule {
            processors: 1,
            placements: vec![place(0, 1.0, 1.0), place(0, 0.0, 1.0)],
        };
        // peak: while a runs: input 5 + output 5 = 10 (not 15)
        assert_eq!(s.peak_memory(&t), 10.0);
    }

    #[test]
    fn profile_tracks_events() {
        let t = TaskTree::fork(2, 1.0, 1.0, 0.0);
        let s = Schedule {
            processors: 2,
            placements: vec![place(0, 1.0, 1.0), place(0, 0.0, 1.0), place(1, 0.0, 1.0)],
        };
        let prof = s.memory_profile(&t);
        // t=0: two leaf outputs allocated -> 2; t=1: leaves keep files, root
        // adds its own -> 3; t=2: root frees inputs -> 1
        assert_eq!(prof, vec![(0.0, 2.0), (1.0, 3.0), (2.0, 1.0)]);
    }

    #[test]
    fn utilization_and_speedup() {
        // fork: 3 leaves in parallel then the root — 4 units of work in 2
        // time units (the metrics depend only on the placements)
        let s = Schedule {
            processors: 3,
            placements: vec![
                place(0, 1.0, 1.0),
                place(0, 0.0, 1.0),
                place(1, 0.0, 1.0),
                place(2, 0.0, 1.0),
            ],
        };
        assert_eq!(s.loads(), vec![2.0, 1.0, 1.0]);
        assert!((s.speedup() - 2.0).abs() < 1e-12);
        assert!((s.utilization() - 2.0 / 3.0).abs() < 1e-12);
        // sequential schedule: speedup 1, utilization 1 on p = 1
        let seq = Schedule {
            processors: 1,
            placements: vec![
                place(0, 3.0, 1.0),
                place(0, 0.0, 1.0),
                place(0, 1.0, 1.0),
                place(0, 2.0, 1.0),
            ],
        };
        assert_eq!(seq.speedup(), 1.0);
        assert_eq!(seq.utilization(), 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid schedule")]
    fn evaluate_panics_on_invalid() {
        let t = TaskTree::chain(2, 1.0, 1.0, 0.0);
        let s = Schedule {
            processors: 1,
            placements: vec![place(0, 0.0, 1.0), place(0, 0.0, 1.0)],
        };
        let _ = evaluate(&t, &s);
    }
}
