//! `SplitSubtrees` (paper Algorithm 2): makespan-optimal splitting of the
//! tree into subtrees for [`crate::heuristics::par_subtrees`].
//!
//! The splitting process repeatedly replaces the heaviest subtree (by total
//! work `W`) with its children, recording after each step the predicted
//! `ParSubtrees` makespan
//!
//! ```text
//! Cmax(s) = W_head(PQ) + Σ_{i ∈ seqSet} w_i + Σ_{i = PQ[p+1..]} W_i
//! ```
//!
//! i.e. the heaviest remaining subtree (parallel phase) plus all popped
//! nodes and all *surplus* subtrees beyond the `p` largest (sequential
//! phase). The recorded splitting with minimal cost is returned; by the
//! paper's Lemma 1 it is makespan-optimal for the `ParSubtrees` scheme.
//!
//! Complexity: `O(n log n)` via a two-set (top-`p` / rest) ordered
//! structure, matching the paper's `O(n(log n + p))` analysis.

use crate::listsched::TotalF64;
use std::collections::BTreeSet;
use treesched_model::{NodeId, TaskTree};

/// Priority-queue key: non-increasing `W_i`, ties by non-increasing `w_i`
/// (paper §5.1), final tie by id. Stored ascending; `last()` is the head.
type Key = (TotalF64, TotalF64, u32);

/// Ordered multiset split into the `p` largest elements (`top`) and the
/// rest, with running sums of `W` over each part.
struct TopP {
    p: usize,
    top: BTreeSet<Key>,
    rest: BTreeSet<Key>,
    rest_w_sum: f64,
}

impl TopP {
    fn new(p: usize) -> Self {
        TopP {
            p,
            top: BTreeSet::new(),
            rest: BTreeSet::new(),
            rest_w_sum: 0.0,
        }
    }

    fn len(&self) -> usize {
        self.top.len() + self.rest.len()
    }

    fn insert(&mut self, k: Key) {
        // invariant: `rest` is nonempty only while `top` holds `p` elements,
        // so filling `top` first never strands a larger key in `rest`
        debug_assert!(self.rest.is_empty() || self.top.len() == self.p);
        if self.top.len() < self.p {
            self.top.insert(k);
            return;
        }
        let min_top = *self.top.first().expect("top nonempty when full");
        if k > min_top {
            self.top.remove(&min_top);
            self.rest.insert(min_top);
            self.rest_w_sum += min_top.0 .0;
            self.top.insert(k);
        } else {
            self.rest.insert(k);
            self.rest_w_sum += k.0 .0;
        }
    }

    /// The head of the queue: the globally largest key.
    fn head(&self) -> Option<Key> {
        self.top.last().copied()
    }

    fn pop_head(&mut self) -> Key {
        debug_assert!(self.len() > 0, "pop from empty queue");
        let k = *self.top.last().expect("pop from nonempty queue");
        self.top.remove(&k);
        if let Some(&promote) = self.rest.last() {
            self.rest.remove(&promote);
            self.rest_w_sum -= promote.0 .0;
            self.top.insert(promote);
        }
        k
    }

    /// `Σ W_i` over the elements beyond the `p` largest.
    fn surplus_w(&self) -> f64 {
        self.rest_w_sum
    }
}

/// Result of `SplitSubtrees`.
#[derive(Clone, Debug, PartialEq)]
pub struct Split {
    /// Roots of the `q ≤ p` subtrees processed in parallel, by
    /// non-increasing `W`.
    pub parallel_roots: Vec<NodeId>,
    /// Roots of the surplus subtrees (beyond the `p` largest), processed
    /// sequentially, by non-increasing `W`.
    pub surplus_roots: Vec<NodeId>,
    /// Nodes popped into the sequential set (the "top" of the tree, where
    /// the parallel subtrees merge), in pop order.
    pub seq_nodes: Vec<NodeId>,
    /// Predicted `ParSubtrees` makespan of this splitting (equals the real
    /// makespan of the schedule built from it).
    pub cost: f64,
    /// Number of pop steps performed to reach this splitting.
    pub steps: usize,
}

fn key_of(tree: &TaskTree, subtree_w: &[f64], v: NodeId) -> Key {
    (
        TotalF64(subtree_w[v.index()]),
        TotalF64(tree.work(v)),
        // larger id = larger key; irrelevant for correctness, fixes ties
        v.0,
    )
}

/// Node id back out of a key.
fn node_of(k: Key) -> NodeId {
    NodeId(k.2)
}

/// Runs Algorithm 2 and returns the cost-minimal splitting.
///
/// # Panics
///
/// Panics when `p == 0`.
pub fn split_subtrees(tree: &TaskTree, p: usize) -> Split {
    let subtree_w = tree.subtree_work();
    split_subtrees_with_work(tree, p, &subtree_w)
}

/// [`split_subtrees`] with caller-supplied subtree weights
/// (`tree.subtree_work()`), so hot callers can reuse one computation across
/// processor counts and splitting passes.
///
/// # Panics
///
/// Panics when `p == 0`.
pub fn split_subtrees_with_work(tree: &TaskTree, p: usize, subtree_w: &[f64]) -> Split {
    assert!(p > 0, "need at least one processor");

    // Pass 1: find the number of pops minimizing the cost.
    let (best_steps, best_cost) = {
        let mut pq = TopP::new(p);
        pq.insert(key_of(tree, subtree_w, tree.root()));
        let mut seq_w = 0.0f64;
        let mut best = (0usize, subtree_w[tree.root().index()]);
        let mut s = 0usize;
        loop {
            let head = pq.head().expect("queue never empties");
            let (TotalF64(w_sub), TotalF64(w_node), _) = head;
            if w_sub <= w_node {
                break; // head subtree is a single task (or zero-work chain)
            }
            let popped = node_of(pq.pop_head());
            seq_w += tree.work(popped);
            for &c in tree.children(popped) {
                pq.insert(key_of(tree, subtree_w, c));
            }
            s += 1;
            let head_w = pq.head().map_or(0.0, |k| k.0 .0);
            let cost = head_w + seq_w + pq.surplus_w();
            if cost < best.1 {
                best = (s, cost);
            }
        }
        best
    };

    // Pass 2: replay to the chosen step and extract the sets.
    let mut pq = TopP::new(p);
    pq.insert(key_of(tree, subtree_w, tree.root()));
    let mut seq_nodes = Vec::with_capacity(best_steps);
    for _ in 0..best_steps {
        let popped = node_of(pq.pop_head());
        seq_nodes.push(popped);
        for &c in tree.children(popped) {
            pq.insert(key_of(tree, subtree_w, c));
        }
    }
    let parallel_roots: Vec<NodeId> = pq.top.iter().rev().map(|&k| node_of(k)).collect();
    let surplus_roots: Vec<NodeId> = pq.rest.iter().rev().map(|&k| node_of(k)).collect();
    Split {
        parallel_roots,
        surplus_roots,
        seq_nodes,
        cost: best_cost,
        steps: best_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesched_model::{TaskTree, TreeBuilder};

    #[test]
    fn single_node_no_split() {
        let t = TaskTree::chain(1, 3.0, 1.0, 0.0);
        let s = split_subtrees(&t, 4);
        assert_eq!(s.parallel_roots, vec![t.root()]);
        assert!(s.surplus_roots.is_empty());
        assert!(s.seq_nodes.is_empty());
        assert_eq!(s.cost, 3.0);
    }

    /// Paper Figure 3: a fork with `p·k` unit leaves. The chosen splitting
    /// pops the root and costs `p(k-1) + 2`.
    #[test]
    fn fork_split_matches_paper() {
        let (p, k) = (3usize, 4usize);
        let t = TaskTree::fork(p * k, 1.0, 1.0, 0.0);
        let s = split_subtrees(&t, p);
        assert_eq!(s.seq_nodes, vec![t.root()]);
        assert_eq!(s.parallel_roots.len(), p);
        assert_eq!(s.surplus_roots.len(), p * k - p);
        assert_eq!(s.cost, (p * (k - 1) + 2) as f64);
    }

    #[test]
    fn balanced_binary_splits_to_fill_processors() {
        // complete binary tree, 2 processors: splitting once gives two equal
        // subtrees
        let t = TaskTree::complete(2, 3, 1.0, 1.0, 0.0);
        let s = split_subtrees(&t, 2);
        assert_eq!(s.seq_nodes.first(), Some(&t.root()));
        assert_eq!(s.parallel_roots.len(), 2);
        // each child subtree has 7 nodes; cost = 7 + 1 = 8 with no surplus
        assert_eq!(s.cost, 8.0);
        assert!(s.surplus_roots.is_empty());
    }

    #[test]
    fn chain_never_benefits_from_splitting() {
        // splitting a chain only adds sequential work
        let t = TaskTree::chain(10, 1.0, 1.0, 0.0);
        let s = split_subtrees(&t, 4);
        // cost of not splitting = 10; every split costs the same 10
        // (seq top + remaining chain), so the first recorded minimum (s=0)
        // wins
        assert_eq!(s.cost, 10.0);
        assert_eq!(s.steps, 0);
        assert_eq!(s.parallel_roots, vec![t.root()]);
    }

    #[test]
    fn ties_broken_by_node_work() {
        // two subtrees of equal W; the one whose root has larger w pops
        // first
        let mut b = TreeBuilder::new();
        let r = b.node(0.0, 1.0, 0.0);
        let a = b.child(r, 3.0, 1.0, 0.0); // W = 4, w = 3
        b.child(a, 1.0, 1.0, 0.0);
        let c = b.child(r, 1.0, 1.0, 0.0); // W = 4, w = 1
        b.child(c, 3.0, 1.0, 0.0);
        let t = b.build().unwrap();
        let s = split_subtrees(&t, 2);
        // after popping root (W=8 > w=0): PQ has a and c, both W=4.
        // head must be `a` (w=3 > w=1).
        assert!(s.seq_nodes.contains(&r));
        if s.seq_nodes.len() > 1 {
            assert_eq!(s.seq_nodes[1], a);
        }
    }

    #[test]
    fn cost_is_minimum_over_all_recorded_steps() {
        // brute-force check on a modest random-ish tree: replaying every
        // step and evaluating the cost formula directly
        let mut b = TreeBuilder::new();
        let r = b.node(2.0, 1.0, 0.0);
        let x = b.child(r, 5.0, 1.0, 0.0);
        let y = b.child(r, 3.0, 1.0, 0.0);
        for _ in 0..4 {
            b.child(x, 2.0, 1.0, 0.0);
        }
        for _ in 0..3 {
            b.child(y, 4.0, 1.0, 0.0);
        }
        let t = b.build().unwrap();
        let p = 2;
        let s = split_subtrees(&t, p);

        // naive replay computing every cost
        let w = t.subtree_work();
        let mut pq: Vec<NodeId> = vec![t.root()];
        let sortkey = |v: &NodeId| {
            (
                std::cmp::Reverse(TotalF64(w[v.index()])),
                std::cmp::Reverse(TotalF64(t.work(*v))),
            )
        };
        let mut seqw = 0.0;
        let mut best = w[t.root().index()];
        loop {
            pq.sort_by_key(|v| sortkey(v));
            let head = pq[0];
            if w[head.index()] <= t.work(head) {
                break;
            }
            pq.remove(0);
            seqw += t.work(head);
            pq.extend_from_slice(t.children(head));
            pq.sort_by_key(|v| sortkey(v));
            let head_w = pq.first().map_or(0.0, |v| w[v.index()]);
            let surplus: f64 = pq.iter().skip(p).map(|v| w[v.index()]).sum();
            let cost = head_w + seqw + surplus;
            if cost < best {
                best = cost;
            }
        }
        assert_eq!(s.cost, best);
    }

    #[test]
    fn parallel_roots_are_disjoint_subtrees_covering_rest() {
        let t = TaskTree::complete(3, 3, 1.0, 1.0, 0.0);
        let s = split_subtrees(&t, 4);
        // no parallel root is an ancestor of another
        let depths = t.depths();
        for &a in &s.parallel_roots {
            let mut anc = t.parent(a);
            while let Some(x) = anc {
                assert!(!s.parallel_roots.contains(&x));
                assert!(!s.surplus_roots.contains(&x));
                anc = t.parent(x);
            }
            let _ = depths;
        }
        // counts add up: seq nodes + all subtree sizes = n
        let sizes = t.subtree_sizes();
        let covered: usize = s
            .parallel_roots
            .iter()
            .chain(&s.surplus_roots)
            .map(|v| sizes[v.index()])
            .sum();
        assert_eq!(covered + s.seq_nodes.len(), t.len());
    }

    #[test]
    fn more_processors_never_increase_cost() {
        let t = TaskTree::complete(2, 5, 1.0, 1.0, 0.0);
        let mut prev = f64::INFINITY;
        for p in [1, 2, 4, 8, 16] {
            let s = split_subtrees(&t, p);
            assert!(s.cost <= prev + 1e-9, "p={p}: {} > {prev}", s.cost);
            prev = s.cost;
        }
    }
}
