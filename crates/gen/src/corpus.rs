//! The experiment corpus: assembly trees built through the full sparse
//! pipeline, substituting for the paper's 608 UF-collection trees
//! (76 matrices × 2 orderings × 4 amalgamation levels — see DESIGN.md §3).

use treesched_model::{TaskTree, TreeStats};
use treesched_sparse::{assembly, generate, ordering, SparsePattern};

/// Corpus size knob: `Small` for unit tests, `Medium` for the default
/// experiment harness, `Large` for the full campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// A handful of tiny matrices (CI-friendly).
    Small,
    /// ~80 trees from mid-size matrices (seconds to build).
    Medium,
    /// ~150 trees up to a few hundred thousand pattern rows.
    Large,
}

/// One corpus instance: an assembly tree plus its provenance.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// `matrix/ordering/amalgamation` identifier, e.g. `grid2d-40x40/nd/x4`.
    pub name: String,
    /// The assembly tree with the paper's multifrontal weights.
    pub tree: TaskTree,
}

impl CorpusEntry {
    /// Summary statistics of the tree.
    pub fn stats(&self) -> TreeStats {
        TreeStats::of(&self.tree)
    }
}

/// A named source matrix plus the orderings to apply to it.
struct Matrix {
    name: String,
    pattern: SparsePattern,
    orderings: Vec<(String, ordering::Ordering)>,
}

fn grid2d_matrix(nx: usize, ny: usize, stencil: generate::Stencil) -> Matrix {
    let pattern = generate::grid2d(nx, ny, stencil);
    let tag = match stencil {
        generate::Stencil::Star => "grid2d",
        generate::Stencil::Box => "grid2d9p",
    };
    Matrix {
        name: format!("{tag}-{nx}x{ny}"),
        orderings: vec![
            ("md".into(), ordering::min_degree(&pattern)),
            ("nd".into(), ordering::nested_dissection_2d(nx, ny)),
        ],
        pattern,
    }
}

fn grid3d_matrix(nx: usize, ny: usize, nz: usize) -> Matrix {
    let pattern = generate::grid3d(nx, ny, nz, generate::Stencil::Star);
    Matrix {
        name: format!("grid3d-{nx}x{ny}x{nz}"),
        orderings: vec![
            ("md".into(), ordering::min_degree(&pattern)),
            ("nd".into(), ordering::nested_dissection_3d(nx, ny, nz)),
        ],
        pattern,
    }
}

fn random_matrix(n: usize, deg: f64, seed: u64) -> Matrix {
    let pattern = generate::random_symmetric(n, deg, seed);
    Matrix {
        name: format!("rand-{n}-d{deg}"),
        orderings: vec![
            ("md".into(), ordering::min_degree(&pattern)),
            ("rcm".into(), ordering::reverse_cuthill_mckee(&pattern)),
        ],
        pattern,
    }
}

fn band_matrix(n: usize, bw: usize) -> Matrix {
    let pattern = generate::band(n, bw);
    Matrix {
        name: format!("band-{n}-bw{bw}"),
        orderings: vec![
            ("md".into(), ordering::min_degree(&pattern)),
            ("rcm".into(), ordering::reverse_cuthill_mckee(&pattern)),
        ],
        pattern,
    }
}

fn arrow_matrix(n: usize, hubs: usize) -> Matrix {
    let pattern = generate::arrow(n, hubs);
    // natural keeps the hubs last (the fill-optimal choice); MD finds the
    // same structure from scratch
    Matrix {
        name: format!("arrow-{n}-h{hubs}"),
        orderings: vec![
            ("md".into(), ordering::min_degree(&pattern)),
            ("nat".into(), ordering::Ordering::natural(n)),
        ],
        pattern,
    }
}

fn matrices(scale: Scale) -> Vec<Matrix> {
    use generate::Stencil::{Box as BoxS, Star};
    match scale {
        Scale::Small => vec![
            grid2d_matrix(8, 8, Star),
            grid3d_matrix(4, 4, 4),
            random_matrix(120, 3.0, 11),
            band_matrix(100, 4),
            arrow_matrix(150, 1),
        ],
        Scale::Medium => vec![
            grid2d_matrix(40, 40, Star),
            grid2d_matrix(60, 30, Star),
            grid2d_matrix(30, 30, BoxS),
            grid3d_matrix(10, 10, 10),
            grid3d_matrix(14, 8, 8),
            random_matrix(3000, 3.0, 1),
            random_matrix(2000, 5.0, 2),
            random_matrix(4000, 2.5, 3),
            band_matrix(3000, 8),
            band_matrix(2000, 20),
            arrow_matrix(2000, 1),
            arrow_matrix(1500, 3),
        ],
        Scale::Large => vec![
            grid2d_matrix(80, 80, Star),
            grid2d_matrix(120, 60, Star),
            grid2d_matrix(100, 100, Star),
            grid2d_matrix(60, 60, BoxS),
            grid2d_matrix(50, 40, BoxS),
            grid3d_matrix(16, 16, 16),
            grid3d_matrix(20, 12, 12),
            grid3d_matrix(24, 10, 8),
            random_matrix(10000, 3.0, 1),
            random_matrix(8000, 4.0, 2),
            random_matrix(6000, 6.0, 3),
            random_matrix(15000, 2.5, 4),
            band_matrix(10000, 8),
            band_matrix(6000, 25),
            band_matrix(4000, 50),
            arrow_matrix(8000, 1),
            arrow_matrix(5000, 4),
            arrow_matrix(3000, 16),
        ],
    }
}

/// The paper's four relaxed-amalgamation levels (§6.2).
pub const AMALGAMATION_LEVELS: [u32; 4] = [1, 2, 4, 16];

/// Builds the full corpus at the requested scale:
/// every matrix × every ordering × every amalgamation level.
pub fn assembly_corpus(scale: Scale) -> Vec<CorpusEntry> {
    let mut out = Vec::new();
    for m in matrices(scale) {
        for (oname, ord) in &m.orderings {
            let permuted = m.pattern.permute(&ord.order);
            let etree = treesched_sparse::elimination_tree(&permuted);
            let cc = treesched_sparse::column_counts(&permuted, &etree);
            for &limit in &AMALGAMATION_LEVELS {
                let tree = assembly::assembly_tree_from_etree(&etree, &cc, limit)
                    .expect("corpus patterns are connected");
                out.push(CorpusEntry {
                    name: format!("{}/{oname}/x{limit}", m.name),
                    tree,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesched_model::ValidateExt;

    #[test]
    fn small_corpus_shape() {
        let corpus = assembly_corpus(Scale::Small);
        // 5 matrices × 2 orderings × 4 amalgamation levels
        assert_eq!(corpus.len(), 40);
        for e in &corpus {
            assert!(e.tree.validate().is_ok(), "{}", e.name);
            assert!(e.tree.len() >= 2, "{}", e.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let corpus = assembly_corpus(Scale::Small);
        let mut names: Vec<&str> = corpus.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len());
    }

    #[test]
    fn amalgamation_shrinks_trees() {
        let corpus = assembly_corpus(Scale::Small);
        // entries come in groups of 4 (x1, x2, x4, x16) per matrix/ordering
        for group in corpus.chunks(4) {
            let sizes: Vec<usize> = group.iter().map(|e| e.tree.len()).collect();
            assert!(sizes[0] >= sizes[1] && sizes[1] >= sizes[2] && sizes[2] >= sizes[3]);
        }
    }

    #[test]
    fn corpus_trees_have_multifrontal_weights() {
        let corpus = assembly_corpus(Scale::Small);
        for e in &corpus {
            for i in e.tree.ids() {
                assert!(e.tree.work(i) > 0.0);
                assert!(e.tree.exec(i) >= 1.0); // η ≥ 1 ⇒ n ≥ 1
            }
            let s = e.stats();
            assert!(s.parallelism() >= 1.0);
        }
    }
}
