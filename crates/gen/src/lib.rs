//! Instance generators for the `treesched` workspace.
//!
//! * [`theory`] — the paper's proof constructions (Figures 1–5): the
//!   3-Partition reduction tree with its witness schedule, the
//!   inapproximability tree, the fork, and the two memory-blowup gadgets.
//! * [`random`] — random attachment / depth-biased trees and parametric
//!   shapes (caterpillars, spiders) with configurable weight ranges.
//! * [`corpus`] — the experiment corpus: assembly trees built through the
//!   full sparse pipeline of [`treesched_sparse`], replacing the paper's UF
//!   Sparse Matrix Collection input (see DESIGN.md §3 for the
//!   substitution argument).
//!
//! ```
//! use treesched_gen::{assembly_corpus, Scale, fork_tree};
//!
//! let corpus = assembly_corpus(Scale::Small);
//! assert_eq!(corpus.len(), 40); // 5 matrices x 2 orderings x 4 levels
//! let fig3 = fork_tree(4, 8);   // the paper's Figure 3 instance
//! assert_eq!(fig3.leaf_count(), 32);
//! ```

pub mod corpus;
pub mod random;
pub mod theory;

pub use corpus::{assembly_corpus, CorpusEntry, Scale, AMALGAMATION_LEVELS};
pub use random::{caterpillar, random_attachment, random_deep, spider, WeightRange};
pub use theory::{
    fork_tree, inapprox_tree, inner_first_gadget, long_chain_tree, three_partition_tree,
};
