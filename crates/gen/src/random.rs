//! Random and parametric tree generators for tests and stress experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use treesched_model::{TaskTree, TreeBuilder};

/// Weight ranges for random trees: each node draws `w`, `f`, `n` uniformly
/// from the given inclusive integer ranges (integers keep `f64` memory
/// arithmetic exact).
#[derive(Clone, Copy, Debug)]
pub struct WeightRange {
    /// Processing-time range.
    pub work: (u64, u64),
    /// Output-file range.
    pub output: (u64, u64),
    /// Execution-file range.
    pub exec: (u64, u64),
}

impl WeightRange {
    /// Pebble-game weights: `w = f = 1`, `n = 0`.
    pub const PEBBLE: WeightRange = WeightRange {
        work: (1, 1),
        output: (1, 1),
        exec: (0, 0),
    };

    /// A generic mixed range for stress tests.
    pub const MIXED: WeightRange = WeightRange {
        work: (1, 20),
        output: (1, 50),
        exec: (0, 10),
    };
}

fn sample(rng: &mut StdRng, (lo, hi): (u64, u64)) -> f64 {
    if lo == hi {
        lo as f64
    } else {
        rng.gen_range(lo..=hi) as f64
    }
}

/// Uniform random attachment tree: node `i ≥ 1` picks its parent uniformly
/// from `0..i` (node 0 is the root). Produces shallow, bushy trees.
pub fn random_attachment(n: usize, weights: WeightRange, seed: u64) -> TaskTree {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TreeBuilder::with_capacity(n);
    let root = b.node(
        sample(&mut rng, weights.work),
        sample(&mut rng, weights.output),
        sample(&mut rng, weights.exec),
    );
    let mut ids = vec![root];
    for i in 1..n {
        let parent = ids[rng.gen_range(0..i)];
        ids.push(b.child(
            parent,
            sample(&mut rng, weights.work),
            sample(&mut rng, weights.output),
            sample(&mut rng, weights.exec),
        ));
    }
    b.build().expect("random attachment tree is valid")
}

/// Depth-biased random tree: node `i` attaches to one of the `k` most
/// recently added nodes, producing deep, chain-heavy trees (elimination-
/// tree-like shapes).
pub fn random_deep(n: usize, window: usize, weights: WeightRange, seed: u64) -> TaskTree {
    assert!(n >= 1 && window >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TreeBuilder::with_capacity(n);
    let root = b.node(
        sample(&mut rng, weights.work),
        sample(&mut rng, weights.output),
        sample(&mut rng, weights.exec),
    );
    let mut recent = vec![root];
    for _ in 1..n {
        let lo = recent.len().saturating_sub(window);
        let parent = recent[rng.gen_range(lo..recent.len())];
        let id = b.child(
            parent,
            sample(&mut rng, weights.work),
            sample(&mut rng, weights.output),
            sample(&mut rng, weights.exec),
        );
        recent.push(id);
    }
    b.build().expect("random deep tree is valid")
}

/// Caterpillar: a spine of `spine` nodes, each with `legs` leaf children
/// (pebble weights).
pub fn caterpillar(spine: usize, legs: usize) -> TaskTree {
    assert!(spine >= 1);
    let mut b = TreeBuilder::new();
    let root = b.node(1.0, 1.0, 0.0);
    let mut cur = root;
    for i in 0..spine {
        b.pebble_leaves(cur, legs);
        if i + 1 < spine {
            cur = b.pebble_child(cur);
        }
    }
    b.build().expect("caterpillar is valid")
}

/// Spider: `legs` chains of `len` nodes meeting at the root (pebble
/// weights).
pub fn spider(legs: usize, len: usize) -> TaskTree {
    assert!(legs >= 1 && len >= 1);
    let mut b = TreeBuilder::new();
    let root = b.node(1.0, 1.0, 0.0);
    for _ in 0..legs {
        let mut cur = b.pebble_child(root);
        for _ in 1..len {
            cur = b.pebble_child(cur);
        }
    }
    b.build().expect("spider is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesched_model::ValidateExt;

    #[test]
    fn random_attachment_is_valid_and_deterministic() {
        let a = random_attachment(500, WeightRange::MIXED, 1);
        let b = random_attachment(500, WeightRange::MIXED, 1);
        let c = random_attachment(500, WeightRange::MIXED, 2);
        assert!(a.validate().is_ok());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn random_attachment_is_shallow() {
        let t = random_attachment(2000, WeightRange::PEBBLE, 3);
        // expected height ~ ln(n); anything below 60 is fine
        assert!(t.height() < 60, "height {}", t.height());
    }

    #[test]
    fn random_deep_is_deep() {
        let t = random_deep(2000, 3, WeightRange::PEBBLE, 3);
        assert!(t.validate().is_ok());
        assert!(t.height() > 200, "height {}", t.height());
    }

    #[test]
    fn pebble_range_produces_unit_weights() {
        let t = random_attachment(50, WeightRange::PEBBLE, 9);
        for i in t.ids() {
            assert_eq!(t.work(i), 1.0);
            assert_eq!(t.output(i), 1.0);
            assert_eq!(t.exec(i), 0.0);
        }
    }

    #[test]
    fn caterpillar_counts() {
        let t = caterpillar(4, 3);
        assert_eq!(t.len(), 4 + 12);
        assert_eq!(t.leaf_count(), 12); // every leg is a leaf, no spine node is
        assert!(t.validate().is_ok());
    }

    #[test]
    fn spider_counts() {
        let t = spider(5, 4);
        assert_eq!(t.len(), 21);
        assert_eq!(t.leaf_count(), 5);
        assert_eq!(t.height(), 4);
    }
}
