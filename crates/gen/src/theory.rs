//! The paper's proof constructions (§4 and §5), as instance generators.
//!
//! Every tree uses the **Pebble Game** weights (`w = f = 1`, `n = 0`) in
//! which the paper states its complexity results.

use treesched_model::{NodeId, TaskTree, TreeBuilder};

/// Figure 1: the tree of the NP-completeness reduction from 3-Partition.
///
/// A root with `3m` children `N_1 … N_3m`; `N_i` has `3m·a_i` leaf
/// children. The associated decision question uses `p = 3mB` processors,
/// `B_mem = 3mB + 3m` and `B_Cmax = 2m + 1`, where `Σ a_i = mB`.
///
/// Node ids: root = 0; `N_i` = `i` (1-based `i ≤ 3m`); leaves follow.
///
/// # Panics
///
/// Panics unless `a.len()` is a positive multiple of 3 and `Σ a_i` is
/// divisible by `a.len()/3`.
pub fn three_partition_tree(a: &[u64]) -> TaskTree {
    assert!(!a.is_empty() && a.len() % 3 == 0, "need 3m integers");
    let m = a.len() / 3;
    let total: u64 = a.iter().sum();
    assert_eq!(total % m as u64, 0, "Σ a_i must equal m·B");
    let tm = a.len(); // 3m
    let mut b = TreeBuilder::with_capacity(1 + tm + tm * total as usize);
    let root = b.node(1.0, 1.0, 0.0);
    let ns: Vec<NodeId> = (0..tm).map(|_| b.pebble_child(root)).collect();
    for (i, &ai) in a.iter().enumerate() {
        b.pebble_leaves(ns[i], tm * ai as usize);
    }
    b.build().expect("three-partition tree is valid")
}

/// The processor count `p = 3mB` of the reduction for instance `a`.
pub fn three_partition_processors(a: &[u64]) -> u32 {
    let m = (a.len() / 3) as u64;
    let b = a.iter().sum::<u64>() / m;
    (3 * m * b) as u32
}

/// Builds the schedule of the "yes" direction of Theorem 1 for a given
/// 3-partition `groups` (each entry: three 0-based indices into `a`).
/// Returns `(schedule, B_mem, B_Cmax)`; the schedule achieves exactly these
/// bounds, which the test-suite verifies through the simulator.
pub fn three_partition_schedule(
    tree: &TaskTree,
    a: &[u64],
    groups: &[[usize; 3]],
) -> (treesched_core::Schedule, f64, f64) {
    let m = groups.len();
    assert_eq!(a.len(), 3 * m);
    let tm = a.len();
    let b_val = a.iter().sum::<u64>() / m as u64;
    let p = 3 * m as u64 * b_val;
    let mut placements = vec![
        treesched_core::Placement {
            proc: 0,
            start: f64::NAN,
            finish: f64::NAN
        };
        tree.len()
    ];
    for (k, group) in groups.iter().enumerate() {
        let t_leaves = (2 * k) as f64;
        let t_inner = t_leaves + 1.0;
        let mut proc = 0u32;
        for (slot, &i) in group.iter().enumerate() {
            let n_node = NodeId((1 + i) as u32);
            // the N_i node runs in the following step on processor `slot`
            placements[n_node.index()] = treesched_core::Placement {
                proc: slot as u32,
                start: t_inner,
                finish: t_inner + 1.0,
            };
            for &leaf in tree.children(n_node) {
                placements[leaf.index()] = treesched_core::Placement {
                    proc,
                    start: t_leaves,
                    finish: t_leaves + 1.0,
                };
                proc += 1;
            }
        }
        assert_eq!(proc as u64, p, "group {k} must fill every processor");
    }
    let t_root = (2 * m) as f64;
    placements[tree.root().index()] = treesched_core::Placement {
        proc: 0,
        start: t_root,
        finish: t_root + 1.0,
    };
    let bmem = (3 * m as u64 * b_val + 3 * m as u64) as f64;
    let bcmax = (2 * m + 1) as f64;
    let schedule = treesched_core::Schedule {
        processors: p as u32,
        placements,
    };
    let _ = tm;
    (schedule, bmem, bcmax)
}

/// Figure 2: the inapproximability tree of Theorem 2.
///
/// `n` identical subtrees under the root. Subtree `i` is a chain
/// `cp_1 ← cp_2 ← … ← cp_{δ−1} ← b_δ ← b_{δ+1}`, where every `cp_j` also
/// has a child `d_j` with `δ − j + 1` leaf children.
///
/// Key properties (verified in tests): critical path `δ + 2`; optimal
/// sequential peak memory `n + δ`.
///
/// # Panics
///
/// Panics when `delta < 2` or `n == 0`.
pub fn inapprox_tree(n: usize, delta: usize) -> TaskTree {
    assert!(n >= 1 && delta >= 2, "need n ≥ 1 subtrees and δ ≥ 2");
    let mut b = TreeBuilder::new();
    let root = b.node(1.0, 1.0, 0.0);
    for _ in 0..n {
        let mut cp = b.pebble_child(root); // cp_1
        for j in 1..=delta - 1 {
            let d = b.pebble_child(cp); // d_j
            b.pebble_leaves(d, delta - j + 1);
            if j < delta - 1 {
                cp = b.pebble_child(cp); // cp_{j+1}
            }
        }
        let b_delta = b.pebble_child(cp);
        b.pebble_child(b_delta); // b_{δ+1}
    }
    b.build().expect("inapproximability tree is valid")
}

/// Number of descendants of each `cp_1` node in [`inapprox_tree`]:
/// `(δ² + 5δ − 4) / 2` (paper, proof of Theorem 2).
pub fn inapprox_subtree_descendants(delta: usize) -> usize {
    (delta * delta + 5 * delta - 4) / 2
}

/// The explicit sequential order of the Theorem 2 proof achieving the
/// optimal peak `n + δ` on [`inapprox_tree`]: subtrees one after another;
/// within subtree `i`, for `j = 1..δ−1` process the children of `d_j` then
/// `d_j` itself, then `b_{δ+1}`, `b_δ`, and finally `cp_{δ−1}` down to
/// `cp_1`; the root closes the traversal.
///
/// The test-suite replays this order through the sequential simulator and
/// checks the paper's arithmetic: the peak while processing subtree `i` is
/// exactly `i + δ`.
pub fn inapprox_witness_order(tree: &TaskTree, delta: usize) -> Vec<NodeId> {
    let mut order = Vec::with_capacity(tree.len());
    let root = tree.root();
    for &cp1 in tree.children(root) {
        // walk the cp spine collecting [cp_1, …, cp_{δ−1}], the d_j's and
        // the terminal b_δ
        let mut cps = vec![cp1];
        let mut ds = Vec::with_capacity(delta - 1);
        let mut b_delta = None;
        let mut cur = cp1;
        loop {
            let kids = tree.children(cur);
            // children of cp_j: d_j (has leaf children) and either the next
            // cp or b_δ (b_δ has exactly one child, its chain b_{δ+1})
            let mut next = None;
            for &k in kids {
                let gk = tree.children(k);
                let is_d = !gk.is_empty() && gk.iter().all(|&g| tree.is_leaf(g));
                if is_d && ds.len() < delta - 1 && gk.len() >= 2 {
                    ds.push(k);
                } else if gk.len() == 1 || gk.is_empty() {
                    b_delta = Some(k);
                } else {
                    next = Some(k);
                }
            }
            match next {
                Some(k) => {
                    cps.push(k);
                    cur = k;
                }
                None => break,
            }
        }
        let b_delta = b_delta.expect("spine ends in b_δ");
        // d_j children then d_j, for j = 1..δ−1
        for &d in &ds {
            order.extend_from_slice(tree.children(d));
            order.push(d);
        }
        // b_{δ+1} then b_δ
        let b_next = tree.children(b_delta)[0];
        order.push(b_next);
        order.push(b_delta);
        // cp_{δ−1} down to cp_1
        for &cp in cps.iter().rev() {
            order.push(cp);
        }
    }
    order.push(root);
    order
}

/// Figure 3: the fork with `p·k` unit leaves on which `ParSubtrees` is a
/// factor-`p` away from the optimal makespan.
pub fn fork_tree(p: usize, k: usize) -> TaskTree {
    TaskTree::fork(p * k, 1.0, 1.0, 0.0)
}

/// Figure 4: the gadget on which `ParInnerFirst` uses unboundedly more
/// memory than the sequential optimum.
///
/// A spine of `k − 1` join nodes, each with `p − 1` leaf children, ending
/// in a chain; the longest root-to-leaf chain has length `2k`. The optimal
/// sequential memory is `p + 1`, while `ParInnerFirst` with `p` processors
/// holds `(k−1)(p−1) + 1` files when the first join fires.
///
/// # Panics
///
/// Panics when `p < 2` or `k < 2`.
pub fn inner_first_gadget(p: usize, k: usize) -> TaskTree {
    assert!(p >= 2 && k >= 2, "need p ≥ 2 and k ≥ 2");
    let mut b = TreeBuilder::new();
    let root = b.node(1.0, 1.0, 0.0); // join 1
    let mut join = root;
    for _ in 1..k - 1 {
        b.pebble_leaves(join, p - 1);
        join = b.pebble_child(join);
    }
    b.pebble_leaves(join, p - 1);
    // terminal chain: joins occupy depths 0..k-2; chain of k+2 more nodes
    // makes the longest path 2k (2k+1 nodes; edge-length 2k)
    let mut c = b.pebble_child(join);
    for _ in 0..k + 1 {
        c = b.pebble_child(c);
    }
    b.build().expect("inner-first gadget is valid")
}

/// Figure 5: the long-chain tree on which `ParDeepestFirst` needs memory
/// proportional to the number of chains while the sequential optimum is 3.
///
/// A spine `S_1 ← S_2 ← … ← S_c`; spine node `S_i` carries a hanging chain
/// sized so that **all chain leaves share the same (deepest) depth**
/// `c + base_len`.
///
/// # Panics
///
/// Panics when `chains == 0` or `base_len == 0`.
pub fn long_chain_tree(chains: usize, base_len: usize) -> TaskTree {
    assert!(chains >= 1 && base_len >= 1, "need ≥ 1 chain of length ≥ 1");
    let mut b = TreeBuilder::new();
    let root = b.node(1.0, 1.0, 0.0); // S_1
    let mut spine = root;
    for i in 1..=chains {
        // hanging chain at S_i (depth i-1): length so the leaf depth is
        // chains + base_len
        let len = chains + base_len - i + 1;
        let mut c = b.pebble_child(spine);
        for _ in 1..len {
            c = b.pebble_child(c);
        }
        if i < chains {
            spine = b.pebble_child(spine); // S_{i+1}
        }
    }
    b.build().expect("long-chain tree is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesched_core::{evaluate, par_deepest_first, par_inner_first};
    use treesched_model::ValidateExt;
    use treesched_seq::liu_exact;

    #[test]
    fn fig1_shape() {
        let a = [4u64, 4, 4, 4, 4, 4]; // m = 2, B = 12
        let t = three_partition_tree(&a);
        let tm = 6;
        assert_eq!(t.len(), 1 + tm + tm * 24);
        assert_eq!(t.children(t.root()).len(), tm);
        assert!(t.validate().is_ok());
        assert_eq!(three_partition_processors(&a), 72);
    }

    /// The "yes" direction of Theorem 1: a valid 3-partition yields a
    /// schedule meeting both bounds exactly.
    #[test]
    fn fig1_yes_instance_schedule_meets_bounds() {
        let a = [4u64, 4, 4, 4, 4, 4];
        let t = three_partition_tree(&a);
        let groups = [[0usize, 1, 2], [3, 4, 5]];
        let (s, bmem, bcmax) = three_partition_schedule(&t, &a, &groups);
        let ev = evaluate(&t, &s);
        assert_eq!(ev.makespan, bcmax);
        assert_eq!(ev.peak_memory, bmem);
        // m = 2, B = 12: B_mem = 72 + 6, B_Cmax = 5
        assert_eq!(bmem, 78.0);
        assert_eq!(bcmax, 5.0);
    }

    #[test]
    fn fig1_uneven_instance() {
        // m = 2, B = 13, a_i ∈ (B/4, B/2)
        let a = [4u64, 4, 5, 4, 4, 5];
        let t = three_partition_tree(&a);
        let groups = [[0usize, 1, 2], [3, 4, 5]];
        let (s, bmem, bcmax) = three_partition_schedule(&t, &a, &groups);
        let ev = evaluate(&t, &s);
        assert_eq!(ev.makespan, bcmax);
        assert_eq!(ev.peak_memory, bmem);
    }

    #[test]
    fn fig2_structure_and_bounds() {
        for (n, delta) in [(2usize, 3usize), (3, 4), (4, 5)] {
            let t = inapprox_tree(n, delta);
            assert!(t.validate().is_ok());
            assert_eq!(
                t.len(),
                1 + n * (1 + inapprox_subtree_descendants(delta)),
                "n={n} δ={delta}"
            );
            // critical path δ + 2 (unit works)
            assert_eq!(t.critical_path(), (delta + 2) as f64);
            // optimal sequential peak = n + δ (paper's proof)
            assert_eq!(liu_exact(&t).peak, (n + delta) as f64, "n={n} δ={delta}");
        }
    }

    /// Replays the Theorem 2 proof's explicit sequential schedule and checks
    /// the paper's arithmetic step by step: the traversal is valid, its
    /// peak is exactly `n + δ`, and the running maximum after finishing
    /// subtree `i` is `i + δ`.
    #[test]
    fn fig2_witness_order_achieves_optimum() {
        for (n, delta) in [(2usize, 3usize), (3, 5), (5, 4)] {
            let t = inapprox_tree(n, delta);
            let order = inapprox_witness_order(&t, delta);
            assert!(t.is_topological(&order), "n={n} δ={delta}");
            let peak = treesched_seq::peak_of_order(&t, &order).unwrap();
            assert_eq!(peak, (n + delta) as f64, "n={n} δ={delta}");
            // per-subtree running peaks: after the i-th subtree, the peak so
            // far is i + δ (paper: "the peak memory usage during the
            // processing of the subtree rooted at cp_1^i is i + δ")
            let profile = treesched_seq::sim::profile_of_order(&t, &order).unwrap();
            let per_subtree = (t.len() - 1) / n; // nodes per subtree
            for i in 1..=n {
                let upto = i * per_subtree;
                let running = profile[..upto].iter().fold(0.0f64, |a, &b| a.max(b));
                assert_eq!(running, (i + delta) as f64, "subtree {i}, n={n} δ={delta}");
            }
        }
    }

    #[test]
    fn fig3_fork_counts() {
        let t = fork_tree(3, 5);
        assert_eq!(t.len(), 16);
        assert_eq!(t.leaf_count(), 15);
    }

    #[test]
    fn fig4_gadget_memory_blowup() {
        let (p, k) = (4usize, 6usize);
        let t = inner_first_gadget(p, k);
        assert!(t.validate().is_ok());
        // longest chain 2k edges
        assert_eq!(t.height(), 2 * k as u32);
        // sequential optimum p + 1
        assert_eq!(liu_exact(&t).peak, (p + 1) as f64);
        // ParInnerFirst with p processors accumulates the join leaves
        let ev = evaluate(&t, &par_inner_first(&t, p as u32));
        assert!(
            ev.peak_memory >= ((k - 1) * (p - 1) + 1) as f64,
            "peak {} too small",
            ev.peak_memory
        );
    }

    #[test]
    fn fig5_long_chain_memory_blowup() {
        let (c, len) = (8usize, 4usize);
        let t = long_chain_tree(c, len);
        assert!(t.validate().is_ok());
        // sequential optimum 3 (c ≥ 2)
        assert_eq!(liu_exact(&t).peak, 3.0);
        // all leaves at the same deepest level
        let depths = t.depths();
        let leaf_depths: Vec<u32> = t.leaves().iter().map(|l| depths[l.index()]).collect();
        assert!(leaf_depths.iter().all(|&d| d == leaf_depths[0]));
        // ParDeepestFirst memory grows with the number of chains
        let ev = evaluate(&t, &par_deepest_first(&t, c as u32));
        assert!(
            ev.peak_memory >= c as f64,
            "peak {} < c {}",
            ev.peak_memory,
            c
        );
    }

    #[test]
    fn fig5_single_chain_degenerates() {
        let t = long_chain_tree(1, 5);
        assert_eq!(liu_exact(&t).peak, 2.0);
    }
}
