//! Incremental construction of task trees.

use crate::tree::Node;
use crate::{NodeId, TaskTree, TreeError};

/// Incremental builder for [`TaskTree`].
///
/// The first node created with [`TreeBuilder::node`] becomes the root;
/// further nodes are attached with [`TreeBuilder::child`]. Weights are given
/// as `(w, f, n)` = (processing time, output-file size, execution-file size),
/// matching the paper's notation.
///
/// ```
/// use treesched_model::TreeBuilder;
/// let mut b = TreeBuilder::new();
/// let root = b.node(2.0, 0.0, 1.0);
/// let a = b.child(root, 1.0, 4.0, 1.0);
/// let _b = b.child(a, 1.0, 3.0, 1.0);
/// let tree = b.build().unwrap();
/// assert_eq!(tree.len(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TreeBuilder {
    nodes: Vec<Node>,
}

impl TreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        TreeBuilder {
            nodes: Vec::with_capacity(n),
        }
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no node has been added yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a root-level node (only the first one may be created this way;
    /// [`build`](Self::build) fails otherwise). Returns its id.
    pub fn node(&mut self, w: f64, f: f64, n: f64) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node {
            parent: None,
            children: Vec::new(),
            work: w,
            output: f,
            exec: n,
        });
        id
    }

    /// Adds a child of `parent` with weights `(w, f, n)`. Returns its id.
    pub fn child(&mut self, parent: NodeId, w: f64, f: f64, n: f64) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node {
            parent: Some(parent),
            children: Vec::new(),
            work: w,
            output: f,
            exec: n,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Adds a pebble-game child (`w = f = 1`, `n = 0`).
    pub fn pebble_child(&mut self, parent: NodeId) -> NodeId {
        self.child(parent, 1.0, 1.0, 0.0)
    }

    /// Adds `count` pebble-game leaf children under `parent`.
    pub fn pebble_leaves(&mut self, parent: NodeId, count: usize) -> Vec<NodeId> {
        (0..count).map(|_| self.pebble_child(parent)).collect()
    }

    /// Finalizes the tree, checking there is exactly one root and that the
    /// structure is connected and acyclic.
    pub fn build(self) -> Result<TaskTree, TreeError> {
        if self.nodes.is_empty() {
            return Err(TreeError::Empty);
        }
        let mut root = None;
        for (i, n) in self.nodes.iter().enumerate() {
            if n.parent.is_none() && root.replace(NodeId::from_index(i)).is_some() {
                return Err(TreeError::MultipleRoots);
            }
        }
        let root = root.ok_or(TreeError::NoRoot)?;
        let tree = TaskTree::from_nodes(self.nodes, root);
        tree.check_connected()?;
        Ok(tree)
    }
}

impl TaskTree {
    /// A chain of `len` tasks with uniform weights; entry `0` is the root and
    /// the last node is the single leaf. `(w, f, n)` apply to every node.
    pub fn chain(len: usize, w: f64, f: f64, n: f64) -> TaskTree {
        assert!(len >= 1, "chain needs at least one node");
        let mut b = TreeBuilder::with_capacity(len);
        let mut cur = b.node(w, f, n);
        for _ in 1..len {
            cur = b.child(cur, w, f, n);
        }
        b.build().expect("chain is a valid tree")
    }

    /// A root with `leaves` leaf children (the *fork* of paper Fig. 3), with
    /// uniform weights.
    pub fn fork(leaves: usize, w: f64, f: f64, n: f64) -> TaskTree {
        let mut b = TreeBuilder::with_capacity(leaves + 1);
        let root = b.node(w, f, n);
        for _ in 0..leaves {
            b.child(root, w, f, n);
        }
        b.build().expect("fork is a valid tree")
    }

    /// A complete `arity`-ary tree of the given `depth` (depth 0 = single
    /// node), with uniform weights.
    pub fn complete(arity: usize, depth: usize, w: f64, f: f64, n: f64) -> TaskTree {
        assert!(arity >= 1);
        let mut b = TreeBuilder::new();
        let root = b.node(w, f, n);
        let mut frontier = vec![root];
        for _ in 0..depth {
            let mut next = Vec::with_capacity(frontier.len() * arity);
            for &p in &frontier {
                for _ in 0..arity {
                    next.push(b.child(p, w, f, n));
                }
            }
            frontier = next;
        }
        b.build().expect("complete tree is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ValidateExt;

    #[test]
    fn builder_builds_valid_tree() {
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 1.0, 0.0);
        let a = b.child(r, 1.0, 1.0, 0.0);
        b.child(a, 1.0, 1.0, 0.0);
        b.pebble_leaves(r, 3);
        let t = b.build().unwrap();
        assert_eq!(t.len(), 6);
        assert!(t.validate().is_ok());
        assert_eq!(t.children(r).len(), 4);
    }

    #[test]
    fn builder_rejects_two_roots() {
        let mut b = TreeBuilder::new();
        b.node(1.0, 1.0, 0.0);
        b.node(1.0, 1.0, 0.0);
        assert!(matches!(b.build(), Err(TreeError::MultipleRoots)));
    }

    #[test]
    fn builder_rejects_empty() {
        assert!(matches!(TreeBuilder::new().build(), Err(TreeError::Empty)));
    }

    #[test]
    fn chain_shape() {
        let t = TaskTree::chain(4, 1.0, 2.0, 0.5);
        assert_eq!(t.len(), 4);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.root(), NodeId(0));
        assert!(t.is_leaf(NodeId(3)));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn fork_shape() {
        let t = TaskTree::fork(5, 1.0, 1.0, 0.0);
        assert_eq!(t.len(), 6);
        assert_eq!(t.leaf_count(), 5);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn complete_tree_counts() {
        let t = TaskTree::complete(2, 3, 1.0, 1.0, 0.0);
        assert_eq!(t.len(), 15); // 1 + 2 + 4 + 8
        assert_eq!(t.leaf_count(), 8);
        let t = TaskTree::complete(3, 2, 1.0, 1.0, 0.0);
        assert_eq!(t.len(), 13); // 1 + 3 + 9
        assert!(t.validate().is_ok());
    }

    #[test]
    #[should_panic]
    fn chain_zero_panics() {
        let _ = TaskTree::chain(0, 1.0, 1.0, 0.0);
    }
}
