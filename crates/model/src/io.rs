//! Plain-text interchange format and DOT export.
//!
//! The text format is line-oriented and self-describing:
//!
//! ```text
//! # treesched tree v1
//! # columns: id parent w f n      (parent = -1 for the root)
//! 0 -1 1.0 1.0 0.0
//! 1 0 1.0 1.0 0.0
//! 2 0 1.0 1.0 0.0
//! ```
//!
//! Ids must be dense `0..n`. Lines starting with `#` and blank lines are
//! ignored. This keeps the corpus files diff-able and avoids any external
//! serialization dependency.

use crate::{NodeId, TaskTree, TreeError};
use std::fmt::Write as _;

/// Serializes `tree` into the v1 text format.
pub fn to_text(tree: &TaskTree) -> String {
    let mut s = String::with_capacity(tree.len() * 24 + 64);
    s.push_str("# treesched tree v1\n");
    s.push_str("# columns: id parent w f n\n");
    for i in tree.ids() {
        let p = tree.parent(i).map_or(-1i64, |p| p.index() as i64);
        let _ = writeln!(
            s,
            "{} {} {} {} {}",
            i.index(),
            p,
            tree.work(i),
            tree.output(i),
            tree.exec(i)
        );
    }
    s
}

/// Errors raised while parsing the text format.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    /// A data line did not have exactly five whitespace-separated fields.
    BadLine { line: usize },
    /// A field failed to parse as a number.
    BadNumber { line: usize, field: &'static str },
    /// Node ids were not the dense range `0..n` in order of appearance.
    NonDenseIds {
        line: usize,
        expected: usize,
        got: usize,
    },
    /// The resulting structure is not a tree.
    Tree(TreeError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadLine { line } => write!(f, "line {line}: expected 5 fields"),
            ParseError::BadNumber { line, field } => {
                write!(f, "line {line}: cannot parse {field}")
            }
            ParseError::NonDenseIds {
                line,
                expected,
                got,
            } => {
                write!(f, "line {line}: expected id {expected}, got {got}")
            }
            ParseError::Tree(e) => write!(f, "invalid tree: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<TreeError> for ParseError {
    fn from(e: TreeError) -> Self {
        ParseError::Tree(e)
    }
}

/// Parses the v1 text format produced by [`to_text`].
pub fn from_text(text: &str) -> Result<TaskTree, ParseError> {
    let mut parents: Vec<Option<usize>> = Vec::new();
    let mut work = Vec::new();
    let mut output = Vec::new();
    let mut exec = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let mut next = || -> Result<&str, ParseError> {
            it.next().ok_or(ParseError::BadLine { line: lineno + 1 })
        };
        let id: usize = next()?.parse().map_err(|_| ParseError::BadNumber {
            line: lineno + 1,
            field: "id",
        })?;
        if id != parents.len() {
            return Err(ParseError::NonDenseIds {
                line: lineno + 1,
                expected: parents.len(),
                got: id,
            });
        }
        let p: i64 = next()?.parse().map_err(|_| ParseError::BadNumber {
            line: lineno + 1,
            field: "parent",
        })?;
        let w: f64 = next()?.parse().map_err(|_| ParseError::BadNumber {
            line: lineno + 1,
            field: "w",
        })?;
        let f: f64 = next()?.parse().map_err(|_| ParseError::BadNumber {
            line: lineno + 1,
            field: "f",
        })?;
        let n: f64 = next()?.parse().map_err(|_| ParseError::BadNumber {
            line: lineno + 1,
            field: "n",
        })?;
        if it.next().is_some() {
            return Err(ParseError::BadLine { line: lineno + 1 });
        }
        parents.push(if p < 0 { None } else { Some(p as usize) });
        work.push(w);
        output.push(f);
        exec.push(n);
    }
    Ok(TaskTree::from_parents(&parents, &work, &output, &exec)?)
}

/// Renders the tree in Graphviz DOT syntax. Node labels show
/// `id / w / f / n`; the edge direction follows the data-flow (child →
/// parent), matching the in-tree reading of the paper.
pub fn to_dot(tree: &TaskTree, name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{name}\" {{");
    let _ = writeln!(s, "  rankdir=BT;");
    let _ = writeln!(s, "  node [shape=box, fontsize=10];");
    for i in tree.ids() {
        let _ = writeln!(
            s,
            "  n{} [label=\"{}\\nw={} f={} n={}\"];",
            i.index(),
            i.index(),
            tree.work(i),
            tree.output(i),
            tree.exec(i)
        );
    }
    for i in tree.ids() {
        if let Some(p) = tree.parent(i) {
            let _ = writeln!(s, "  n{} -> n{};", i.index(), p.index());
        }
    }
    s.push_str("}\n");
    s
}

/// Compact single-line description used in logs:
/// `id(parent) id(parent) ...` with `-` for the root.
pub fn to_compact(tree: &TaskTree) -> String {
    let mut s = String::new();
    for i in tree.ids() {
        let _ = match tree.parent(i) {
            Some(p) => write!(s, "{}({}) ", i.index(), p.index()),
            None => write!(s, "{}(-) ", i.index()),
        };
    }
    s.trim_end().to_string()
}

/// `NodeId`-indexed helper: positions of each node in `order`.
pub fn positions(n: usize, order: &[NodeId]) -> Vec<usize> {
    let mut pos = vec![usize::MAX; n];
    for (k, &v) in order.iter().enumerate() {
        pos[v.index()] = k;
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeBuilder;

    fn sample() -> TaskTree {
        let mut b = TreeBuilder::new();
        let r = b.node(1.5, 2.0, 0.25);
        let a = b.child(r, 3.0, 4.0, 0.0);
        b.child(a, 5.0, 6.0, 1.0);
        b.child(r, 7.0, 8.0, 2.0);
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_text() {
        let t = sample();
        let s = to_text(&t);
        let t2 = from_text(&s).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn parse_ignores_comments_and_blanks() {
        let s = "# hi\n\n0 -1 1 1 0\n# mid\n1 0 1 1 0\n";
        let t = from_text(s).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn parse_rejects_bad_field_count() {
        assert!(matches!(
            from_text("0 -1 1 1\n"),
            Err(ParseError::BadLine { line: 1 })
        ));
        assert!(matches!(
            from_text("0 -1 1 1 0 9\n"),
            Err(ParseError::BadLine { line: 1 })
        ));
    }

    #[test]
    fn parse_rejects_bad_number() {
        assert!(matches!(
            from_text("0 -1 x 1 0\n"),
            Err(ParseError::BadNumber { field: "w", .. })
        ));
    }

    #[test]
    fn parse_rejects_non_dense_ids() {
        assert!(matches!(
            from_text("1 -1 1 1 0\n"),
            Err(ParseError::NonDenseIds {
                expected: 0,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn parse_rejects_invalid_tree() {
        assert!(matches!(
            from_text("0 -1 1 1 0\n1 -1 1 1 0\n"),
            Err(ParseError::Tree(TreeError::MultipleRoots))
        ));
    }

    #[test]
    fn dot_mentions_all_nodes_and_edges() {
        let t = sample();
        let dot = to_dot(&t, "sample");
        assert!(dot.contains("digraph \"sample\""));
        for i in 0..4 {
            assert!(dot.contains(&format!("n{i} [label=")));
        }
        assert!(dot.contains("n1 -> n0;"));
        assert!(dot.contains("n2 -> n1;"));
        assert!(dot.contains("n3 -> n0;"));
    }

    #[test]
    fn compact_format() {
        let t = sample();
        assert_eq!(to_compact(&t), "0(-) 1(0) 2(1) 3(0)");
    }

    #[test]
    fn positions_inverse_of_order() {
        let t = sample();
        let po = t.postorder();
        let pos = positions(t.len(), &po);
        for (k, &v) in po.iter().enumerate() {
            assert_eq!(pos[v.index()], k);
        }
    }
}
