//! Task-tree data model for memory-aware tree scheduling.
//!
//! This crate implements the application model of Marchal, Sinnen and Vivien,
//! *“Scheduling tree-shaped task graphs to minimize memory and makespan”*
//! (INRIA RR-8082 / IPDPS 2013), section 3:
//!
//! * a rooted **in-tree** of `n` tasks where every node `i` carries
//!   - a processing time `w_i` ([`TaskTree::work`]),
//!   - an output-file size `f_i` ([`TaskTree::output`]), consumed by the parent,
//!   - an execution-file (program) size `n_i` ([`TaskTree::exec`]), resident
//!     only while the task runs;
//! * the memory footprint of running task `i` is
//!   `Σ_{j ∈ children(i)} f_j + n_i + f_i` ([`TaskTree::local_need`]).
//!
//! The crate provides arena-backed storage ([`TaskTree`]), builders
//! ([`TreeBuilder`], [`TaskTree::from_parents`]), traversal utilities
//! ([`TaskTree::postorder`] and friends), derived metrics (subtree weights,
//! weighted depths, critical path), structural validation, a plain-text
//! interchange format and DOT export ([`io`]), and summary statistics
//! ([`stats::TreeStats`]).
//!
//! All weights are `f64`; the *pebble-game* special case of the paper
//! (`f_i = 1, n_i = 0, w_i = 1`) is exactly representable.

pub mod build;
pub mod io;
pub mod metrics;
pub mod stats;
pub mod traverse;
pub mod tree;
pub mod validate;

pub use build::TreeBuilder;
pub use stats::TreeStats;
pub use tree::{NodeId, SubtreeView, TaskTree};
pub use validate::{TreeError, ValidateExt};
