//! Derived per-node metrics: depths, subtree weights, critical path.

use crate::{NodeId, TaskTree};

impl TaskTree {
    /// Edge-depth of every node (root = 0), indexed by node id.
    pub fn depths(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.len()];
        for v in self.preorder() {
            if let Some(p) = self.parent(v) {
                d[v.index()] = d[p.index()] + 1;
            }
        }
        d
    }

    /// Height of the tree in edges (max edge-depth of any node).
    pub fn height(&self) -> u32 {
        self.depths().into_iter().max().unwrap_or(0)
    }

    /// `w`-weighted depth of every node: the sum of `w` along the path from
    /// the node to the root, **including the node's own `w_i`** (paper §5.3:
    /// “this path length includes the `w_i`”). The deepest node by this
    /// metric is the head of the critical path.
    pub fn weighted_depths(&self) -> Vec<f64> {
        let mut d = vec![0.0f64; self.len()];
        for v in self.preorder() {
            let up = self.parent(v).map_or(0.0, |p| d[p.index()]);
            d[v.index()] = up + self.work(v);
        }
        d
    }

    /// Length of the critical path: the largest `w`-weighted root-to-node
    /// path. This is a lower bound on the makespan for any processor count.
    pub fn critical_path(&self) -> f64 {
        self.weighted_depths().into_iter().fold(0.0, f64::max)
    }

    /// Total work `W_i` of each subtree (sum of `w_j` over the subtree rooted
    /// at `i`, including `i` itself), indexed by node id. Used by
    /// `SplitSubtrees` (paper Algorithm 2).
    pub fn subtree_work(&self) -> Vec<f64> {
        let mut w: Vec<f64> = (0..self.len())
            .map(|i| self.work(NodeId::from_index(i)))
            .collect();
        for v in self.postorder() {
            if let Some(p) = self.parent(v) {
                w[p.index()] += w[v.index()];
            }
        }
        w
    }

    /// Number of nodes in each subtree (including the subtree root).
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.len()];
        for v in self.postorder() {
            if let Some(p) = self.parent(v) {
                s[p.index()] += s[v.index()];
            }
        }
        s
    }

    /// Maximum out-degree (number of children) over all nodes.
    pub fn max_degree(&self) -> usize {
        self.ids()
            .map(|i| self.children(i).len())
            .max()
            .unwrap_or(0)
    }

    /// A trivial lower bound on the peak memory of **any** traversal,
    /// sequential or parallel: the largest single-task footprint
    /// `max_i local_need(i)` (every task must at some point hold its inputs,
    /// program and output simultaneously).
    pub fn max_local_need(&self) -> f64 {
        self.ids().map(|i| self.local_need(i)).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeBuilder;

    fn weighted_sample() -> TaskTree {
        // 0 (w=1) <- 1 (w=2) <- 3 (w=4)
        //         <- 2 (w=8) <- 4 (w=16), 5 (w=32)
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 1.0, 0.0);
        let n1 = b.child(r, 2.0, 1.0, 0.0);
        let n2 = b.child(r, 8.0, 1.0, 0.0);
        b.child(n1, 4.0, 1.0, 0.0);
        b.child(n2, 16.0, 1.0, 0.0);
        b.child(n2, 32.0, 1.0, 0.0);
        b.build().unwrap()
    }

    #[test]
    fn depths_and_height() {
        let t = weighted_sample();
        assert_eq!(t.depths(), vec![0, 1, 1, 2, 2, 2]);
        assert_eq!(t.height(), 2);
        let c = TaskTree::chain(5, 1.0, 1.0, 0.0);
        assert_eq!(c.height(), 4);
    }

    #[test]
    fn weighted_depths_include_own_work() {
        let t = weighted_sample();
        let d = t.weighted_depths();
        assert_eq!(d[0], 1.0);
        assert_eq!(d[1], 3.0); // 1 + 2
        assert_eq!(d[3], 7.0); // 1 + 2 + 4
        assert_eq!(d[5], 41.0); // 1 + 8 + 32
        assert_eq!(t.critical_path(), 41.0);
    }

    #[test]
    fn subtree_work_sums() {
        let t = weighted_sample();
        let w = t.subtree_work();
        assert_eq!(w[0], 63.0);
        assert_eq!(w[1], 6.0);
        assert_eq!(w[2], 56.0);
        assert_eq!(w[3], 4.0);
    }

    #[test]
    fn subtree_sizes_count() {
        let t = weighted_sample();
        let s = t.subtree_sizes();
        assert_eq!(s[0], 6);
        assert_eq!(s[1], 2);
        assert_eq!(s[2], 3);
        assert_eq!(s[5], 1);
    }

    #[test]
    fn degree_and_local_need_bound() {
        let t = weighted_sample();
        assert_eq!(t.max_degree(), 2);
        // root: inputs 1+1, n=0, f=1 -> 3; node 2: 1+1+0+1 = 3
        assert_eq!(t.max_local_need(), 3.0);
    }

    #[test]
    fn critical_path_of_chain_is_total_work() {
        let t = TaskTree::chain(10, 2.5, 1.0, 0.0);
        assert_eq!(t.critical_path(), 25.0);
        assert_eq!(t.total_work(), 25.0);
    }

    #[test]
    fn critical_path_of_fork() {
        let t = TaskTree::fork(7, 3.0, 1.0, 0.0);
        assert_eq!(t.critical_path(), 6.0); // leaf + root
    }
}
