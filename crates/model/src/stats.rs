//! Summary statistics of a task tree (shape + weight distribution).

use crate::TaskTree;
use std::fmt;

/// Descriptive statistics of a tree, mirroring the corpus description of the
/// paper's §6.2 (node count, depth, maximum degree) plus weight aggregates.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeStats {
    /// Number of tasks.
    pub nodes: usize,
    /// Number of leaves.
    pub leaves: usize,
    /// Height in edges.
    pub height: u32,
    /// Maximum number of children of any node.
    pub max_degree: usize,
    /// Sum of `w_i`.
    pub total_work: f64,
    /// `w`-weighted critical path.
    pub critical_path: f64,
    /// Largest single-task memory footprint.
    pub max_local_need: f64,
    /// Sum of all output-file sizes.
    pub total_output: f64,
    /// Mean number of children over inner nodes.
    pub mean_inner_degree: f64,
}

impl TreeStats {
    /// Computes statistics for `tree`.
    pub fn of(tree: &TaskTree) -> Self {
        let leaves = tree.leaf_count();
        let inner = tree.len() - leaves;
        let edges = tree.len() - 1;
        TreeStats {
            nodes: tree.len(),
            leaves,
            height: tree.height(),
            max_degree: tree.max_degree(),
            total_work: tree.total_work(),
            critical_path: tree.critical_path(),
            max_local_need: tree.max_local_need(),
            total_output: tree.ids().map(|i| tree.output(i)).sum(),
            mean_inner_degree: if inner == 0 {
                0.0
            } else {
                edges as f64 / inner as f64
            },
        }
    }

    /// Inherent parallelism of the tree: total work over critical path.
    /// Values near 1 mean the tree is effectively a chain; large values mean
    /// wide trees that scale with many processors.
    pub fn parallelism(&self) -> f64 {
        if self.critical_path == 0.0 {
            1.0
        } else {
            self.total_work / self.critical_path
        }
    }
}

impl fmt::Display for TreeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nodes={} leaves={} height={} maxdeg={} W={:.3e} CP={:.3e} par={:.2}",
            self.nodes,
            self.leaves,
            self.height,
            self.max_degree,
            self.total_work,
            self.critical_path,
            self.parallelism()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_fork() {
        let t = TaskTree::fork(4, 1.0, 1.0, 0.0);
        let s = TreeStats::of(&t);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.leaves, 4);
        assert_eq!(s.height, 1);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.total_work, 5.0);
        assert_eq!(s.critical_path, 2.0);
        assert_eq!(s.parallelism(), 2.5);
        assert_eq!(s.mean_inner_degree, 4.0);
    }

    #[test]
    fn stats_of_chain() {
        let t = TaskTree::chain(6, 1.0, 1.0, 0.0);
        let s = TreeStats::of(&t);
        assert_eq!(s.height, 5);
        assert_eq!(s.parallelism(), 1.0);
        assert_eq!(s.mean_inner_degree, 1.0);
    }

    #[test]
    fn display_compact() {
        let t = TaskTree::fork(2, 1.0, 1.0, 0.0);
        let s = TreeStats::of(&t).to_string();
        assert!(s.contains("nodes=3"));
        assert!(s.contains("maxdeg=2"));
    }

    #[test]
    fn single_node_stats() {
        let t = TaskTree::chain(1, 3.0, 2.0, 1.0);
        let s = TreeStats::of(&t);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.mean_inner_degree, 0.0);
        assert_eq!(s.parallelism(), 1.0);
        assert_eq!(s.max_local_need, 3.0);
    }
}
