//! Iterative tree traversals.
//!
//! All traversals are iterative (no recursion) so that trees with depth in
//! the tens of thousands — the paper's corpus reaches depth 70 000 — do not
//! overflow the stack.

use crate::{NodeId, TaskTree};

impl TaskTree {
    /// Postorder traversal (children before parents), visiting each node's
    /// children in their stored order. The root is last.
    pub fn postorder(&self) -> Vec<NodeId> {
        self.postorder_from(self.root)
    }

    /// Postorder traversal of the subtree rooted at `r` (ids of the original
    /// tree).
    pub fn postorder_from(&self, r: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len());
        // Emit in reverse-preorder with reversed children, then reverse:
        // classic two-stack postorder without recursion.
        let mut stack = vec![r];
        while let Some(v) = stack.pop() {
            out.push(v);
            stack.extend_from_slice(self.children(v));
        }
        out.reverse();
        out
    }

    /// Preorder traversal (parents before children). The root is first.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack = vec![self.root];
        while let Some(v) = stack.pop() {
            out.push(v);
            // push children reversed so the leftmost child is visited first
            for &c in self.children(v).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Breadth-first traversal from the root.
    pub fn bfs(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len());
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(self.root);
        while let Some(v) = queue.pop_front() {
            out.push(v);
            for &c in self.children(v) {
                queue.push_back(c);
            }
        }
        out
    }

    /// Checks that `order` is a valid topological order of the tree: every
    /// node appears exactly once and after all of its children.
    pub fn is_topological(&self, order: &[NodeId]) -> bool {
        if order.len() != self.len() {
            return false;
        }
        let mut pos = vec![usize::MAX; self.len()];
        for (k, &v) in order.iter().enumerate() {
            if v.index() >= self.len() || pos[v.index()] != usize::MAX {
                return false;
            }
            pos[v.index()] = k;
        }
        self.ids().all(|i| {
            self.children(i)
                .iter()
                .all(|c| pos[c.index()] < pos[i.index()])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeBuilder;

    /// Root 0 with children 1, 2; 1 has children 3, 4; 2 has child 5.
    fn sample() -> TaskTree {
        TaskTree::pebble_from_parents(&[None, Some(0), Some(0), Some(1), Some(1), Some(2)]).unwrap()
    }

    #[test]
    fn postorder_children_first() {
        let t = sample();
        let po = t.postorder();
        assert_eq!(po.len(), 6);
        assert_eq!(*po.last().unwrap(), t.root());
        assert!(t.is_topological(&po));
        // left subtree fully before node 1
        let pos: Vec<usize> = {
            let mut p = vec![0; 6];
            for (k, v) in po.iter().enumerate() {
                p[v.index()] = k;
            }
            p
        };
        assert!(pos[3] < pos[1] && pos[4] < pos[1]);
        assert!(pos[5] < pos[2]);
    }

    #[test]
    fn postorder_respects_child_order() {
        let t = sample();
        let po = t.postorder();
        // children of root are [1, 2]; subtree of 1 comes entirely first
        assert_eq!(
            po,
            vec![
                NodeId(3),
                NodeId(4),
                NodeId(1),
                NodeId(5),
                NodeId(2),
                NodeId(0)
            ]
        );
    }

    #[test]
    fn preorder_parents_first() {
        let t = sample();
        let pre = t.preorder();
        assert_eq!(pre[0], t.root());
        assert_eq!(
            pre,
            vec![
                NodeId(0),
                NodeId(1),
                NodeId(3),
                NodeId(4),
                NodeId(2),
                NodeId(5)
            ]
        );
    }

    #[test]
    fn bfs_level_order() {
        let t = sample();
        assert_eq!(
            t.bfs(),
            vec![
                NodeId(0),
                NodeId(1),
                NodeId(2),
                NodeId(3),
                NodeId(4),
                NodeId(5)
            ]
        );
    }

    #[test]
    fn is_topological_detects_violations() {
        let t = sample();
        let mut po = t.postorder();
        assert!(t.is_topological(&po));
        // swap a child after its parent
        po.swap(0, 2); // 1 before its child 3
        assert!(!t.is_topological(&po));
        // duplicates
        let dup = vec![NodeId(0); 6];
        assert!(!t.is_topological(&dup));
        // wrong length
        assert!(!t.is_topological(&po[..3]));
    }

    #[test]
    fn postorder_from_subtree_only() {
        let t = sample();
        let po = t.postorder_from(NodeId(1));
        assert_eq!(po, vec![NodeId(3), NodeId(4), NodeId(1)]);
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        let t = TaskTree::chain(200_000, 1.0, 1.0, 0.0);
        let po = t.postorder();
        assert_eq!(po.len(), 200_000);
        assert_eq!(*po.last().unwrap(), t.root());
        let mut b = TreeBuilder::new();
        let mut cur = b.node(1.0, 1.0, 0.0);
        for _ in 0..100_000 {
            cur = b.child(cur, 1.0, 1.0, 0.0);
        }
        let deep = b.build().unwrap();
        assert!(deep.is_topological(&deep.postorder()));
    }
}
