//! Arena-backed rooted in-tree of weighted tasks.

use std::fmt;

/// Identifier of a node inside a [`TaskTree`].
///
/// Node ids are dense indices in `0..tree.len()`; they are stable for the
/// lifetime of the tree (nodes are never removed) and cheap to copy.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index of this node in the tree arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense arena index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize);
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One task during construction: weights plus the adjacency links. The
/// builders accumulate `Node`s; [`TaskTree::from_nodes`] packs them into
/// the tree's struct-of-arrays layout.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Node {
    pub parent: Option<NodeId>,
    pub children: Vec<NodeId>,
    /// Processing time `w_i`.
    pub work: f64,
    /// Output-file size `f_i` (input file of the parent).
    pub output: f64,
    /// Execution-file (program) size `n_i`.
    pub exec: f64,
}

/// A rooted in-tree of weighted tasks (paper §3.1).
///
/// The tree stores its nodes in a struct-of-arrays layout: one parallel
/// array per field (parent links, weights) plus a packed CSR child table
/// (`child_start`/`child_list`). Traversal-heavy code — the sequential
/// traversals, the schedulers' subtree walks — touches only the arrays it
/// needs, instead of striding over a full node struct per visit. Children
/// keep their insertion order, which matters for order-sensitive
/// traversals such as the *naive* postorder.
///
/// # Example
///
/// ```
/// use treesched_model::{TaskTree, TreeBuilder};
///
/// // root with two leaf children, pebble-game weights
/// let mut b = TreeBuilder::new();
/// let root = b.node(1.0, 1.0, 0.0);          // w, f, n
/// let _a = b.child(root, 1.0, 1.0, 0.0);
/// let _c = b.child(root, 1.0, 1.0, 0.0);
/// let tree: TaskTree = b.build().unwrap();
/// assert_eq!(tree.len(), 3);
/// assert_eq!(tree.children(tree.root()).len(), 2);
/// // running the root needs both inputs + its own output file
/// assert_eq!(tree.local_need(tree.root()), 3.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct TaskTree {
    pub(crate) parent: Vec<Option<NodeId>>,
    /// Processing times `w_i`.
    pub(crate) work: Vec<f64>,
    /// Output-file sizes `f_i`.
    pub(crate) output: Vec<f64>,
    /// Execution-file sizes `n_i`.
    pub(crate) exec: Vec<f64>,
    /// CSR offsets: children of `i` live at
    /// `child_list[child_start[i]..child_start[i + 1]]`.
    pub(crate) child_start: Vec<u32>,
    /// Packed child lists, insertion order preserved per node.
    pub(crate) child_list: Vec<NodeId>,
    pub(crate) root: NodeId,
}

impl TaskTree {
    /// Packs builder nodes into the struct-of-arrays layout. Child lists
    /// keep their per-node order.
    pub(crate) fn from_nodes(nodes: Vec<Node>, root: NodeId) -> TaskTree {
        let n = nodes.len();
        let mut child_start = Vec::with_capacity(n + 1);
        let mut children = 0u32;
        child_start.push(0);
        for node in &nodes {
            children += node.children.len() as u32;
            child_start.push(children);
        }
        let mut child_list = Vec::with_capacity(children as usize);
        let mut parent = Vec::with_capacity(n);
        let mut work = Vec::with_capacity(n);
        let mut output = Vec::with_capacity(n);
        let mut exec = Vec::with_capacity(n);
        for node in nodes {
            child_list.extend_from_slice(&node.children);
            parent.push(node.parent);
            work.push(node.work);
            output.push(node.output);
            exec.push(node.exec);
        }
        TaskTree {
            parent,
            work,
            output,
            exec,
            child_start,
            child_list,
            root,
        }
    }

    /// Number of tasks in the tree.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the tree holds no tasks (never the case for built trees).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The root task (the only task without a parent).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `i`, or `None` for the root.
    #[inline]
    pub fn parent(&self, i: NodeId) -> Option<NodeId> {
        self.parent[i.index()]
    }

    /// Children of `i` in insertion order.
    #[inline]
    pub fn children(&self, i: NodeId) -> &[NodeId] {
        &self.child_list
            [self.child_start[i.index()] as usize..self.child_start[i.index() + 1] as usize]
    }

    /// `true` when `i` has no children.
    #[inline]
    pub fn is_leaf(&self, i: NodeId) -> bool {
        self.child_start[i.index()] == self.child_start[i.index() + 1]
    }

    /// Processing time `w_i`.
    #[inline]
    pub fn work(&self, i: NodeId) -> f64 {
        self.work[i.index()]
    }

    /// Output-file size `f_i`.
    #[inline]
    pub fn output(&self, i: NodeId) -> f64 {
        self.output[i.index()]
    }

    /// Execution-file (program) size `n_i`.
    #[inline]
    pub fn exec(&self, i: NodeId) -> f64 {
        self.exec[i.index()]
    }

    /// Overwrites the processing time of `i`.
    pub fn set_work(&mut self, i: NodeId, w: f64) {
        self.work[i.index()] = w;
    }

    /// Overwrites the output-file size of `i`.
    pub fn set_output(&mut self, i: NodeId, f: f64) {
        self.output[i.index()] = f;
    }

    /// Overwrites the execution-file size of `i`.
    pub fn set_exec(&mut self, i: NodeId, n: f64) {
        self.exec[i.index()] = n;
    }

    /// Memory needed *while* task `i` runs:
    /// `Σ_{j ∈ children(i)} f_j + n_i + f_i` (paper §3.1).
    pub fn local_need(&self, i: NodeId) -> f64 {
        let inputs: f64 = self.children(i).iter().map(|&c| self.output(c)).sum();
        inputs + self.exec(i) + self.output(i)
    }

    /// Sum of the input-file sizes of `i` (zero for leaves).
    pub fn input_size(&self, i: NodeId) -> f64 {
        self.children(i).iter().map(|&c| self.output(c)).sum()
    }

    /// Iterator over all node ids in arena order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len() as u32).map(NodeId)
    }

    /// All leaves, in arena order.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.ids().filter(|&i| self.is_leaf(i)).collect()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.ids().filter(|&i| self.is_leaf(i)).count()
    }

    /// Sum of `w_i` over all tasks.
    pub fn total_work(&self) -> f64 {
        self.work.iter().sum()
    }

    /// Largest single task weight, `max_i w_i`.
    pub fn max_work(&self) -> f64 {
        self.work.iter().copied().fold(0.0, f64::max)
    }

    /// Largest output-file size, `max_i f_i`.
    pub fn max_output(&self) -> f64 {
        self.output.iter().copied().fold(0.0, f64::max)
    }

    /// Builds a tree from a parent vector with uniform *pebble-game* weights
    /// (`w = f = 1`, `n = 0`). `parents[i]` is the parent index of node `i`;
    /// exactly one entry must be `None` (the root).
    pub fn pebble_from_parents(parents: &[Option<usize>]) -> Result<Self, crate::TreeError> {
        let n = parents.len();
        Self::from_parents(parents, &vec![1.0; n], &vec![1.0; n], &vec![0.0; n])
    }

    /// Builds a tree from parallel arrays: parent links plus per-node
    /// `w` (work), `f` (output) and `n` (execution file) weights.
    ///
    /// Fails when the arrays disagree in length, when there is not exactly
    /// one root, when a parent index is out of range, or when the parent
    /// links contain a cycle.
    pub fn from_parents(
        parents: &[Option<usize>],
        work: &[f64],
        output: &[f64],
        exec: &[f64],
    ) -> Result<Self, crate::TreeError> {
        use crate::TreeError;
        let n = parents.len();
        if work.len() != n || output.len() != n || exec.len() != n {
            return Err(TreeError::LengthMismatch {
                parents: n,
                weights: work.len().min(output.len()).min(exec.len()),
            });
        }
        if n == 0 {
            return Err(TreeError::Empty);
        }
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut counts = vec![0u32; n];
        let mut root = None;
        for (i, &p) in parents.iter().enumerate() {
            match p {
                None => {
                    if root.replace(NodeId::from_index(i)).is_some() {
                        return Err(TreeError::MultipleRoots);
                    }
                }
                Some(p) => {
                    if p >= n {
                        return Err(TreeError::BadParent { node: i, parent: p });
                    }
                    if p == i {
                        return Err(TreeError::SelfLoop { node: i });
                    }
                    parent[i] = Some(NodeId::from_index(p));
                    counts[p] += 1;
                }
            }
        }
        let root = root.ok_or(TreeError::NoRoot)?;
        // CSR fill: offsets from the per-parent counts, then a second pass
        // in ascending child id (= the AoS insertion order).
        let mut child_start = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        child_start.push(0);
        for &c in &counts {
            acc += c;
            child_start.push(acc);
        }
        let mut cursor: Vec<u32> = child_start[..n].to_vec();
        let mut child_list = vec![NodeId(0); acc as usize];
        for (i, &p) in parents.iter().enumerate() {
            if let Some(p) = p {
                child_list[cursor[p] as usize] = NodeId::from_index(i);
                cursor[p] += 1;
            }
        }
        let tree = TaskTree {
            parent,
            work: work.to_vec(),
            output: output.to_vec(),
            exec: exec.to_vec(),
            child_start,
            child_list,
            root,
        };
        tree.check_connected()?;
        Ok(tree)
    }

    /// Verifies that every node is reachable from the root (detects cycles
    /// among non-root components).
    pub(crate) fn check_connected(&self) -> Result<(), crate::TreeError> {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![self.root];
        let mut count = 0usize;
        while let Some(v) = stack.pop() {
            if seen[v.index()] {
                return Err(crate::TreeError::Cycle);
            }
            seen[v.index()] = true;
            count += 1;
            stack.extend_from_slice(self.children(v));
        }
        if count != self.len() {
            return Err(crate::TreeError::Disconnected {
                reachable: count,
                total: self.len(),
            });
        }
        Ok(())
    }

    /// Extracts the subtree rooted at `r` as a standalone tree.
    ///
    /// Returns the new tree and the mapping `new id -> old id` (dense, the
    /// new root is entry 0). The mapping order is the DFS order of
    /// [`TaskTree::subtree_nodes_into`]; borrowed [`SubtreeView`]s over that
    /// order avoid this copy entirely on the scheduling hot path.
    ///
    /// [`SubtreeView`]: crate::SubtreeView
    pub fn subtree(&self, r: NodeId) -> (TaskTree, Vec<NodeId>) {
        let mut map: Vec<NodeId> = Vec::new();
        let mut stack = Vec::new();
        self.subtree_nodes_into(r, &mut stack, &mut map);
        let mut old_to_new = std::collections::HashMap::with_capacity(map.len());
        for (new, &old) in map.iter().enumerate() {
            old_to_new.insert(old, NodeId::from_index(new));
        }
        let nodes: Vec<Node> = map
            .iter()
            .map(|&old| Node {
                parent: if old == r {
                    None
                } else {
                    self.parent(old).map(|p| old_to_new[&p])
                },
                children: self.children(old).iter().map(|c| old_to_new[c]).collect(),
                work: self.work(old),
                output: self.output(old),
                exec: self.exec(old),
            })
            .collect();
        (TaskTree::from_nodes(nodes, NodeId(0)), map)
    }

    /// Collects the member nodes of the subtree rooted at `r` into `out`,
    /// in the exact DFS order [`TaskTree::subtree`] uses for its id map
    /// (entry 0 is `r`; a node's position is its id in the extracted
    /// clone). `stack` is caller-provided scratch; both buffers are
    /// cleared first, so warm callers pay no allocation.
    pub fn subtree_nodes_into(&self, r: NodeId, stack: &mut Vec<NodeId>, out: &mut Vec<NodeId>) {
        out.clear();
        stack.clear();
        stack.push(r);
        while let Some(v) = stack.pop() {
            out.push(v);
            stack.extend_from_slice(self.children(v));
        }
    }
}

/// A borrowed view of the subtree rooted at `nodes[0]`: the parent tree's
/// arrays plus the member list in [`TaskTree::subtree`]'s DFS order. All
/// accessors speak **original** node ids, so consumers emit results
/// directly against the parent tree without an id remap — and without the
/// `O(subtree)` clone the owning [`TaskTree::subtree`] pays.
#[derive(Clone, Copy, Debug)]
pub struct SubtreeView<'a> {
    tree: &'a TaskTree,
    nodes: &'a [NodeId],
}

impl<'a> SubtreeView<'a> {
    /// Wraps a member list produced by [`TaskTree::subtree_nodes_into`].
    pub fn new(tree: &'a TaskTree, nodes: &'a [NodeId]) -> SubtreeView<'a> {
        debug_assert!(!nodes.is_empty(), "a subtree view has at least its root");
        SubtreeView { tree, nodes }
    }

    /// The parent tree the view borrows from.
    #[inline]
    pub fn tree(&self) -> &'a TaskTree {
        self.tree
    }

    /// Member nodes in DFS order; a node's position is the id it would
    /// have in the extracted clone (the view's *local* id).
    #[inline]
    pub fn nodes(&self) -> &'a [NodeId] {
        self.nodes
    }

    /// Root of the subtree (original id).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.nodes[0]
    }

    /// Number of member nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the view holds no nodes (never for views built over a
    /// valid root).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Children of `i` (original ids; `i` must be a member).
    #[inline]
    pub fn children(&self, i: NodeId) -> &'a [NodeId] {
        self.tree.children(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> TaskTree {
        // 0 <- 1 <- 2 (root is 0)
        TaskTree::from_parents(
            &[None, Some(0), Some(1)],
            &[1.0, 2.0, 3.0],
            &[10.0, 20.0, 30.0],
            &[0.5, 0.25, 0.125],
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let t = chain3();
        assert_eq!(t.len(), 3);
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.parent(NodeId(1)), Some(NodeId(0)));
        assert_eq!(t.parent(NodeId(0)), None);
        assert_eq!(t.children(NodeId(0)), &[NodeId(1)]);
        assert!(t.is_leaf(NodeId(2)));
        assert!(!t.is_leaf(NodeId(0)));
        assert_eq!(t.work(NodeId(2)), 3.0);
        assert_eq!(t.output(NodeId(1)), 20.0);
        assert_eq!(t.exec(NodeId(0)), 0.5);
    }

    #[test]
    fn local_need_counts_inputs_program_output() {
        let t = chain3();
        // node 1: input f_2 = 30, exec 0.25, output 20
        assert_eq!(t.local_need(NodeId(1)), 30.0 + 0.25 + 20.0);
        // leaf 2: no inputs
        assert_eq!(t.local_need(NodeId(2)), 0.125 + 30.0);
        assert_eq!(t.input_size(NodeId(0)), 20.0);
        assert_eq!(t.input_size(NodeId(2)), 0.0);
    }

    #[test]
    fn aggregates() {
        let t = chain3();
        assert_eq!(t.total_work(), 6.0);
        assert_eq!(t.max_work(), 3.0);
        assert_eq!(t.max_output(), 30.0);
        assert_eq!(t.leaves(), vec![NodeId(2)]);
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    fn from_parents_rejects_multiple_roots() {
        let e = TaskTree::pebble_from_parents(&[None, None]).unwrap_err();
        assert!(matches!(e, crate::TreeError::MultipleRoots));
    }

    #[test]
    fn from_parents_rejects_cycle() {
        // 1 -> 2 -> 1 cycle beside the root
        let e = TaskTree::pebble_from_parents(&[None, Some(2), Some(1)]).unwrap_err();
        assert!(matches!(
            e,
            crate::TreeError::Cycle | crate::TreeError::Disconnected { .. }
        ));
    }

    #[test]
    fn from_parents_rejects_self_loop() {
        let e = TaskTree::pebble_from_parents(&[None, Some(1)]).unwrap_err();
        assert!(matches!(e, crate::TreeError::SelfLoop { node: 1 }));
    }

    #[test]
    fn from_parents_rejects_empty() {
        let e = TaskTree::pebble_from_parents(&[]).unwrap_err();
        assert!(matches!(e, crate::TreeError::Empty));
    }

    #[test]
    fn from_parents_rejects_out_of_range_parent() {
        let e = TaskTree::pebble_from_parents(&[None, Some(7)]).unwrap_err();
        assert!(matches!(
            e,
            crate::TreeError::BadParent { node: 1, parent: 7 }
        ));
    }

    #[test]
    fn from_parents_keeps_child_insertion_order() {
        // children of the root in ascending id order, multiple parents
        let t = TaskTree::pebble_from_parents(&[None, Some(0), Some(0), Some(1), Some(1), Some(0)])
            .unwrap();
        assert_eq!(t.children(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(5)]);
        assert_eq!(t.children(NodeId(1)), &[NodeId(3), NodeId(4)]);
        assert!(t.children(NodeId(4)).is_empty());
    }

    #[test]
    fn subtree_extraction_preserves_weights() {
        let t = chain3();
        let (sub, map) = t.subtree(NodeId(1));
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.root(), NodeId(0));
        assert_eq!(map[0], NodeId(1));
        assert_eq!(sub.work(NodeId(0)), 2.0);
        assert_eq!(sub.output(NodeId(1)), 30.0);
        assert_eq!(sub.parent(NodeId(1)), Some(NodeId(0)));
    }

    #[test]
    fn subtree_nodes_into_matches_the_clone_map() {
        let t = TaskTree::pebble_from_parents(&[None, Some(0), Some(0), Some(1), Some(1), Some(2)])
            .unwrap();
        let mut stack = Vec::new();
        let mut nodes = Vec::new();
        for r in t.ids() {
            let (_, map) = t.subtree(r);
            t.subtree_nodes_into(r, &mut stack, &mut nodes);
            assert_eq!(nodes, map, "root {r:?}");
        }
    }

    #[test]
    fn subtree_view_accessors() {
        let t = TaskTree::pebble_from_parents(&[None, Some(0), Some(0), Some(1), Some(1)]).unwrap();
        let mut stack = Vec::new();
        let mut nodes = Vec::new();
        t.subtree_nodes_into(NodeId(1), &mut stack, &mut nodes);
        let view = SubtreeView::new(&t, &nodes);
        assert_eq!(view.root(), NodeId(1));
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
        assert_eq!(view.children(NodeId(1)), &[NodeId(3), NodeId(4)]);
        assert!(std::ptr::eq(view.tree(), &t));
        assert_eq!(view.nodes()[0], NodeId(1));
    }

    #[test]
    fn pebble_weights() {
        let t = TaskTree::pebble_from_parents(&[None, Some(0), Some(0)]).unwrap();
        for i in t.ids() {
            assert_eq!(t.work(i), 1.0);
            assert_eq!(t.output(i), 1.0);
            assert_eq!(t.exec(i), 0.0);
        }
        assert_eq!(t.local_need(t.root()), 3.0);
    }
}
