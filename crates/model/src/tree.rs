//! Arena-backed rooted in-tree of weighted tasks.

use std::fmt;

/// Identifier of a node inside a [`TaskTree`].
///
/// Node ids are dense indices in `0..tree.len()`; they are stable for the
/// lifetime of the tree (nodes are never removed) and cheap to copy.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index of this node in the tree arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense arena index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize);
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One task of the tree: weights plus the adjacency links.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Node {
    pub parent: Option<NodeId>,
    pub children: Vec<NodeId>,
    /// Processing time `w_i`.
    pub work: f64,
    /// Output-file size `f_i` (input file of the parent).
    pub output: f64,
    /// Execution-file (program) size `n_i`.
    pub exec: f64,
}

/// A rooted in-tree of weighted tasks (paper §3.1).
///
/// The tree owns an arena of nodes; the root is the unique node without a
/// parent. Children keep their insertion order, which matters for
/// order-sensitive traversals such as the *naive* postorder.
///
/// # Example
///
/// ```
/// use treesched_model::{TaskTree, TreeBuilder};
///
/// // root with two leaf children, pebble-game weights
/// let mut b = TreeBuilder::new();
/// let root = b.node(1.0, 1.0, 0.0);          // w, f, n
/// let _a = b.child(root, 1.0, 1.0, 0.0);
/// let _c = b.child(root, 1.0, 1.0, 0.0);
/// let tree: TaskTree = b.build().unwrap();
/// assert_eq!(tree.len(), 3);
/// assert_eq!(tree.children(tree.root()).len(), 2);
/// // running the root needs both inputs + its own output file
/// assert_eq!(tree.local_need(tree.root()), 3.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct TaskTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
}

impl TaskTree {
    /// Number of tasks in the tree.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the tree holds no tasks (never the case for built trees).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root task (the only task without a parent).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `i`, or `None` for the root.
    #[inline]
    pub fn parent(&self, i: NodeId) -> Option<NodeId> {
        self.nodes[i.index()].parent
    }

    /// Children of `i` in insertion order.
    #[inline]
    pub fn children(&self, i: NodeId) -> &[NodeId] {
        &self.nodes[i.index()].children
    }

    /// `true` when `i` has no children.
    #[inline]
    pub fn is_leaf(&self, i: NodeId) -> bool {
        self.nodes[i.index()].children.is_empty()
    }

    /// Processing time `w_i`.
    #[inline]
    pub fn work(&self, i: NodeId) -> f64 {
        self.nodes[i.index()].work
    }

    /// Output-file size `f_i`.
    #[inline]
    pub fn output(&self, i: NodeId) -> f64 {
        self.nodes[i.index()].output
    }

    /// Execution-file (program) size `n_i`.
    #[inline]
    pub fn exec(&self, i: NodeId) -> f64 {
        self.nodes[i.index()].exec
    }

    /// Overwrites the processing time of `i`.
    pub fn set_work(&mut self, i: NodeId, w: f64) {
        self.nodes[i.index()].work = w;
    }

    /// Overwrites the output-file size of `i`.
    pub fn set_output(&mut self, i: NodeId, f: f64) {
        self.nodes[i.index()].output = f;
    }

    /// Overwrites the execution-file size of `i`.
    pub fn set_exec(&mut self, i: NodeId, n: f64) {
        self.nodes[i.index()].exec = n;
    }

    /// Memory needed *while* task `i` runs:
    /// `Σ_{j ∈ children(i)} f_j + n_i + f_i` (paper §3.1).
    pub fn local_need(&self, i: NodeId) -> f64 {
        let inputs: f64 = self.children(i).iter().map(|&c| self.output(c)).sum();
        inputs + self.exec(i) + self.output(i)
    }

    /// Sum of the input-file sizes of `i` (zero for leaves).
    pub fn input_size(&self, i: NodeId) -> f64 {
        self.children(i).iter().map(|&c| self.output(c)).sum()
    }

    /// Iterator over all node ids in arena order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All leaves, in arena order.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.ids().filter(|&i| self.is_leaf(i)).collect()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.ids().filter(|&i| self.is_leaf(i)).count()
    }

    /// Sum of `w_i` over all tasks.
    pub fn total_work(&self) -> f64 {
        self.nodes.iter().map(|n| n.work).sum()
    }

    /// Largest single task weight, `max_i w_i`.
    pub fn max_work(&self) -> f64 {
        self.nodes.iter().map(|n| n.work).fold(0.0, f64::max)
    }

    /// Largest output-file size, `max_i f_i`.
    pub fn max_output(&self) -> f64 {
        self.nodes.iter().map(|n| n.output).fold(0.0, f64::max)
    }

    /// Builds a tree from a parent vector with uniform *pebble-game* weights
    /// (`w = f = 1`, `n = 0`). `parents[i]` is the parent index of node `i`;
    /// exactly one entry must be `None` (the root).
    pub fn pebble_from_parents(parents: &[Option<usize>]) -> Result<Self, crate::TreeError> {
        let n = parents.len();
        Self::from_parents(parents, &vec![1.0; n], &vec![1.0; n], &vec![0.0; n])
    }

    /// Builds a tree from parallel arrays: parent links plus per-node
    /// `w` (work), `f` (output) and `n` (execution file) weights.
    ///
    /// Fails when the arrays disagree in length, when there is not exactly
    /// one root, when a parent index is out of range, or when the parent
    /// links contain a cycle.
    pub fn from_parents(
        parents: &[Option<usize>],
        work: &[f64],
        output: &[f64],
        exec: &[f64],
    ) -> Result<Self, crate::TreeError> {
        use crate::TreeError;
        let n = parents.len();
        if work.len() != n || output.len() != n || exec.len() != n {
            return Err(TreeError::LengthMismatch {
                parents: n,
                weights: work.len().min(output.len()).min(exec.len()),
            });
        }
        if n == 0 {
            return Err(TreeError::Empty);
        }
        let mut nodes: Vec<Node> = (0..n)
            .map(|i| Node {
                parent: None,
                children: Vec::new(),
                work: work[i],
                output: output[i],
                exec: exec[i],
            })
            .collect();
        let mut root = None;
        for (i, &p) in parents.iter().enumerate() {
            match p {
                None => {
                    if root.replace(NodeId::from_index(i)).is_some() {
                        return Err(TreeError::MultipleRoots);
                    }
                }
                Some(p) => {
                    if p >= n {
                        return Err(TreeError::BadParent { node: i, parent: p });
                    }
                    if p == i {
                        return Err(TreeError::SelfLoop { node: i });
                    }
                    nodes[i].parent = Some(NodeId::from_index(p));
                    let child = NodeId::from_index(i);
                    nodes[p].children.push(child);
                }
            }
        }
        let root = root.ok_or(TreeError::NoRoot)?;
        let tree = TaskTree { nodes, root };
        tree.check_connected()?;
        Ok(tree)
    }

    /// Verifies that every node is reachable from the root (detects cycles
    /// among non-root components).
    pub(crate) fn check_connected(&self) -> Result<(), crate::TreeError> {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![self.root];
        let mut count = 0usize;
        while let Some(v) = stack.pop() {
            if seen[v.index()] {
                return Err(crate::TreeError::Cycle);
            }
            seen[v.index()] = true;
            count += 1;
            stack.extend_from_slice(self.children(v));
        }
        if count != self.len() {
            return Err(crate::TreeError::Disconnected {
                reachable: count,
                total: self.len(),
            });
        }
        Ok(())
    }

    /// Extracts the subtree rooted at `r` as a standalone tree.
    ///
    /// Returns the new tree and the mapping `new id -> old id` (dense, the
    /// new root is entry 0).
    pub fn subtree(&self, r: NodeId) -> (TaskTree, Vec<NodeId>) {
        let mut map: Vec<NodeId> = Vec::new();
        let mut stack = vec![r];
        while let Some(v) = stack.pop() {
            map.push(v);
            stack.extend_from_slice(self.children(v));
        }
        let mut old_to_new = std::collections::HashMap::with_capacity(map.len());
        for (new, &old) in map.iter().enumerate() {
            old_to_new.insert(old, NodeId::from_index(new));
        }
        let nodes: Vec<Node> = map
            .iter()
            .map(|&old| {
                let n = &self.nodes[old.index()];
                Node {
                    parent: if old == r {
                        None
                    } else {
                        n.parent.map(|p| old_to_new[&p])
                    },
                    children: n.children.iter().map(|c| old_to_new[c]).collect(),
                    work: n.work,
                    output: n.output,
                    exec: n.exec,
                }
            })
            .collect();
        (
            TaskTree {
                nodes,
                root: NodeId(0),
            },
            map,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> TaskTree {
        // 0 <- 1 <- 2 (root is 0)
        TaskTree::from_parents(
            &[None, Some(0), Some(1)],
            &[1.0, 2.0, 3.0],
            &[10.0, 20.0, 30.0],
            &[0.5, 0.25, 0.125],
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let t = chain3();
        assert_eq!(t.len(), 3);
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.parent(NodeId(1)), Some(NodeId(0)));
        assert_eq!(t.parent(NodeId(0)), None);
        assert_eq!(t.children(NodeId(0)), &[NodeId(1)]);
        assert!(t.is_leaf(NodeId(2)));
        assert!(!t.is_leaf(NodeId(0)));
        assert_eq!(t.work(NodeId(2)), 3.0);
        assert_eq!(t.output(NodeId(1)), 20.0);
        assert_eq!(t.exec(NodeId(0)), 0.5);
    }

    #[test]
    fn local_need_counts_inputs_program_output() {
        let t = chain3();
        // node 1: input f_2 = 30, exec 0.25, output 20
        assert_eq!(t.local_need(NodeId(1)), 30.0 + 0.25 + 20.0);
        // leaf 2: no inputs
        assert_eq!(t.local_need(NodeId(2)), 0.125 + 30.0);
        assert_eq!(t.input_size(NodeId(0)), 20.0);
        assert_eq!(t.input_size(NodeId(2)), 0.0);
    }

    #[test]
    fn aggregates() {
        let t = chain3();
        assert_eq!(t.total_work(), 6.0);
        assert_eq!(t.max_work(), 3.0);
        assert_eq!(t.max_output(), 30.0);
        assert_eq!(t.leaves(), vec![NodeId(2)]);
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    fn from_parents_rejects_multiple_roots() {
        let e = TaskTree::pebble_from_parents(&[None, None]).unwrap_err();
        assert!(matches!(e, crate::TreeError::MultipleRoots));
    }

    #[test]
    fn from_parents_rejects_cycle() {
        // 1 -> 2 -> 1 cycle beside the root
        let e = TaskTree::pebble_from_parents(&[None, Some(2), Some(1)]).unwrap_err();
        assert!(matches!(
            e,
            crate::TreeError::Cycle | crate::TreeError::Disconnected { .. }
        ));
    }

    #[test]
    fn from_parents_rejects_self_loop() {
        let e = TaskTree::pebble_from_parents(&[None, Some(1)]).unwrap_err();
        assert!(matches!(e, crate::TreeError::SelfLoop { node: 1 }));
    }

    #[test]
    fn from_parents_rejects_empty() {
        let e = TaskTree::pebble_from_parents(&[]).unwrap_err();
        assert!(matches!(e, crate::TreeError::Empty));
    }

    #[test]
    fn from_parents_rejects_out_of_range_parent() {
        let e = TaskTree::pebble_from_parents(&[None, Some(7)]).unwrap_err();
        assert!(matches!(
            e,
            crate::TreeError::BadParent { node: 1, parent: 7 }
        ));
    }

    #[test]
    fn subtree_extraction_preserves_weights() {
        let t = chain3();
        let (sub, map) = t.subtree(NodeId(1));
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.root(), NodeId(0));
        assert_eq!(map[0], NodeId(1));
        assert_eq!(sub.work(NodeId(0)), 2.0);
        assert_eq!(sub.output(NodeId(1)), 30.0);
        assert_eq!(sub.parent(NodeId(1)), Some(NodeId(0)));
    }

    #[test]
    fn pebble_weights() {
        let t = TaskTree::pebble_from_parents(&[None, Some(0), Some(0)]).unwrap();
        for i in t.ids() {
            assert_eq!(t.work(i), 1.0);
            assert_eq!(t.output(i), 1.0);
            assert_eq!(t.exec(i), 0.0);
        }
        assert_eq!(t.local_need(t.root()), 3.0);
    }
}
