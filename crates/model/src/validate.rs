//! Structural validation of task trees.

use crate::{NodeId, TaskTree};
use std::fmt;

/// Errors raised while building or validating a [`TaskTree`].
#[derive(Clone, Debug, PartialEq)]
pub enum TreeError {
    /// The parent vector was empty.
    Empty,
    /// No node had a `None` parent.
    NoRoot,
    /// More than one node had a `None` parent.
    MultipleRoots,
    /// A parent index pointed outside the arena.
    BadParent { node: usize, parent: usize },
    /// A node was declared to be its own parent.
    SelfLoop { node: usize },
    /// The parent links contain a cycle.
    Cycle,
    /// Not every node is reachable from the root.
    Disconnected { reachable: usize, total: usize },
    /// Parallel weight arrays disagree in length with the parent vector.
    LengthMismatch { parents: usize, weights: usize },
    /// A weight was negative or not finite.
    BadWeight {
        node: usize,
        what: &'static str,
        value: f64,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Empty => write!(f, "tree has no nodes"),
            TreeError::NoRoot => write!(f, "no root node (every node has a parent)"),
            TreeError::MultipleRoots => write!(f, "more than one root node"),
            TreeError::BadParent { node, parent } => {
                write!(f, "node {node} has out-of-range parent {parent}")
            }
            TreeError::SelfLoop { node } => write!(f, "node {node} is its own parent"),
            TreeError::Cycle => write!(f, "parent links contain a cycle"),
            TreeError::Disconnected { reachable, total } => write!(
                f,
                "only {reachable} of {total} nodes reachable from the root"
            ),
            TreeError::LengthMismatch { parents, weights } => write!(
                f,
                "parent vector has {parents} entries but weights have {weights}"
            ),
            TreeError::BadWeight { node, what, value } => {
                write!(f, "node {node} has invalid {what} weight {value}")
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// Deep-validation helpers on [`TaskTree`].
pub trait ValidateExt {
    /// Checks structural consistency (parent/child links agree, exactly one
    /// root, full reachability) and that every weight is finite and
    /// non-negative. Built trees should always pass; this is intended for
    /// trees deserialized from external input.
    fn validate(&self) -> Result<(), TreeError>;
}

impl ValidateExt for TaskTree {
    fn validate(&self) -> Result<(), TreeError> {
        if self.is_empty() {
            return Err(TreeError::Empty);
        }
        // exactly one root
        let mut roots = 0usize;
        for i in self.ids() {
            if self.parent(i).is_none() {
                roots += 1;
            }
        }
        if roots == 0 {
            return Err(TreeError::NoRoot);
        }
        if roots > 1 {
            return Err(TreeError::MultipleRoots);
        }
        if self.parent(self.root()).is_some() {
            return Err(TreeError::NoRoot);
        }
        // parent/child symmetry
        for i in self.ids() {
            for &c in self.children(i) {
                if self.parent(c) != Some(i) {
                    return Err(TreeError::BadParent {
                        node: c.index(),
                        parent: i.index(),
                    });
                }
            }
            if let Some(p) = self.parent(i) {
                if !self.children(p).contains(&i) {
                    return Err(TreeError::BadParent {
                        node: i.index(),
                        parent: p.index(),
                    });
                }
            }
        }
        self.check_connected()?;
        // weights
        for i in self.ids() {
            for (what, v) in [
                ("work", self.work(i)),
                ("output", self.output(i)),
                ("exec", self.exec(i)),
            ] {
                if !v.is_finite() || v < 0.0 {
                    return Err(TreeError::BadWeight {
                        node: i.index(),
                        what,
                        value: v,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Convenience: ids of the maximal (i.e. ready) nodes of a downward-closed
/// set `done`. A node is *ready* when all its children are done and it is not
/// itself done. Exposed here because both sequential and parallel schedulers
/// need it.
pub fn ready_nodes(tree: &TaskTree, done: &[bool]) -> Vec<NodeId> {
    tree.ids()
        .filter(|&i| !done[i.index()] && tree.children(i).iter().all(|c| done[c.index()]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskTree;

    #[test]
    fn valid_tree_passes() {
        let t = TaskTree::pebble_from_parents(&[None, Some(0), Some(0), Some(1)]).unwrap();
        assert!(t.validate().is_ok());
    }

    #[test]
    fn negative_weight_fails() {
        let mut t = TaskTree::pebble_from_parents(&[None, Some(0)]).unwrap();
        t.set_work(crate::NodeId(1), -1.0);
        assert!(matches!(
            t.validate().unwrap_err(),
            TreeError::BadWeight {
                node: 1,
                what: "work",
                ..
            }
        ));
    }

    #[test]
    fn nan_weight_fails() {
        let mut t = TaskTree::pebble_from_parents(&[None, Some(0)]).unwrap();
        t.set_output(crate::NodeId(0), f64::NAN);
        assert!(matches!(
            t.validate().unwrap_err(),
            TreeError::BadWeight { what: "output", .. }
        ));
    }

    #[test]
    fn ready_nodes_progress() {
        // 0 <- {1, 2}, 1 <- 3
        let t = TaskTree::pebble_from_parents(&[None, Some(0), Some(0), Some(1)]).unwrap();
        let mut done = vec![false; 4];
        let r = ready_nodes(&t, &done);
        assert_eq!(r, vec![crate::NodeId(2), crate::NodeId(3)]);
        done[3] = true;
        let r = ready_nodes(&t, &done);
        assert_eq!(r, vec![crate::NodeId(1), crate::NodeId(2)]);
        done[1] = true;
        done[2] = true;
        assert_eq!(ready_nodes(&t, &done), vec![crate::NodeId(0)]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = TreeError::Disconnected {
            reachable: 2,
            total: 5,
        };
        assert!(e.to_string().contains("2 of 5"));
        let e = TreeError::BadWeight {
            node: 3,
            what: "exec",
            value: -2.0,
        };
        assert!(e.to_string().contains("exec"));
    }
}
