//! Property tests of the model crate: builder/parent-vector consistency,
//! traversal invariants, and parser robustness (fuzzing).

use proptest::prelude::*;
use treesched_model::{io, NodeId, TaskTree, ValidateExt};

fn arb_tree(max_nodes: usize) -> impl Strategy<Value = TaskTree> {
    (1..=max_nodes)
        .prop_flat_map(|n| {
            let parents: Vec<BoxedStrategy<usize>> = (1..n).map(|i| (0..i).boxed()).collect();
            let weights = proptest::collection::vec((0u32..100, 0u32..100, 0u32..100), n);
            (parents, weights)
        })
        .prop_map(|(parents, weights)| {
            let n = parents.len() + 1;
            let pvec: Vec<Option<usize>> = std::iter::once(None)
                .chain(parents.into_iter().map(Some))
                .collect();
            let w: Vec<f64> = (0..n).map(|i| weights[i].0 as f64).collect();
            let f: Vec<f64> = (0..n).map(|i| weights[i].1 as f64).collect();
            let x: Vec<f64> = (0..n).map(|i| weights[i].2 as f64).collect();
            TaskTree::from_parents(&pvec, &w, &f, &x).expect("valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_trees_validate(t in arb_tree(60)) {
        prop_assert!(t.validate().is_ok());
    }

    #[test]
    fn traversals_are_permutations_and_ordered(t in arb_tree(60)) {
        let po = t.postorder();
        let pre = t.preorder();
        let bfs = t.bfs();
        prop_assert!(t.is_topological(&po));
        prop_assert_eq!(po.len(), t.len());
        prop_assert_eq!(pre.len(), t.len());
        prop_assert_eq!(bfs.len(), t.len());
        // preorder is the reverse topological: parents before children
        let pos = io::positions(t.len(), &pre);
        for i in t.ids() {
            if let Some(p) = t.parent(i) {
                prop_assert!(pos[p.index()] < pos[i.index()]);
            }
        }
        // bfs visits by non-decreasing depth
        let depths = t.depths();
        for w in bfs.windows(2) {
            prop_assert!(depths[w[0].index()] <= depths[w[1].index()]);
        }
    }

    #[test]
    fn metrics_consistent(t in arb_tree(60)) {
        let w = t.subtree_work();
        prop_assert!((w[t.root().index()] - t.total_work()).abs() < 1e-9);
        let sizes = t.subtree_sizes();
        prop_assert_eq!(sizes[t.root().index()], t.len());
        let wd = t.weighted_depths();
        prop_assert!(t.critical_path() >= wd[t.root().index()] - 1e-9);
        prop_assert!(t.critical_path() <= t.total_work() + 1e-9);
    }

    #[test]
    fn text_roundtrip(t in arb_tree(60)) {
        let text = io::to_text(&t);
        let back = io::from_text(&text).expect("roundtrip");
        prop_assert_eq!(t, back);
    }

    #[test]
    fn parser_never_panics_on_garbage(s in "\\PC*") {
        // any input is either parsed or rejected with an error — no panic
        let _ = io::from_text(&s);
    }

    #[test]
    fn parser_never_panics_on_structured_garbage(
        rows in proptest::collection::vec((0i64..20, -2i64..20, -5i64..5, 0u32..9, 0u32..9), 0..20)
    ) {
        let mut s = String::new();
        for (id, p, w, f, n) in rows {
            s.push_str(&format!("{id} {p} {w} {f} {n}\n"));
        }
        let _ = io::from_text(&s);
    }

    #[test]
    fn subtree_extraction_consistent(t in arb_tree(40)) {
        for r in t.ids() {
            let (sub, map) = t.subtree(r);
            prop_assert!(sub.validate().is_ok());
            prop_assert_eq!(sub.len(), map.len());
            prop_assert_eq!(map[0], r);
            // weights carried over
            for i in sub.ids() {
                let orig = map[i.index()];
                prop_assert_eq!(sub.work(i), t.work(orig));
                prop_assert_eq!(sub.output(i), t.output(orig));
                prop_assert_eq!(sub.exec(i), t.exec(orig));
            }
            // total work of the subtree matches the metric on the original
            let w = t.subtree_work();
            prop_assert!((sub.total_work() - w[r.index()]).abs() < 1e-9);
        }
    }

    #[test]
    fn positions_inverse(t in arb_tree(60)) {
        let po = t.postorder();
        let pos = io::positions(t.len(), &po);
        for (k, &v) in po.iter().enumerate() {
            prop_assert_eq!(pos[v.index()], k);
        }
    }
}

#[test]
fn single_node_edge_cases() {
    let t = TaskTree::from_parents(&[None], &[1.0], &[2.0], &[3.0]).unwrap();
    assert_eq!(t.postorder(), vec![NodeId(0)]);
    assert_eq!(t.subtree_sizes(), vec![1]);
    assert_eq!(t.critical_path(), 1.0);
    let (sub, map) = t.subtree(NodeId(0));
    assert_eq!(sub.len(), 1);
    assert_eq!(map, vec![NodeId(0)]);
}
