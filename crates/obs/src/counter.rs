//! Lock-free counters and gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// All operations are single atomic instructions; handles are shared
/// across threads as `Arc<Counter>` and never lock. `store` exists so a
/// registry can mirror an externally accumulated total (e.g. the serving
/// engine's [`ServeStats`](treesched_serve::ServeStats)) into a snapshot
/// without re-plumbing the source.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the total (mirror use only — see the type docs).
    pub fn store(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed level that can move both ways (e.g. in-flight
/// requests).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrites the level.
    pub fn set(&self, n: i64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates_across_threads() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.add(-3);
        assert_eq!(g.get(), -2);
        g.set(7);
        assert_eq!(g.get(), 7);
    }
}
