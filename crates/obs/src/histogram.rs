//! Fixed-bucket log2 latency histograms with exact merge.
//!
//! A [`Histogram`] has 65 power-of-two buckets: bucket 0 holds the value
//! `0`, bucket `i` (1 ≤ i ≤ 64) holds values `v` with
//! `2^(i-1) <= v < 2^i`. Recording is a single relaxed atomic increment,
//! so per-worker locals cost nothing on the hot path; merging two
//! snapshots is bucket-wise addition, which is *exact*: merging
//! per-worker histograms yields bit-for-bit the histogram a single
//! thread would have accumulated over the same samples, in any order and
//! under any partition. Quantiles are derived from the merged buckets
//! and report the inclusive upper bound of the bucket holding the rank,
//! i.e. they over-estimate by at most 2x — the usual log2-histogram
//! contract.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per power of two of `u64`.
pub const BUCKETS: usize = 65;

/// Returns the bucket index holding `value`.
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub fn bucket_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free log2 histogram of `u64` samples (typically microseconds).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [(); BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample. Lock-free; safe from any number of threads.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`Histogram`]'s state: mergeable, queryable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see the module docs for the layout).
    pub buckets: [u64; BUCKETS],
    /// Total samples; always equals the sum over `buckets` — every
    /// sample lands in exactly one bucket.
    pub count: u64,
    /// Exact sum of all samples (wrapping only past `u64::MAX`).
    pub sum: u64,
    /// Exact maximum sample (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn new() -> HistogramSnapshot {
        HistogramSnapshot::default()
    }

    /// Folds `other` into `self` (bucket-wise addition — exact).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` (in percent, `0 < q <= 100`): the
    /// inclusive upper bound of the bucket containing the sample of rank
    /// `ceil(q/100 * count)`. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(q > 0.0 && q <= 100.0, "quantile out of range: {q}");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // never over-report: the true maximum caps the bound
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Shorthand for the median ([`quantile`](Self::quantile) at 50).
    pub fn p50(&self) -> u64 {
        self.quantile(50.0)
    }

    /// The 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(95.0)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(99.0)
    }

    /// `buckets` with trailing zero buckets dropped (compact rendering).
    pub fn trimmed(&self) -> &[u64] {
        let last = self.buckets.iter().rposition(|&n| n != 0);
        match last {
            Some(i) => &self.buckets[..=i],
            None => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_covers_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..=64usize {
            let lo = 1u64 << (i - 1);
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(bucket_bound(i)), i);
        }
    }

    #[test]
    fn every_sample_lands_in_exactly_one_bucket() {
        let h = Histogram::new();
        for v in [0, 1, 1, 3, 900, 901, 1 << 20, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let s = HistogramSnapshot::new();
        assert_eq!(s.quantile(50.0), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.trimmed(), &[] as &[u64]);
    }

    #[test]
    fn quantile_of_one_sample_is_that_sample_capped() {
        let h = Histogram::new();
        h.record(5); // bucket 3, bound 7, capped by max = 5
        let s = h.snapshot();
        assert_eq!(s.p50(), 5);
        assert_eq!(s.p95(), 5);
        assert_eq!(s.p99(), 5);
        assert_eq!(s.quantile(100.0), 5);
    }

    #[test]
    fn quantile_all_one_bucket() {
        let h = Histogram::new();
        for v in 8..16 {
            h.record(v); // all bucket 4, bound 15
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 15);
        assert_eq!(s.p99(), 15);
        assert_eq!(s.max, 15);
        assert_eq!(s.trimmed(), &[0, 0, 0, 0, 8]);
    }

    #[test]
    fn quantiles_split_two_buckets() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(1); // bucket 1, bound 1
        }
        h.record(1 << 30);
        let s = h.snapshot();
        assert_eq!(s.p50(), 1);
        assert_eq!(s.p95(), 1);
        assert_eq!(s.quantile(100.0), 1 << 30);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for (i, v) in [3u64, 0, 17, 17, 1000, 65_536].iter().enumerate() {
            if i % 2 == 0 { &a } else { &b }.record(*v);
            all.record(*v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }
}
