//! Observability for the treesched serving stack.
//!
//! One small, dependency-light layer that every runtime component
//! reports through:
//!
//! * [`Counter`] / [`Gauge`] — lock-free atomic event totals and levels.
//! * [`Histogram`] — fixed-bucket log2 latency histograms whose
//!   snapshots merge *exactly* (bucket-wise addition), so per-worker
//!   locals fold into one process-level view with p50/p95/p99 derived
//!   from the merged buckets.
//! * [`Span`] — lightweight stage timers for the serve pipeline
//!   (parse → shard → schedule → drain).
//! * [`MetricsRegistry`] — a named table of all of the above whose
//!   [`MetricsSnapshot`] renders as one JSONL record through the shared
//!   [`JsonRecord`](treesched_serve::JsonRecord) builder, or as
//!   Prometheus-style text exposition.
//!
//! Metrics live **outside byte-identity**: instrumented serve paths
//! produce response streams byte-identical to uninstrumented ones
//! (pinned by property tests in the CLI crate), mirroring how `time_us`
//! stays out of campaign goldens.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod histogram;
pub mod registry;
pub mod span;

pub use counter::{Counter, Gauge};
pub use histogram::{bucket_bound, bucket_of, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{MetricsRegistry, MetricsSnapshot, SnapshotValue};
pub use span::{Span, SpanGuard, SpanSnapshot};
