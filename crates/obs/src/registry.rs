//! Named metric registration and point-in-time snapshots.

use crate::counter::{Counter, Gauge};
use crate::histogram::{bucket_bound, Histogram, HistogramSnapshot};
use crate::span::{Span, SpanSnapshot};
use std::sync::{Arc, Mutex};
use treesched_serve::JsonRecord;

/// One registered metric handle.
#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    Span(Arc<Span>),
}

/// A process-level table of named metrics.
///
/// Registration (`counter`/`gauge`/`histogram`/`span`) takes a short
/// lock and returns a shared handle; the handles themselves are
/// lock-free, so the hot path never contends. Registering the same name
/// twice returns the existing handle, which lets independent components
/// share one metric. Snapshot field order is registration order.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<(String, Metric)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn register<T>(
        &self,
        name: &str,
        make: impl FnOnce() -> Metric,
        pick: impl FnOnce(&Metric) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let mut entries = self.entries.lock().unwrap();
        if let Some((_, m)) = entries.iter().find(|(n, _)| n == name) {
            return pick(m)
                .unwrap_or_else(|| panic!("metric `{name}` already registered with another kind"));
        }
        let metric = make();
        let handle = pick(&metric).expect("freshly made metric has the requested kind");
        entries.push((name.to_string(), metric));
        handle
    }

    /// Registers (or retrieves) the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.register(
            name,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.register(
            name,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.register(
            name,
            || Metric::Histogram(Arc::new(Histogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) the stage span `name`.
    pub fn span(&self, name: &str) -> Arc<Span> {
        self.register(
            name,
            || Metric::Span(Arc::new(Span::new())),
            |m| match m {
                Metric::Span(s) => Some(Arc::clone(s)),
                _ => None,
            },
        )
    }

    /// A point-in-time copy of every registered metric, in registration
    /// order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().unwrap();
        MetricsSnapshot {
            entries: entries
                .iter()
                .map(|(name, m)| {
                    let value = match m {
                        Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                        Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                        Metric::Histogram(h) => SnapshotValue::Histogram(Box::new(h.snapshot())),
                        Metric::Span(s) => SnapshotValue::Span(s.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// One metric's value inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotValue {
    /// A counter total.
    Counter(u64),
    /// A gauge level.
    Gauge(i64),
    /// A histogram copy (boxed: 65 buckets dwarf the other variants).
    Histogram(Box<HistogramSnapshot>),
    /// A span copy.
    Span(SpanSnapshot),
}

/// A consistent copy of a [`MetricsRegistry`], renderable as one JSONL
/// record (through the workspace's shared [`JsonRecord`] builder) or as
/// Prometheus-style text exposition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in registration order.
    pub entries: Vec<(String, SnapshotValue)>,
}

impl MetricsSnapshot {
    /// Looks up a counter total by name (test and assertion helper).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, v)| match v {
            SnapshotValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.entries.iter().find_map(|(n, v)| match v {
            SnapshotValue::Histogram(h) if n == name => Some(h.as_ref()),
            _ => None,
        })
    }

    /// Appends every metric as a field of `rec`, in registration order.
    /// Counters and gauges become bare integers; a histogram becomes
    /// `{"count":..,"sum":..,"max":..,"p50":..,"p95":..,"p99":..,
    /// "buckets":[..]}` with trailing zero buckets trimmed; a span
    /// becomes `{"count":..,"total_us":..}`.
    pub fn append(&self, mut rec: JsonRecord) -> JsonRecord {
        for (name, value) in &self.entries {
            rec = match value {
                SnapshotValue::Counter(c) => rec.int(name, *c),
                SnapshotValue::Gauge(g) => rec.raw(name, &g.to_string()),
                SnapshotValue::Histogram(h) => rec.raw(name, &render_histogram(h)),
                SnapshotValue::Span(s) => rec.raw(
                    name,
                    &format!("{{\"count\":{},\"total_us\":{}}}", s.count, s.total_us),
                ),
            };
        }
        rec
    }

    /// The snapshot as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        self.append(JsonRecord::new()).render()
    }

    /// The snapshot as Prometheus-style text exposition: `# TYPE` lines,
    /// cumulative `_bucket{le="..."}` series for histograms, and
    /// `_runs_total`/`_us_total` pairs for spans.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                SnapshotValue::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {c}\n"));
                }
                SnapshotValue::Gauge(g) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {g}\n"));
                }
                SnapshotValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cum = 0u64;
                    for (i, &n) in h.trimmed().iter().enumerate() {
                        cum += n;
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cum}\n",
                            bucket_bound(i)
                        ));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                    out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
                }
                SnapshotValue::Span(s) => {
                    out.push_str(&format!(
                        "# TYPE {name}_runs_total counter\n{name}_runs_total {}\n",
                        s.count
                    ));
                    out.push_str(&format!(
                        "# TYPE {name}_us_total counter\n{name}_us_total {}\n",
                        s.total_us
                    ));
                }
            }
        }
        out
    }
}

fn render_histogram(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h.trimmed().iter().map(|n| n.to_string()).collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}",
        h.count,
        h.sum,
        h.max,
        h.p50(),
        h.p95(),
        h.p99(),
        buckets.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_order_is_snapshot_order() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total").add(2);
        reg.gauge("a_level").set(-3);
        reg.counter("b_total").inc(); // same handle back
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["b_total", "a_level"]);
        assert_eq!(snap.counter("b_total"), Some(3));
        assert_eq!(snap.to_json(), "{\"b_total\":3,\"a_level\":-3}");
    }

    #[test]
    #[should_panic(expected = "already registered with another kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn json_rendering_nests_histograms_and_spans() {
        let reg = MetricsRegistry::new();
        reg.histogram("lat_us").record(3);
        reg.histogram("lat_us").record(0);
        reg.span("span_parse").add_us(7);
        let json = reg.snapshot().to_json();
        assert_eq!(
            json,
            "{\"lat_us\":{\"count\":2,\"sum\":3,\"max\":3,\"p50\":0,\"p95\":3,\
             \"p99\":3,\"buckets\":[1,0,1]},\
             \"span_parse\":{\"count\":1,\"total_us\":7}}"
        );
    }

    #[test]
    fn prometheus_rendering_is_cumulative() {
        let reg = MetricsRegistry::new();
        reg.counter("req_total").add(4);
        reg.gauge("inflight").set(2);
        let h = reg.histogram("lat_us");
        h.record(1);
        h.record(2);
        reg.span("span_drain").add_us(5);
        let text = reg.snapshot().to_prometheus();
        assert_eq!(
            text,
            "# TYPE req_total counter\nreq_total 4\n\
             # TYPE inflight gauge\ninflight 2\n\
             # TYPE lat_us histogram\n\
             lat_us_bucket{le=\"0\"} 0\n\
             lat_us_bucket{le=\"1\"} 1\n\
             lat_us_bucket{le=\"3\"} 2\n\
             lat_us_bucket{le=\"+Inf\"} 2\n\
             lat_us_sum 3\nlat_us_count 2\n\
             # TYPE span_drain_runs_total counter\nspan_drain_runs_total 1\n\
             # TYPE span_drain_us_total counter\nspan_drain_us_total 5\n"
        );
    }
}
