//! Lightweight stage-span timers.
//!
//! A [`Span`] names one pipeline stage (`parse`, `shard`, `schedule`,
//! `drain`, …) and accumulates how often it ran and how long it took in
//! total. Entering a span hands back a [`SpanGuard`] that records the
//! elapsed wall time on drop — two atomic adds per span, no allocation,
//! no locks:
//!
//! ```
//! use treesched_obs::Span;
//! let parse = Span::new();
//! {
//!     let _t = parse.enter();
//!     // ... stage body ...
//! }
//! assert_eq!(parse.snapshot().count, 1);
//! ```

use crate::counter::Counter;
use std::time::Instant;

/// Accumulated time spent in one named pipeline stage.
#[derive(Debug, Default)]
pub struct Span {
    count: Counter,
    total_us: Counter,
}

/// A point-in-time copy of a [`Span`]'s accumulators.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// How many times the stage ran.
    pub count: u64,
    /// Total wall time across all runs, in microseconds.
    pub total_us: u64,
}

impl Span {
    /// A span with zeroed accumulators.
    pub fn new() -> Span {
        Span::default()
    }

    /// Starts timing one run of the stage; the guard records on drop.
    pub fn enter(&self) -> SpanGuard<'_> {
        SpanGuard {
            span: self,
            start: Instant::now(),
        }
    }

    /// Times `f` as one run of the stage.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let _t = self.enter();
        f()
    }

    /// Records one run that took `us` microseconds (for pre-measured
    /// durations).
    pub fn add_us(&self, us: u64) {
        self.count.inc();
        self.total_us.add(us);
    }

    /// The current accumulators.
    pub fn snapshot(&self) -> SpanSnapshot {
        SpanSnapshot {
            count: self.count.get(),
            total_us: self.total_us.get(),
        }
    }
}

/// Live timer for one stage run; records into its [`Span`] on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    span: &'a Span,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.span.add_us(self.start.elapsed().as_micros() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_on_drop() {
        let s = Span::new();
        assert_eq!(s.snapshot(), SpanSnapshot::default());
        s.time(|| std::thread::sleep(std::time::Duration::from_millis(2)));
        let snap = s.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.total_us >= 1000, "2ms sleep under 1ms? {snap:?}");
    }

    #[test]
    fn add_us_accumulates() {
        let s = Span::new();
        s.add_us(10);
        s.add_us(32);
        assert_eq!(
            s.snapshot(),
            SpanSnapshot {
                count: 2,
                total_us: 42
            }
        );
    }
}
