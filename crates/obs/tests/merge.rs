//! The exact-merge contract: folding per-shard histograms together
//! must reproduce, bit for bit, the histogram a single thread would
//! have accumulated over the same samples — for every partition and
//! every order.

use proptest::prelude::*;
use treesched_obs::{Histogram, HistogramSnapshot};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn sharded_merge_equals_single_threaded_accumulation(
        samples in proptest::collection::vec(0u64..u64::MAX, 0..200),
        shards in 1usize..8,
        salt in 0u64..u64::MAX,
    ) {
        // one reference histogram over the samples in order
        let single = Histogram::new();
        for &v in &samples {
            single.record(v);
        }

        // the same samples scattered over `shards` locals in a
        // salt-shuffled order
        let locals: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        let mut order: Vec<usize> = (0..samples.len()).collect();
        order.sort_by_key(|&i| (samples[i].wrapping_mul(salt | 1).rotate_left(i as u32), i));
        for (k, &i) in order.iter().enumerate() {
            locals[(i.wrapping_add(k) * 31 + k) % shards].record(samples[i]);
        }

        let mut merged = HistogramSnapshot::new();
        for local in &locals {
            merged.merge(&local.snapshot());
        }
        prop_assert_eq!(&merged, &single.snapshot());

        // conservation: every sample in exactly one bucket
        prop_assert_eq!(merged.buckets.iter().sum::<u64>(), samples.len() as u64);
        if !samples.is_empty() {
            prop_assert_eq!(merged.max, *samples.iter().max().unwrap());
            for q in [50.0, 95.0, 99.0, 100.0] {
                let at = merged.quantile(q);
                prop_assert!(at <= merged.max);
            }
        }
    }
}
