//! Sequential memory-optimal tree traversals.
//!
//! With a single processor the only objective is the **peak memory** of the
//! traversal (paper §1). This crate implements the classical algorithms the
//! paper builds upon:
//!
//! * [`naive_postorder`] — the postorder induced by the stored child order
//!   (baseline);
//! * [`best_postorder`] — Liu's memory-optimal *postorder* traversal
//!   (Liu 1986, ref. \[13\]): children visited in non-increasing
//!   `P_j − f_j`, `O(n log n)`. This is the sequential reference the paper's
//!   experiments use (§6.1);
//! * [`liu_exact`] — Liu's exact algorithm over **all** traversals
//!   (Liu 1987, ref. \[14\]): hill–valley segment decomposition and optimal
//!   chain merging, `O(n²)` worst case;
//! * [`peak_of_order`] — an explicit-order simulator used to cross-check
//!   every reported peak;
//! * [`oracle`] — an exponential exact DP over tree ideals, the test oracle.
//!
//! All algorithms return a [`TraversalResult`] carrying the explicit node
//! order *and* the peak, and the test-suite verifies
//! `peak_of_order(order) == peak` for each of them.
//!
//! ```
//! use treesched_model::TaskTree;
//! use treesched_seq::{best_postorder, liu_exact, peak_of_order};
//!
//! let tree = TaskTree::fork(5, 1.0, 1.0, 0.0);
//! let po = best_postorder(&tree);
//! let exact = liu_exact(&tree);
//! assert_eq!(po.peak, 6.0);          // 5 leaf files + the root's
//! assert_eq!(exact.peak, 6.0);       // no traversal does better on a fork
//! assert_eq!(peak_of_order(&tree, &exact.order).unwrap(), exact.peak);
//! ```

pub mod liu;
pub mod oracle;
pub mod postorder;
pub mod sim;

pub use liu::{liu_exact, liu_exact_view, LiuScratch};
pub use postorder::{
    best_postorder, best_postorder_peak, best_postorder_view, naive_postorder,
    naive_postorder_view, ViewScratch,
};
pub use sim::{peak_of_order, OrderError};

use treesched_model::NodeId;

/// A sequential traversal: the explicit topological order plus its peak
/// memory.
#[derive(Clone, Debug, PartialEq)]
pub struct TraversalResult {
    /// Execution order (children always before parents).
    pub order: Vec<NodeId>,
    /// Peak memory of the traversal under the paper's memory model.
    pub peak: f64,
}

#[cfg(test)]
mod crosscheck {
    use super::*;
    use treesched_model::{TaskTree, TreeBuilder};

    /// Both optimal algorithms agree with their simulated peaks, and the
    /// exact algorithm is never worse than the postorder ones.
    #[test]
    fn algorithm_hierarchy_on_example() {
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 1.0, 0.0);
        let a = b.child(r, 1.0, 2.0, 0.0);
        b.child(a, 1.0, 9.0, 0.0);
        let c = b.child(r, 1.0, 2.0, 0.0);
        b.child(c, 1.0, 9.0, 0.0);
        let t = b.build().unwrap();

        let naive = naive_postorder(&t);
        let best = best_postorder(&t);
        let exact = liu_exact(&t);
        assert_eq!(peak_of_order(&t, &naive.order).unwrap(), naive.peak);
        assert_eq!(peak_of_order(&t, &best.order).unwrap(), best.peak);
        assert_eq!(peak_of_order(&t, &exact.order).unwrap(), exact.peak);
        assert!(best.peak <= naive.peak);
        assert!(exact.peak <= best.peak);
        assert_eq!(exact.peak, oracle::min_peak_exhaustive(&t));
    }

    #[test]
    fn chain_peak_is_adjacent_pair() {
        // chain of k nodes, f weights 1: processing node i needs f_child + f_i
        let t = TaskTree::chain(6, 1.0, 1.0, 0.0);
        for algo in [naive_postorder(&t), best_postorder(&t), liu_exact(&t)] {
            assert_eq!(algo.peak, 2.0);
        }
    }
}
