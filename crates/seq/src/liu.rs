//! Liu's exact memory-minimal traversal (Liu 1987, ref. \[14\]).
//!
//! The optimal traversal of a subtree is represented as a chain of
//! **hill–valley segments**. A segment covers a contiguous run of task
//! executions and is summarized by two incremental quantities relative to the
//! memory level at which the segment starts:
//!
//! * `h` — the *hill*: the maximum memory reached during the run;
//! * `v` — the *valley*: the net change of resident memory over the run.
//!
//! Sequential composition of segments is associative:
//! `combine(a, b) = (max(h_a, v_a + h_b), v_a + v_b)`.
//!
//! Interleaving the traversals of independent child subtrees is the problem
//! of merging chains of segments so as to minimize the maximum prefix level
//! `Σ_{earlier} v + h`. The optimal pairwise order is the classical
//! two-class rule (Liu 1987; Abdel-Wahab & Kameda 1978):
//!
//! 1. **releasing** segments (`v ≤ 0`) come first, in non-decreasing `h`;
//! 2. **accumulating** segments (`v > 0`) follow, in non-increasing `h − v`.
//!
//! Each subtree's chain is kept *canonical* — its segments sorted by this
//! order — by greedily combining adjacent segments that would violate it
//! (the violating pair is precedence-constrained, so it may be fused into a
//! block; Liu's generalized-pebbling theorem shows an optimal traversal
//! keeps such blocks contiguous). Children chains are then merged with a
//! k-way heap merge and the parent's own execution step is appended.
//!
//! The worst-case complexity is `O(n²)` (matching the paper's statement);
//! on realistic assembly trees the profile collapses quickly and the
//! behaviour is near-linear.

use crate::TraversalResult;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use treesched_model::{NodeId, SubtreeView, TaskTree};

/// One hill–valley segment with the tasks it executes.
#[derive(Clone, Debug)]
struct Seg {
    /// Incremental hill: peak memory during the segment, relative to start.
    h: f64,
    /// Incremental valley: net memory change over the segment.
    v: f64,
    /// Tasks executed by this segment, in order.
    nodes: Vec<NodeId>,
}

impl Seg {
    /// The atomic segment of executing task `v` once its children are done:
    /// hill `n_v + f_v` (program + output on top of the current level) and
    /// valley `f_v − Σ_children f_c` (inputs freed, output retained).
    fn step(tree: &TaskTree, v: NodeId) -> Seg {
        Seg {
            h: tree.exec(v) + tree.output(v),
            v: tree.output(v) - tree.input_size(v),
            nodes: vec![v],
        }
    }

    /// Sequentially composes `self` followed by `b`.
    fn fuse(&mut self, b: Seg) {
        self.h = self.h.max(self.v + b.h);
        self.v += b.v;
        self.nodes.extend(b.nodes);
    }

    /// Priority class and key implementing the two-class merge order.
    /// Smaller keys come first.
    fn key(&self) -> (u8, f64) {
        if self.v <= 0.0 {
            (0, self.h) // releasing: ascending hill
        } else {
            (1, self.v - self.h) // accumulating: descending (h - v)
        }
    }
}

fn key_cmp(a: (u8, f64), b: (u8, f64)) -> Ordering {
    a.0.cmp(&b.0).then(a.1.total_cmp(&b.1))
}

/// Appends `seg` to `chain`, restoring canonical (sorted) form by fusing the
/// tail while the previous block should strictly come after the new one.
fn push_normalized(chain: &mut Vec<Seg>, seg: Seg) {
    chain.push(seg);
    while chain.len() >= 2 {
        let last = &chain[chain.len() - 1];
        let prev = &chain[chain.len() - 2];
        if key_cmp(prev.key(), last.key()) == Ordering::Greater {
            let last = chain.pop().expect("len >= 2");
            chain.last_mut().expect("len >= 1").fuse(last);
        } else {
            break;
        }
    }
}

/// Heap entry for the k-way merge of children chains (min-heap by key, with
/// the chain index as a deterministic tie-break).
struct Head {
    class: u8,
    key: f64,
    chain: usize,
}

impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Head {}
impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Head {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we want the smallest key on top
        key_cmp((other.class, other.key), (self.class, self.key)).then(other.chain.cmp(&self.chain))
    }
}

/// Merges the canonical chains of the children into one canonical sequence
/// (no fusing needed across chains: a sorted merge of sorted chains).
fn merge_children(chains: Vec<Vec<Seg>>) -> Vec<Seg> {
    let total: usize = chains.iter().map(Vec::len).sum();
    let mut cursors: Vec<std::vec::IntoIter<Seg>> =
        chains.into_iter().map(Vec::into_iter).collect();
    let mut heap = BinaryHeap::with_capacity(cursors.len());
    let mut heads: Vec<Option<Seg>> = Vec::with_capacity(cursors.len());
    for (i, it) in cursors.iter_mut().enumerate() {
        let head = it.next();
        if let Some(s) = &head {
            let (class, key) = s.key();
            heap.push(Head {
                class,
                key,
                chain: i,
            });
        }
        heads.push(head);
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Head { chain, .. }) = heap.pop() {
        let seg = heads[chain].take().expect("head present for queued chain");
        out.push(seg);
        if let Some(next) = cursors[chain].next() {
            let (class, key) = next.key();
            heap.push(Head { class, key, chain });
            heads[chain] = Some(next);
        }
    }
    out
}

/// Exact minimum-memory sequential traversal (Liu 1987).
///
/// Returns the explicit optimal order and its peak. The peak is provably
/// minimal over *all* topological orders of the tree (not only postorders);
/// the crate's test-suite verifies this against an exhaustive DP oracle.
pub fn liu_exact(tree: &TaskTree) -> TraversalResult {
    let n = tree.len();
    let mut chains: Vec<Vec<Seg>> = (0..n).map(|_| Vec::new()).collect();
    for v in tree.postorder() {
        let kid_chains: Vec<Vec<Seg>> = tree
            .children(v)
            .iter()
            .map(|c| std::mem::take(&mut chains[c.index()]))
            .collect();
        let mut chain = if kid_chains.is_empty() {
            Vec::new()
        } else {
            merge_children(kid_chains)
        };
        push_normalized(&mut chain, Seg::step(tree, v));
        chains[v.index()] = chain;
    }
    let chain = std::mem::take(&mut chains[tree.root().index()]);
    let mut order = Vec::with_capacity(n);
    let mut level = 0.0f64;
    let mut peak = 0.0f64;
    for seg in chain {
        let hill = level + seg.h;
        if hill > peak {
            peak = hill;
        }
        level += seg.v;
        order.extend(seg.nodes);
    }
    TraversalResult { order, peak }
}

/// Reusable chain storage for [`liu_exact_view`].
///
/// One chain slot per **original** node id of the parent tree. The slots
/// are not cleared between calls: within one call every member's chain is
/// taken by its parent's merge (or by the final emission, for the root),
/// so the scratch drains back to all-empty and stale state is never
/// observed. Segment `nodes` buffers still allocate as chains grow — the
/// view path eliminates the `TaskTree` *clone*, which is the counted
/// quantity, not every interior `Vec`.
#[derive(Clone, Debug, Default)]
pub struct LiuScratch {
    chains: Vec<Vec<Seg>>,
}

impl LiuScratch {
    /// An empty scratch; chain slots grow on first use.
    pub fn new() -> LiuScratch {
        LiuScratch::default()
    }

    fn grow(&mut self, n: usize) {
        if self.chains.len() < n {
            self.chains.resize_with(n, Vec::new);
        }
    }
}

/// Liu's exact traversal of a subtree view, emitted into `out` as
/// **original** node ids. Returns the optimal peak.
///
/// Bit-for-bit the order [`liu_exact`] produces on the
/// [`TaskTree::subtree`] clone, mapped back through the clone's id map:
/// a node's chain depends only on its children's chains (so the view's
/// reverse-preorder sweep and the clone's postorder agree), every merge
/// key is a weight-derived `f64` identical in both paths, and the k-way
/// merge tie-break is *positional* (chain index = position in the child
/// list), which the clone preserves.
pub fn liu_exact_view(
    view: &SubtreeView<'_>,
    scratch: &mut LiuScratch,
    out: &mut Vec<NodeId>,
) -> f64 {
    let tree = view.tree();
    scratch.grow(tree.len());
    let chains = &mut scratch.chains;
    // The view lists parents before children (DFS preorder); the reverse
    // is a valid bottom-up order for the chain recurrence.
    for &v in view.nodes().iter().rev() {
        let kid_chains: Vec<Vec<Seg>> = tree
            .children(v)
            .iter()
            .map(|c| std::mem::take(&mut chains[c.index()]))
            .collect();
        let mut chain = if kid_chains.is_empty() {
            Vec::new()
        } else {
            merge_children(kid_chains)
        };
        push_normalized(&mut chain, Seg::step(tree, v));
        chains[v.index()] = chain;
    }
    let chain = std::mem::take(&mut chains[view.root().index()]);
    out.clear();
    let mut level = 0.0f64;
    let mut peak = 0.0f64;
    for seg in chain {
        let hill = level + seg.h;
        if hill > peak {
            peak = hill;
        }
        level += seg.v;
        out.extend(seg.nodes);
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{best_postorder, oracle, peak_of_order};
    use treesched_model::{TaskTree, TreeBuilder};

    #[test]
    fn seg_fuse_composes() {
        let mut a = Seg {
            h: 5.0,
            v: 2.0,
            nodes: vec![NodeId(0)],
        };
        let b = Seg {
            h: 4.0,
            v: -1.0,
            nodes: vec![NodeId(1)],
        };
        a.fuse(b);
        assert_eq!(a.h, 6.0); // max(5, 2 + 4)
        assert_eq!(a.v, 1.0);
        assert_eq!(a.nodes, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn two_class_order_releasing_first() {
        let r = Seg {
            h: 9.0,
            v: -1.0,
            nodes: vec![],
        };
        let a = Seg {
            h: 2.0,
            v: 1.0,
            nodes: vec![],
        };
        assert_eq!(key_cmp(r.key(), a.key()), Ordering::Less);
    }

    #[test]
    fn accumulating_sorted_by_drop() {
        // larger h - v first
        let big = Seg {
            h: 10.0,
            v: 1.0,
            nodes: vec![],
        }; // h-v = 9
        let small = Seg {
            h: 4.0,
            v: 2.0,
            nodes: vec![],
        }; // h-v = 2
        assert_eq!(key_cmp(big.key(), small.key()), Ordering::Less);
    }

    #[test]
    fn single_node_tree() {
        let t = TaskTree::chain(1, 1.0, 3.0, 4.0);
        let r = liu_exact(&t);
        assert_eq!(r.peak, 7.0);
        assert_eq!(r.order, vec![NodeId(0)]);
    }

    #[test]
    fn matches_simulated_peak() {
        let t = TaskTree::complete(3, 3, 1.0, 2.0, 0.5);
        let r = liu_exact(&t);
        assert!(t.is_topological(&r.order));
        assert_eq!(peak_of_order(&t, &r.order).unwrap(), r.peak);
    }

    /// The worked example from the module docs where the exact optimum (10)
    /// beats the best postorder (11): child A's tall first segment and child
    /// B's hill interleave inside A's valley.
    #[test]
    fn beats_best_postorder() {
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 1.0, 0.0);
        let a = b.child(r, 1.0, 3.0, 0.0);
        b.child(a, 1.0, 1.0, 9.0); // a1: hill 10, file 1
        b.child(a, 1.0, 2.0, 1.0); // a2: hill 3, file 2
        b.child(r, 1.0, 1.0, 8.0); // B: hill 9, file 1
        let t = b.build().unwrap();

        let po = best_postorder(&t);
        let ex = liu_exact(&t);
        assert_eq!(po.peak, 11.0);
        assert_eq!(ex.peak, 10.0);
        assert_eq!(peak_of_order(&t, &ex.order).unwrap(), 10.0);
        assert_eq!(oracle::min_peak_exhaustive(&t), 10.0);
    }

    #[test]
    fn agrees_with_oracle_on_small_trees() {
        // A catalogue of hand-built shapes with assorted weights.
        let trees: Vec<TaskTree> = vec![
            TaskTree::chain(5, 1.0, 3.0, 1.0),
            TaskTree::fork(4, 1.0, 2.0, 1.0),
            TaskTree::complete(2, 2, 1.0, 1.0, 0.0),
            {
                let mut b = TreeBuilder::new();
                let r = b.node(1.0, 2.0, 1.0);
                let x = b.child(r, 1.0, 5.0, 0.0);
                b.child(x, 1.0, 4.0, 3.0);
                b.child(x, 1.0, 1.0, 0.0);
                let y = b.child(r, 1.0, 3.0, 2.0);
                let z = b.child(y, 1.0, 6.0, 0.0);
                b.child(z, 1.0, 2.0, 2.0);
                b.build().unwrap()
            },
        ];
        for t in &trees {
            let ex = liu_exact(t);
            assert_eq!(peak_of_order(t, &ex.order).unwrap(), ex.peak);
            assert_eq!(
                ex.peak,
                oracle::min_peak_exhaustive(t),
                "tree: {}",
                treesched_model::io::to_compact(t)
            );
            assert!(ex.peak <= best_postorder(t).peak);
        }
    }

    #[test]
    fn pebble_game_values() {
        // Pebble-game fork: all leaves' pebbles + root's = leaves + 1; the
        // exact algorithm cannot do better than the postorder here.
        let t = TaskTree::fork(5, 1.0, 1.0, 0.0);
        assert_eq!(liu_exact(&t).peak, 6.0);
        // Pebble-game chain: 2 pebbles.
        let t = TaskTree::chain(9, 1.0, 1.0, 0.0);
        assert_eq!(liu_exact(&t).peak, 2.0);
    }

    /// The view traversal of every subtree must be the clone traversal
    /// mapped back through the clone's id map, with the same peak —
    /// including on pebble weights where every merge key ties and only
    /// the positional tie-break decides the interleaving.
    #[test]
    fn view_traversal_matches_the_clone_path_on_every_subtree() {
        let mut zoo = vec![
            TaskTree::fork(7, 1.0, 1.0, 0.0),
            TaskTree::chain(12, 2.0, 1.0, 0.5),
            TaskTree::complete(2, 4, 1.0, 1.0, 0.0),
            TaskTree::complete(3, 3, 1.0, 2.0, 0.5),
        ];
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 2.0, 1.0);
        let a = b.child(r, 1.0, 5.0, 0.0);
        b.child(a, 1.0, 7.0, 2.0);
        b.child(a, 1.0, 1.0, 0.0);
        let c = b.child(r, 1.0, 3.0, 1.0);
        b.child(c, 1.0, 4.0, 0.0);
        b.pebble_leaves(c, 3);
        zoo.push(b.build().unwrap());

        let mut scratch = LiuScratch::new();
        let mut stack = Vec::new();
        let mut members = Vec::new();
        let mut got = Vec::new();
        for tree in &zoo {
            for r in tree.ids() {
                let (sub, map) = tree.subtree(r);
                tree.subtree_nodes_into(r, &mut stack, &mut members);
                let view = SubtreeView::new(tree, &members);

                let clone_res = liu_exact(&sub);
                let want: Vec<_> = clone_res.order.iter().map(|v| map[v.index()]).collect();
                let peak = liu_exact_view(&view, &mut scratch, &mut got);
                assert_eq!(got, want, "root {r:?}");
                assert_eq!(peak, clone_res.peak, "root {r:?}");
            }
        }
    }

    /// A warm scratch drains back to empty after each call, so dragging it
    /// through unrelated trees never perturbs a later traversal.
    #[test]
    fn liu_scratch_is_reusable_across_trees() {
        let a = TaskTree::fork(5, 1.0, 1.0, 0.0);
        let b = TaskTree::complete(2, 3, 1.0, 2.0, 0.5);
        let mut scratch = LiuScratch::new();
        let mut stack = Vec::new();
        let mut members = Vec::new();
        let mut first = Vec::new();
        let mut again = Vec::new();
        a.subtree_nodes_into(a.root(), &mut stack, &mut members);
        liu_exact_view(&SubtreeView::new(&a, &members), &mut scratch, &mut first);
        b.subtree_nodes_into(b.root(), &mut stack, &mut members);
        liu_exact_view(&SubtreeView::new(&b, &members), &mut scratch, &mut again);
        a.subtree_nodes_into(a.root(), &mut stack, &mut members);
        liu_exact_view(&SubtreeView::new(&a, &members), &mut scratch, &mut again);
        assert_eq!(first, again);
        let (sub, map) = a.subtree(a.root());
        let want: Vec<_> = liu_exact(&sub)
            .order
            .iter()
            .map(|v| map[v.index()])
            .collect();
        assert_eq!(first, want);
    }

    #[test]
    fn deep_chain_linear_profile() {
        let t = TaskTree::chain(50_000, 1.0, 1.0, 0.0);
        let r = liu_exact(&t);
        assert_eq!(r.peak, 2.0);
        assert_eq!(r.order.len(), 50_000);
    }
}
