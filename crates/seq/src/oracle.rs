//! Exhaustive exact oracle: minimum sequential peak over all traversals.
//!
//! Dynamic program over the *ideals* (descendant-closed subsets) of the
//! tree: `DP(S)` is the minimal peak needed to reach the state where exactly
//! the tasks in `S` are done. A task `v` can extend `S` when all its
//! children are in `S`; the step cost is `resident(S) + n_v + f_v`, where
//! `resident(S)` is the total size of output files whose producer is done
//! but whose consumer is not.
//!
//! The state space is exponential (up to `2^{n-1}` ideals for a star), so
//! this is strictly a **test oracle** for small trees; [`crate::liu_exact`]
//! is the polynomial algorithm validated against it.

use std::collections::HashMap;
use treesched_model::{NodeId, TaskTree};

/// Largest tree the oracle accepts.
pub const MAX_ORACLE_NODES: usize = 24;

/// Minimum peak memory over **all** topological orders of `tree`.
///
/// # Panics
///
/// Panics when `tree.len() > MAX_ORACLE_NODES` (the DP is exponential).
pub fn min_peak_exhaustive(tree: &TaskTree) -> f64 {
    let n = tree.len();
    assert!(
        n <= MAX_ORACLE_NODES,
        "oracle limited to {MAX_ORACLE_NODES} nodes, got {n}"
    );
    let child_mask: Vec<u32> = (0..n)
        .map(|i| {
            tree.children(NodeId::from_index(i))
                .iter()
                .fold(0u32, |m, c| m | (1 << c.index()))
        })
        .collect();
    let outputs: Vec<f64> = (0..n).map(|i| tree.output(NodeId::from_index(i))).collect();
    let execs: Vec<f64> = (0..n).map(|i| tree.exec(NodeId::from_index(i))).collect();
    let parent_bit: Vec<Option<u32>> = (0..n)
        .map(|i| {
            tree.parent(NodeId::from_index(i))
                .map(|p| 1u32 << p.index())
        })
        .collect();

    let resident = |mask: u32| -> f64 {
        let mut r = 0.0;
        for i in 0..n {
            if mask & (1 << i) != 0 {
                match parent_bit[i] {
                    Some(pb) if mask & pb != 0 => {}
                    _ => r += outputs[i],
                }
            }
        }
        r
    };

    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut frontier: HashMap<u32, f64> = HashMap::from([(0u32, 0.0)]);
    for _ in 0..n {
        let mut next: HashMap<u32, f64> = HashMap::with_capacity(frontier.len() * 2);
        for (&mask, &cost) in &frontier {
            let res = resident(mask);
            for v in 0..n {
                let bit = 1u32 << v;
                if mask & bit != 0 || child_mask[v] & !mask != 0 {
                    continue;
                }
                let step = res + execs[v] + outputs[v];
                let total = cost.max(step);
                next.entry(mask | bit)
                    .and_modify(|e| {
                        if total < *e {
                            *e = total;
                        }
                    })
                    .or_insert(total);
            }
        }
        frontier = next;
    }
    frontier[&full]
}

/// Minimum peak over all *postorders* of `tree` (children of each node may
/// be permuted, but every subtree is processed contiguously). Exhaustive;
/// test oracle for [`crate::best_postorder`].
pub fn min_postorder_exhaustive(tree: &TaskTree) -> f64 {
    fn rec(tree: &TaskTree, v: NodeId) -> f64 {
        let kids = tree.children(v);
        if kids.is_empty() {
            return tree.exec(v) + tree.output(v);
        }
        let peaks: Vec<f64> = kids.iter().map(|&c| rec(tree, c)).collect();
        let files: Vec<f64> = kids.iter().map(|&c| tree.output(c)).collect();
        let k = kids.len();
        assert!(k <= 8, "postorder oracle limited to degree 8");
        // try all child permutations
        let mut idx: Vec<usize> = (0..k).collect();
        let mut best = f64::INFINITY;
        permute(&mut idx, 0, &mut |perm| {
            let mut acc = 0.0;
            let mut peak = 0.0f64;
            for &j in perm {
                peak = peak.max(acc + peaks[j]);
                acc += files[j];
            }
            peak = peak.max(acc + tree.exec(v) + tree.output(v));
            if peak < best {
                best = peak;
            }
        });
        best
    }
    fn permute(idx: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == idx.len() {
            f(idx);
            return;
        }
        for i in k..idx.len() {
            idx.swap(k, i);
            permute(idx, k + 1, f);
            idx.swap(k, i);
        }
    }
    rec(tree, tree.root())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{best_postorder, liu_exact};
    use treesched_model::{TaskTree, TreeBuilder};

    #[test]
    fn chain_oracle() {
        let t = TaskTree::chain(6, 1.0, 1.0, 0.0);
        assert_eq!(min_peak_exhaustive(&t), 2.0);
    }

    #[test]
    fn fork_oracle() {
        let t = TaskTree::fork(4, 1.0, 1.0, 0.0);
        assert_eq!(min_peak_exhaustive(&t), 5.0);
    }

    #[test]
    fn oracle_at_most_best_postorder() {
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 2.0, 0.0);
        let x = b.child(r, 1.0, 4.0, 1.0);
        b.child(x, 1.0, 3.0, 0.0);
        b.child(r, 1.0, 5.0, 2.0);
        let t = b.build().unwrap();
        let o = min_peak_exhaustive(&t);
        assert!(o <= best_postorder(&t).peak);
        assert_eq!(o, liu_exact(&t).peak);
    }

    #[test]
    fn postorder_oracle_matches_liu86() {
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 1.0, 0.5);
        let x = b.child(r, 1.0, 2.0, 0.0);
        b.child(x, 1.0, 7.0, 1.0);
        b.child(x, 1.0, 3.0, 0.0);
        let y = b.child(r, 1.0, 4.0, 1.0);
        b.child(y, 1.0, 6.0, 0.0);
        b.child(y, 1.0, 2.0, 3.0);
        let t = b.build().unwrap();
        assert_eq!(min_postorder_exhaustive(&t), best_postorder(&t).peak);
    }

    #[test]
    #[should_panic]
    fn oracle_rejects_large_trees() {
        let t = TaskTree::chain(40, 1.0, 1.0, 0.0);
        let _ = min_peak_exhaustive(&t);
    }
}
