//! Postorder traversals: naive and memory-optimal (Liu 1986).
//!
//! For a *postorder* traversal each subtree is processed contiguously. Liu
//! \[13\] showed that the peak of the best postorder of the subtree rooted at
//! `i` satisfies
//!
//! ```text
//! P_i = max( max_j ( Σ_{l<j} f_{c_l} + P_{c_j} ),  Σ_l f_{c_l} + n_i + f_i )
//! ```
//!
//! where the children `c_1 … c_k` are visited in **non-increasing
//! `P_j − f_j`** order, and that this order is optimal among postorders.
//! The paper's experiments (§6.1) use this `O(n log n)` traversal as the
//! sequential memory reference, having observed it is optimal in 95.8% of
//! their instances and within 1% on average.

use crate::TraversalResult;
use treesched_model::{NodeId, SubtreeView, TaskTree};

/// Peak memory of the postorder induced by the stored child order.
///
/// This is the baseline a fill-reducing ordering would give "for free";
/// [`best_postorder`] is never worse.
pub fn naive_postorder(tree: &TaskTree) -> TraversalResult {
    let order = tree.postorder();
    let peak = crate::peak_of_order(tree, &order).expect("tree postorder is topological");
    TraversalResult { order, peak }
}

/// Liu's memory-optimal postorder (1986): children in non-increasing
/// `P_j − f_j`. Returns the explicit order and its peak.
pub fn best_postorder(tree: &TaskTree) -> TraversalResult {
    let (peaks, sorted_children) = postorder_peaks(tree);
    // Emit the traversal following the sorted child lists, iteratively.
    let mut order = Vec::with_capacity(tree.len());
    // Two-stack postorder on the re-ordered tree.
    let mut stack = vec![tree.root()];
    while let Some(v) = stack.pop() {
        order.push(v);
        stack.extend_from_slice(&sorted_children[v.index()]);
    }
    order.reverse();
    TraversalResult {
        order,
        peak: peaks[tree.root().index()],
    }
}

/// Value-only variant of [`best_postorder`] (skips building the order).
pub fn best_postorder_peak(tree: &TaskTree) -> f64 {
    postorder_peaks(tree).0[tree.root().index()]
}

/// Computes `P_i` for every node plus each node's children sorted by
/// non-increasing `P_j − f_j` (ties broken by id for determinism).
fn postorder_peaks(tree: &TaskTree) -> (Vec<f64>, Vec<Vec<NodeId>>) {
    let n = tree.len();
    let mut peaks = vec![0.0f64; n];
    let mut sorted_children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for v in tree.postorder() {
        let vi = v.index();
        if tree.is_leaf(v) {
            peaks[vi] = tree.exec(v) + tree.output(v);
            continue;
        }
        let mut kids: Vec<NodeId> = tree.children(v).to_vec();
        kids.sort_by(|&a, &b| {
            let ka = peaks[a.index()] - tree.output(a);
            let kb = peaks[b.index()] - tree.output(b);
            kb.partial_cmp(&ka)
                .expect("weights are finite")
                .then(a.cmp(&b))
        });
        let mut acc = 0.0f64; // Σ of already-produced children files
        let mut peak = 0.0f64;
        for &c in &kids {
            let during_child = acc + peaks[c.index()];
            if during_child > peak {
                peak = during_child;
            }
            acc += tree.output(c);
        }
        let during_self = acc + tree.exec(v) + tree.output(v);
        if during_self > peak {
            peak = during_self;
        }
        peaks[vi] = peak;
        sorted_children[vi] = kids;
    }
    (peaks, sorted_children)
}

/// Reusable buffers for the allocation-free subtree traversals
/// ([`best_postorder_view`], [`naive_postorder_view`]).
///
/// The per-node buffers are sized to the **parent** tree and indexed by
/// original node id; they are *not* cleared between calls — every member
/// node of a view is written before it is read within one call, so stale
/// entries from other subtrees (or other trees of the same size) are
/// never observed. A warm scratch makes repeated subtree traversals
/// allocation-free.
#[derive(Clone, Debug, Default)]
pub struct ViewScratch {
    /// Local id of each original node: its position in the view's node
    /// list, i.e. the id it would get in the [`TaskTree::subtree`] clone.
    vid: Vec<u32>,
    /// Liu peak `P_i` of the subtree below each member node.
    peaks: Vec<f64>,
    /// Flattened sorted-children segments of the current view.
    child_buf: Vec<NodeId>,
    /// Per member node: its segment of `child_buf` as `(start, end)`.
    ranges: Vec<(u32, u32)>,
    /// DFS stack for the emission pass.
    stack: Vec<NodeId>,
}

impl ViewScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> ViewScratch {
        ViewScratch::default()
    }

    fn grow(&mut self, n: usize) {
        if self.vid.len() < n {
            self.vid.resize(n, 0);
            self.peaks.resize(n, 0.0);
            self.ranges.resize(n, (0, 0));
        }
    }
}

/// Liu's memory-optimal postorder of a subtree view, emitted into `out`
/// as **original** node ids.
///
/// The traversal is exactly [`best_postorder`] of the
/// [`TaskTree::subtree`] clone mapped back through the clone's id map:
/// ties in the `P_j − f_j` child order break on the clone-local id (the
/// node's position in the view), not the original id, so the emitted
/// sequence is bit-for-bit the one the clone-based path produces.
pub fn best_postorder_view(
    view: &SubtreeView<'_>,
    scratch: &mut ViewScratch,
    out: &mut Vec<NodeId>,
) {
    let tree = view.tree();
    let nodes = view.nodes();
    scratch.grow(tree.len());
    let ViewScratch {
        vid,
        peaks,
        child_buf,
        ranges,
        stack,
    } = scratch;
    for (k, &v) in nodes.iter().enumerate() {
        vid[v.index()] = k as u32;
    }
    child_buf.clear();
    // The view lists parents before children (DFS preorder), so the
    // reverse is a valid bottom-up order for the Liu recurrence.
    for &v in nodes.iter().rev() {
        let vi = v.index();
        let kids = tree.children(v);
        if kids.is_empty() {
            let end = child_buf.len() as u32;
            ranges[vi] = (end, end);
            peaks[vi] = tree.exec(v) + tree.output(v);
            continue;
        }
        let start = child_buf.len();
        child_buf.extend_from_slice(kids);
        child_buf[start..].sort_by(|&a, &b| {
            let ka = peaks[a.index()] - tree.output(a);
            let kb = peaks[b.index()] - tree.output(b);
            kb.partial_cmp(&ka)
                .expect("weights are finite")
                .then(vid[a.index()].cmp(&vid[b.index()]))
        });
        let mut acc = 0.0f64; // Σ of already-produced children files
        let mut peak = 0.0f64;
        for &c in &child_buf[start..] {
            let during_child = acc + peaks[c.index()];
            if during_child > peak {
                peak = during_child;
            }
            acc += tree.output(c);
        }
        let during_self = acc + tree.exec(v) + tree.output(v);
        if during_self > peak {
            peak = during_self;
        }
        ranges[vi] = (start as u32, child_buf.len() as u32);
        peaks[vi] = peak;
    }
    // Two-stack postorder over the sorted child segments.
    out.clear();
    stack.clear();
    stack.push(view.root());
    while let Some(v) = stack.pop() {
        out.push(v);
        let (s, e) = ranges[v.index()];
        stack.extend_from_slice(&child_buf[s as usize..e as usize]);
    }
    out.reverse();
}

/// Postorder of a subtree view induced by the stored child order, emitted
/// into `out` as **original** node ids — the allocation-free equivalent
/// of [`naive_postorder`] on the [`TaskTree::subtree`] clone.
pub fn naive_postorder_view(
    view: &SubtreeView<'_>,
    scratch: &mut ViewScratch,
    out: &mut Vec<NodeId>,
) {
    let tree = view.tree();
    out.clear();
    scratch.stack.clear();
    scratch.stack.push(view.root());
    while let Some(v) = scratch.stack.pop() {
        out.push(v);
        scratch.stack.extend_from_slice(tree.children(v));
    }
    out.reverse();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peak_of_order;
    use treesched_model::{TaskTree, TreeBuilder};

    #[test]
    fn leaf_peak_is_program_plus_output() {
        let t = TaskTree::chain(1, 1.0, 5.0, 3.0);
        assert_eq!(best_postorder(&t).peak, 8.0);
    }

    #[test]
    fn reported_peak_matches_simulator() {
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 2.0, 1.0);
        let a = b.child(r, 1.0, 5.0, 0.0);
        b.child(a, 1.0, 7.0, 2.0);
        b.child(a, 1.0, 1.0, 0.0);
        let c = b.child(r, 1.0, 3.0, 1.0);
        b.child(c, 1.0, 4.0, 0.0);
        let t = b.build().unwrap();
        let res = best_postorder(&t);
        assert_eq!(peak_of_order(&t, &res.order).unwrap(), res.peak);
        assert!(t.is_topological(&res.order));
        let nv = naive_postorder(&t);
        assert_eq!(peak_of_order(&t, &nv.order).unwrap(), nv.peak);
        assert!(res.peak <= nv.peak);
    }

    #[test]
    fn child_order_matters_and_is_chosen_well() {
        // Two children: A with big peak & small file, B with small peak & big
        // file. Optimal postorder runs A first: peak = max(P_A, f_A + P_B, ...).
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 1.0, 0.0);
        // child A: leaf with huge program (peak 10, file 1)
        b.child(r, 1.0, 1.0, 9.0);
        // child B: leaf with big file (peak 5, file 5)
        b.child(r, 1.0, 5.0, 0.0);
        let t = b.build().unwrap();
        // A first: max(10, 1+5, 1+5+0+1) = 10. B first: max(5, 5+10) = 15.
        assert_eq!(best_postorder(&t).peak, 10.0);
    }

    #[test]
    fn naive_vs_best_on_adversarial_child_order() {
        // Build with the bad child order first: naive must be worse.
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 1.0, 0.0);
        b.child(r, 1.0, 5.0, 0.0); // big file child inserted first
        b.child(r, 1.0, 1.0, 9.0); // big peak child second
        let t = b.build().unwrap();
        assert_eq!(naive_postorder(&t).peak, 15.0);
        assert_eq!(best_postorder(&t).peak, 10.0);
    }

    #[test]
    fn pebble_fork_peak_counts_all_leaves() {
        // In the pebble-game model a postorder of a fork must hold all leaf
        // results before firing the root.
        let t = TaskTree::fork(6, 1.0, 1.0, 0.0);
        assert_eq!(best_postorder(&t).peak, 7.0);
    }

    #[test]
    fn liu_1986_recurrence_by_hand() {
        // node r with children x (P=6, f=2) and y (P=5, f=4):
        //   order by P-f: x (4) then y (1)
        //   P_r = max(6, 2+5, 2+4+n_r+f_r) with n_r = 0, f_r = 1 -> max(6,7,7) = 7
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 1.0, 0.0);
        let x = b.child(r, 1.0, 2.0, 0.0);
        b.child(x, 1.0, 6.0, 0.0); // P_x = max(6, 6-6+... ) -> leaf peak 6, then x: 6 vs 6+0+2=8? recompute
        let y = b.child(r, 1.0, 4.0, 0.0);
        b.child(y, 1.0, 5.0, 0.0);
        let t = b.build().unwrap();
        // P_leaf_x = 6; P_x = max(6, 6 + 0 + 2) = 8; f_x = 2
        // P_leaf_y = 5; P_y = max(5, 5 + 0 + 4) = 9; f_y = 4
        // order children of r by P-f: x: 8-2 = 6, y: 9-4 = 5 -> x first
        // P_r = max(8, 2 + 9, 2 + 4 + 0 + 1) = 11
        assert_eq!(best_postorder(&t).peak, 11.0);
    }

    #[test]
    fn value_only_matches_full() {
        let t = TaskTree::complete(3, 4, 1.0, 2.0, 0.5);
        assert_eq!(best_postorder_peak(&t), best_postorder(&t).peak);
    }

    #[test]
    fn deep_tree_runs_iteratively() {
        let t = TaskTree::chain(150_000, 1.0, 1.0, 0.0);
        let res = best_postorder(&t);
        assert_eq!(res.peak, 2.0);
        assert_eq!(res.order.len(), 150_000);
    }

    /// The view traversal of every subtree must be the clone traversal
    /// mapped back through the clone's id map — including on pebble
    /// weights, where every sibling ties in `P_j − f_j` and the clone
    /// tie-break (clone-local ids, which reverse sibling order) differs
    /// from an original-id tie-break.
    #[test]
    fn view_traversals_match_the_clone_path_on_every_subtree() {
        let mut zoo = vec![
            TaskTree::fork(7, 1.0, 1.0, 0.0),
            TaskTree::chain(12, 2.0, 1.0, 0.5),
            TaskTree::complete(2, 4, 1.0, 1.0, 0.0),
            TaskTree::complete(3, 3, 1.0, 2.0, 0.5),
        ];
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 2.0, 1.0);
        let a = b.child(r, 1.0, 5.0, 0.0);
        b.child(a, 1.0, 7.0, 2.0);
        b.child(a, 1.0, 1.0, 0.0);
        let c = b.child(r, 1.0, 3.0, 1.0);
        b.child(c, 1.0, 4.0, 0.0);
        b.pebble_leaves(c, 3);
        zoo.push(b.build().unwrap());

        let mut scratch = ViewScratch::new();
        let mut stack = Vec::new();
        let mut members = Vec::new();
        let mut got = Vec::new();
        for tree in &zoo {
            for r in tree.ids() {
                let (sub, map) = tree.subtree(r);
                tree.subtree_nodes_into(r, &mut stack, &mut members);
                let view = treesched_model::SubtreeView::new(tree, &members);

                let want: Vec<_> = best_postorder(&sub)
                    .order
                    .iter()
                    .map(|v| map[v.index()])
                    .collect();
                best_postorder_view(&view, &mut scratch, &mut got);
                assert_eq!(got, want, "best, root {r:?}");

                let want: Vec<_> = naive_postorder(&sub)
                    .order
                    .iter()
                    .map(|v| map[v.index()])
                    .collect();
                naive_postorder_view(&view, &mut scratch, &mut got);
                assert_eq!(got, want, "naive, root {r:?}");
            }
        }
    }

    /// A warm scratch carries no state between subtrees (or trees): the
    /// same call on the same view yields the same order after the scratch
    /// was dragged through unrelated trees.
    #[test]
    fn view_scratch_is_reusable_across_trees() {
        let a = TaskTree::fork(5, 1.0, 1.0, 0.0);
        let b = TaskTree::complete(2, 3, 1.0, 2.0, 0.5);
        let mut scratch = ViewScratch::new();
        let mut stack = Vec::new();
        let mut members = Vec::new();
        let mut first = Vec::new();
        let mut again = Vec::new();
        a.subtree_nodes_into(a.root(), &mut stack, &mut members);
        best_postorder_view(
            &treesched_model::SubtreeView::new(&a, &members),
            &mut scratch,
            &mut first,
        );
        b.subtree_nodes_into(b.root(), &mut stack, &mut members);
        best_postorder_view(
            &treesched_model::SubtreeView::new(&b, &members),
            &mut scratch,
            &mut again,
        );
        a.subtree_nodes_into(a.root(), &mut stack, &mut members);
        best_postorder_view(
            &treesched_model::SubtreeView::new(&a, &members),
            &mut scratch,
            &mut again,
        );
        assert_eq!(first, again);
        // and the order is still the clone path's (mapped through its map)
        let (sub, map) = a.subtree(a.root());
        let want: Vec<_> = best_postorder(&sub)
            .order
            .iter()
            .map(|v| map[v.index()])
            .collect();
        assert_eq!(first, want);
    }
}
