//! Postorder traversals: naive and memory-optimal (Liu 1986).
//!
//! For a *postorder* traversal each subtree is processed contiguously. Liu
//! \[13\] showed that the peak of the best postorder of the subtree rooted at
//! `i` satisfies
//!
//! ```text
//! P_i = max( max_j ( Σ_{l<j} f_{c_l} + P_{c_j} ),  Σ_l f_{c_l} + n_i + f_i )
//! ```
//!
//! where the children `c_1 … c_k` are visited in **non-increasing
//! `P_j − f_j`** order, and that this order is optimal among postorders.
//! The paper's experiments (§6.1) use this `O(n log n)` traversal as the
//! sequential memory reference, having observed it is optimal in 95.8% of
//! their instances and within 1% on average.

use crate::TraversalResult;
use treesched_model::{NodeId, TaskTree};

/// Peak memory of the postorder induced by the stored child order.
///
/// This is the baseline a fill-reducing ordering would give "for free";
/// [`best_postorder`] is never worse.
pub fn naive_postorder(tree: &TaskTree) -> TraversalResult {
    let order = tree.postorder();
    let peak = crate::peak_of_order(tree, &order).expect("tree postorder is topological");
    TraversalResult { order, peak }
}

/// Liu's memory-optimal postorder (1986): children in non-increasing
/// `P_j − f_j`. Returns the explicit order and its peak.
pub fn best_postorder(tree: &TaskTree) -> TraversalResult {
    let (peaks, sorted_children) = postorder_peaks(tree);
    // Emit the traversal following the sorted child lists, iteratively.
    let mut order = Vec::with_capacity(tree.len());
    // Two-stack postorder on the re-ordered tree.
    let mut stack = vec![tree.root()];
    while let Some(v) = stack.pop() {
        order.push(v);
        stack.extend_from_slice(&sorted_children[v.index()]);
    }
    order.reverse();
    TraversalResult {
        order,
        peak: peaks[tree.root().index()],
    }
}

/// Value-only variant of [`best_postorder`] (skips building the order).
pub fn best_postorder_peak(tree: &TaskTree) -> f64 {
    postorder_peaks(tree).0[tree.root().index()]
}

/// Computes `P_i` for every node plus each node's children sorted by
/// non-increasing `P_j − f_j` (ties broken by id for determinism).
fn postorder_peaks(tree: &TaskTree) -> (Vec<f64>, Vec<Vec<NodeId>>) {
    let n = tree.len();
    let mut peaks = vec![0.0f64; n];
    let mut sorted_children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for v in tree.postorder() {
        let vi = v.index();
        if tree.is_leaf(v) {
            peaks[vi] = tree.exec(v) + tree.output(v);
            continue;
        }
        let mut kids: Vec<NodeId> = tree.children(v).to_vec();
        kids.sort_by(|&a, &b| {
            let ka = peaks[a.index()] - tree.output(a);
            let kb = peaks[b.index()] - tree.output(b);
            kb.partial_cmp(&ka)
                .expect("weights are finite")
                .then(a.cmp(&b))
        });
        let mut acc = 0.0f64; // Σ of already-produced children files
        let mut peak = 0.0f64;
        for &c in &kids {
            let during_child = acc + peaks[c.index()];
            if during_child > peak {
                peak = during_child;
            }
            acc += tree.output(c);
        }
        let during_self = acc + tree.exec(v) + tree.output(v);
        if during_self > peak {
            peak = during_self;
        }
        peaks[vi] = peak;
        sorted_children[vi] = kids;
    }
    (peaks, sorted_children)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peak_of_order;
    use treesched_model::{TaskTree, TreeBuilder};

    #[test]
    fn leaf_peak_is_program_plus_output() {
        let t = TaskTree::chain(1, 1.0, 5.0, 3.0);
        assert_eq!(best_postorder(&t).peak, 8.0);
    }

    #[test]
    fn reported_peak_matches_simulator() {
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 2.0, 1.0);
        let a = b.child(r, 1.0, 5.0, 0.0);
        b.child(a, 1.0, 7.0, 2.0);
        b.child(a, 1.0, 1.0, 0.0);
        let c = b.child(r, 1.0, 3.0, 1.0);
        b.child(c, 1.0, 4.0, 0.0);
        let t = b.build().unwrap();
        let res = best_postorder(&t);
        assert_eq!(peak_of_order(&t, &res.order).unwrap(), res.peak);
        assert!(t.is_topological(&res.order));
        let nv = naive_postorder(&t);
        assert_eq!(peak_of_order(&t, &nv.order).unwrap(), nv.peak);
        assert!(res.peak <= nv.peak);
    }

    #[test]
    fn child_order_matters_and_is_chosen_well() {
        // Two children: A with big peak & small file, B with small peak & big
        // file. Optimal postorder runs A first: peak = max(P_A, f_A + P_B, ...).
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 1.0, 0.0);
        // child A: leaf with huge program (peak 10, file 1)
        b.child(r, 1.0, 1.0, 9.0);
        // child B: leaf with big file (peak 5, file 5)
        b.child(r, 1.0, 5.0, 0.0);
        let t = b.build().unwrap();
        // A first: max(10, 1+5, 1+5+0+1) = 10. B first: max(5, 5+10) = 15.
        assert_eq!(best_postorder(&t).peak, 10.0);
    }

    #[test]
    fn naive_vs_best_on_adversarial_child_order() {
        // Build with the bad child order first: naive must be worse.
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 1.0, 0.0);
        b.child(r, 1.0, 5.0, 0.0); // big file child inserted first
        b.child(r, 1.0, 1.0, 9.0); // big peak child second
        let t = b.build().unwrap();
        assert_eq!(naive_postorder(&t).peak, 15.0);
        assert_eq!(best_postorder(&t).peak, 10.0);
    }

    #[test]
    fn pebble_fork_peak_counts_all_leaves() {
        // In the pebble-game model a postorder of a fork must hold all leaf
        // results before firing the root.
        let t = TaskTree::fork(6, 1.0, 1.0, 0.0);
        assert_eq!(best_postorder(&t).peak, 7.0);
    }

    #[test]
    fn liu_1986_recurrence_by_hand() {
        // node r with children x (P=6, f=2) and y (P=5, f=4):
        //   order by P-f: x (4) then y (1)
        //   P_r = max(6, 2+5, 2+4+n_r+f_r) with n_r = 0, f_r = 1 -> max(6,7,7) = 7
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 1.0, 0.0);
        let x = b.child(r, 1.0, 2.0, 0.0);
        b.child(x, 1.0, 6.0, 0.0); // P_x = max(6, 6-6+... ) -> leaf peak 6, then x: 6 vs 6+0+2=8? recompute
        let y = b.child(r, 1.0, 4.0, 0.0);
        b.child(y, 1.0, 5.0, 0.0);
        let t = b.build().unwrap();
        // P_leaf_x = 6; P_x = max(6, 6 + 0 + 2) = 8; f_x = 2
        // P_leaf_y = 5; P_y = max(5, 5 + 0 + 4) = 9; f_y = 4
        // order children of r by P-f: x: 8-2 = 6, y: 9-4 = 5 -> x first
        // P_r = max(8, 2 + 9, 2 + 4 + 0 + 1) = 11
        assert_eq!(best_postorder(&t).peak, 11.0);
    }

    #[test]
    fn value_only_matches_full() {
        let t = TaskTree::complete(3, 4, 1.0, 2.0, 0.5);
        assert_eq!(best_postorder_peak(&t), best_postorder(&t).peak);
    }

    #[test]
    fn deep_tree_runs_iteratively() {
        let t = TaskTree::chain(150_000, 1.0, 1.0, 0.0);
        let res = best_postorder(&t);
        assert_eq!(res.peak, 2.0);
        assert_eq!(res.order.len(), 150_000);
    }
}
