//! Explicit-order sequential traversal simulator.
//!
//! Given a topological order, replays the paper's memory model step by step:
//! processing task `i` needs `resident + n_i + f_i` where `resident` already
//! contains the output files of all completed-but-unconsumed tasks
//! (including `i`'s children); afterwards the children files and the program
//! are discarded and `f_i` stays resident until the parent completes.

use treesched_model::{NodeId, TaskTree};

/// Why an execution order was rejected by the simulator.
#[derive(Clone, Debug, PartialEq)]
pub enum OrderError {
    /// The order does not contain every node exactly once.
    NotAPermutation,
    /// A node appears before one of its children.
    DependencyViolated { node: NodeId, child: NodeId },
}

impl std::fmt::Display for OrderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrderError::NotAPermutation => write!(f, "order is not a permutation of the nodes"),
            OrderError::DependencyViolated { node, child } => {
                write!(f, "node {node} scheduled before its child {child}")
            }
        }
    }
}

impl std::error::Error for OrderError {}

/// Peak memory of executing `order` sequentially, or an error when the order
/// is not a valid topological order of `tree`.
///
/// Runs in `O(n)` time and performs the memory bookkeeping with plain `f64`
/// sums; with integer-valued weights (as in the pebble-game model and the
/// assembly-tree corpus) the result is exact.
pub fn peak_of_order(tree: &TaskTree, order: &[NodeId]) -> Result<f64, OrderError> {
    let n = tree.len();
    if order.len() != n {
        return Err(OrderError::NotAPermutation);
    }
    let mut done = vec![false; n];
    let mut resident = 0.0f64;
    let mut peak = 0.0f64;
    for &v in order {
        if done[v.index()] {
            return Err(OrderError::NotAPermutation);
        }
        for &c in tree.children(v) {
            if !done[c.index()] {
                return Err(OrderError::DependencyViolated { node: v, child: c });
            }
        }
        // children files are part of `resident`; add program + own output
        let during = resident + tree.exec(v) + tree.output(v);
        if during > peak {
            peak = during;
        }
        // discard inputs and program, keep own output
        resident += tree.output(v) - tree.input_size(v);
        done[v.index()] = true;
    }
    Ok(peak)
}

/// Full memory profile of a sequential traversal: for every step, the memory
/// in use **while** that task runs (the step peaks). The traversal peak is
/// the maximum entry. Useful for plotting and for the hill–valley tests.
pub fn profile_of_order(tree: &TaskTree, order: &[NodeId]) -> Result<Vec<f64>, OrderError> {
    let n = tree.len();
    if order.len() != n {
        return Err(OrderError::NotAPermutation);
    }
    let mut done = vec![false; n];
    let mut resident = 0.0f64;
    let mut prof = Vec::with_capacity(n);
    for &v in order {
        if done[v.index()] {
            return Err(OrderError::NotAPermutation);
        }
        for &c in tree.children(v) {
            if !done[c.index()] {
                return Err(OrderError::DependencyViolated { node: v, child: c });
            }
        }
        prof.push(resident + tree.exec(v) + tree.output(v));
        resident += tree.output(v) - tree.input_size(v);
        done[v.index()] = true;
    }
    Ok(prof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesched_model::{TaskTree, TreeBuilder};

    #[test]
    fn single_node() {
        let t = TaskTree::chain(1, 1.0, 5.0, 2.0);
        let p = peak_of_order(&t, &[NodeId(0)]).unwrap();
        assert_eq!(p, 7.0); // n + f
    }

    #[test]
    fn fork_postorder_accumulates_leaves() {
        // root + 3 pebble leaves: after all leaves, 3 files; root step: 3 + 1
        let t = TaskTree::fork(3, 1.0, 1.0, 0.0);
        let order = t.postorder();
        assert_eq!(peak_of_order(&t, &order).unwrap(), 4.0);
        let prof = profile_of_order(&t, &order).unwrap();
        assert_eq!(prof, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn chain_resident_swaps() {
        // chain: each step holds child file + own file
        let t = TaskTree::chain(4, 1.0, 1.0, 0.0);
        let order = t.postorder();
        let prof = profile_of_order(&t, &order).unwrap();
        assert_eq!(prof, vec![1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn weighted_example_by_hand() {
        // r(f=1,n=2) <- a(f=4,n=0) <- b(f=3,n=1)
        let mut bld = TreeBuilder::new();
        let r = bld.node(1.0, 1.0, 2.0);
        let a = bld.child(r, 1.0, 4.0, 0.0);
        let b = bld.child(a, 1.0, 3.0, 1.0);
        let t = bld.build().unwrap();
        let order = vec![b, a, r];
        // step b: 1 + 3 = 4 ; step a: 3 resident + 0 + 4 = 7 ; step r: 4 + 2 + 1 = 7
        let prof = profile_of_order(&t, &order).unwrap();
        assert_eq!(prof, vec![4.0, 7.0, 7.0]);
        assert_eq!(peak_of_order(&t, &order).unwrap(), 7.0);
    }

    #[test]
    fn rejects_wrong_length() {
        let t = TaskTree::fork(2, 1.0, 1.0, 0.0);
        assert_eq!(
            peak_of_order(&t, &[NodeId(0)]).unwrap_err(),
            OrderError::NotAPermutation
        );
    }

    #[test]
    fn rejects_duplicates() {
        let t = TaskTree::fork(2, 1.0, 1.0, 0.0);
        assert_eq!(
            peak_of_order(&t, &[NodeId(1), NodeId(1), NodeId(0)]).unwrap_err(),
            OrderError::NotAPermutation
        );
    }

    #[test]
    fn rejects_parent_before_child() {
        let t = TaskTree::fork(2, 1.0, 1.0, 0.0);
        let e = peak_of_order(&t, &[NodeId(0), NodeId(1), NodeId(2)]).unwrap_err();
        assert!(matches!(e, OrderError::DependencyViolated { .. }));
        assert!(e.to_string().contains("before its child"));
    }

    #[test]
    fn final_resident_is_root_file() {
        let mut bld = TreeBuilder::new();
        let r = bld.node(1.0, 7.0, 0.0);
        bld.child(r, 1.0, 2.0, 0.0);
        bld.child(r, 1.0, 3.0, 0.0);
        let t = bld.build().unwrap();
        let order = t.postorder();
        // replay manually to check the invariant: resident ends at f_root
        let mut resident = 0.0;
        for &v in &order {
            resident += t.output(v) - t.input_size(v);
        }
        assert_eq!(resident, 7.0);
        assert_eq!(peak_of_order(&t, &order).unwrap(), 2.0 + 3.0 + 7.0);
    }
}
