//! Property-based cross-validation of the sequential traversal algorithms.
//!
//! Random small trees are thrown at the polynomial algorithms and compared
//! against the exhaustive oracles:
//!
//! * `liu_exact` peak == ideal-DP oracle (optimal over ALL traversals);
//! * `best_postorder` peak == permutation oracle (optimal over postorders);
//! * the algorithm hierarchy `exact ≤ best postorder ≤ naive postorder`;
//! * every algorithm's reported peak equals the simulated peak of its order.

use proptest::prelude::*;
use treesched_model::{TaskTree, ValidateExt};
use treesched_seq::{best_postorder, liu_exact, naive_postorder, oracle, peak_of_order};

/// Strategy: a random tree of `n` nodes given by a parent vector where
/// `parents[i] < i` (node 0 is the root), plus random integer-ish weights.
fn arb_tree(max_nodes: usize, max_weight: u32) -> impl Strategy<Value = TaskTree> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            let parents: Vec<BoxedStrategy<usize>> = (1..n).map(|i| (0..i).boxed()).collect();
            let weights = proptest::collection::vec(0..=max_weight, n * 2);
            (parents, weights)
        })
        .prop_map(|(parents, weights)| {
            let n = parents.len() + 1;
            let pvec: Vec<Option<usize>> = std::iter::once(None)
                .chain(parents.into_iter().map(Some))
                .collect();
            let work = vec![1.0; n];
            // f in 1..=max+1 (outputs nonzero keeps instances interesting),
            // n in 0..=max
            let output: Vec<f64> = (0..n).map(|i| (weights[i] + 1) as f64).collect();
            let exec: Vec<f64> = (0..n).map(|i| weights[n + i] as f64).collect();
            TaskTree::from_parents(&pvec, &work, &output, &exec).expect("valid random tree")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn liu_exact_matches_ideal_dp_oracle(t in arb_tree(10, 8)) {
        prop_assert!(t.validate().is_ok());
        let ex = liu_exact(&t);
        prop_assert!(t.is_topological(&ex.order));
        prop_assert_eq!(peak_of_order(&t, &ex.order).unwrap(), ex.peak);
        prop_assert_eq!(ex.peak, oracle::min_peak_exhaustive(&t));
    }

    #[test]
    fn best_postorder_matches_permutation_oracle(t in arb_tree(9, 6)) {
        // keep the permutation oracle tractable: skip high-degree trees
        prop_assume!(t.max_degree() <= 6);
        let bp = best_postorder(&t);
        prop_assert_eq!(peak_of_order(&t, &bp.order).unwrap(), bp.peak);
        prop_assert_eq!(bp.peak, oracle::min_postorder_exhaustive(&t));
    }

    #[test]
    fn algorithm_hierarchy(t in arb_tree(12, 10)) {
        let ex = liu_exact(&t);
        let bp = best_postorder(&t);
        let np = naive_postorder(&t);
        prop_assert!(ex.peak <= bp.peak + 1e-9);
        prop_assert!(bp.peak <= np.peak + 1e-9);
        // all bounded below by the largest single-step footprint
        prop_assert!(ex.peak >= t.max_local_need() - 1e-9);
    }

    #[test]
    fn simulated_peaks_are_consistent(t in arb_tree(14, 10)) {
        for r in [liu_exact(&t), best_postorder(&t), naive_postorder(&t)] {
            prop_assert!(t.is_topological(&r.order));
            prop_assert_eq!(peak_of_order(&t, &r.order).unwrap(), r.peak);
        }
    }

    #[test]
    fn pebble_game_exact_at_least_two_for_nontrivial(t in arb_tree(12, 0)) {
        // pebble-ish game (f = 1, n = 0): any tree with >= 2 nodes needs >= 2
        let n = t.len();
        let mut pt = t.clone();
        for i in pt.ids().collect::<Vec<_>>() {
            pt.set_output(i, 1.0);
            pt.set_exec(i, 0.0);
        }
        let ex = liu_exact(&pt);
        if n >= 2 {
            prop_assert!(ex.peak >= 2.0);
        }
        prop_assert!(ex.peak <= n as f64);
    }
}
